#![warn(missing_docs)]

//! Umbrella crate for the Soteria reproduction.
//!
//! This crate re-exports the individual workspace crates so that the
//! examples and integration tests can reach the whole system through one
//! dependency. Library users should normally depend on the individual
//! crates ([`soteria`], [`soteria_nvm`], ...) directly.
//!
//! # Example
//!
//! ```
//! use soteria_suite::soteria::SecureMemoryConfig;
//!
//! let config = SecureMemoryConfig::builder().capacity_bytes(1 << 24).build()?;
//! assert_eq!(config.capacity_bytes(), 1 << 24);
//! # Ok::<(), soteria_suite::soteria::ConfigError>(())
//! ```

pub use soteria;
pub use soteria_crypto;
pub use soteria_ecc;
pub use soteria_faultsim;
pub use soteria_nvm;
pub use soteria_rt;
pub use soteria_simcpu;
pub use soteria_svc;
pub use soteria_workloads;
