//! A persistent key-value store on secure NVM that survives both a crash
//! **and** an uncorrectable memory error in its security metadata — the
//! scenario from the paper's introduction (applications relying on NVM
//! persistence: filesystems, checkpointing, KV stores).
//!
//! The store keeps fixed-size records in a hashed table of 64-byte lines.
//! Everything under it is encrypted + integrity-protected; Soteria SRC
//! cloning repairs the metadata fault that would make a baseline secure
//! memory lose a whole region.
//!
//! ```text
//! cargo run --example persistent_kv_store
//! ```

use soteria_suite::soteria::{
    recover, CloningPolicy, DataAddr, MetaId, SecureMemoryConfig, SecureMemoryController,
};
use soteria_suite::soteria_nvm::fault::{FaultFootprint, FaultKind, FaultRecord};

const SLOTS: u64 = 4096;

/// A fixed-size record store: key -> one 64-byte line (56-byte value).
struct KvStore {
    memory: SecureMemoryController,
}

impl KvStore {
    fn new(memory: SecureMemoryController) -> Self {
        Self { memory }
    }

    fn slot_of(key: &str) -> u64 {
        // FNV-1a over the key, open addressing handled by the caller
        // being gentle (demo-sized store).
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in key.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        h % SLOTS
    }

    fn put(&mut self, key: &str, value: &str) -> Result<(), Box<dyn std::error::Error>> {
        assert!(value.len() <= 56, "demo records carry up to 56 bytes");
        let mut line = [0u8; 64];
        line[0] = 1; // occupied
        line[1] = value.len() as u8;
        line[8..8 + value.len()].copy_from_slice(value.as_bytes());
        self.memory
            .write(DataAddr::new(Self::slot_of(key)), &line)?;
        Ok(())
    }

    fn get(&mut self, key: &str) -> Result<Option<String>, Box<dyn std::error::Error>> {
        let line = self.memory.read(DataAddr::new(Self::slot_of(key)))?;
        if line[0] != 1 {
            return Ok(None);
        }
        let len = line[1] as usize;
        Ok(Some(
            String::from_utf8_lossy(&line[8..8 + len]).into_owned(),
        ))
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = SecureMemoryConfig::builder()
        .capacity_bytes(1 << 20)
        .metadata_cache(16 * 1024, 8)
        .cloning(CloningPolicy::Relaxed) // SRC
        .build()?;
    let mut store = KvStore::new(SecureMemoryController::new(config));

    println!("== phase 1: populate ==");
    let entries = [
        ("paper", "Soteria, MICRO 2021"),
        ("scheme/relaxed", "SRC: one clone per metadata block"),
        ("scheme/aggressive", "SAC: up to 5 copies near the root"),
        ("substrate", "chipkill over 18 chips"),
        ("recovery", "Anubis shadow + Osiris trials"),
    ];
    for (k, v) in entries {
        store.put(k, v)?;
    }
    println!("stored {} records", entries.len());

    println!("\n== phase 2: power loss ==");
    let mut image = store.memory.crash();

    println!("== phase 3: uncorrectable error strikes a counter block while down ==");
    // Chipkill corrects one chip; hit the leaf's line on *two* chips.
    let config = image.config().clone();
    let layout = config.build_layout();
    let leaf = MetaId::new(1, 0); // covers data lines 0..64 (several records)
    let loc = image.device_mut().geometry().locate(layout.meta_addr(leaf));
    for chip in [1u32, 10] {
        let g = *image.device_mut().geometry();
        image.device_mut().inject_fault(FaultRecord::on_chip(
            &g,
            chip,
            FaultFootprint::SingleWord {
                bank: loc.bank,
                row: loc.row,
                col: loc.col,
                beat: 0,
            },
            FaultKind::Permanent,
        ));
    }

    println!("== phase 4: recover ==");
    let (memory, report) = recover(image);
    println!(
        "recovery: complete = {}, clone repairs = {}, blocks restored = {}",
        report.is_complete(),
        report.clone_repairs,
        report.blocks_restored
    );
    assert!(
        report.is_complete(),
        "SRC must repair the counter block from its clone"
    );

    let mut store = KvStore::new(memory);
    println!("\n== phase 5: verify every record ==");
    for (k, v) in entries {
        let got = store.get(k)?.expect("record survived");
        assert_eq!(got, v);
        println!("  {k} => {got}");
    }
    println!("\nAll records intact despite crash + metadata UE. A baseline secure");
    println!("memory (CloningPolicy::None) would have lost every record under the");
    println!("faulted counter block — try it by editing the policy above.");
    Ok(())
}
