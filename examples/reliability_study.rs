//! Reliability study: evaluate *your* DIMM's metadata resilience.
//!
//! This is the workflow a memory-systems architect would use the library
//! for: configure a fault environment (FIT rate, fault-mode mix), run a
//! Monte Carlo campaign over five simulated years, and compare cloning
//! policies — including a custom one — by Unverifiable Data Ratio.
//!
//! ```text
//! cargo run --release --example reliability_study
//! ```

use soteria_suite::soteria::analysis::ExpectedLossModel;
use soteria_suite::soteria::CloningPolicy;
use soteria_suite::soteria_faultsim::{cluster_mtbf_hours, run_campaign, CampaignConfig};

fn main() {
    println!("== analytic sanity check (Fig. 3 model) ==");
    for capacity in [256u64 << 30, 1 << 40, 4 << 40] {
        let m = ExpectedLossModel::new(capacity);
        println!(
            "  {:>5} GiB: {} tree levels, secure memory {:.1}x less resilient",
            capacity >> 30,
            m.levels(),
            m.amplification()
        );
    }

    println!("\n== Monte Carlo campaign (16 GiB DIMM, Chipkill, 5 years) ==");
    let fit = 60.0;
    println!(
        "FIT {fit}/chip -> cluster MTBF {:.1} h for 20k nodes (field-study range: 7-23 h)",
        cluster_mtbf_hours(fit, 20_000, 4, 18)
    );
    let mut config = CampaignConfig::table4(fit);
    config.iterations = 60_000;
    config.capacity_bytes = 1 << 30; // 1 GiB keeps the example snappy

    // Compare the paper's schemes plus a custom "clone only the upper
    // half of the tree" policy.
    let policies = vec![
        CloningPolicy::None,
        CloningPolicy::Relaxed,
        CloningPolicy::Aggressive,
        CloningPolicy::Custom(vec![1, 1, 2, 3, 4]),
    ];
    let results = run_campaign(&config, &policies);
    println!(
        "\n{:>22} | {:>12} | {:>12} | {:>14}",
        "policy", "mean UDR", "L_error", "iters w/ UDR"
    );
    println!("{}", "-".repeat(70));
    for r in &results {
        let name = match &r.policy {
            CloningPolicy::Custom(d) => format!("Custom{d:?}"),
            p => p.name().to_string(),
        };
        println!(
            "{:>22} | {:>12.3e} | {:>12.3e} | {:>14}",
            name, r.mean_udr, r.mean_error_ratio, r.iterations_with_udr
        );
    }
    println!(
        "\n{} of {} iterations saw faults; {} defeated Chipkill somewhere.",
        results[0].iterations_with_faults, results[0].iterations, results[0].iterations_with_ue
    );
    println!("Cloned schemes only lose data when every copy of a block is hit —");
    println!("raise `config.iterations` toward 10^6 to resolve their tiny UDRs.");
}
