//! Attack lab: the §2.1 threat model exercised live. The attacker owns
//! everything outside the processor chip — this example mounts the
//! classic physical attacks against the NVM and shows each one bounce
//! off the controller's defenses.
//!
//! ```text
//! cargo run --release --example attack_lab
//! ```

use soteria_suite::soteria::clone::CloningPolicy;
use soteria_suite::soteria::{DataAddr, SecureMemoryConfig, SecureMemoryController};
use soteria_suite::soteria_nvm::LineAddr;

fn fresh() -> Result<SecureMemoryController, Box<dyn std::error::Error>> {
    let config = SecureMemoryConfig::builder()
        .capacity_bytes(1 << 20)
        .metadata_cache(16 * 1024, 8)
        .cloning(CloningPolicy::Relaxed)
        .build()?;
    Ok(SecureMemoryController::new(config))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== attack 1: cold boot (NVM retains data after power-off, §2.4) ==");
    {
        let mut m = fresh()?;
        let secret = [0x51u8; 64];
        m.write(DataAddr::new(0), &secret)?;
        m.persist_all()?;
        // Attacker pulls the DIMM and scans it at leisure.
        let mut found = false;
        for idx in 0..m.layout().total_lines() {
            if m.device_mut().read_line(LineAddr::new(idx)).0 == secret {
                found = true;
            }
        }
        println!(
            "   scanned {} NVM lines for the secret pattern: {}",
            m.layout().total_lines(),
            if found {
                "FOUND (broken!)"
            } else {
                "not found — counter-mode encryption holds"
            }
        );
        assert!(!found);
    }

    println!("\n== attack 2: data replay (snapshot old ciphertext+MAC, restore later) ==");
    {
        let mut m = fresh()?;
        m.write(DataAddr::new(0), &[1u8; 64])?;
        m.persist_all()?;
        let (old_ct, _) = m.device_mut().read_line(LineAddr::new(0));
        let (mac_line, _) = m.layout().data_mac_slot(DataAddr::new(0));
        let (old_mac, _) = m.device_mut().read_line(mac_line);
        m.write(DataAddr::new(0), &[2u8; 64])?; // the victim updates the value
        m.persist_all()?;
        m.device_mut().write_line(LineAddr::new(0), &old_ct);
        m.device_mut().write_line(mac_line, &old_mac);
        match m.read(DataAddr::new(0)) {
            Err(e) => println!("   replayed pair rejected: {e}"),
            Ok(v) if v == [1u8; 64] => panic!("replay succeeded!"),
            Ok(_) => println!("   replay garbled and detected downstream"),
        }
    }

    println!("\n== attack 3: ciphertext splice (move line A's bytes over line B) ==");
    {
        let mut m = fresh()?;
        m.write(DataAddr::new(1), &[0xaa; 64])?;
        m.write(DataAddr::new(2), &[0xbb; 64])?;
        m.persist_all()?;
        let (a, _) = m.device_mut().read_line(LineAddr::new(1));
        m.device_mut().write_line(LineAddr::new(2), &a);
        match m.read(DataAddr::new(2)) {
            Err(e) => println!("   splice rejected: {e}"),
            Ok(_) => panic!("splice accepted!"),
        }
    }

    println!("\n== attack 4: metadata tampering, repaired by Soteria clones ==");
    {
        let mut m = fresh()?;
        for i in 0..16u64 {
            m.write(DataAddr::new(i * 64), &[7u8; 64])?;
        }
        m.persist_all()?;
        // Flip bits in a ToC node's primary copy.
        let node = soteria_suite::soteria::MetaId::new(2, 0);
        let addr = m.layout().meta_addr(node);
        let (mut bytes, _) = m.device_mut().read_line(addr);
        bytes[10] ^= 0xff;
        m.device_mut().write_line(addr, &bytes);
        // Force re-fetch through cache pressure, then read protected data.
        for i in 0..m.layout().data_lines() / 64 {
            let _ = m.read(DataAddr::new(i * 64));
        }
        let v = m.read(DataAddr::new(0))?;
        assert_eq!(v, [7u8; 64]);
        println!(
            "   tampered node purified from its clone ({} repair(s)); data intact",
            m.stats().clone_repairs
        );
    }

    println!("\n== attack 5: replaying EVERY copy of a metadata block ==");
    {
        let mut m = fresh()?;
        m.write(DataAddr::new(0), &[1u8; 64])?;
        m.persist_all()?;
        let leaf = soteria_suite::soteria::MetaId::new(1, 0);
        let primary = m.layout().meta_addr(leaf);
        let clone = m.layout().clone_addr(leaf, 1);
        let (mac_line, _) = m.layout().leaf_mac_slot(0);
        let snap_p = m.device_mut().read_line(primary).0;
        let snap_c = m.device_mut().read_line(clone).0;
        let snap_m = m.device_mut().read_line(mac_line).0;
        for round in 0..4u64 {
            for i in 0..m.layout().data_lines() / 64 {
                m.write(DataAddr::new(i * 64), &[round as u8; 64])?;
            }
        }
        m.persist_all()?;
        m.device_mut().write_line(primary, &snap_p);
        m.device_mut().write_line(clone, &snap_c);
        m.device_mut().write_line(mac_line, &snap_m);
        for i in (64..m.layout().data_lines()).step_by(64) {
            let _ = m.read(DataAddr::new(i));
        }
        match m.read(DataAddr::new(0)) {
            Err(e) => println!("   full-set replay detected (§3.2.2): {e}"),
            Ok(_) => panic!("full-set replay accepted!"),
        }
    }

    println!("\nall five attacks defeated.");
    Ok(())
}
