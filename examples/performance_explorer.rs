//! Performance explorer: drive one workload through the full simulated
//! system (cores → caches → secure memory controller → PCM banks) under
//! each cloning scheme and inspect where the cycles and the writes go.
//!
//! ```text
//! cargo run --release --example performance_explorer [workload] [ops]
//! ```
//!
//! `workload` is any suite name (`uBENCH128`, `pmemkv`, `mcf`, ...).

use soteria_suite::soteria::CloningPolicy;
use soteria_suite::soteria_simcpu::{System, SystemConfig};
use soteria_suite::soteria_workloads::{standard_suite, SuiteConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let wanted = args
        .get(1)
        .map(String::as_str)
        .unwrap_or("pmemkv")
        .to_string();
    let ops: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(400_000);

    let suite_config = SuiteConfig {
        footprint_bytes: 64 << 20,
        seed: 0xda7a,
    };
    let available: Vec<String> = standard_suite(&suite_config)
        .iter()
        .map(|w| w.name().to_string())
        .collect();
    if !available.iter().any(|n| n == &wanted) {
        eprintln!("unknown workload '{wanted}'; available: {available:?}");
        std::process::exit(1);
    }

    println!("workload {wanted}, {ops} memory operations per scheme\n");
    println!(
        "{:>9} | {:>12} | {:>10} | {:>10} | {:>9} | {:>8}",
        "scheme", "cycles", "NVM reads", "NVM writes", "evict/op", "md-miss"
    );
    println!("{}", "-".repeat(74));
    let mut baseline_cycles = None;
    for policy in [
        CloningPolicy::None,
        CloningPolicy::Relaxed,
        CloningPolicy::Aggressive,
    ] {
        let mut workloads = standard_suite(&suite_config);
        let workload = workloads
            .iter_mut()
            .find(|w| w.name() == wanted)
            .expect("validated above");
        let mut system = System::new(SystemConfig::table3(policy, 64 << 20));
        let r = system.run(workload.as_mut(), ops);
        let base = *baseline_cycles.get_or_insert(r.cycles);
        println!(
            "{:>9} | {:>12} | {:>10} | {:>10} | {:>8.2}% | {:>7.2}%",
            r.scheme,
            format!(
                "{} ({:+.2}%)",
                r.cycles,
                (r.cycles as f64 / base as f64 - 1.0) * 100.0
            ),
            r.nvm_reads,
            r.nvm_writes,
            r.evictions_per_op() * 100.0,
            r.metadata_miss_ratio * 100.0,
        );
        let stats = system.controller().stats();
        println!(
            "{:>9} |   writes: cipher {} | mac {} | shadow {} | evict {} | leaf-mac {} | clone {}",
            "",
            stats.writes.cipher,
            stats.writes.data_mac,
            stats.writes.shadow,
            stats.writes.eviction,
            stats.writes.leaf_mac,
            stats.writes.clone,
        );
    }
    println!("\nThe clone column is the entire cost of Soteria; it tracks the eviction");
    println!("rate (Fig. 10c), which is why the slowdown stays around 1% (Fig. 10a).");
}
