//! Quickstart: a secure, crash-consistent, clone-protected NVM in ~50
//! lines.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use soteria_suite::soteria::{
    recover, CloningPolicy, DataAddr, SecureMemoryConfig, SecureMemoryController,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 16 MiB protected memory with SRC cloning (one clone per metadata
    // block, Table 2) and the Table-3 metadata cache scaled down.
    let config = SecureMemoryConfig::builder()
        .capacity_bytes(16 << 20)
        .metadata_cache(64 * 1024, 8)
        .cloning(CloningPolicy::Relaxed)
        .build()?;
    let mut memory = SecureMemoryController::new(config);

    // Writes are transparently encrypted (AES counter mode, split
    // counters) and integrity-protected (ToC tree + per-line MACs).
    let mut secret = [0u8; 64];
    secret[..32].copy_from_slice(b"attack at dawn; bring both keys!");
    memory.write(DataAddr::new(7), &secret)?;
    assert_eq!(memory.read(DataAddr::new(7))?, secret);

    // The device never sees plaintext (persist first so the line leaves
    // the WPQ and lands in the NVM array):
    memory.persist_all()?;
    let line_in_nvm = memory
        .device_mut()
        .read_line(soteria_suite::soteria_nvm::LineAddr::new(7))
        .0;
    assert_ne!(line_in_nvm, secret);
    println!("ciphertext at rest: {:02x?}...", &line_in_nvm[..8]);

    let stats = memory.stats();
    println!(
        "traffic so far: {} data ops -> {} NVM reads, {} NVM writes ({} shadow, {} clone)",
        stats.memory_ops(),
        stats.nvm_reads,
        stats.nvm_writes,
        stats.writes.shadow,
        stats.writes.clone,
    );

    // Power loss: the metadata cache evaporates; the WPQ (ADR domain) and
    // NVM survive. Recovery replays the Anubis shadow table and runs
    // Osiris counter trials.
    let image = memory.crash();
    let (mut memory, report) = recover(image);
    println!(
        "recovered: {} blocks restored, {} counters via Osiris trials, complete = {}",
        report.blocks_restored,
        report.counters_recovered,
        report.is_complete()
    );
    assert!(report.is_complete());
    assert_eq!(memory.read(DataAddr::new(7))?, secret);
    println!("secret survived the crash, still decrypts and verifies");
    Ok(())
}
