//! Golden-fixture gate for the `soteria crash-demo --trace` NDJSON.
//!
//! The fixture in `tests/golden/crash_demo_src.ndjson` was captured from
//! the CLI (`soteria crash-demo --scheme src --trace ...`) when the
//! atomic-commit Transaction API landed, so the write → crash → recover
//! event stream — commit groups, WPQ drains, the crash event's clocks,
//! Anubis recovery, readback — is pinned byte-for-byte. The replication
//! below runs the same flow in-process (a different binary, build
//! profile, and process layout than the capture), so any wall-clock,
//! address, or iteration-order leak into the trace shows up as a diff.
//!
//! If an intentional change to the trace format or the write path lands,
//! regenerate the fixture with the CLI invocation above and say so in
//! the PR.

use soteria_suite::soteria::recovery::recover;
use soteria_suite::soteria::{CloningPolicy, DataAddr, SecureMemoryConfig, SecureMemoryController};

fn golden(name: &str) -> String {
    let path = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => panic!("missing golden fixture {path}: {e}"),
    }
}

/// The exact `cmd_crash_demo` flow (no fault injection): 128 writes,
/// power loss, Anubis recovery, full readback, trace export.
fn crash_demo_trace(policy: CloningPolicy) -> String {
    let config = SecureMemoryConfig::builder()
        .capacity_bytes(1 << 20)
        .metadata_cache(16 * 1024, 8)
        .cloning(policy)
        .build()
        .expect("crash-demo config is valid");
    let mut memory = SecureMemoryController::new(config);
    memory.enable_obs();
    let data_lines = memory.layout().data_lines();
    for i in 0..128u64 {
        memory
            .write(DataAddr::new(i * 64 % data_lines), &[i as u8; 64])
            .expect("pre-crash writes succeed");
    }
    let (mut memory, report) = recover(memory.crash());
    assert!(report.is_complete(), "demo recovery must be complete");
    for i in 0..128u64 {
        let got = memory
            .read(DataAddr::new(i * 64 % data_lines))
            .expect("post-recovery reads succeed");
        assert_eq!(got, [i as u8; 64], "line {i} must survive the crash");
    }
    memory.export_trace_ndjson()
}

#[test]
fn crash_demo_trace_matches_the_cli_fixture() {
    let want = golden("crash_demo_src.ndjson");
    let got = crash_demo_trace(CloningPolicy::Relaxed);
    assert_eq!(
        got, want,
        "crash-demo NDJSON trace drifted from the golden fixture"
    );
}

#[test]
fn crash_demo_trace_is_stable_across_replays() {
    let a = crash_demo_trace(CloningPolicy::Relaxed);
    let b = crash_demo_trace(CloningPolicy::Relaxed);
    assert_eq!(a, b, "two in-process replays must agree byte-for-byte");
}
