//! Crash-consistency contract tests for the WPQ/ADR path.
//!
//! Two layers, one invariant — *any crash observes a prefix of committed
//! transactions, and never a torn transaction* (§2.6):
//!
//! * **Random crash points** (`soteria_rt::prop` harness): random
//!   single-write streams with a random crash point, under every
//!   tree-update mode and cloning policy. Failing cases are recorded in
//!   `tests/crash_fuzz.regressions` and replay first.
//! * **Exhaustive crash-point sweeps** (`soteria_rt::crashck` oracle via
//!   `soteria_faultsim::crashck::sweep_cell`): seeded multi-write
//!   transaction scripts where *every* WPQ event — transaction accepts
//!   and stall-drain steps alike — is a crash point. Each sweep runs the
//!   census + fuse-armed recovery machinery and judges post-recovery
//!   state against the committed-prefix reference model; drain-clock
//!   monotonicity across the sweep is a checker-internal invariant. The
//!   full `TreeUpdate × CloningPolicy` matrix is covered under Anubis
//!   (strict) recovery, plus Osiris exhaustive-scan (weak) spot checks.

use soteria_suite::soteria::clone::CloningPolicy;
use soteria_suite::soteria::config::TreeUpdate;
use soteria_suite::soteria::recovery::recover;
use soteria_suite::soteria::{DataAddr, SecureMemoryConfig, SecureMemoryController};

use soteria_suite::soteria_faultsim::crashck::{run_crashck, sweep_cell, CrashckConfig};
use soteria_suite::soteria_rt::prop::{any, check, vec, Config};
use soteria_suite::soteria_rt::rng::stream_seed;
use soteria_suite::soteria_rt::{prop_assert, prop_assert_eq};

fn build(update: TreeUpdate, policy: CloningPolicy) -> SecureMemoryController {
    let config = SecureMemoryConfig::builder()
        .capacity_bytes(1 << 20)
        .metadata_cache(8 * 1024, 4)
        .cloning(policy)
        .tree_update(update)
        .build()
        .unwrap();
    SecureMemoryController::new(config)
}

fn cfg() -> Config {
    Config::with_cases(10)
        .regressions(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/crash_fuzz.regressions"))
}

fn run_crash_fuzz(
    update: TreeUpdate,
    policy: CloningPolicy,
    ops: &[(u64, u8)],
    crash_at: usize,
) -> Result<(), String> {
    let mut memory = build(update, policy);
    let mut reference = std::collections::HashMap::new();
    let crash_at = crash_at % (ops.len() + 1);
    for (i, &(line, fill)) in ops.iter().enumerate() {
        if i == crash_at {
            break;
        }
        let line = line % 2048;
        memory.write(DataAddr::new(line), &[fill; 64]).unwrap();
        reference.insert(line, [fill; 64]);
    }
    let (mut memory, report) = recover(memory.crash());
    prop_assert!(
        report.is_complete(),
        "unverifiable: {:?}",
        report.unverifiable
    );
    for (&line, data) in &reference {
        let got = memory
            .read(DataAddr::new(line))
            .map_err(|e| format!("line {line}: {e}"))?;
        prop_assert_eq!(got, *data, "line {} after crash at op {}", line, crash_at);
    }
    Ok(())
}

#[test]
fn lazy_baseline_survives_any_crash_point() {
    check(
        "lazy_baseline_survives_any_crash_point",
        &cfg(),
        &(vec((any::<u64>(), any::<u8>()), 1..150usize), any::<usize>()),
        |(ops, crash_at)| run_crash_fuzz(TreeUpdate::Lazy, CloningPolicy::None, ops, *crash_at),
    );
}

#[test]
fn lazy_src_survives_any_crash_point() {
    check(
        "lazy_src_survives_any_crash_point",
        &cfg(),
        &(vec((any::<u64>(), any::<u8>()), 1..150usize), any::<usize>()),
        |(ops, crash_at)| run_crash_fuzz(TreeUpdate::Lazy, CloningPolicy::Relaxed, ops, *crash_at),
    );
}

#[test]
fn triad_survives_any_crash_point() {
    check(
        "triad_survives_any_crash_point",
        &cfg(),
        &(vec((any::<u64>(), any::<u8>()), 1..120usize), any::<usize>()),
        |(ops, crash_at)| {
            run_crash_fuzz(
                TreeUpdate::Triad { persist_levels: 1 },
                CloningPolicy::Relaxed,
                ops,
                *crash_at,
            )
        },
    );
}

#[test]
fn eager_survives_any_crash_point() {
    check(
        "eager_survives_any_crash_point",
        &cfg(),
        &(vec((any::<u64>(), any::<u8>()), 1..100usize), any::<usize>()),
        |(ops, crash_at)| {
            run_crash_fuzz(TreeUpdate::Eager, CloningPolicy::Aggressive, ops, *crash_at)
        },
    );
}

// ---------------------------------------------------------------------------
// Exhaustive crash-point sweeps over the full TreeUpdate × CloningPolicy
// matrix, driven by the soteria_rt::crashck oracle. Each cell gets its
// own script stream (stream_seed keeps cells independent); the checker
// enumerates every WPQ event as a crash point, recovers, reads back
// every script line, and reports the first divergent point with a trace
// tail (which the panic message carries verbatim).
// ---------------------------------------------------------------------------

/// Base seed of the sweep script streams (kept from the retired manual
/// sweep so the corpus lineage is traceable).
const SWEEP_SEED: u64 = 0x50c4_e61a_0b5e_ed01;

/// Sweeps one matrix cell and panics with the divergence context if any
/// crash point contradicts the committed-prefix model.
fn sweep(tree: &str, policy: CloningPolicy, recovery: &str, stream: u64) {
    let seed = stream_seed(SWEEP_SEED, stream);
    let (points, divergence) = sweep_cell(tree, &policy, recovery, seed, 4, 3);
    if let Some(d) = divergence {
        panic!(
            "cell {} seed {:#018x} diverged at crash point {}: {}\nscript: {}\nlast events:\n{}",
            d.cell, d.seed, d.point, d.reason, d.script, d.trace_tail
        );
    }
    assert!(points > 1, "the sweep must enumerate real crash points");
}

#[test]
fn sweep_lazy_baseline_every_wpq_event() {
    sweep("lazy", CloningPolicy::None, "anubis", 0);
}

#[test]
fn sweep_lazy_src_every_wpq_event() {
    sweep("lazy", CloningPolicy::Relaxed, "anubis", 1);
}

#[test]
fn sweep_lazy_sac_every_wpq_event() {
    sweep("lazy", CloningPolicy::Aggressive, "anubis", 2);
}

#[test]
fn sweep_eager_baseline_every_wpq_event() {
    sweep("eager", CloningPolicy::None, "anubis", 3);
}

#[test]
fn sweep_eager_src_every_wpq_event() {
    sweep("eager", CloningPolicy::Relaxed, "anubis", 4);
}

#[test]
fn sweep_eager_sac_every_wpq_event() {
    sweep("eager", CloningPolicy::Aggressive, "anubis", 5);
}

#[test]
fn sweep_triad_baseline_every_wpq_event() {
    sweep("triad1", CloningPolicy::None, "anubis", 6);
}

#[test]
fn sweep_triad_src_every_wpq_event() {
    sweep("triad1", CloningPolicy::Relaxed, "anubis", 7);
}

#[test]
fn sweep_triad_sac_every_wpq_event() {
    sweep("triad1", CloningPolicy::Aggressive, "anubis", 8);
}

#[test]
fn sweep_lazy_src_osiris_scan_never_corrupts_silently() {
    sweep("lazy", CloningPolicy::Relaxed, "osiris", 9);
}

#[test]
fn sweep_eager_sac_osiris_scan_never_corrupts_silently() {
    sweep("eager", CloningPolicy::Aggressive, "osiris", 10);
}

/// The campaign's JSON and NDJSON artifacts are byte-identical at any
/// worker-thread count (the CI gate `cmp`s real CLI artifacts; this is
/// the in-tree version of the same contract).
#[test]
fn crashck_report_is_thread_invariant() {
    let config = CrashckConfig {
        seed: SWEEP_SEED,
        scripts_per_cell: 1,
        max_txns: 2,
        max_writes: 2,
        threads: 1,
    };
    let one = run_crashck(&config);
    let four = run_crashck(&CrashckConfig {
        threads: 4,
        ..config
    });
    assert_eq!(one.result_json, four.result_json);
    assert_eq!(one.ndjson, four.ndjson);
    assert!(one.divergences.is_empty(), "{:?}", one.divergences.first());
}
