//! Crash-point fuzzing: for random operation streams and random crash
//! points, every acknowledged write must be durable and verifiable after
//! recovery — under every tree-update mode and cloning policy. This is
//! the crash-consistency contract of §2.6 as a property test, running on
//! the in-tree `soteria_rt::prop` harness.

use soteria_suite::soteria::clone::CloningPolicy;
use soteria_suite::soteria::config::TreeUpdate;
use soteria_suite::soteria::recovery::recover;
use soteria_suite::soteria::{DataAddr, SecureMemoryConfig, SecureMemoryController};

use soteria_suite::soteria_rt::prop::{any, check, vec, Config};
use soteria_suite::soteria_rt::{prop_assert, prop_assert_eq};

fn build(update: TreeUpdate, policy: CloningPolicy) -> SecureMemoryController {
    let config = SecureMemoryConfig::builder()
        .capacity_bytes(1 << 20)
        .metadata_cache(8 * 1024, 4)
        .cloning(policy)
        .tree_update(update)
        .build()
        .unwrap();
    SecureMemoryController::new(config)
}

fn cfg() -> Config {
    Config::with_cases(10)
        .regressions(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/crash_fuzz.regressions"))
}

fn run_crash_fuzz(
    update: TreeUpdate,
    policy: CloningPolicy,
    ops: &[(u64, u8)],
    crash_at: usize,
) -> Result<(), String> {
    let mut memory = build(update, policy);
    let mut reference = std::collections::HashMap::new();
    let crash_at = crash_at % (ops.len() + 1);
    for (i, &(line, fill)) in ops.iter().enumerate() {
        if i == crash_at {
            break;
        }
        let line = line % 2048;
        memory.write(DataAddr::new(line), &[fill; 64]).unwrap();
        reference.insert(line, [fill; 64]);
    }
    let (mut memory, report) = recover(memory.crash());
    prop_assert!(
        report.is_complete(),
        "unverifiable: {:?}",
        report.unverifiable
    );
    for (&line, data) in &reference {
        let got = memory
            .read(DataAddr::new(line))
            .map_err(|e| format!("line {line}: {e}"))?;
        prop_assert_eq!(got, *data, "line {} after crash at op {}", line, crash_at);
    }
    Ok(())
}

#[test]
fn lazy_baseline_survives_any_crash_point() {
    check(
        "lazy_baseline_survives_any_crash_point",
        &cfg(),
        &(vec((any::<u64>(), any::<u8>()), 1..150usize), any::<usize>()),
        |(ops, crash_at)| run_crash_fuzz(TreeUpdate::Lazy, CloningPolicy::None, ops, *crash_at),
    );
}

#[test]
fn lazy_src_survives_any_crash_point() {
    check(
        "lazy_src_survives_any_crash_point",
        &cfg(),
        &(vec((any::<u64>(), any::<u8>()), 1..150usize), any::<usize>()),
        |(ops, crash_at)| run_crash_fuzz(TreeUpdate::Lazy, CloningPolicy::Relaxed, ops, *crash_at),
    );
}

#[test]
fn triad_survives_any_crash_point() {
    check(
        "triad_survives_any_crash_point",
        &cfg(),
        &(vec((any::<u64>(), any::<u8>()), 1..120usize), any::<usize>()),
        |(ops, crash_at)| {
            run_crash_fuzz(
                TreeUpdate::Triad { persist_levels: 1 },
                CloningPolicy::Relaxed,
                ops,
                *crash_at,
            )
        },
    );
}

#[test]
fn eager_survives_any_crash_point() {
    check(
        "eager_survives_any_crash_point",
        &cfg(),
        &(vec((any::<u64>(), any::<u8>()), 1..100usize), any::<usize>()),
        |(ops, crash_at)| {
            run_crash_fuzz(TreeUpdate::Eager, CloningPolicy::Aggressive, ops, *crash_at)
        },
    );
}

// ---------------------------------------------------------------------------
// Exhaustive crash-point sweep: instead of sampling random crash points,
// cut power after *every* operation boundary of a fixed stream and check
// that recovery matches what shadow-tracking predicts at each point. The
// WPQ drain counter is the crash-point clock (each drain moves one write
// out of the ADR domain onto media), so the sweep also asserts the clock
// recorded in the `crash` trace event advances monotonically across the
// sweep and reaches the full-stream drain count at the last point. On a
// divergence the last trace events are printed to localise it.
// ---------------------------------------------------------------------------

use soteria_suite::soteria_rt::json::Json;
use soteria_suite::soteria_rt::obs::parse_ndjson;

/// A deterministic op stream with heavy line reuse (forces metadata-cache
/// evictions and clone-group rewrites within a short sweep).
fn sweep_ops(n: usize, seed: u64) -> Vec<(u64, u8)> {
    let mut s = seed;
    (0..n)
        .map(|_| {
            s = s
                .wrapping_mul(0x5851_f42d_4c95_7f2d)
                .wrapping_add(0x1405_7b7e_f767_814f);
            ((s >> 33) % 64, (s >> 24) as u8)
        })
        .collect()
}

/// The last `n` trace events of a controller, one NDJSON line each —
/// the divergence context shown when a sweep assertion fails.
fn trace_tail(memory: &SecureMemoryController, n: usize) -> String {
    let events: Vec<_> = memory.obs().trace.events().collect();
    let start = events.len().saturating_sub(n);
    events[start..]
        .iter()
        .map(|e| e.ndjson_line())
        .collect::<Vec<_>>()
        .join("")
}

/// The `drains_at_crash` field of the trace's `crash` event.
fn crash_drain_clock(memory: &SecureMemoryController) -> u64 {
    let ev = memory
        .obs()
        .trace
        .events()
        .filter(|e| e.name == "crash")
        .last()
        .expect("traced controller records a crash event");
    ev.to_json()
        .get("drains_at_crash")
        .and_then(Json::as_f64)
        .expect("crash event carries the drain clock") as u64
}

fn crash_point_sweep(update: TreeUpdate, policy: CloningPolicy) {
    let ops = sweep_ops(32, 0x50c4_e61a_0b5e_ed01);
    let mut prev_clock = 0u64;
    for crash_at in 0..=ops.len() {
        let mut memory = build(update, policy.clone());
        memory.enable_obs();
        let mut reference = std::collections::HashMap::new();
        for &(line, fill) in &ops[..crash_at] {
            memory.write(DataAddr::new(line), &[fill; 64]).unwrap();
            reference.insert(line, [fill; 64]);
        }
        let (mut memory, report) = recover(memory.crash());
        // Shadow-tracking predicts complete recovery at every op boundary:
        // every acknowledged write has its metadata either persisted or
        // shadow-logged, so nothing may come back unverifiable.
        assert!(
            report.is_complete(),
            "crash point {crash_at}: recovery left {:?} unverifiable\nlast events:\n{}",
            report.unverifiable,
            trace_tail(&memory, 12),
        );
        for (&line, data) in &reference {
            match memory.read(DataAddr::new(line)) {
                Ok(got) if got == *data => {}
                other => panic!(
                    "crash point {crash_at}: line {line} diverged ({other:?})\nlast events:\n{}",
                    trace_tail(&memory, 12),
                ),
            }
        }
        // The drain clock only moves forward as the crash point advances.
        let clock = crash_drain_clock(&memory);
        assert!(
            clock >= prev_clock,
            "drain clock went backwards at crash point {crash_at}: {clock} < {prev_clock}"
        );
        prev_clock = clock;
        // Every sweep trace must round-trip through the validator.
        parse_ndjson(&memory.export_trace_ndjson()).expect("sweep trace is valid NDJSON");
    }
    assert!(
        prev_clock > 0,
        "the full stream must have drained at least one WPQ entry"
    );
}

#[test]
fn sweep_lazy_baseline_every_drain_step() {
    crash_point_sweep(TreeUpdate::Lazy, CloningPolicy::None);
}

#[test]
fn sweep_lazy_src_every_drain_step() {
    crash_point_sweep(TreeUpdate::Lazy, CloningPolicy::Relaxed);
}

#[test]
fn sweep_triad_src_every_drain_step() {
    crash_point_sweep(TreeUpdate::Triad { persist_levels: 1 }, CloningPolicy::Relaxed);
}

#[test]
fn sweep_eager_sac_every_drain_step() {
    crash_point_sweep(TreeUpdate::Eager, CloningPolicy::Aggressive);
}
