//! Crash-point fuzzing: for random operation streams and random crash
//! points, every acknowledged write must be durable and verifiable after
//! recovery — under every tree-update mode and cloning policy. This is
//! the crash-consistency contract of §2.6 as a property test, running on
//! the in-tree `soteria_rt::prop` harness.

use soteria_suite::soteria::clone::CloningPolicy;
use soteria_suite::soteria::config::TreeUpdate;
use soteria_suite::soteria::recovery::recover;
use soteria_suite::soteria::{DataAddr, SecureMemoryConfig, SecureMemoryController};

use soteria_suite::soteria_rt::prop::{any, check, vec, Config};
use soteria_suite::soteria_rt::{prop_assert, prop_assert_eq};

fn build(update: TreeUpdate, policy: CloningPolicy) -> SecureMemoryController {
    let config = SecureMemoryConfig::builder()
        .capacity_bytes(1 << 20)
        .metadata_cache(8 * 1024, 4)
        .cloning(policy)
        .tree_update(update)
        .build()
        .unwrap();
    SecureMemoryController::new(config)
}

fn cfg() -> Config {
    Config::with_cases(10)
        .regressions(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/crash_fuzz.regressions"))
}

fn run_crash_fuzz(
    update: TreeUpdate,
    policy: CloningPolicy,
    ops: &[(u64, u8)],
    crash_at: usize,
) -> Result<(), String> {
    let mut memory = build(update, policy);
    let mut reference = std::collections::HashMap::new();
    let crash_at = crash_at % (ops.len() + 1);
    for (i, &(line, fill)) in ops.iter().enumerate() {
        if i == crash_at {
            break;
        }
        let line = line % 2048;
        memory.write(DataAddr::new(line), &[fill; 64]).unwrap();
        reference.insert(line, [fill; 64]);
    }
    let (mut memory, report) = recover(memory.crash());
    prop_assert!(
        report.is_complete(),
        "unverifiable: {:?}",
        report.unverifiable
    );
    for (&line, data) in &reference {
        let got = memory
            .read(DataAddr::new(line))
            .map_err(|e| format!("line {line}: {e}"))?;
        prop_assert_eq!(got, *data, "line {} after crash at op {}", line, crash_at);
    }
    Ok(())
}

#[test]
fn lazy_baseline_survives_any_crash_point() {
    check(
        "lazy_baseline_survives_any_crash_point",
        &cfg(),
        &(vec((any::<u64>(), any::<u8>()), 1..150usize), any::<usize>()),
        |(ops, crash_at)| run_crash_fuzz(TreeUpdate::Lazy, CloningPolicy::None, ops, *crash_at),
    );
}

#[test]
fn lazy_src_survives_any_crash_point() {
    check(
        "lazy_src_survives_any_crash_point",
        &cfg(),
        &(vec((any::<u64>(), any::<u8>()), 1..150usize), any::<usize>()),
        |(ops, crash_at)| run_crash_fuzz(TreeUpdate::Lazy, CloningPolicy::Relaxed, ops, *crash_at),
    );
}

#[test]
fn triad_survives_any_crash_point() {
    check(
        "triad_survives_any_crash_point",
        &cfg(),
        &(vec((any::<u64>(), any::<u8>()), 1..120usize), any::<usize>()),
        |(ops, crash_at)| {
            run_crash_fuzz(
                TreeUpdate::Triad { persist_levels: 1 },
                CloningPolicy::Relaxed,
                ops,
                *crash_at,
            )
        },
    );
}

#[test]
fn eager_survives_any_crash_point() {
    check(
        "eager_survives_any_crash_point",
        &cfg(),
        &(vec((any::<u64>(), any::<u8>()), 1..100usize), any::<usize>()),
        |(ops, crash_at)| {
            run_crash_fuzz(TreeUpdate::Eager, CloningPolicy::Aggressive, ops, *crash_at)
        },
    );
}
