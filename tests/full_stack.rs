//! Cross-crate integration tests: workloads through the simulator, fault
//! campaigns through the analysis pipeline, and functional/symbolic
//! device agreement.

use soteria_suite::soteria::analysis::ResilienceModel;
use soteria_suite::soteria::clone::CloningPolicy;
use soteria_suite::soteria::{
    recover, DataAddr, Fidelity, SecureMemoryConfig, SecureMemoryController,
};
use soteria_suite::soteria_ecc::CorrectionOutcome;
use soteria_suite::soteria_faultsim::{run_campaign, sample_fault_set, CampaignConfig, FitRates};
use soteria_suite::soteria_nvm::device::NvmDimm;
use soteria_suite::soteria_nvm::geometry::DimmGeometry;
use soteria_suite::soteria_nvm::LineAddr;
use soteria_suite::soteria_simcpu::{System, SystemConfig};
use soteria_suite::soteria_workloads::{standard_suite, SuiteConfig, UBench, Workload};

use soteria_suite::soteria_rt::rng::StdRng;

#[test]
fn every_workload_runs_through_the_full_system() {
    let suite_config = SuiteConfig {
        footprint_bytes: 8 << 20,
        seed: 1,
    };
    for workload in &mut standard_suite(&suite_config) {
        let mut system = System::new(SystemConfig::table3(CloningPolicy::Relaxed, 8 << 20));
        let r = system.run(workload.as_mut(), 5_000);
        assert_eq!(r.ops, 5_000, "{}", r.workload);
        assert!(
            r.cycles > 5_000,
            "{} must take more than 1 cycle/op",
            r.workload
        );
    }
}

#[test]
fn scheme_ordering_holds_across_workloads() {
    // Writes: SAC >= SRC >= Baseline for every workload (cloning only adds
    // traffic). Uses a memory-intensive subset for signal.
    for name in ["sps", "pmemkv", "hashmap"] {
        let mut per_scheme = Vec::new();
        for policy in [
            CloningPolicy::None,
            CloningPolicy::Relaxed,
            CloningPolicy::Aggressive,
        ] {
            let suite_config = SuiteConfig {
                footprint_bytes: 32 << 20,
                seed: 7,
            };
            let mut workloads = standard_suite(&suite_config);
            let w = workloads
                .iter_mut()
                .find(|w| w.name() == name)
                .expect("exists");
            let mut system = System::new(SystemConfig::table3(policy, 32 << 20));
            per_scheme.push(system.run(w.as_mut(), 60_000));
        }
        assert!(
            per_scheme[1].nvm_writes >= per_scheme[0].nvm_writes,
            "{name}: SRC {} < baseline {}",
            per_scheme[1].nvm_writes,
            per_scheme[0].nvm_writes
        );
        assert!(
            per_scheme[2].nvm_writes >= per_scheme[1].nvm_writes,
            "{name}: SAC {} < SRC {}",
            per_scheme[2].nvm_writes,
            per_scheme[1].nvm_writes
        );
        assert!(per_scheme[2].cycles >= per_scheme[0].cycles, "{name}");
    }
}

#[test]
fn campaign_fault_sets_agree_with_symbolic_device() {
    // For sampled fault sets, the analytic UE decision (ResilienceModel)
    // must agree with the symbolic device's per-line chipkill outcome.
    let config = CampaignConfig::table4(50_000.0); // extreme FIT for signal
    let layout = config.build_layout();
    let geometry = config.build_geometry(&layout);
    let rates = FitRates::hopper().scaled_to(50_000.0);
    let mut rng = StdRng::seed_from_u64(42);
    let policy = CloningPolicy::None;
    let model = ResilienceModel::new(&layout, &geometry);
    let mut checked = 0;
    for _ in 0..20 {
        let faults = sample_fault_set(&mut rng, &geometry, &rates, config.hours);
        let assessment = model.assess(&faults, &policy);
        let mut device = NvmDimm::symbolic(geometry, 1);
        for f in &faults {
            device.inject_fault(f.clone());
        }
        // Spot-check data lines: symbolic UE <=> analytic membership.
        let mut analytic_ue = 0u64;
        let mut device_ue = 0u64;
        for line in (0..layout.data_lines()).step_by(7919) {
            let (_, outcome) = device.read_line(LineAddr::new(line));
            if outcome == CorrectionOutcome::Uncorrectable {
                device_ue += 1;
            }
        }
        let _ = &mut analytic_ue;
        // Agreement is checked statistically: the UE fraction the device
        // reports over sampled lines must track the analytic fraction.
        let sampled = layout.data_lines().div_ceil(7919);
        let frac = assessment.error_data_lines as f64 / layout.data_lines() as f64;
        let sampled_frac = device_ue as f64 / sampled as f64;
        assert!(
            (sampled_frac - frac).abs() < 0.05,
            "sampled {sampled_frac} vs analytic {frac}"
        );
        checked += 1;
    }
    assert_eq!(checked, 20);
}

#[test]
fn end_to_end_campaign_orders_policies() {
    let mut config = CampaignConfig::table4(2_000.0);
    config.iterations = 2_000;
    config.capacity_bytes = 1 << 28;
    let r = run_campaign(
        &config,
        &[
            CloningPolicy::None,
            CloningPolicy::Relaxed,
            CloningPolicy::Aggressive,
        ],
    );
    assert!(r[0].mean_udr >= r[1].mean_udr);
    assert!(r[1].mean_udr >= r[2].mean_udr);
}

#[test]
fn functional_device_matches_symbolic_outcomes() {
    // Same injected fault, functional (real RS decode) vs symbolic
    // (chip-count rule): identical outcome classes on every line.
    use soteria_suite::soteria_nvm::fault::{FaultFootprint, FaultKind, FaultRecord};
    let g = DimmGeometry::tiny();
    let mut functional = NvmDimm::chipkill(g);
    let mut symbolic = NvmDimm::symbolic(g, 1);
    for d in [&mut functional, &mut symbolic] {
        for line in 0..g.total_lines() {
            d.write_line(LineAddr::new(line), &[line as u8; 64]);
        }
        d.inject_fault(FaultRecord::on_chip(
            &g,
            2,
            FaultFootprint::SingleBank { bank: 1 },
            FaultKind::Permanent,
        ));
        d.inject_fault(FaultRecord::on_chip(
            &g,
            11,
            FaultFootprint::SingleRow { bank: 1, row: 3 },
            FaultKind::Permanent,
        ));
    }
    for line in 0..g.total_lines() {
        let (_, fo) = functional.read_line(LineAddr::new(line));
        let (_, so) = symbolic.read_line(LineAddr::new(line));
        let class = |o: CorrectionOutcome| match o {
            CorrectionOutcome::Clean => 0,
            CorrectionOutcome::Corrected { .. } => 1,
            CorrectionOutcome::Uncorrectable => 2,
        };
        assert_eq!(class(fo), class(so), "line {line}: {fo:?} vs {so:?}");
    }
}

#[test]
fn analysis_lost_blocks_match_device_reads_exactly() {
    // For the baseline policy (no clones), the analytic "lost metadata
    // blocks" must be exactly the metadata primaries whose device reads
    // come back uncorrectable.
    use soteria_suite::soteria::layout::MemoryLayout;
    let layout = MemoryLayout::new((16u64 << 20) / 64, 64, 0); // 16 MiB
    let geometry = {
        let banks = 16u32;
        let cols = 1024u32;
        let rows = layout.total_lines().div_ceil(banks as u64 * cols as u64).max(1) as u32;
        DimmGeometry::new(18, 9, 2, banks, rows, cols)
    };
    let rates = FitRates::hopper().scaled_to(2_000_000.0); // dense faults
    let policy = CloningPolicy::None;
    let model = ResilienceModel::new(&layout, &geometry);
    let mut rng = StdRng::seed_from_u64(1234);
    let mut nontrivial = 0;
    for round in 0..12 {
        let faults = sample_fault_set(&mut rng, &geometry, &rates, 43_800.0);
        let assessment = model.assess(&faults, &policy);
        let mut device = NvmDimm::symbolic(geometry, 1);
        for f in &faults {
            device.inject_fault(f.clone());
        }
        let mut device_lost = Vec::new();
        for meta in layout.iter_meta() {
            let (_, outcome) = device.read_line(layout.meta_addr(meta));
            if outcome == CorrectionOutcome::Uncorrectable {
                device_lost.push(meta);
            }
        }
        // The bank-wide fast path reports coverage without block lists;
        // compare block sets only when the slow path ran.
        if !assessment.lost_meta_blocks.is_empty() || device_lost.is_empty() {
            assert_eq!(
                assessment.lost_meta_blocks, device_lost,
                "round {round}: analytic vs device disagreement"
            );
        }
        if !device_lost.is_empty() {
            nontrivial += 1;
        }
    }
    assert!(nontrivial >= 2, "fault density too low to exercise the check");
}

#[test]
fn expected_loss_model_matches_empirical_sampling() {
    // Fig. 3's analytic model cross-validated: drop single uncorrectable
    // errors uniformly over the stored lines (data + MACs + metadata) and
    // measure the average data loss each causes via the real layout.
    use soteria_suite::soteria::analysis::ExpectedLossModel;
    use soteria_suite::soteria::layout::{MemoryLayout, Region};
    // The loss distribution is extremely heavy-tailed (the four top nodes
    // hold 1/8 of the total mass), so enumerate every stored line exactly
    // rather than sampling.
    let capacity = 64u64 << 20;
    let model = ExpectedLossModel::new(capacity);
    let layout = MemoryLayout::new(capacity / 64, 1, 0);
    let mut total_loss_lines = 0u64;
    let mut stored_lines = 0u64;
    for line in 0..layout.total_lines() {
        let loss = match layout.classify(LineAddr::new(line)) {
            Region::Data(_) => 1,
            Region::DataMac => 8,
            Region::LeafMac => 8 * 64,
            Region::Meta(meta) => layout.covered_data_lines(meta),
            // Outside the model's universe (shadow/clone/padding).
            _ => continue,
        };
        total_loss_lines += loss;
        stored_lines += 1;
    }
    let empirical = total_loss_lines as f64 / stored_lines as f64 * 64.0;
    let analytic = model.secure_loss_per_error_bytes();
    let ratio = empirical / analytic;
    assert!(
        (0.99..1.01).contains(&ratio),
        "empirical {empirical:.1} B vs analytic {analytic:.1} B (ratio {ratio:.3})"
    );
}

#[test]
fn secure_memory_hosts_a_workload_functionally() {
    // Full-fidelity controller actually storing a workload's data: every
    // value written is read back intact, across a crash.
    let config = SecureMemoryConfig::builder()
        .capacity_bytes(1 << 20)
        .metadata_cache(16 * 1024, 8)
        .cloning(CloningPolicy::Relaxed)
        .fidelity(Fidelity::Functional)
        .build()
        .unwrap();
    let mut memory = SecureMemoryController::new(config);
    let mut w = UBench::new(64, 1 << 18);
    let mut expected = std::collections::HashMap::new();
    for i in 0..2_000u64 {
        let op = w.next_op();
        let line = op.addr / 64;
        if op.kind == soteria_suite::soteria_workloads::OpKind::Write {
            let data = [(i % 251) as u8; 64];
            memory.write(DataAddr::new(line), &data).unwrap();
            expected.insert(line, data);
        }
    }
    let (mut memory, report) = recover(memory.crash());
    assert!(report.is_complete(), "{:?}", report.unverifiable);
    for (&line, data) in &expected {
        assert_eq!(
            memory.read(DataAddr::new(line)).unwrap(),
            *data,
            "line {line}"
        );
    }
}
