//! Differential golden tests for the [`ProtectionPolicy`] refactor.
//!
//! The trait re-expresses every pre-existing scheme (Baseline/SRC/SAC
//! cloning, Anubis shadow recovery, Osiris forward trials) behind one
//! interface. These tests prove the refactor moved *zero* behavior: the
//! committed golden fixtures — captured before the trait existed — must
//! replay byte-identically when every knob is derived from the scheme
//! registry instead of being spelled out by hand.
//!
//! If a fixture diff ever shows up here but not in `determinism_golden`
//! / `crash_demo_golden`, the trait plumbing itself (not the artifact
//! format) changed scheme semantics: that is a bug, not a fixture
//! regeneration.

use soteria::recovery::RecoveryReport;
use soteria::{
    scheme_by_name, standard_schemes, DataAddr, ProtectionPolicy, SecureMemoryController,
};
use soteria_faultsim::campaign::CampaignConfig;
use soteria_faultsim::{report_json, run_campaign_traced};

fn golden(name: &str) -> String {
    let path = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => panic!("missing golden fixture {path}: {e}"),
    }
}

/// The campaign fixture replayed with cloning policies pulled from the
/// registry (`baseline`/`src`/`sac` in roster order) instead of the
/// hard-coded `STANDARD_POLICIES` list.
#[test]
fn campaign_fixture_replays_through_registry_policies() {
    let policies: Vec<_> = standard_schemes()[..3]
        .iter()
        .map(|scheme| scheme.cloning())
        .collect();
    let mut config = CampaignConfig::table4(1500.0);
    config.iterations = 200;
    config.seed = 0xc1;
    config.threads = 1;
    config.trace = true;
    let (results, trace) = run_campaign_traced(&config, &policies);
    let result_json = report_json(&config, &results, &trace).to_pretty_string();

    assert_eq!(
        result_json,
        golden("campaign_seed0xc1.json"),
        "registry-derived campaign JSON drifted from the golden fixture"
    );
    assert_eq!(
        trace.export_ndjson(),
        golden("campaign_seed0xc1.ndjson"),
        "registry-derived campaign trace drifted from the golden fixture"
    );
}

/// The crash-demo flow driven entirely by a [`ProtectionPolicy`]: config
/// built by the trait, recovery dispatched by the trait's hook.
fn crash_demo_via_policy(scheme: &dyn ProtectionPolicy) -> (String, RecoveryReport) {
    let config = scheme
        .build_config(1 << 20, 16 * 1024, 8, 8)
        .expect("registered scheme config is valid");
    let mut memory = SecureMemoryController::new(config);
    memory.enable_obs();
    let data_lines = memory.layout().data_lines();
    for i in 0..128u64 {
        memory
            .write(DataAddr::new(i * 64 % data_lines), &[i as u8; 64])
            .expect("pre-crash writes succeed");
    }
    let (mut memory, report) = scheme.recover(memory.crash());
    for i in 0..128u64 {
        let got = memory
            .read(DataAddr::new(i * 64 % data_lines))
            .expect("post-recovery reads succeed");
        assert_eq!(got, [i as u8; 64], "line {i} must survive the crash");
    }
    (memory.export_trace_ndjson(), report)
}

/// The `crash_demo_src.ndjson` fixture — captured from the pre-trait CLI
/// — replayed byte-for-byte with every knob coming from
/// `scheme_by_name("src")`.
#[test]
fn crash_demo_fixture_replays_through_the_src_policy() {
    let src = scheme_by_name("src").expect("src is registered");
    let (trace, report) = crash_demo_via_policy(src);
    assert!(report.is_complete(), "SRC demo recovery must be complete");
    assert_eq!(
        trace,
        golden("crash_demo_src.ndjson"),
        "trait-driven crash-demo trace drifted from the golden fixture"
    );
}

/// Every registered scheme survives the crash-demo flow through the
/// trait (128 lines written, crash, the scheme's own recovery hook, full
/// readback), and two replays agree byte-for-byte — the determinism
/// floor the compare campaign stands on.
#[test]
fn every_scheme_replays_the_crash_demo_deterministically() {
    for scheme in standard_schemes() {
        let (a, report) = crash_demo_via_policy(*scheme);
        let (b, _) = crash_demo_via_policy(*scheme);
        assert_eq!(
            a,
            b,
            "{}: two in-process replays must agree byte-for-byte",
            scheme.name()
        );
        assert_eq!(
            report.unverifiable_lines(),
            0,
            "{}: fault-free crash recovery must verify everything",
            scheme.name()
        );
    }
}
