//! The flagship configuration instantiated at full scale: Table 3's
//! 16 GB protected capacity, 512 kB metadata cache, four cores — the
//! exact system of the paper's evaluation, driven briefly end-to-end.

use soteria_suite::soteria::clone::CloningPolicy;
use soteria_suite::soteria::layout::MemoryLayout;
use soteria_suite::soteria_simcpu::{System, SystemConfig};
use soteria_suite::soteria_workloads::{standard_suite, SuiteConfig, Workload};

#[test]
fn sixteen_gb_layout_matches_the_paper_arithmetic() {
    let layout = MemoryLayout::new((16u64 << 30) / 64, 8192, 4);
    // 2^22 counter blocks; 8 levels to the on-chip root.
    assert_eq!(layout.level_count(1), 1 << 22);
    assert_eq!(layout.levels(), 8);
    // §3.1 storage accounting: counters + tree ≈ 1.78 % of capacity.
    let meta_lines: u64 = (1..=layout.levels()).map(|l| layout.level_count(l)).sum();
    let overhead = meta_lines as f64 / layout.data_lines() as f64;
    assert!((overhead - 0.0178).abs() < 0.001, "{overhead}");
    // The root's eight children each cover 1/8 of the tree's reach —
    // "each covering 12.5% of the memory" (§3.2.1) at the 1 TB design
    // point; at 16 GB the top level has 2 nodes covering half each.
    let top = layout.levels();
    let covered = layout.covered_data_lines(soteria_suite::soteria::MetaId::new(top, 0));
    assert_eq!(covered, layout.data_lines() / layout.level_count(top));
}

#[test]
fn table3_system_runs_four_cores_at_16gb() {
    // The full-capacity Timing-fidelity system is cheap to instantiate
    // (sparse device, content-free controller) and must sustain a
    // four-core multiprogrammed burst.
    let config = SystemConfig::table3(CloningPolicy::Aggressive, 16u64 << 30);
    let mut system = System::with_cores(config, 4);
    let mut instances: Vec<Box<dyn Workload>> = (0..4)
        .map(|i| {
            let cfg = SuiteConfig {
                footprint_bytes: 64 << 20,
                seed: i as u64,
            };
            let mut suite = standard_suite(&cfg);
            suite.remove((i * 3) % suite.len())
        })
        .collect();
    let r = {
        let mut refs: Vec<&mut dyn Workload> =
            instances.iter_mut().map(|w| &mut **w as &mut dyn Workload).collect();
        system.run_multi(&mut refs, 5_000)
    };
    assert_eq!(r.ops, 20_000);
    assert!(r.cycles > 0);
    assert!(r.nvm_reads > 0);
    // The 16 GB tree has 8 levels; evictions must never report beyond it.
    assert!(r.evictions_by_level.len() <= 8);
}
