//! Golden-seed determinism gate for the fault-campaign artifacts.
//!
//! The fixtures in `tests/golden/` were captured from the CLI
//! (`soteria campaign --fit 1500 --iters 200 --seed 0xc1 --threads 3
//! --json ... --trace ...`) **before** the deterministic-collection
//! migrations (HashMap → BTreeMap in `soteria-nvm`, HashSet → BTreeSet
//! in `soteria`), so this test proves two things at once:
//!
//! * the migrations did not change a single byte of the campaign JSON
//!   or the NDJSON trace, and
//! * the artifacts are byte-identical across thread counts (fixtures
//!   were produced with `--threads 3`; this run uses one thread).
//!
//! If an intentional change to the artifact format lands, regenerate the
//! fixtures with the CLI invocation above and say so in the PR.

use soteria_faultsim::campaign::CampaignConfig;
use soteria_faultsim::job::run_job;

fn golden(name: &str) -> String {
    let path = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => panic!("missing golden fixture {path}: {e}"),
    }
}

#[test]
fn campaign_artifacts_match_pre_migration_fixtures() {
    let mut config = CampaignConfig::table4(1500.0);
    config.iterations = 200;
    config.seed = 0xc1;
    config.threads = 1;
    config.trace = true;
    let out = run_job(&config);

    let want_json = golden("campaign_seed0xc1.json");
    let want_trace = golden("campaign_seed0xc1.ndjson");
    assert_eq!(
        out.result_json, want_json,
        "campaign result JSON drifted from the golden fixture"
    );
    assert_eq!(
        out.trace_ndjson, want_trace,
        "campaign NDJSON trace drifted from the golden fixture"
    );
}
