//! Property-based tests (proptest) over the core data structures and
//! invariants: codecs round-trip under correctable faults, counters never
//! repeat, the layout partitions the address space, and the secure
//! controller is a faithful memory under arbitrary operation sequences.

use proptest::prelude::*;

use soteria_suite::soteria::clone::CloningPolicy;
use soteria_suite::soteria::counter::CounterBlock;
use soteria_suite::soteria::layout::{MemoryLayout, MetaId, Region};
use soteria_suite::soteria::shadow::{decode_entry, encode_entry, ShadowMode, ShadowRecord};
use soteria_suite::soteria::toc::TocNode;
use soteria_suite::soteria::{DataAddr, SecureMemoryConfig, SecureMemoryController};
use soteria_suite::soteria_crypto::ctr::CounterModeCipher;
use soteria_suite::soteria_crypto::EncryptionKey;
use soteria_suite::soteria_ecc::chipkill::{ChipkillCodec, LineCodec};
use soteria_suite::soteria_ecc::hamming::SecDed72;
use soteria_suite::soteria_ecc::rs::ReedSolomon;
use soteria_suite::soteria_ecc::CorrectionOutcome;
use soteria_suite::soteria_nvm::LineAddr;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn aes_ctr_roundtrips(key in prop::array::uniform16(any::<u8>()),
                          line in prop::array::uniform32(any::<u8>()),
                          addr in any::<u64>(),
                          counter in any::<u64>()) {
        let cipher = CounterModeCipher::new(EncryptionKey::from_bytes(key));
        let mut full = [0u8; 64];
        full[..32].copy_from_slice(&line);
        full[32..].copy_from_slice(&line);
        let ct = cipher.encrypt_line(&full, addr, counter);
        prop_assert_eq!(cipher.decrypt_line(&ct, addr, counter), full);
    }

    #[test]
    fn rs_corrects_any_t_errors(data in prop::collection::vec(any::<u8>(), 16),
                                positions in prop::collection::btree_set(0usize..20, 1..=2),
                                magnitudes in prop::collection::vec(1u8..=255, 2)) {
        let rs = ReedSolomon::new(20, 16).unwrap();
        let cw = rs.encode(&data).unwrap();
        let mut bad = cw.clone();
        for (i, &pos) in positions.iter().enumerate() {
            bad[pos] ^= magnitudes[i % magnitudes.len()];
        }
        let (decoded, outcome) = rs.decode(&bad).unwrap();
        prop_assert_eq!(decoded, data);
        let corrected = matches!(outcome, CorrectionOutcome::Corrected { .. });
        prop_assert!(corrected);
    }

    #[test]
    fn chipkill_survives_one_chip_any_pattern(
        line in prop::array::uniform32(any::<u8>()),
        chip in 0usize..18,
        pattern in 1u8..=255,
    ) {
        let codec = ChipkillCodec::table4();
        let mut full = [0u8; 64];
        full[..32].copy_from_slice(&line);
        full[32..].copy_from_slice(&line);
        let mut stored = codec.encode_line(&full);
        for (i, b) in stored.iter_mut().enumerate() {
            if i % 18 == chip {
                *b ^= pattern;
            }
        }
        let (decoded, outcome) = codec.decode_line(&stored);
        prop_assert_eq!(decoded, full);
        prop_assert!(outcome.is_usable());
    }

    #[test]
    fn rs_erasures_recover_any_two_marked_positions(
        data in prop::collection::vec(any::<u8>(), 16),
        positions in prop::collection::btree_set(0usize..18, 1..=2),
        magnitudes in prop::collection::vec(any::<u8>(), 2),
    ) {
        // RS(18,16): e <= 2t = 2 known erasures always recover, for any
        // corruption pattern (including "no corruption at all").
        let rs = ReedSolomon::new(18, 16).unwrap();
        let cw = rs.encode(&data).unwrap();
        let mut bad = cw.clone();
        let marked: Vec<usize> = positions.iter().copied().collect();
        for (i, &pos) in marked.iter().enumerate() {
            bad[pos] ^= magnitudes[i % magnitudes.len()];
        }
        let (decoded, outcome) = rs.decode_with_erasures(&bad, &marked).unwrap();
        prop_assert_eq!(decoded, data);
        prop_assert!(outcome.is_usable());
    }

    #[test]
    fn devices_agree_on_random_fault_sets(
        chips in prop::collection::btree_set(0u32..18, 0..4),
        bank in 0u32..4,
        row in 0u32..8,
        probe_lines in prop::collection::vec(0u64..256, 8),
    ) {
        // Functional (real RS decode) and symbolic (chip-count rule)
        // devices must classify every probed line identically under any
        // combination of single-chip row faults.
        use soteria_suite::soteria_nvm::device::NvmDimm;
        use soteria_suite::soteria_nvm::fault::{FaultFootprint, FaultKind, FaultRecord};
        use soteria_suite::soteria_nvm::geometry::DimmGeometry;
        let g = DimmGeometry::tiny();
        let mut functional = NvmDimm::chipkill(g);
        let mut symbolic = NvmDimm::symbolic(g, 1);
        for d in [&mut functional, &mut symbolic] {
            for line in 0..g.total_lines() {
                d.write_line(LineAddr::new(line), &[line as u8; 64]);
            }
            for &chip in &chips {
                d.inject_fault(FaultRecord::on_chip(
                    &g,
                    chip,
                    FaultFootprint::SingleRow { bank, row },
                    FaultKind::Permanent,
                ));
            }
        }
        for &line in &probe_lines {
            let fo = functional.read_line(LineAddr::new(line)).1;
            let so = symbolic.read_line(LineAddr::new(line)).1;
            let class = |o: soteria_suite::soteria_ecc::CorrectionOutcome| match o {
                soteria_suite::soteria_ecc::CorrectionOutcome::Clean => 0,
                soteria_suite::soteria_ecc::CorrectionOutcome::Corrected { .. } => 1,
                soteria_suite::soteria_ecc::CorrectionOutcome::Uncorrectable => 2,
            };
            prop_assert_eq!(class(fo), class(so), "line {}", line);
        }
    }

    #[test]
    fn gcm_seal_open_roundtrips(
        key in prop::array::uniform16(any::<u8>()),
        nonce in prop::array::uniform12(any::<u8>()),
        aad in prop::collection::vec(any::<u8>(), 0..40),
        plaintext in prop::collection::vec(any::<u8>(), 0..100),
    ) {
        use soteria_suite::soteria_crypto::gcm::AesGcm;
        let gcm = AesGcm::new(key);
        let (ct, tag) = gcm.seal(&nonce, &aad, &plaintext);
        prop_assert_eq!(ct.len(), plaintext.len());
        let back = gcm.open(&nonce, &aad, &ct, &tag);
        prop_assert_eq!(back, Some(plaintext.clone()));
        // Any tag flip must be rejected.
        let mut bad_tag = tag;
        bad_tag[0] ^= 1;
        prop_assert!(gcm.open(&nonce, &aad, &ct, &bad_tag).is_none());
    }

    #[test]
    fn morphable_counters_never_repeat(
        lines in prop::collection::vec(0usize..128, 1..400),
    ) {
        use soteria_suite::soteria::morphable::MorphableBlock;
        let mut block = MorphableBlock::new();
        let mut seen: Vec<std::collections::HashSet<u64>> =
            vec![std::collections::HashSet::new(); 128];
        for (slot, set) in seen.iter_mut().enumerate() {
            set.insert(block.counter(slot));
        }
        for &line in &lines {
            let c = block.bump(line).counter();
            prop_assert!(seen[line].insert(c), "counter {} reused for line {}", c, line);
        }
    }

    #[test]
    fn secded_corrects_any_single_bit(word in any::<u64>(), bit in 0usize..72) {
        let mut cw = SecDed72::encode(word);
        cw.flip_bit(bit);
        let (decoded, outcome) = cw.decode();
        prop_assert_eq!(decoded, word);
        prop_assert_eq!(outcome, CorrectionOutcome::Corrected { symbols: 1 });
    }

    #[test]
    fn counter_block_roundtrips(major in any::<u64>(),
                                minors in prop::collection::vec(0u8..128, 64)) {
        let mut block = CounterBlock::new();
        let mut raw = block.to_bytes();
        raw[..8].copy_from_slice(&major.to_le_bytes());
        block = CounterBlock::from_bytes(&raw);
        // Drive each minor to its target via bump (public API only).
        for (slot, &target) in minors.iter().enumerate() {
            for _ in 0..target {
                block.bump(slot);
            }
        }
        let restored = CounterBlock::from_bytes(&block.to_bytes());
        prop_assert_eq!(restored, block);
        for (slot, &target) in minors.iter().enumerate() {
            prop_assert_eq!(restored.minor(slot), target);
        }
    }

    #[test]
    fn toc_node_roundtrips(counters in prop::collection::vec(0u64..(1 << 56), 8),
                           mac in any::<u64>()) {
        let mut node = TocNode::new();
        for (i, &c) in counters.iter().enumerate() {
            node.set_counter(i, c);
        }
        node.set_mac(mac);
        prop_assert_eq!(TocNode::from_bytes(&node.to_bytes()), node);
    }

    #[test]
    fn shadow_entries_roundtrip(level in 1u8..=12,
                                index in 0u64..(1 << 48),
                                lsbs in prop::array::uniform8(any::<u16>()),
                                mac in any::<u64>()) {
        let record = ShadowRecord { meta: MetaId::new(level, index), lsbs, mac };
        for mode in [ShadowMode::Plain, ShadowMode::Duplicated] {
            let decoded = decode_entry(&encode_entry(&record, mode), mode);
            prop_assert!(decoded.contains(&record));
        }
    }

    #[test]
    fn layout_meta_addresses_classify_back(data_kilo_lines in 1u64..64,
                                           level_pick in any::<u64>(),
                                           index_pick in any::<u64>()) {
        let data_lines = data_kilo_lines * 1024;
        let layout = MemoryLayout::new(data_lines, 64, 2);
        let level = 1 + (level_pick % layout.levels() as u64) as u8;
        let index = index_pick % layout.level_count(level);
        let meta = MetaId::new(level, index);
        prop_assert_eq!(layout.classify(layout.meta_addr(meta)), Region::Meta(meta));
        for c in 1..=2u8 {
            prop_assert_eq!(
                layout.classify(layout.clone_addr(meta, c)),
                Region::Clone { meta, clone_no: c }
            );
        }
    }

    #[test]
    fn coverage_total_equals_data_per_level(data_kilo_lines in 1u64..32) {
        let data_lines = data_kilo_lines * 1024;
        let layout = MemoryLayout::new(data_lines, 64, 0);
        for level in 1..=layout.levels() {
            let total: u64 = (0..layout.level_count(level))
                .map(|i| layout.covered_data_lines(MetaId::new(level, i)))
                .sum();
            prop_assert_eq!(total, data_lines, "level {}", level);
        }
    }
}

proptest! {
    // The controller property runs fewer, heavier cases.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn controller_behaves_like_memory(ops in prop::collection::vec(
        (0u64..256, any::<u8>(), any::<bool>()), 1..200,
    )) {
        let config = SecureMemoryConfig::builder()
            .capacity_bytes(1 << 20)
            .metadata_cache(8 * 1024, 4)
            .cloning(CloningPolicy::Relaxed)
            .build()
            .unwrap();
        let mut memory = SecureMemoryController::new(config);
        let mut reference = std::collections::HashMap::new();
        for (line, fill, is_write) in ops {
            if is_write {
                let data = [fill; 64];
                memory.write(DataAddr::new(line), &data).unwrap();
                reference.insert(line, data);
            } else {
                let expected = reference.get(&line).copied().unwrap_or([0u8; 64]);
                prop_assert_eq!(memory.read(DataAddr::new(line)).unwrap(), expected);
            }
        }
        // Clean shutdown leaves the NVM image consistent with the model.
        memory.persist_all().unwrap();
        for (line, data) in &reference {
            prop_assert_eq!(memory.read(DataAddr::new(*line)).unwrap(), *data);
        }
    }

    #[test]
    fn crash_recovery_preserves_all_writes(ops in prop::collection::vec(
        (0u64..128, any::<u8>()), 1..80,
    )) {
        let config = SecureMemoryConfig::builder()
            .capacity_bytes(1 << 20)
            .metadata_cache(8 * 1024, 4)
            .cloning(CloningPolicy::None)
            .build()
            .unwrap();
        let mut memory = SecureMemoryController::new(config);
        let mut reference = std::collections::HashMap::new();
        for (line, fill) in ops {
            let data = [fill; 64];
            memory.write(DataAddr::new(line), &data).unwrap();
            reference.insert(line, data);
        }
        let (mut memory, report) = soteria_suite::soteria::recover(memory.crash());
        prop_assert!(report.is_complete());
        for (line, data) in &reference {
            prop_assert_eq!(memory.read(DataAddr::new(*line)).unwrap(), *data);
        }
    }
}

#[test]
fn line_addr_sanity() {
    // Anchor for the proptest file: plain unit check that the shared
    // newtypes interoperate.
    assert_eq!(LineAddr::from_byte_addr(128).index(), 2);
    assert_eq!(DataAddr::from_byte_addr(128).index(), 2);
}
