//! Property-based tests (on the in-tree `soteria_rt::prop` harness) over
//! the core data structures and invariants: codecs round-trip under
//! correctable faults, counters never repeat, the layout partitions the
//! address space, and the secure controller is a faithful memory under
//! arbitrary operation sequences.
//!
//! Failing cases are shrunk and their seeds recorded in
//! `tests/properties.regressions`; recorded entries replay before any
//! novel case on every run.

use soteria_suite::soteria::clone::CloningPolicy;
use soteria_suite::soteria::counter::CounterBlock;
use soteria_suite::soteria::layout::{MemoryLayout, MetaId, Region};
use soteria_suite::soteria::shadow::{decode_entry, encode_entry, ShadowMode, ShadowRecord};
use soteria_suite::soteria::toc::TocNode;
use soteria_suite::soteria::{DataAddr, SecureMemoryConfig, SecureMemoryController};
use soteria_suite::soteria_crypto::ctr::CounterModeCipher;
use soteria_suite::soteria_crypto::EncryptionKey;
use soteria_suite::soteria_ecc::chipkill::{ChipkillCodec, LineCodec};
use soteria_suite::soteria_ecc::gf256::Gf256;
use soteria_suite::soteria_ecc::hamming::SecDed72;
use soteria_suite::soteria_ecc::rs::ReedSolomon;
use soteria_suite::soteria_ecc::CorrectionOutcome;
use soteria_suite::soteria_nvm::LineAddr;

use soteria_suite::soteria_rt::json::Json;
use soteria_suite::soteria_rt::prop::{any, array, btree_set, check, vec, Config, Strategy};
use soteria_suite::soteria_rt::rng::StdRng;
use soteria_suite::soteria_rt::{prop_assert, prop_assert_eq};

/// Shared config: `cases` novel cases plus replay of the corpus.
fn cfg(cases: u32) -> Config {
    Config::with_cases(cases)
        .regressions(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/properties.regressions"))
}

#[test]
fn aes_ctr_roundtrips() {
    check(
        "aes_ctr_roundtrips",
        &cfg(64),
        &(
            array::<_, 16>(any::<u8>()),
            array::<_, 32>(any::<u8>()),
            any::<u64>(),
            any::<u64>(),
        ),
        |&(key, line, addr, counter)| {
            let cipher = CounterModeCipher::new(EncryptionKey::from_bytes(key));
            let mut full = [0u8; 64];
            full[..32].copy_from_slice(&line);
            full[32..].copy_from_slice(&line);
            let ct = cipher.encrypt_line(&full, addr, counter);
            prop_assert_eq!(cipher.decrypt_line(&ct, addr, counter), full);
            Ok(())
        },
    );
}

#[test]
fn rs_corrects_any_t_errors() {
    check(
        "rs_corrects_any_t_errors",
        &cfg(64),
        &(
            vec(any::<u8>(), 16usize),
            btree_set(0usize..20, 1..=2usize),
            vec(1u8..=255, 2usize),
        ),
        |(data, positions, magnitudes)| {
            let rs = ReedSolomon::new(20, 16).unwrap();
            let cw = rs.encode(data).unwrap();
            let mut bad = cw.clone();
            for (i, &pos) in positions.iter().enumerate() {
                bad[pos] ^= magnitudes[i % magnitudes.len()];
            }
            let (decoded, outcome) = rs.decode(&bad).unwrap();
            prop_assert_eq!(&decoded, data);
            let corrected = matches!(outcome, CorrectionOutcome::Corrected { .. });
            prop_assert!(corrected);
            Ok(())
        },
    );
}

#[test]
fn chipkill_survives_one_chip_any_pattern() {
    check(
        "chipkill_survives_one_chip_any_pattern",
        &cfg(64),
        &(array::<_, 32>(any::<u8>()), 0usize..18, 1u8..=255),
        |&(line, chip, pattern)| {
            let codec = ChipkillCodec::table4();
            let mut full = [0u8; 64];
            full[..32].copy_from_slice(&line);
            full[32..].copy_from_slice(&line);
            let mut stored = codec.encode_line(&full);
            for (i, b) in stored.iter_mut().enumerate() {
                if i % 18 == chip {
                    *b ^= pattern;
                }
            }
            let (decoded, outcome) = codec.decode_line(&stored);
            prop_assert_eq!(decoded, full);
            prop_assert!(outcome.is_usable());
            Ok(())
        },
    );
}

#[test]
fn rs_erasures_recover_any_two_marked_positions() {
    check(
        "rs_erasures_recover_any_two_marked_positions",
        &cfg(64),
        &(
            vec(any::<u8>(), 16usize),
            btree_set(0usize..18, 1..=2usize),
            vec(any::<u8>(), 2usize),
        ),
        |(data, positions, magnitudes)| {
            // RS(18,16): e <= 2t = 2 known erasures always recover, for any
            // corruption pattern (including "no corruption at all").
            let rs = ReedSolomon::new(18, 16).unwrap();
            let cw = rs.encode(data).unwrap();
            let mut bad = cw.clone();
            let marked: Vec<usize> = positions.iter().copied().collect();
            for (i, &pos) in marked.iter().enumerate() {
                bad[pos] ^= magnitudes[i % magnitudes.len()];
            }
            let (decoded, outcome) = rs.decode_with_erasures(&bad, &marked).unwrap();
            prop_assert_eq!(&decoded, data);
            prop_assert!(outcome.is_usable());
            Ok(())
        },
    );
}

#[test]
fn devices_agree_on_random_fault_sets() {
    check(
        "devices_agree_on_random_fault_sets",
        &cfg(64),
        &(
            btree_set(0u32..18, 0..4usize),
            0u32..4,
            0u32..8,
            vec(0u64..256, 8usize),
        ),
        |(chips, bank, row, probe_lines)| {
            // Functional (real RS decode) and symbolic (chip-count rule)
            // devices must classify every probed line identically under any
            // combination of single-chip row faults.
            use soteria_suite::soteria_nvm::device::NvmDimm;
            use soteria_suite::soteria_nvm::fault::{FaultFootprint, FaultKind, FaultRecord};
            use soteria_suite::soteria_nvm::geometry::DimmGeometry;
            let (bank, row) = (*bank, *row);
            let g = DimmGeometry::tiny();
            let mut functional = NvmDimm::chipkill(g);
            let mut symbolic = NvmDimm::symbolic(g, 1);
            for d in [&mut functional, &mut symbolic] {
                for line in 0..g.total_lines() {
                    d.write_line(LineAddr::new(line), &[line as u8; 64]);
                }
                for &chip in chips {
                    d.inject_fault(FaultRecord::on_chip(
                        &g,
                        chip,
                        FaultFootprint::SingleRow { bank, row },
                        FaultKind::Permanent,
                    ));
                }
            }
            for &line in probe_lines {
                let fo = functional.read_line(LineAddr::new(line)).1;
                let so = symbolic.read_line(LineAddr::new(line)).1;
                let class = |o: soteria_suite::soteria_ecc::CorrectionOutcome| match o {
                    soteria_suite::soteria_ecc::CorrectionOutcome::Clean => 0,
                    soteria_suite::soteria_ecc::CorrectionOutcome::Corrected { .. } => 1,
                    soteria_suite::soteria_ecc::CorrectionOutcome::Uncorrectable => 2,
                };
                prop_assert_eq!(class(fo), class(so), "line {}", line);
            }
            Ok(())
        },
    );
}

#[test]
fn gcm_seal_open_roundtrips() {
    check(
        "gcm_seal_open_roundtrips",
        &cfg(64),
        &(
            array::<_, 16>(any::<u8>()),
            array::<_, 12>(any::<u8>()),
            vec(any::<u8>(), 0..40usize),
            vec(any::<u8>(), 0..100usize),
        ),
        |(key, nonce, aad, plaintext)| {
            use soteria_suite::soteria_crypto::gcm::AesGcm;
            let gcm = AesGcm::new(*key);
            let (ct, tag) = gcm.seal(nonce, aad, plaintext);
            prop_assert_eq!(ct.len(), plaintext.len());
            let back = gcm.open(nonce, aad, &ct, &tag);
            prop_assert_eq!(back, Some(plaintext.clone()));
            // Any tag flip must be rejected.
            let mut bad_tag = tag;
            bad_tag[0] ^= 1;
            prop_assert!(gcm.open(nonce, aad, &ct, &bad_tag).is_none());
            Ok(())
        },
    );
}

#[test]
fn sha256_dispatch_matches_portable() {
    // The SHA-NI fast path must be bit-identical to the portable
    // compression across arbitrary content and every length class
    // (empty, sub-block, block-straddling, multi-block) — the same
    // guard the PR 2 AES dispatch carries.
    check(
        "sha256_dispatch_matches_portable",
        &cfg(64),
        &vec(any::<u8>(), 0..200usize),
        |data| {
            use soteria_suite::soteria_crypto::sha256::Sha256;
            prop_assert_eq!(Sha256::digest(data), Sha256::digest_portable(data));
            Ok(())
        },
    );
}

#[test]
fn ghash_clmul_matches_table_reference() {
    // The PCLMUL GHASH multiply (and the aggregated 4-block path inside
    // `seal`) must agree with the shifted-table reference built from
    // `mul_alpha`, for arbitrary keys and field elements.
    check(
        "ghash_clmul_matches_table_reference",
        &cfg(64),
        &(
            array::<_, 16>(any::<u8>()),
            (any::<u64>(), any::<u64>()),
            array::<_, 12>(any::<u8>()),
            vec(any::<u8>(), 0..100usize),
        ),
        |(key, (hi, lo), nonce, plaintext)| {
            use soteria_suite::soteria_crypto::gcm::AesGcm;
            let x = (u128::from(*hi) << 64) | u128::from(*lo);
            let gcm = AesGcm::new(*key);
            let sw = AesGcm::new(*key).force_software();
            prop_assert_eq!(gcm.mul_h(x), gcm.mul_h_table(x));
            prop_assert_eq!(sw.mul_h(x), gcm.mul_h_table(x));
            prop_assert_eq!(
                gcm.seal(nonce, b"aad", plaintext),
                sw.seal(nonce, b"aad", plaintext)
            );
            Ok(())
        },
    );
}

#[test]
fn morphable_counters_never_repeat() {
    check(
        "morphable_counters_never_repeat",
        &cfg(64),
        &vec(0usize..128, 1..400usize),
        |lines| {
            use soteria_suite::soteria::morphable::MorphableBlock;
            let mut block = MorphableBlock::new();
            let mut seen: Vec<std::collections::HashSet<u64>> =
                vec![std::collections::HashSet::new(); 128];
            for (slot, set) in seen.iter_mut().enumerate() {
                set.insert(block.counter(slot));
            }
            for &line in lines {
                let c = block.bump(line).counter();
                prop_assert!(seen[line].insert(c), "counter {} reused for line {}", c, line);
            }
            Ok(())
        },
    );
}

#[test]
fn secded_corrects_any_single_bit() {
    check(
        "secded_corrects_any_single_bit",
        &cfg(64),
        &(any::<u64>(), 0usize..72),
        |&(word, bit)| {
            let mut cw = SecDed72::encode(word);
            cw.flip_bit(bit);
            let (decoded, outcome) = cw.decode();
            prop_assert_eq!(decoded, word);
            prop_assert_eq!(outcome, CorrectionOutcome::Corrected { symbols: 1 });
            Ok(())
        },
    );
}

/// The counter-block roundtrip property, shared by the generated cases,
/// the corpus replays, and the ported legacy regression below.
fn counter_block_roundtrip_case(major: u64, minors: &[u8]) -> Result<(), String> {
    let mut block = CounterBlock::new();
    let mut raw = block.to_bytes();
    raw[..8].copy_from_slice(&major.to_le_bytes());
    block = CounterBlock::from_bytes(&raw);
    // Drive each minor to its target via bump (public API only).
    for (slot, &target) in minors.iter().enumerate() {
        for _ in 0..target {
            block.bump(slot);
        }
    }
    let restored = CounterBlock::from_bytes(&block.to_bytes());
    prop_assert_eq!(&restored, &block);
    for (slot, &target) in minors.iter().enumerate() {
        prop_assert_eq!(restored.minor(slot), target);
    }
    Ok(())
}

#[test]
fn counter_block_roundtrips() {
    check(
        "counter_block_roundtrips",
        &cfg(64),
        &(any::<u64>(), vec(0u8..128, 64usize)),
        |(major, minors)| counter_block_roundtrip_case(*major, minors),
    );
}

#[test]
fn counter_block_legacy_proptest_regression() {
    // Ported verbatim from the retired proptest corpus
    // (`cc cf4e1910…` in the old tests/properties.proptest-regressions):
    // a major counter with only bit 57 set plus a sparse minor pattern
    // once broke the from_bytes/to_bytes roundtrip. The old entry encoded
    // a proptest-internal RNG state that no longer replays, so the shrunk
    // value itself is pinned here.
    let major = 144115188075855872u64; // 1 << 57
    let mut minors = [0u8; 64];
    let tail: [u8; 33] = [
        48, 43, 21, 98, 63, 17, 126, 113, 48, 31, 112, 108, 29, 23, 34, 46, 39, 41, 19, 123,
        61, 105, 9, 61, 47, 94, 94, 80, 90, 2, 102, 31, 4,
    ];
    minors[31..].copy_from_slice(&tail);
    counter_block_roundtrip_case(major, &minors).expect("legacy regression case must pass");
}

#[test]
fn toc_node_roundtrips() {
    check(
        "toc_node_roundtrips",
        &cfg(64),
        &(vec(0u64..(1 << 56), 8usize), any::<u64>()),
        |(counters, mac)| {
            let mut node = TocNode::new();
            for (i, &c) in counters.iter().enumerate() {
                node.set_counter(i, c);
            }
            node.set_mac(*mac);
            prop_assert_eq!(TocNode::from_bytes(&node.to_bytes()), node);
            Ok(())
        },
    );
}

#[test]
fn shadow_entries_roundtrip() {
    check(
        "shadow_entries_roundtrip",
        &cfg(64),
        &(
            1u8..=12,
            0u64..(1 << 48),
            array::<_, 8>(any::<u16>()),
            any::<u64>(),
        ),
        |&(level, index, lsbs, mac)| {
            let record = ShadowRecord {
                meta: MetaId::new(level, index),
                lsbs,
                mac,
            };
            for mode in [ShadowMode::Plain, ShadowMode::Duplicated] {
                let decoded = decode_entry(&encode_entry(&record, mode), mode);
                prop_assert!(decoded.contains(&record));
            }
            Ok(())
        },
    );
}

#[test]
fn layout_meta_addresses_classify_back() {
    check(
        "layout_meta_addresses_classify_back",
        &cfg(64),
        &(1u64..64, any::<u64>(), any::<u64>()),
        |&(data_kilo_lines, level_pick, index_pick)| {
            let data_lines = data_kilo_lines * 1024;
            let layout = MemoryLayout::new(data_lines, 64, 2);
            let level = 1 + (level_pick % layout.levels() as u64) as u8;
            let index = index_pick % layout.level_count(level);
            let meta = MetaId::new(level, index);
            prop_assert_eq!(layout.classify(layout.meta_addr(meta)), Region::Meta(meta));
            for c in 1..=2u8 {
                prop_assert_eq!(
                    layout.classify(layout.clone_addr(meta, c)),
                    Region::Clone { meta, clone_no: c }
                );
            }
            Ok(())
        },
    );
}

#[test]
fn coverage_total_equals_data_per_level() {
    check(
        "coverage_total_equals_data_per_level",
        &cfg(64),
        &(1u64..32),
        |&data_kilo_lines| {
            let data_lines = data_kilo_lines * 1024;
            let layout = MemoryLayout::new(data_lines, 64, 0);
            for level in 1..=layout.levels() {
                let total: u64 = (0..layout.level_count(level))
                    .map(|i| layout.covered_data_lines(MetaId::new(level, i)))
                    .sum();
                prop_assert_eq!(total, data_lines, "level {}", level);
            }
            Ok(())
        },
    );
}

// The controller properties run fewer, heavier cases.

#[test]
fn controller_behaves_like_memory() {
    check(
        "controller_behaves_like_memory",
        &cfg(12),
        &vec((0u64..256, any::<u8>(), any::<bool>()), 1..200usize),
        |ops| {
            let config = SecureMemoryConfig::builder()
                .capacity_bytes(1 << 20)
                .metadata_cache(8 * 1024, 4)
                .cloning(CloningPolicy::Relaxed)
                .build()
                .unwrap();
            let mut memory = SecureMemoryController::new(config);
            let mut reference = std::collections::HashMap::new();
            for &(line, fill, is_write) in ops {
                if is_write {
                    let data = [fill; 64];
                    memory.write(DataAddr::new(line), &data).unwrap();
                    reference.insert(line, data);
                } else {
                    let expected = reference.get(&line).copied().unwrap_or([0u8; 64]);
                    prop_assert_eq!(memory.read(DataAddr::new(line)).unwrap(), expected);
                }
            }
            // Clean shutdown leaves the NVM image consistent with the model.
            memory.persist_all().unwrap();
            for (line, data) in &reference {
                prop_assert_eq!(memory.read(DataAddr::new(*line)).unwrap(), *data);
            }
            Ok(())
        },
    );
}

#[test]
fn crash_recovery_preserves_all_writes() {
    check(
        "crash_recovery_preserves_all_writes",
        &cfg(12),
        &vec((0u64..128, any::<u8>()), 1..80usize),
        |ops| {
            let config = SecureMemoryConfig::builder()
                .capacity_bytes(1 << 20)
                .metadata_cache(8 * 1024, 4)
                .cloning(CloningPolicy::None)
                .build()
                .unwrap();
            let mut memory = SecureMemoryController::new(config);
            let mut reference = std::collections::HashMap::new();
            for &(line, fill) in ops {
                let data = [fill; 64];
                memory.write(DataAddr::new(line), &data).unwrap();
                reference.insert(line, data);
            }
            let (mut memory, report) = soteria_suite::soteria::recover(memory.crash());
            prop_assert!(report.is_complete());
            for (line, data) in &reference {
                prop_assert_eq!(memory.read(DataAddr::new(*line)).unwrap(), *data);
            }
            Ok(())
        },
    );
}

#[test]
fn gf256_table_mul_div_match_bitwise_reference() {
    // The production Gf256 multiply/divide are fused exp/log table
    // lookups; check them against a branch-per-bit carryless multiply in
    // the same field (x^8 + x^4 + x^3 + x^2 + 1).
    fn slow_mul(mut a: u16, mut b: u16) -> u8 {
        let mut p: u16 = 0;
        while b != 0 {
            if b & 1 != 0 {
                p ^= a;
            }
            a <<= 1;
            if a & 0x100 != 0 {
                a ^= 0x11d;
            }
            b >>= 1;
        }
        p as u8
    }
    check(
        "gf256_table_mul_div_match_bitwise_reference",
        &cfg(512),
        &(any::<u8>(), any::<u8>()),
        |&(a, b)| {
            let prod = Gf256::new(a) * Gf256::new(b);
            prop_assert_eq!(prod.value(), slow_mul(a as u16, b as u16));
            if b != 0 {
                // Division is the exact inverse of the table multiply.
                prop_assert_eq!(prod / Gf256::new(b), Gf256::new(a));
                let q = Gf256::new(a) / Gf256::new(b);
                prop_assert_eq!(q.value(), slow_mul(
                    a as u16,
                    Gf256::new(b).inverse().value() as u16
                ));
            }
            Ok(())
        },
    );
}

#[test]
fn start_gap_full_rotation_is_a_full_permutation() {
    // Start-gap wear leveling (Qureshi et al., MICRO 2009): over one full
    // rotation period — `lines * (lines + 1)` gap movements — every
    // logical line's data must visit every physical slot (including the
    // spare) exactly once and return to where it started. This is the
    // whole point of the scheme: a hot logical line spreads its writes
    // uniformly over all physical lines.
    use soteria_suite::soteria_nvm::wear::StartGapLeveler;
    check(
        "start_gap_full_rotation_is_a_full_permutation",
        &cfg(24),
        &(2u64..=16, 1u64..=3),
        |&(lines, interval)| {
            let mut lv = StartGapLeveler::new(lines, interval);
            // positions[l]: the sequence of distinct physical slots line
            // l's data occupies, starting from the identity mapping.
            let mut positions: Vec<Vec<u64>> =
                (0..lines).map(|l| vec![lv.translate(l)]).collect();
            let rotation_moves = lines * (lines + 1);
            while lv.total_moves() < rotation_moves {
                if lv.record_write().is_some() {
                    for (l, visited) in positions.iter_mut().enumerate() {
                        let p = lv.translate(l as u64);
                        if *visited.last().unwrap() != p {
                            visited.push(p);
                        }
                    }
                }
            }
            for (l, visited) in positions.iter().enumerate() {
                // Back to the identity mapping ...
                prop_assert_eq!(
                    *visited.last().unwrap(),
                    l as u64,
                    "line {} did not return home after a full rotation",
                    l
                );
                // ... having entered each of the `lines + 1` physical
                // slots exactly once (the home slot is re-entered at the
                // end, closing the cycle).
                prop_assert_eq!(
                    visited.len() as u64,
                    lines + 2,
                    "line {} made {} slot visits, want {}",
                    l,
                    visited.len(),
                    lines + 2
                );
                let distinct: std::collections::BTreeSet<u64> =
                    visited.iter().copied().collect();
                prop_assert_eq!(
                    distinct,
                    (0..=lines).collect::<std::collections::BTreeSet<u64>>(),
                    "line {} missed a physical slot",
                    l
                );
            }
            Ok(())
        },
    );
}

/// Fuzz-style generator for arbitrary JSON documents: depth-bounded
/// nesting, finite numbers drawn from the full `f64` bit space, and
/// strings biased toward everything the escaper must handle (quotes,
/// backslashes, control bytes, astral-plane scalars).
struct JsonStrategy {
    depth: u32,
}

impl JsonStrategy {
    /// Characters the writer must escape or pass through verbatim.
    const CHAR_POOL: &'static [char] = &[
        'a', 'Z', '0', ' ', '/', '"', '\\', '\n', '\r', '\t', '\u{08}', '\u{0c}', '\u{00}',
        '\u{1f}', 'é', 'λ', '漢', '\u{2028}', '😀', '\u{10fffd}',
    ];

    fn gen_string(rng: &mut StdRng) -> String {
        let len = rng.bounded_u64(8) as usize;
        (0..len)
            .map(|_| {
                if rng.bounded_u64(4) == 0 {
                    // Any scalar value (from_u32 rejects surrogates).
                    char::from_u32(rng.bounded_u64(0x110000) as u32).unwrap_or('\u{fffd}')
                } else {
                    Self::CHAR_POOL[rng.bounded_u64(Self::CHAR_POOL.len() as u64) as usize]
                }
            })
            .collect()
    }

    fn gen_number(rng: &mut StdRng) -> f64 {
        match rng.bounded_u64(4) {
            0 => rng.bounded_u64(2_001) as f64 - 1_000.0,
            1 => (rng.next_u64() >> 11) as f64, // 53-bit integers
            2 => rng.uniform_f64() * 2e15 - 1e15,
            _ => {
                // Arbitrary bit patterns; JSON has no Inf/NaN, so keep
                // resampling the exponent until the value is finite.
                let mut v = f64::from_bits(rng.next_u64());
                while !v.is_finite() {
                    v = f64::from_bits(rng.next_u64());
                }
                v
            }
        }
    }

    fn gen_value(&self, rng: &mut StdRng, depth: u32) -> Json {
        let kinds = if depth == 0 { 4 } else { 6 };
        match rng.bounded_u64(kinds) {
            0 => Json::Null,
            1 => Json::Bool(rng.bounded_u64(2) == 1),
            2 => Json::Num(Self::gen_number(rng)),
            3 => Json::Str(Self::gen_string(rng)),
            4 => {
                let len = rng.bounded_u64(4) as usize;
                Json::Arr((0..len).map(|_| self.gen_value(rng, depth - 1)).collect())
            }
            _ => {
                let len = rng.bounded_u64(4) as usize;
                Json::Obj(
                    (0..len)
                        .map(|_| (Self::gen_string(rng), self.gen_value(rng, depth - 1)))
                        .collect(),
                )
            }
        }
    }
}

impl Strategy for JsonStrategy {
    type Value = Json;

    fn generate(&self, rng: &mut StdRng) -> Json {
        self.gen_value(rng, self.depth)
    }

    fn shrink(&self, value: &Json) -> Vec<Json> {
        let mut out = Vec::new();
        if *value != Json::Null {
            out.push(Json::Null);
        }
        match value {
            Json::Bool(true) => out.push(Json::Bool(false)),
            Json::Num(n) if *n != 0.0 => {
                out.push(Json::Num(0.0));
                if n.trunc() != *n {
                    out.push(Json::Num(n.trunc()));
                }
            }
            Json::Str(s) if !s.is_empty() => {
                out.push(Json::Str(String::new()));
                // Drop one character at a time, from the end.
                let shorter: String = s.chars().take(s.chars().count() - 1).collect();
                out.push(Json::Str(shorter));
            }
            Json::Arr(items) if !items.is_empty() => {
                out.push(Json::Arr(Vec::new()));
                for i in 0..items.len() {
                    let mut fewer = items.clone();
                    fewer.remove(i);
                    out.push(Json::Arr(fewer));
                }
                for (i, item) in items.iter().enumerate() {
                    for candidate in self.shrink(item) {
                        let mut next = items.clone();
                        next[i] = candidate;
                        out.push(Json::Arr(next));
                    }
                }
            }
            Json::Obj(entries) if !entries.is_empty() => {
                out.push(Json::Obj(Vec::new()));
                for i in 0..entries.len() {
                    let mut fewer = entries.clone();
                    fewer.remove(i);
                    out.push(Json::Obj(fewer));
                }
                for (i, (key, item)) in entries.iter().enumerate() {
                    if !key.is_empty() {
                        let mut next = entries.clone();
                        next[i].0 = String::new();
                        out.push(Json::Obj(next));
                    }
                    for candidate in self.shrink(item) {
                        let mut next = entries.clone();
                        next[i].1 = candidate;
                        out.push(Json::Obj(next));
                    }
                }
            }
            _ => {}
        }
        out
    }
}

#[test]
fn json_documents_roundtrip_through_both_serializers() {
    // rt::json is the interchange format for every committed artifact
    // (campaign reports, baselines, service bodies): any document the
    // writer emits must reparse to the identical value via both the
    // compact and pretty forms, and rewriting the reparse must be
    // byte-stable.
    check(
        "json_documents_roundtrip_through_both_serializers",
        &cfg(256),
        &JsonStrategy { depth: 3 },
        |doc| {
            let compact = doc.to_string();
            let back = Json::parse(&compact)
                .map_err(|e| format!("compact form failed to reparse: {e}\n{compact}"))?;
            prop_assert_eq!(&back, doc);
            let pretty = doc.to_pretty_string();
            let back = Json::parse(&pretty)
                .map_err(|e| format!("pretty form failed to reparse: {e}\n{pretty}"))?;
            prop_assert_eq!(&back, doc);
            prop_assert_eq!(back.to_pretty_string(), pretty);
            Ok(())
        },
    );
}

#[test]
fn crashck_scripts_observe_a_prefix_of_committed_transactions() {
    // End-to-end crash-consistency property on the rt::crashck oracle:
    // for a random script seed and matrix cell, *every* WPQ-event crash
    // point must recover to a prefix of committed transactions — never a
    // torn transaction. The pinned corpus entries replay the script
    // shapes that exposed torn-write hazards while the atomic-commit
    // path was built (multi-write transactions sharing a data-MAC line,
    // repeated bumps of one counter slot, crashes between a commit group
    // and its eager tree propagation).
    use soteria_suite::soteria_faultsim::crashck::sweep_cell;
    const CELLS: [(&str, &str); 3] = [
        ("lazy", "anubis"),
        ("eager", "anubis"),
        ("lazy", "osiris"),
    ];
    check(
        "crashck_scripts_observe_a_prefix_of_committed_transactions",
        &cfg(3),
        &(any::<u64>(), any::<u8>()),
        |&(seed, cell_pick)| {
            let (tree, recovery) = CELLS[cell_pick as usize % CELLS.len()];
            let (points, divergence) =
                sweep_cell(tree, &CloningPolicy::Relaxed, recovery, seed, 3, 2);
            prop_assert!(points > 1, "sweep enumerated no crash points");
            match divergence {
                None => Ok(()),
                Some(d) => Err(format!(
                    "cell {} point {}: {}\nscript: {}\nlast events:\n{}",
                    d.cell, d.point, d.reason, d.script, d.trace_tail
                )),
            }
        },
    );
}

#[test]
fn every_scheme_recovers_exactly_the_committed_prefix() {
    // The Strict oracle invariant, swept across the whole protection
    // scheme registry on identical workloads: after a random run of
    // atomic transactions and a power cut, each scheme's own recovery
    // hook must restore *exactly* the committed lines — every
    // acknowledged write readable with its last committed value, and
    // never a phantom line recovered that was not committed (no
    // over-recovery). One seed drives all schemes, so a divergence pins
    // both the workload shape and the scheme that mishandled it.
    use soteria_suite::soteria::standard_schemes;
    check(
        "every_scheme_recovers_exactly_the_committed_prefix",
        &cfg(4),
        &any::<u64>(),
        |&seed| {
            for scheme in standard_schemes() {
                let config = scheme
                    .build_config(1 << 18, 8 * 1024, 4, 16)
                    .map_err(|e| format!("{}: {e}", scheme.name()))?;
                let mut memory = SecureMemoryController::new(config);
                let mut rng = StdRng::seed_from_u64(seed);
                let txns = 1 + rng.bounded_u64(6);
                let crash_after = rng.bounded_u64(txns + 1);
                // Hot set of 64 lines so transactions collide on counter
                // blocks and data-MAC lines; model = last committed fill.
                let mut model = std::collections::BTreeMap::new();
                for _ in 0..crash_after {
                    let mut tx = memory.transaction();
                    let mut staged = Vec::new();
                    for _ in 0..1 + rng.bounded_u64(3) {
                        let line = rng.bounded_u64(64);
                        let fill = (rng.next_u64() & 0xfe) as u8 + 1; // never 0
                        tx.write(DataAddr::new(line), &[fill; 64]);
                        staged.push((line, fill));
                    }
                    let receipt = tx
                        .commit()
                        .map_err(|e| format!("{}: commit failed: {e}", scheme.name()))?;
                    prop_assert!(receipt.accepted, "fault-free commit must be accepted");
                    model.extend(staged);
                }
                let (mut memory, report) = scheme.recover(memory.crash());
                prop_assert_eq!(
                    report.unverifiable_lines(),
                    0u64,
                    "{}: fault-free crash recovery left unverifiable lines",
                    scheme.name()
                );
                let mut recovered = 0u64;
                for line in 0..80u64 {
                    let got = memory
                        .read(DataAddr::new(line))
                        .map_err(|e| format!("{}: post-recovery read {line}: {e}", scheme.name()))?;
                    match model.get(&line) {
                        Some(&fill) => {
                            prop_assert_eq!(
                                got,
                                [fill; 64],
                                "{}: committed line {} lost or altered",
                                scheme.name(),
                                line
                            );
                            recovered += 1;
                        }
                        None => prop_assert_eq!(
                            got,
                            [0u8; 64],
                            "{}: line {} was never committed but recovered non-zero",
                            scheme.name(),
                            line
                        ),
                    }
                }
                prop_assert!(
                    recovered <= model.len() as u64,
                    "{}: more lines recovered than committed",
                    scheme.name()
                );
            }
            Ok(())
        },
    );
}

#[test]
fn line_addr_sanity() {
    // Anchor for the property file: plain unit check that the shared
    // newtypes interoperate.
    assert_eq!(LineAddr::from_byte_addr(128).index(), 2);
    assert_eq!(DataAddr::from_byte_addr(128).index(), 2);
}

/// Drives one randomized fleet schedule over a small campaign and
/// returns `(merged, single_node, died, stole)`: random worker count,
/// random lease sizes, workers holding leases across steps so steals
/// genuinely hedge a slow peer, random deaths both while idle and while
/// holding a lease (their blocks re-pend), and every partial carried
/// through the pretty-printed JSON wire exactly as the coordinator
/// receives it.
type Artifacts = (String, String);

fn simulate_fleet_schedule(draw: u64) -> Result<(Artifacts, Artifacts, bool, bool), String> {
    use soteria_suite::soteria_faultsim::{
        merge_partials, run_block_range, run_spec, total_blocks, CampaignConfig, JobSpec,
    };
    use soteria_suite::soteria_svc::BlockScheduler;
    let mut rng = StdRng::seed_from_u64(draw);
    let blocks = 2 + rng.bounded_u64(4);
    let mut config = CampaignConfig::table4(1500.0);
    config.iterations = blocks * 64;
    config.capacity_bytes = 64 << 20;
    config.threads = 1;
    config.trace = true;
    config.seed = rng.next_u64();
    let spec = JobSpec::Campaign(config);
    let total = total_blocks(&spec);
    let expected = run_spec(&spec);

    let workers = 2 + rng.bounded_u64(3) as usize;
    let mut sched = BlockScheduler::new(total);
    let mut alive = vec![true; workers];
    let mut held: Vec<Option<(u64, u64)>> = vec![None; workers];
    let mut partials = Vec::new();
    let (mut died, mut stole) = (false, false);
    let mut guard = 0u32;
    while !sched.is_complete() {
        guard += 1;
        if guard > 10_000 {
            return Err("fleet schedule failed to converge".into());
        }
        let w = rng.bounded_u64(workers as u64) as usize;
        if !alive[w] {
            continue;
        }
        let survivors = alive.iter().filter(|&&a| a).count();
        let roll = rng.bounded_u64(100);
        match held[w] {
            Some((lo, hi)) => {
                if roll < 15 && survivors > 1 {
                    // Dies holding the lease: its blocks re-pend unless
                    // a thief's duplicate still covers them.
                    alive[w] = false;
                    held[w] = None;
                    sched.fail_worker(w);
                    died = true;
                } else {
                    let doc = run_block_range(&spec, lo, hi);
                    let partial = Json::parse(&doc.to_pretty_string())
                        .map_err(|e| format!("wire parse: {e}"))?;
                    partials.push(partial);
                    sched.complete(w, lo, hi);
                    held[w] = None;
                }
            }
            None => {
                if roll < 8 && survivors > 1 {
                    alive[w] = false;
                    sched.fail_worker(w);
                    died = true;
                    continue;
                }
                let chunk = 1 + rng.bounded_u64(3);
                held[w] = sched.lease(w, chunk).or_else(|| {
                    let stolen = sched.steal(w);
                    stole |= stolen.is_some();
                    stolen
                });
            }
        }
    }
    let merged = merge_partials(&spec, &partials)?;
    Ok((merged, expected, died, stole))
}

#[test]
fn any_fleet_schedule_merges_to_single_node_bytes() {
    // The fleet determinism contract: however a campaign's accumulation
    // blocks are split over however many workers — including workers
    // dying mid-run and slow leases being duplicated by steals — the
    // coordinator's merge must reproduce the single-node artifact pair
    // byte-for-byte. The pinned corpus entries replay schedules that
    // exercise both failure paths (a death re-pending blocks and a
    // steal duplicating a lease) before any novel case.
    check(
        "any_fleet_schedule_merges_to_single_node_bytes",
        &cfg(4),
        &any::<u64>(),
        |&draw| {
            let (merged, expected, _died, _stole) = simulate_fleet_schedule(draw)?;
            prop_assert_eq!(
                &merged.0,
                &expected.0,
                "merged result JSON diverged from the single-node run"
            );
            prop_assert_eq!(
                &merged.1,
                &expected.1,
                "merged NDJSON trace diverged from the single-node run"
            );
            Ok(())
        },
    );
}

