//! Paper-figure regression tests: pin the *shape* of the headline
//! results so a silent breakage of the cloning machinery fails
//! `cargo test -q` instead of quietly flattening a figure.
//!
//! The key qualitative claim (§5, Figs. 11/12): under the Table 4 fault
//! model, metadata cloning strictly reduces the Unverifiable Data Ratio —
//! the baseline loses verifiability where Selective Relaxed Cloning (SRC)
//! and Selective Aggressive Cloning (SAC) do not, while the directly
//! lost fraction `L_error` is identical for all three (cloning protects
//! metadata, it cannot resurrect data the ECC already lost).

use soteria_suite::soteria::clone::CloningPolicy;
use soteria_suite::soteria_faultsim::{run_campaign, CampaignConfig};

/// A small fixed-seed campaign: high FIT so a few hundred iterations are
/// enough to defeat Chipkill a handful of times, small capacity so each
/// iteration is cheap. Single-threaded results are identical to any
/// thread count, so the pinned numbers are stable everywhere.
fn figure_campaign() -> Vec<soteria_suite::soteria_faultsim::PolicyResult> {
    let mut config = CampaignConfig::table4(1500.0);
    config.iterations = 256;
    config.capacity_bytes = 64 << 20;
    config.seed = 0x5072_1a5e;
    run_campaign(
        &config,
        &[
            CloningPolicy::None,
            CloningPolicy::Relaxed,
            CloningPolicy::Aggressive,
        ],
    )
}

#[test]
fn udr_ordering_matches_fig11() {
    let results = figure_campaign();
    let (baseline, src, sac) = (&results[0], &results[1], &results[2]);

    // Cloning monotonically reduces unverifiable data ...
    assert!(
        baseline.mean_udr >= src.mean_udr,
        "baseline UDR {:.3e} < SRC UDR {:.3e}",
        baseline.mean_udr,
        src.mean_udr
    );
    assert!(
        src.mean_udr >= sac.mean_udr,
        "SRC UDR {:.3e} < SAC UDR {:.3e}",
        src.mean_udr,
        sac.mean_udr
    );
    // ... and strictly: at this FIT the baseline must lose verifiability
    // somewhere that aggressive cloning does not. If cloning silently
    // stops working, baseline == sac == 0 or baseline == sac > 0 — both
    // fail here.
    assert!(
        baseline.mean_udr > sac.mean_udr,
        "cloning made no difference (baseline {:.3e}, SAC {:.3e}) — \
         the cloning machinery is likely broken",
        baseline.mean_udr,
        sac.mean_udr
    );
    assert!(
        baseline.iterations_with_udr > 0,
        "campaign too quiet to exercise UDR at all"
    );
}

#[test]
fn error_ratio_is_policy_independent() {
    let results = figure_campaign();
    // L_error is what the ECC already lost — cloning cannot change it.
    let e0 = results[0].mean_error_ratio;
    for r in &results[1..] {
        assert!(
            (r.mean_error_ratio - e0).abs() < 1e-12,
            "{}: L_error {:.6e} != baseline {:.6e}",
            r.policy.name(),
            r.mean_error_ratio,
            e0
        );
    }
    // And every policy sees the same fault streams.
    for r in &results {
        assert_eq!(r.iterations_with_faults, results[0].iterations_with_faults);
        assert_eq!(r.iterations_with_ue, results[0].iterations_with_ue);
    }
}
