//! Paper-figure regression tests: pin the *shape* of the headline
//! results so a silent breakage of the cloning machinery fails
//! `cargo test -q` instead of quietly flattening a figure.
//!
//! The key qualitative claim (§5, Figs. 11/12): under the Table 4 fault
//! model, metadata cloning strictly reduces the Unverifiable Data Ratio —
//! the baseline loses verifiability where Selective Relaxed Cloning (SRC)
//! and Selective Aggressive Cloning (SAC) do not, while the directly
//! lost fraction `L_error` is identical for all three (cloning protects
//! metadata, it cannot resurrect data the ECC already lost).

use soteria_suite::soteria::clone::CloningPolicy;
use soteria_suite::soteria_faultsim::{run_campaign, CampaignConfig};

/// A small fixed-seed campaign: high FIT so a few hundred iterations are
/// enough to defeat Chipkill a handful of times, small capacity so each
/// iteration is cheap. Single-threaded results are identical to any
/// thread count, so the pinned numbers are stable everywhere.
fn figure_campaign() -> Vec<soteria_suite::soteria_faultsim::PolicyResult> {
    let mut config = CampaignConfig::table4(1500.0);
    config.iterations = 256;
    config.capacity_bytes = 64 << 20;
    config.seed = 0x5072_1a5e;
    run_campaign(
        &config,
        &[
            CloningPolicy::None,
            CloningPolicy::Relaxed,
            CloningPolicy::Aggressive,
        ],
    )
}

#[test]
fn udr_ordering_matches_fig11() {
    let results = figure_campaign();
    let (baseline, src, sac) = (&results[0], &results[1], &results[2]);

    // Cloning monotonically reduces unverifiable data ...
    assert!(
        baseline.mean_udr >= src.mean_udr,
        "baseline UDR {:.3e} < SRC UDR {:.3e}",
        baseline.mean_udr,
        src.mean_udr
    );
    assert!(
        src.mean_udr >= sac.mean_udr,
        "SRC UDR {:.3e} < SAC UDR {:.3e}",
        src.mean_udr,
        sac.mean_udr
    );
    // ... and strictly: at this FIT the baseline must lose verifiability
    // somewhere that aggressive cloning does not. If cloning silently
    // stops working, baseline == sac == 0 or baseline == sac > 0 — both
    // fail here.
    assert!(
        baseline.mean_udr > sac.mean_udr,
        "cloning made no difference (baseline {:.3e}, SAC {:.3e}) — \
         the cloning machinery is likely broken",
        baseline.mean_udr,
        sac.mean_udr
    );
    assert!(
        baseline.iterations_with_udr > 0,
        "campaign too quiet to exercise UDR at all"
    );
}

/// Triad-NVM's tiers [arXiv 1810.09438] on the same seeds as Fig. 11:
/// persisting more of the tree (and recovering leaves by Osiris trials
/// from tier 1 up) can only shrink the unverifiable fraction, so
/// tier-2 UDR ≤ tier-1 ≤ tier-0 — and tier 0 must not beat the plain
/// lazy baseline it structurally equals.
#[test]
fn triad_tier_ordering_holds_on_fig11_seeds() {
    use soteria_suite::soteria_faultsim::{run_compare, CompareConfig};
    let out = run_compare(&CompareConfig {
        iterations: 256,
        trace_ops: 256,
        seed: 0x5072_1a5e,
        ..CompareConfig::default()
    });
    let udr = |name: &str| {
        out.rows
            .iter()
            .find(|r| r.scheme == name)
            .map(|r| r.mean_udr)
            .unwrap_or_else(|| panic!("{name} missing from the compare matrix"))
    };
    assert!(
        udr("triad0") >= udr("triad1"),
        "tier-0 UDR {:.3e} < tier-1 UDR {:.3e}",
        udr("triad0"),
        udr("triad1")
    );
    assert!(
        udr("triad1") >= udr("triad2"),
        "tier-1 UDR {:.3e} < tier-2 UDR {:.3e}",
        udr("triad1"),
        udr("triad2")
    );
    assert!(
        udr("triad0") > udr("triad2"),
        "tiering made no difference (tier-0 {:.3e}, tier-2 {:.3e}) — \
         the loss-profile plumbing is likely broken",
        udr("triad0"),
        udr("triad2")
    );
    // The compare matrix must agree with Fig. 11 on the cloning family
    // it shares with the classic campaign.
    assert!(udr("baseline") >= udr("src"));
    assert!(udr("src") >= udr("sac"));
    assert!(udr("baseline") > udr("sac"));
}

#[test]
fn error_ratio_is_policy_independent() {
    let results = figure_campaign();
    // L_error is what the ECC already lost — cloning cannot change it.
    let e0 = results[0].mean_error_ratio;
    for r in &results[1..] {
        assert!(
            (r.mean_error_ratio - e0).abs() < 1e-12,
            "{}: L_error {:.6e} != baseline {:.6e}",
            r.policy.name(),
            r.mean_error_ratio,
            e0
        );
    }
    // And every policy sees the same fault streams.
    for r in &results {
        assert_eq!(r.iterations_with_faults, results[0].iterations_with_faults);
        assert_eq!(r.iterations_with_ue, results[0].iterations_with_ue);
    }
}
