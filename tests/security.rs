//! Security tests: the §6.1 attack analysis as executable scenarios.
//! The attacker controls everything outside the processor chip (threat
//! model §2.1): they can snoop, rewrite, splice and replay NVM contents —
//! including Soteria's clone regions.

use soteria_suite::soteria::clone::CloningPolicy;
use soteria_suite::soteria::layout::MetaId;
use soteria_suite::soteria::{DataAddr, MemoryError, SecureMemoryConfig, SecureMemoryController};
use soteria_suite::soteria_nvm::LineAddr;

fn controller(policy: CloningPolicy) -> SecureMemoryController {
    let config = SecureMemoryConfig::builder()
        .capacity_bytes(1 << 20)
        .metadata_cache(8 * 1024, 4)
        .cloning(policy)
        .build()
        .unwrap();
    SecureMemoryController::new(config)
}

/// Force re-fetch of all metadata by thrashing the small metadata cache.
fn thrash(c: &mut SecureMemoryController) {
    let lines = c.layout().data_lines();
    for i in (0..lines).step_by(64) {
        let _ = c.read(DataAddr::new(i));
    }
}

#[test]
fn cold_boot_reveals_no_plaintext() {
    // Scan the entire NVM for the secret pattern: counter-mode encryption
    // must leave no plaintext anywhere (data region, WPQ-drained lines,
    // clone regions).
    let mut c = controller(CloningPolicy::Aggressive);
    let secret = [0xd5u8; 64];
    for i in 0..64u64 {
        c.write(DataAddr::new(i * 3), &secret).unwrap();
    }
    c.persist_all().unwrap();
    let total = c.layout().total_lines();
    for idx in 0..total {
        let (line, _) = c.device_mut().read_line(LineAddr::new(idx));
        assert_ne!(line, secret, "plaintext leaked at NVM line {idx}");
    }
}

#[test]
fn data_replay_is_detected() {
    let mut c = controller(CloningPolicy::None);
    c.write(DataAddr::new(0), &[1u8; 64]).unwrap();
    c.persist_all().unwrap();
    // Snapshot ciphertext + MAC line, overwrite with fresh data, replay.
    let (old_cipher, _) = c.device_mut().read_line(LineAddr::new(0));
    let (mac_line, _) = c.layout().data_mac_slot(DataAddr::new(0));
    let (old_mac, _) = c.device_mut().read_line(mac_line);
    c.write(DataAddr::new(0), &[2u8; 64]).unwrap();
    c.persist_all().unwrap();
    c.device_mut().write_line(LineAddr::new(0), &old_cipher);
    c.device_mut().write_line(mac_line, &old_mac);
    // The counter advanced in the metadata, so the replayed pair fails.
    assert!(matches!(
        c.read(DataAddr::new(0)),
        Err(MemoryError::IntegrityViolation { .. })
    ));
}

#[test]
fn single_clone_replay_is_corrected_not_trusted() {
    // §3.2.2: "replaying a single MT node will end up being corrected by
    // Soteria." A stale clone is inert while the primary is healthy; when
    // the primary *does* fail, the stale copy flunks MAC verification, a
    // fresh copy wins, and purification overwrites the replayed one.
    use soteria_suite::soteria_nvm::fault::{FaultFootprint, FaultKind, FaultRecord};
    let mut c = controller(CloningPolicy::Aggressive);
    c.write(DataAddr::new(0), &[1u8; 64]).unwrap();
    c.persist_all().unwrap();
    // Target the root's child (top level): SAC keeps 5 copies of it
    // (Table 2), so one replayed clone leaves three good ones.
    let node = MetaId::new(c.layout().levels(), 0);
    let clone1 = c.layout().clone_addr(node, 1);
    let (stale_clone, _) = c.device_mut().read_line(clone1);
    // Advance the tree state (writebacks bump the parent counter and
    // refresh every clone).
    for round in 0..4 {
        for i in 0..c.layout().data_lines() / 64 {
            c.write(DataAddr::new(i * 64), &[round as u8; 64]).unwrap();
        }
    }
    c.persist_all().unwrap();
    // Attack: replay the old copy over clone 1, and break the primary
    // with a two-chip fault so the repair path actually runs.
    c.device_mut().write_line(clone1, &stale_clone);
    let primary = c.layout().meta_addr(node);
    let loc = c.device_mut().geometry().locate(primary);
    for chip in [0u32, 9] {
        let g = *c.device_mut().geometry();
        c.device_mut().inject_fault(FaultRecord::on_chip(
            &g,
            chip,
            FaultFootprint::SingleWord {
                bank: loc.bank,
                row: loc.row,
                col: loc.col,
                beat: 1,
            },
            FaultKind::Permanent,
        ));
    }
    thrash(&mut c);
    // The stale clone must have been skipped (its MAC binds to an older
    // parent counter) and a fresh clone must have repaired everything:
    assert_eq!(c.read(DataAddr::new(0)).unwrap(), [3u8; 64]);
    assert!(c.stats().clone_repairs > 0);
    // Drain the WPQ so the purify writes reach the media, then check the
    // replayed copy was overwritten with the verified current content.
    c.persist_all().unwrap();
    let (purified, _) = c.device_mut().read_line(clone1);
    assert_ne!(purified, stale_clone, "replayed clone must be purified");
}

#[test]
fn replaying_every_copy_is_detected() {
    // §3.2.2: "If the attacker replays all clones of a node, Soteria's
    // recovery will fail in the integrity verification stage, and the
    // attack will be detected."
    let mut c = controller(CloningPolicy::Relaxed);
    c.write(DataAddr::new(0), &[1u8; 64]).unwrap();
    c.persist_all().unwrap();
    let leaf = MetaId::new(1, 0);
    let primary = c.layout().meta_addr(leaf);
    let clone_addr = c.layout().clone_addr(leaf, 1);
    let (leaf_mac_line, _) = c.layout().leaf_mac_slot(0);
    let (old_primary, _) = c.device_mut().read_line(primary);
    let (old_clone, _) = c.device_mut().read_line(clone_addr);
    let (old_mac, _) = c.device_mut().read_line(leaf_mac_line);
    // Advance state: evictions bump the parent counter several times.
    for round in 0..4u64 {
        for i in 0..c.layout().data_lines() / 64 {
            c.write(DataAddr::new(i * 64), &[round as u8; 64]).unwrap();
        }
    }
    c.persist_all().unwrap();
    // Replay the complete old set: primary, clone, and stored MAC.
    c.device_mut().write_line(primary, &old_primary);
    c.device_mut().write_line(clone_addr, &old_clone);
    c.device_mut().write_line(leaf_mac_line, &old_mac);
    thrash(&mut c);
    let r = c.read(DataAddr::new(0));
    assert!(
        matches!(r, Err(MemoryError::MetadataUnverifiable { .. })),
        "full-set replay must be detected, got {r:?}"
    );
}

#[test]
fn ciphertext_splice_across_addresses_fails() {
    let mut c = controller(CloningPolicy::None);
    c.write(DataAddr::new(10), &[0xaa; 64]).unwrap();
    c.write(DataAddr::new(20), &[0xbb; 64]).unwrap();
    c.persist_all().unwrap();
    // Move BOTH ciphertext and MAC from line 10 onto line 20.
    let (cipher10, _) = c.device_mut().read_line(LineAddr::new(10));
    let (m10_line, off10) = c.layout().data_mac_slot(DataAddr::new(10));
    let (m20_line, off20) = c.layout().data_mac_slot(DataAddr::new(20));
    let (mac10, _) = c.device_mut().read_line(m10_line);
    let (mut mac20, _) = c.device_mut().read_line(m20_line);
    mac20[off20..off20 + 8].copy_from_slice(&mac10[off10..off10 + 8]);
    c.device_mut().write_line(LineAddr::new(20), &cipher10);
    c.device_mut().write_line(m20_line, &mac20);
    assert!(
        c.read(DataAddr::new(20)).is_err(),
        "address-bound MACs must reject relocated ciphertext"
    );
}

#[test]
fn counter_freshness_prevents_pad_reuse() {
    // Writing the same plaintext to the same address repeatedly must give
    // distinct ciphertext every time (counter never reused).
    let mut c = controller(CloningPolicy::None);
    let mut seen = std::collections::HashSet::new();
    for _ in 0..100 {
        c.write(DataAddr::new(5), &[0x42; 64]).unwrap();
        c.persist_all().unwrap();
        let (cipher, _) = c.device_mut().read_line(LineAddr::new(5));
        assert!(seen.insert(cipher.to_vec()), "one-time pad reused");
    }
}

#[test]
fn tampered_tree_node_without_clones_is_unverifiable() {
    let mut c = controller(CloningPolicy::None);
    for i in 0..c.layout().data_lines() / 64 {
        c.write(DataAddr::new(i * 64), &[7u8; 64]).unwrap();
    }
    c.persist_all().unwrap();
    // Corrupt an L2 node directly.
    let node = MetaId::new(2, 0);
    let addr = c.layout().meta_addr(node);
    let (mut bytes, _) = c.device_mut().read_line(addr);
    bytes[3] ^= 0x80;
    c.device_mut().write_line(addr, &bytes);
    thrash(&mut c);
    let r = c.read(DataAddr::new(0));
    assert!(
        matches!(r, Err(MemoryError::MetadataUnverifiable { .. })),
        "tampered ToC node must be caught, got {r:?}"
    );
}

#[test]
fn tampered_tree_node_with_clones_is_repaired() {
    let mut c = controller(CloningPolicy::Aggressive);
    for i in 0..c.layout().data_lines() / 64 {
        c.write(DataAddr::new(i * 64), &[7u8; 64]).unwrap();
    }
    c.persist_all().unwrap();
    let node = MetaId::new(2, 0);
    let addr = c.layout().meta_addr(node);
    let (mut bytes, _) = c.device_mut().read_line(addr);
    bytes[3] ^= 0x80;
    c.device_mut().write_line(addr, &bytes);
    thrash(&mut c);
    assert_eq!(c.read(DataAddr::new(0)).unwrap(), [7u8; 64]);
    assert!(c.stats().clone_repairs > 0);
}
