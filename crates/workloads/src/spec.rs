//! SPEC-CPU-2006-like volatile kernels (§4 footnote 3).
//!
//! Four memory-behaviour archetypes from the suite's best-characterized
//! members:
//!
//! * [`Mcf`] — pointer chasing over a sparse graph: read-dominated,
//!   near-random, very memory intensive (429.mcf).
//! * [`Lbm`] — lattice-Boltzmann streaming: two sequential streams, one
//!   read + one write per cell (470.lbm).
//! * [`Libquantum`] — repeated sequential sweeps with read-modify-write
//!   on a quantum-register array (462.libquantum).
//! * [`Milc`] — strided scientific access with moderate write share
//!   (433.milc).
//!
//! These are *not* persistent applications, but as §4 notes, security
//! metadata must be maintained for them all the same — the controller
//! cannot know which stores matter after a crash.

use crate::{MemOp, OpKind, Splitmix, Workload};

/// Pointer-chasing workload in the style of 429.mcf.
#[derive(Clone, Debug)]
pub struct Mcf {
    footprint: u64,
    rng: Splitmix,
    cursor: u64,
    since_write: u32,
}

impl Mcf {
    /// Creates the workload.
    pub fn new(footprint: u64, seed: u64) -> Self {
        Self {
            footprint,
            rng: Splitmix::new(seed),
            cursor: 0,
            since_write: 0,
        }
    }
}

impl Workload for Mcf {
    fn name(&self) -> &str {
        "mcf"
    }
    fn is_persistent(&self) -> bool {
        false
    }
    fn footprint_bytes(&self) -> u64 {
        self.footprint
    }
    fn next_op(&mut self) -> MemOp {
        // Next node depends pseudo-randomly on the current one (an actual
        // dependent chain: no two iterations alike, no prefetchable
        // stride).
        self.cursor = Splitmix::new(self.cursor ^ self.rng.next_u64()).next_u64()
            % (self.footprint / 64)
            * 64;
        self.since_write += 1;
        if self.since_write >= 10 {
            // Occasional arc-cost update.
            self.since_write = 0;
            MemOp {
                kind: OpKind::Write,
                addr: self.cursor,
                persistent: false,
                think: 6,
            }
        } else {
            MemOp {
                kind: OpKind::Read,
                addr: self.cursor,
                persistent: false,
                think: 6,
            }
        }
    }
}

/// Streaming stencil in the style of 470.lbm: sequential read stream and
/// a sequential write stream over a second half of the grid.
#[derive(Clone, Debug)]
pub struct Lbm {
    footprint: u64,
    cursor: u64,
    phase: u8,
}

impl Lbm {
    /// Creates the workload.
    pub fn new(footprint: u64, _seed: u64) -> Self {
        Self {
            footprint,
            cursor: 0,
            phase: 0,
        }
    }
}

impl Workload for Lbm {
    fn name(&self) -> &str {
        "lbm"
    }
    fn is_persistent(&self) -> bool {
        false
    }
    fn footprint_bytes(&self) -> u64 {
        self.footprint
    }
    fn next_op(&mut self) -> MemOp {
        let half = self.footprint / 2;
        let op = match self.phase {
            0 => MemOp {
                kind: OpKind::Read,
                addr: self.cursor % half,
                persistent: false,
                think: 9,
            },
            _ => MemOp {
                kind: OpKind::Write,
                addr: half + (self.cursor % half),
                persistent: false,
                think: 9,
            },
        };
        if self.phase == 1 {
            self.cursor = (self.cursor + 64) % half;
        }
        self.phase ^= 1;
        op
    }
}

/// Sequential sweep with read-modify-write, in the style of
/// 462.libquantum's gate application over the register array.
#[derive(Clone, Debug)]
pub struct Libquantum {
    footprint: u64,
    cursor: u64,
    rmw_pending: bool,
}

impl Libquantum {
    /// Creates the workload.
    pub fn new(footprint: u64, _seed: u64) -> Self {
        Self {
            footprint,
            cursor: 0,
            rmw_pending: false,
        }
    }
}

impl Workload for Libquantum {
    fn name(&self) -> &str {
        "libquantum"
    }
    fn is_persistent(&self) -> bool {
        false
    }
    fn footprint_bytes(&self) -> u64 {
        self.footprint
    }
    fn next_op(&mut self) -> MemOp {
        if self.rmw_pending {
            self.rmw_pending = false;
            let addr = self.cursor;
            self.cursor = (self.cursor + 64) % self.footprint;
            MemOp {
                kind: OpKind::Write,
                addr,
                persistent: false,
                think: 2,
            }
        } else {
            self.rmw_pending = true;
            MemOp {
                kind: OpKind::Read,
                addr: self.cursor,
                persistent: false,
                think: 7,
            }
        }
    }
}

/// Strided scientific kernel in the style of 433.milc: 4-line strides
/// through a lattice with ~25 % writes.
#[derive(Clone, Debug)]
pub struct Milc {
    footprint: u64,
    rng: Splitmix,
    cursor: u64,
}

impl Milc {
    /// Creates the workload.
    pub fn new(footprint: u64, seed: u64) -> Self {
        Self {
            footprint,
            rng: Splitmix::new(seed),
            cursor: 0,
        }
    }
}

impl Workload for Milc {
    fn name(&self) -> &str {
        "milc"
    }
    fn is_persistent(&self) -> bool {
        false
    }
    fn footprint_bytes(&self) -> u64 {
        self.footprint
    }
    fn next_op(&mut self) -> MemOp {
        let addr = self.cursor;
        self.cursor = (self.cursor + 256) % self.footprint;
        let kind = if self.rng.percent(25) {
            OpKind::Write
        } else {
            OpKind::Read
        };
        MemOp {
            kind,
            addr,
            persistent: false,
            think: 14,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mcf_is_read_dominated_and_scattered() {
        let mut w = Mcf::new(1 << 24, 11);
        let mut reads = 0;
        let mut addrs = std::collections::HashSet::new();
        for _ in 0..5000 {
            let op = w.next_op();
            if op.kind == OpKind::Read {
                reads += 1;
            }
            addrs.insert(op.addr);
        }
        assert!(reads > 4000);
        assert!(addrs.len() > 4000, "pointer chase must scatter");
    }

    #[test]
    fn lbm_alternates_streams() {
        let mut w = Lbm::new(1 << 20, 0);
        let a = w.next_op();
        let b = w.next_op();
        assert_eq!(a.kind, OpKind::Read);
        assert_eq!(b.kind, OpKind::Write);
        assert!(b.addr >= (1 << 19), "write stream in the second half");
    }

    #[test]
    fn libquantum_rmw_pairs() {
        let mut w = Libquantum::new(1 << 16, 0);
        for _ in 0..100 {
            let r = w.next_op();
            let wr = w.next_op();
            assert_eq!(r.kind, OpKind::Read);
            assert_eq!(wr.kind, OpKind::Write);
            assert_eq!(r.addr, wr.addr);
        }
    }

    #[test]
    fn milc_write_share_near_quarter() {
        let mut w = Milc::new(1 << 20, 13);
        let writes = (0..10_000)
            .filter(|_| w.next_op().kind == OpKind::Write)
            .count();
        assert!((2000..3000).contains(&writes), "writes {writes}");
    }

    #[test]
    fn none_are_persistent() {
        for w in [
            &Mcf::new(1 << 16, 0) as &dyn Workload,
            &Lbm::new(1 << 16, 0),
            &Libquantum::new(1 << 16, 0),
            &Milc::new(1 << 16, 0),
        ] {
            assert!(!w.is_persistent(), "{}", w.name());
        }
    }
}
