//! The in-house `uBENCH X` microbenchmarks of §4: sequential array sweeps
//! touching one byte every `X` bytes with a 1:1 read/write ratio.
//!
//! The stride controls spatial locality in the metadata: a 16-byte stride
//! hits each 64-byte line four times and each counter block 256 times
//! (low eviction pressure), while a 256-byte stride skips lines and burns
//! through counter blocks four times faster — exactly the eviction-rate
//! contrast Fig. 10c shows between uBENCH16 and uBENCH128.

use crate::{MemOp, OpKind, Workload};

/// A sequential stride microbenchmark.
#[derive(Clone, Debug)]
pub struct UBench {
    name: String,
    stride: u64,
    footprint: u64,
    cursor: u64,
    next_is_write: bool,
}

impl UBench {
    /// Creates `uBENCH<stride>` over `footprint` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero or footprint is smaller than one stride.
    pub fn new(stride: u64, footprint: u64) -> Self {
        assert!(stride > 0, "stride must be positive");
        assert!(footprint >= stride, "footprint smaller than stride");
        Self {
            name: format!("uBENCH{stride}"),
            stride,
            footprint,
            cursor: 0,
            next_is_write: false,
        }
    }

    /// The stride in bytes.
    pub fn stride(&self) -> u64 {
        self.stride
    }
}

impl Workload for UBench {
    fn name(&self) -> &str {
        &self.name
    }

    fn is_persistent(&self) -> bool {
        true // the array lives in NVM (§4)
    }

    fn footprint_bytes(&self) -> u64 {
        self.footprint
    }

    fn next_op(&mut self) -> MemOp {
        let addr = self.cursor;
        // Read then write the same location (r/w ratio 1), then stride on.
        let kind = if self.next_is_write {
            OpKind::Write
        } else {
            OpKind::Read
        };
        if self.next_is_write {
            self.cursor = (self.cursor + self.stride) % self.footprint;
        }
        self.next_is_write = !self.next_is_write;
        MemOp {
            kind,
            addr,
            persistent: kind == OpKind::Write,
            think: 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alternates_read_write_same_address() {
        let mut u = UBench::new(64, 1 << 16);
        let a = u.next_op();
        let b = u.next_op();
        assert_eq!(a.kind, OpKind::Read);
        assert_eq!(b.kind, OpKind::Write);
        assert_eq!(a.addr, b.addr);
    }

    #[test]
    fn strides_sequentially_and_wraps() {
        let mut u = UBench::new(128, 256);
        let mut addrs = Vec::new();
        for _ in 0..6 {
            addrs.push(u.next_op().addr);
        }
        assert_eq!(addrs, vec![0, 0, 128, 128, 0, 0]);
    }

    #[test]
    fn name_embeds_stride() {
        assert_eq!(UBench::new(16, 1024).name(), "uBENCH16");
    }

    #[test]
    fn writes_are_persistent() {
        let mut u = UBench::new(64, 1024);
        u.next_op();
        assert!(u.next_op().persistent);
    }
}
