//! Trace capture and replay: record any workload's operation stream to a
//! compact binary file and play it back later — or bring traces from a
//! real system (e.g. PIN/DynamoRIO memory traces converted to this
//! format) and drive the simulator with them.
//!
//! # Format
//!
//! A 16-byte header (`magic "SOTR1\0\0\0"`, u64 little-endian op count)
//! followed by 16 bytes per operation:
//!
//! ```text
//! offset 0  u64 LE  byte address
//! offset 8  u8      kind (0 = read, 1 = write)
//! offset 9  u8      persistent (0/1)
//! offset 10 u32 LE  think cycles
//! offset 14 u16     reserved (zero)
//! ```
//!
//! # Example
//!
//! ```no_run
//! use soteria_workloads::trace::{record, ReplayWorkload};
//! use soteria_workloads::{UBench, Workload};
//!
//! record(&mut UBench::new(64, 1 << 20), 10_000, "ubench.trace")?;
//! let mut replay = ReplayWorkload::open("ubench.trace")?;
//! assert_eq!(replay.remaining(), 10_000);
//! # Ok::<(), std::io::Error>(())
//! ```

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::{MemOp, OpKind, Workload};

const MAGIC: &[u8; 8] = b"SOTR1\0\0\0";
const OP_BYTES: usize = 16;

/// Records `ops` operations of `workload` into the trace file at `path`.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn record(
    workload: &mut dyn Workload,
    ops: u64,
    path: impl AsRef<Path>,
) -> std::io::Result<()> {
    let mut out = BufWriter::new(File::create(path)?);
    out.write_all(MAGIC)?;
    out.write_all(&ops.to_le_bytes())?;
    for _ in 0..ops {
        let op = workload.next_op();
        let mut buf = [0u8; OP_BYTES];
        buf[..8].copy_from_slice(&op.addr.to_le_bytes());
        buf[8] = match op.kind {
            OpKind::Read => 0,
            OpKind::Write => 1,
        };
        buf[9] = u8::from(op.persistent);
        buf[10..14].copy_from_slice(&op.think.to_le_bytes());
        out.write_all(&buf)?;
    }
    out.flush()
}

/// A workload that replays a recorded trace (looping when exhausted, so
/// it satisfies the infinite-stream contract of [`Workload`]).
#[derive(Debug)]
pub struct ReplayWorkload {
    name: String,
    ops: Vec<MemOp>,
    cursor: usize,
    footprint: u64,
}

impl ReplayWorkload {
    /// Loads a trace file.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` for files without the trace magic or with a
    /// truncated body.
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref();
        let mut input = BufReader::new(File::open(path)?);
        let mut header = [0u8; 16];
        input.read_exact(&mut header)?;
        if &header[..8] != MAGIC {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "not a soteria trace (bad magic)",
            ));
        }
        let count = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
        let mut ops = Vec::with_capacity(count as usize);
        let mut footprint = 64u64;
        for _ in 0..count {
            let mut buf = [0u8; OP_BYTES];
            input.read_exact(&mut buf).map_err(|_| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, "truncated trace body")
            })?;
            let addr = u64::from_le_bytes(buf[..8].try_into().expect("8 bytes"));
            let kind = if buf[8] == 0 { OpKind::Read } else { OpKind::Write };
            let persistent = buf[9] != 0;
            let think = u32::from_le_bytes(buf[10..14].try_into().expect("4 bytes"));
            footprint = footprint.max(addr + 64);
            ops.push(MemOp {
                kind,
                addr,
                persistent,
                think,
            });
        }
        if ops.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "empty trace",
            ));
        }
        let name = path
            .file_stem()
            .map(|s| format!("trace:{}", s.to_string_lossy()))
            .unwrap_or_else(|| "trace".to_string());
        Ok(Self {
            name,
            ops,
            cursor: 0,
            footprint,
        })
    }

    /// Operations left before the replay wraps around.
    pub fn remaining(&self) -> usize {
        self.ops.len() - self.cursor
    }

    /// Total operations in the trace.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the trace holds no operations (never true for a
    /// successfully opened file).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

impl Workload for ReplayWorkload {
    fn name(&self) -> &str {
        &self.name
    }

    fn is_persistent(&self) -> bool {
        self.ops.iter().any(|op| op.persistent)
    }

    fn footprint_bytes(&self) -> u64 {
        self.footprint
    }

    fn next_op(&mut self) -> MemOp {
        let op = self.ops[self.cursor];
        self.cursor = (self.cursor + 1) % self.ops.len();
        op
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Sps, UBench};

    fn temp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("soteria_trace_{name}_{}", std::process::id()))
    }

    #[test]
    fn record_replay_roundtrip() {
        let path = temp("roundtrip");
        record(&mut Sps::new(1 << 20, 5), 500, &path).unwrap();
        let mut replay = ReplayWorkload::open(&path).unwrap();
        let mut original = Sps::new(1 << 20, 5);
        assert_eq!(replay.len(), 500);
        for i in 0..500 {
            assert_eq!(replay.next_op(), original.next_op(), "op {i}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn replay_wraps_around() {
        let path = temp("wrap");
        record(&mut UBench::new(64, 1 << 12), 10, &path).unwrap();
        let mut replay = ReplayWorkload::open(&path).unwrap();
        let first = replay.next_op();
        for _ in 0..9 {
            replay.next_op();
        }
        assert_eq!(replay.next_op(), first, "stream loops");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn footprint_covers_max_address() {
        let path = temp("footprint");
        record(&mut UBench::new(256, 1 << 14), 200, &path).unwrap();
        let replay = ReplayWorkload::open(&path).unwrap();
        assert!(replay.footprint_bytes() <= 1 << 14);
        assert!(replay.footprint_bytes() > 1 << 10);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_rejected() {
        let path = temp("badmagic");
        std::fs::write(&path, b"NOT A TRACE FILE").unwrap();
        assert!(ReplayWorkload::open(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_body_rejected() {
        let path = temp("trunc");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&10u64.to_le_bytes()); // claims 10 ops
        bytes.extend_from_slice(&[0u8; 16]); // provides 1
        std::fs::write(&path, &bytes).unwrap();
        assert!(ReplayWorkload::open(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
