#![warn(missing_docs)]

//! Deterministic workload generators for the Soteria evaluation (§4).
//!
//! The paper drives its gem5 simulations with WHISPER persistent-memory
//! benchmarks, PMEMKV, SPEC CPU 2006, and in-house `uBENCH X` stride
//! microbenchmarks. None of those binaries can run inside a Rust memory
//! simulator, so this crate generates their **memory access patterns**
//! instead: what reaches the memory controller is a stream of
//! line-granular reads/writes with think time between them, and that is
//! all the metadata machinery ever observes.
//!
//! Every generator is deterministic for a given seed, infinite, and
//! documents which published behaviour it mimics.
//!
//! # Example
//!
//! ```
//! use soteria_workloads::{SuiteConfig, Workload};
//!
//! let mut suite = soteria_workloads::standard_suite(&SuiteConfig::default());
//! let w = &mut suite[0];
//! let op = w.next_op();
//! assert!(op.addr < SuiteConfig::default().footprint_bytes);
//! ```

mod spec;
pub mod trace;
mod ubench;
mod whisper;

pub use spec::{Lbm, Libquantum, Mcf, Milc};
pub use ubench::UBench;
pub use whisper::{Ctree, Hashmap, Pmemkv, Queue, RedoLog, Sps, Vacation, Ycsb};

/// Whether an operation reads or writes memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// A load.
    Read,
    /// A store.
    Write,
}

/// One memory operation emitted by a workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemOp {
    /// Load or store.
    pub kind: OpKind,
    /// Byte address within the workload's footprint.
    pub addr: u64,
    /// `true` when the store is persisted immediately (clwb + fence), as
    /// persistent-memory workloads do for their logs and commits.
    pub persistent: bool,
    /// Non-memory instructions executed before this operation (think
    /// time), which sets the workload's memory intensity.
    pub think: u32,
}

/// A deterministic, infinite memory-access-pattern generator.
pub trait Workload: Send {
    /// Short name as it appears in the figures (e.g. `"uBENCH64"`).
    fn name(&self) -> &str;

    /// `true` for persistent-memory applications (WHISPER, PMEMKV,
    /// uBENCH), `false` for SPEC-like volatile applications.
    fn is_persistent(&self) -> bool;

    /// Bytes of memory the workload touches.
    fn footprint_bytes(&self) -> u64;

    /// Produces the next operation.
    fn next_op(&mut self) -> MemOp;
}

/// A tiny deterministic RNG (splitmix64) shared by the generators, so the
/// crate needs no RNG dependency in its public API and streams never
/// change across `rand` upgrades.
#[derive(Clone, Debug)]
pub struct Splitmix {
    state: u64,
}

impl Splitmix {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed.wrapping_add(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        self.next_u64() % bound
    }

    /// Bernoulli draw with probability `percent / 100`.
    pub fn percent(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }

    /// Skewed uniform draw: 75 % of draws land in the first eighth of
    /// `[0, bound)` (a hot set), the rest anywhere. Real transactional
    /// workloads are strongly skewed; this keeps metadata-cache behaviour
    /// in the regime the paper reports (~1.3 % evictions per op) instead
    /// of worst-case uniform thrashing.
    pub fn hot_below(&mut self, bound: u64) -> u64 {
        if bound >= 8 && self.percent(75) {
            self.below(bound / 8)
        } else {
            self.below(bound)
        }
    }
}

/// Parameters shared by the standard suite.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SuiteConfig {
    /// Bytes each workload touches (64 MiB default keeps runs fast while
    /// overflowing the 512 kB metadata cache by orders of magnitude).
    pub footprint_bytes: u64,
    /// Seed for all generators.
    pub seed: u64,
}

impl Default for SuiteConfig {
    fn default() -> Self {
        Self {
            footprint_bytes: 64 << 20,
            seed: 0xda7a,
        }
    }
}

/// The full workload suite of the evaluation: uBENCH strides, the
/// WHISPER-like persistent kernels, PMEMKV, and SPEC-like kernels.
pub fn standard_suite(config: &SuiteConfig) -> Vec<Box<dyn Workload>> {
    let f = config.footprint_bytes;
    let s = config.seed;
    vec![
        Box::new(UBench::new(16, f)),
        Box::new(UBench::new(64, f)),
        Box::new(UBench::new(128, f)),
        Box::new(UBench::new(256, f)),
        Box::new(Ctree::new(f, s ^ 1)),
        Box::new(Hashmap::new(f, s ^ 2)),
        Box::new(RedoLog::new(f, s ^ 3)),
        Box::new(Sps::new(f, s ^ 4)),
        Box::new(Queue::new(f, s ^ 5)),
        Box::new(Pmemkv::new(f, s ^ 6)),
        Box::new(Ycsb::new(f, s ^ 11)),
        Box::new(Vacation::new(f, s ^ 12)),
        Box::new(Mcf::new(f, s ^ 7)),
        Box::new(Lbm::new(f, s ^ 8)),
        Box::new(Libquantum::new(f, s ^ 9)),
        Box::new(Milc::new(f, s ^ 10)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_sixteen_workloads_with_unique_names() {
        let suite = standard_suite(&SuiteConfig::default());
        assert_eq!(suite.len(), 16);
        let names: std::collections::HashSet<_> =
            suite.iter().map(|w| w.name().to_string()).collect();
        assert_eq!(names.len(), 16);
    }

    #[test]
    fn all_ops_stay_in_footprint() {
        let config = SuiteConfig {
            footprint_bytes: 1 << 20,
            seed: 9,
        };
        for w in &mut standard_suite(&config) {
            for _ in 0..10_000 {
                let op = w.next_op();
                assert!(op.addr < config.footprint_bytes, "{} escaped", w.name());
            }
        }
    }

    #[test]
    fn generators_are_deterministic() {
        let config = SuiteConfig::default();
        let mut a = standard_suite(&config);
        let mut b = standard_suite(&config);
        for (wa, wb) in a.iter_mut().zip(b.iter_mut()) {
            for _ in 0..1000 {
                assert_eq!(wa.next_op(), wb.next_op(), "{}", wa.name());
            }
        }
    }

    #[test]
    fn persistent_flags_partition_the_suite() {
        let suite = standard_suite(&SuiteConfig::default());
        let persistent: Vec<_> = suite
            .iter()
            .filter(|w| w.is_persistent())
            .map(|w| w.name().to_string())
            .collect();
        // uBENCH (4) + whisper-like (5) + pmemkv + ycsb + vacation = 12.
        assert_eq!(persistent.len(), 12);
        assert!(persistent.iter().any(|n| n.contains("uBENCH")));
    }

    #[test]
    fn every_workload_mixes_reads_and_writes() {
        for w in &mut standard_suite(&SuiteConfig::default()) {
            let mut reads = 0;
            let mut writes = 0;
            for _ in 0..5000 {
                match w.next_op().kind {
                    OpKind::Read => reads += 1,
                    OpKind::Write => writes += 1,
                }
            }
            assert!(
                reads > 0 && writes > 0,
                "{}: r={reads} w={writes}",
                w.name()
            );
        }
    }

    #[test]
    fn splitmix_below_is_bounded() {
        let mut rng = Splitmix::new(1);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn splitmix_below_zero_panics() {
        Splitmix::new(0).below(0);
    }
}
