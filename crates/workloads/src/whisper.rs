//! WHISPER-like persistent-memory kernels and a PMEMKV-like store.
//!
//! WHISPER [Nalli et al., ASPLOS 2017] characterizes persistent-memory
//! applications as short transactions: a few random reads, a log append,
//! a small number of in-place persistent stores. The generators below
//! mimic the published access mixes of its best-known members (`ctree`,
//! `hashmap`, `redo` logging, `sps`, a persistent queue) plus a PMEMKV
//! put/get mix — at the only granularity the memory controller sees:
//! which lines are read/written, how persistently, and how often.

use crate::{MemOp, OpKind, Splitmix, Workload};

fn line_align(addr: u64) -> u64 {
    addr & !63
}

/// Crash-consistent B-tree insert/lookup mix (WHISPER `ctree`).
///
/// Each transaction walks ~4 random node lines (reads), then appends to a
/// log and updates a leaf (persistent writes). 70 % lookups / 30 %
/// inserts.
#[derive(Clone, Debug)]
pub struct Ctree {
    footprint: u64,
    rng: Splitmix,
    pending: Vec<MemOp>,
    log_head: u64,
}

impl Ctree {
    /// Creates the workload.
    pub fn new(footprint: u64, seed: u64) -> Self {
        Self {
            footprint,
            rng: Splitmix::new(seed),
            pending: Vec::new(),
            log_head: 0,
        }
    }

    fn refill(&mut self) {
        let tree_region = self.footprint * 7 / 8;
        let log_region = self.footprint - tree_region;
        // Root levels are hot: level i node drawn from a 8^i-scaled range.
        let mut range = 4096u64.max(tree_region >> 12);
        for _ in 0..4 {
            let addr = line_align(self.rng.below(range.min(tree_region)));
            self.pending.push(MemOp {
                kind: OpKind::Read,
                addr,
                persistent: false,
                think: 12,
            });
            range = (range * 8).min(tree_region);
        }
        if self.rng.percent(30) {
            // Insert: log append + leaf update.
            let log_addr = tree_region + (self.log_head % log_region);
            self.log_head += 64;
            self.pending.push(MemOp {
                kind: OpKind::Write,
                addr: line_align(log_addr),
                persistent: true,
                think: 6,
            });
            let leaf = line_align(self.rng.hot_below(tree_region));
            self.pending.push(MemOp {
                kind: OpKind::Write,
                addr: leaf,
                persistent: true,
                think: 6,
            });
        }
        self.pending.reverse();
    }
}

impl Workload for Ctree {
    fn name(&self) -> &str {
        "ctree"
    }
    fn is_persistent(&self) -> bool {
        true
    }
    fn footprint_bytes(&self) -> u64 {
        self.footprint
    }
    fn next_op(&mut self) -> MemOp {
        if self.pending.is_empty() {
            self.refill();
        }
        self.pending.pop().expect("refill produces ops")
    }
}

/// Persistent hash table (WHISPER `hashmap`): one bucket read, 40 %
/// updates with log + bucket writes.
#[derive(Clone, Debug)]
pub struct Hashmap {
    footprint: u64,
    rng: Splitmix,
    pending: Vec<MemOp>,
    log_head: u64,
}

impl Hashmap {
    /// Creates the workload.
    pub fn new(footprint: u64, seed: u64) -> Self {
        Self {
            footprint,
            rng: Splitmix::new(seed),
            pending: Vec::new(),
            log_head: 0,
        }
    }
}

impl Workload for Hashmap {
    fn name(&self) -> &str {
        "hashmap"
    }
    fn is_persistent(&self) -> bool {
        true
    }
    fn footprint_bytes(&self) -> u64 {
        self.footprint
    }
    fn next_op(&mut self) -> MemOp {
        if let Some(op) = self.pending.pop() {
            return op;
        }
        let table = self.footprint * 3 / 4;
        let bucket = line_align(self.rng.hot_below(table));
        if self.rng.percent(40) {
            let log = table + (self.log_head % (self.footprint - table));
            self.log_head += 64;
            self.pending.push(MemOp {
                kind: OpKind::Write,
                addr: bucket,
                persistent: true,
                think: 8,
            });
            self.pending.push(MemOp {
                kind: OpKind::Write,
                addr: line_align(log),
                persistent: true,
                think: 4,
            });
        }
        MemOp {
            kind: OpKind::Read,
            addr: bucket,
            persistent: false,
            think: 15,
        }
    }
}

/// Redo-log appender (WHISPER-style `redo` transaction log): write-heavy
/// sequential log traffic plus random data reads.
#[derive(Clone, Debug)]
pub struct RedoLog {
    footprint: u64,
    rng: Splitmix,
    head: u64,
}

impl RedoLog {
    /// Creates the workload.
    pub fn new(footprint: u64, seed: u64) -> Self {
        Self {
            footprint,
            rng: Splitmix::new(seed),
            head: 0,
        }
    }
}

impl Workload for RedoLog {
    fn name(&self) -> &str {
        "redo_log"
    }
    fn is_persistent(&self) -> bool {
        true
    }
    fn footprint_bytes(&self) -> u64 {
        self.footprint
    }
    fn next_op(&mut self) -> MemOp {
        let log_region = self.footprint / 2;
        if self.rng.percent(60) {
            let addr = self.head % log_region;
            self.head += 64;
            MemOp {
                kind: OpKind::Write,
                addr,
                persistent: true,
                think: 5,
            }
        } else {
            let addr = log_region + line_align(self.rng.below(self.footprint - log_region));
            MemOp {
                kind: OpKind::Read,
                addr,
                persistent: false,
                think: 10,
            }
        }
    }
}

/// Swap random entries (WHISPER-like `sps`, scalable persistent swaps):
/// read two random lines, write them back swapped, all persistent.
#[derive(Clone, Debug)]
pub struct Sps {
    footprint: u64,
    rng: Splitmix,
    pending: Vec<MemOp>,
}

impl Sps {
    /// Creates the workload.
    pub fn new(footprint: u64, seed: u64) -> Self {
        Self {
            footprint,
            rng: Splitmix::new(seed),
            pending: Vec::new(),
        }
    }
}

impl Workload for Sps {
    fn name(&self) -> &str {
        "sps"
    }
    fn is_persistent(&self) -> bool {
        true
    }
    fn footprint_bytes(&self) -> u64 {
        self.footprint
    }
    fn next_op(&mut self) -> MemOp {
        if let Some(op) = self.pending.pop() {
            return op;
        }
        let a = line_align(self.rng.hot_below(self.footprint));
        let b = line_align(self.rng.hot_below(self.footprint));
        self.pending.push(MemOp {
            kind: OpKind::Write,
            addr: a,
            persistent: true,
            think: 3,
        });
        self.pending.push(MemOp {
            kind: OpKind::Write,
            addr: b,
            persistent: true,
            think: 3,
        });
        self.pending.push(MemOp {
            kind: OpKind::Read,
            addr: b,
            persistent: false,
            think: 3,
        });
        MemOp {
            kind: OpKind::Read,
            addr: a,
            persistent: false,
            think: 6,
        }
    }
}

/// Persistent FIFO queue: enqueue at head, dequeue at tail — localized
/// writes that hammer a small set of counter blocks.
#[derive(Clone, Debug)]
pub struct Queue {
    footprint: u64,
    rng: Splitmix,
    head: u64,
    tail: u64,
}

impl Queue {
    /// Creates the workload.
    pub fn new(footprint: u64, seed: u64) -> Self {
        Self {
            footprint,
            rng: Splitmix::new(seed),
            head: 0,
            tail: 0,
        }
    }
}

impl Workload for Queue {
    fn name(&self) -> &str {
        "queue"
    }
    fn is_persistent(&self) -> bool {
        true
    }
    fn footprint_bytes(&self) -> u64 {
        self.footprint
    }
    fn next_op(&mut self) -> MemOp {
        if self.rng.percent(55) || self.head == self.tail {
            let addr = self.head % self.footprint;
            self.head += 64;
            MemOp {
                kind: OpKind::Write,
                addr,
                persistent: true,
                think: 7,
            }
        } else {
            let addr = self.tail % self.footprint;
            self.tail += 64;
            MemOp {
                kind: OpKind::Read,
                addr,
                persistent: false,
                think: 7,
            }
        }
    }
}

/// PMEMKV-like key-value store: 50/50 put/get over a hashed index plus a
/// value heap, with persistent index and value writes on puts.
#[derive(Clone, Debug)]
pub struct Pmemkv {
    footprint: u64,
    rng: Splitmix,
    pending: Vec<MemOp>,
}

impl Pmemkv {
    /// Creates the workload.
    pub fn new(footprint: u64, seed: u64) -> Self {
        Self {
            footprint,
            rng: Splitmix::new(seed),
            pending: Vec::new(),
        }
    }
}

impl Workload for Pmemkv {
    fn name(&self) -> &str {
        "pmemkv"
    }
    fn is_persistent(&self) -> bool {
        true
    }
    fn footprint_bytes(&self) -> u64 {
        self.footprint
    }
    fn next_op(&mut self) -> MemOp {
        if let Some(op) = self.pending.pop() {
            return op;
        }
        let index = self.footprint / 4;
        let slot = line_align(self.rng.hot_below(index));
        let value = index + line_align(self.rng.hot_below(self.footprint - index));
        if self.rng.percent(50) {
            // put: read index slot, write value, write index.
            self.pending.push(MemOp {
                kind: OpKind::Write,
                addr: slot,
                persistent: true,
                think: 5,
            });
            self.pending.push(MemOp {
                kind: OpKind::Write,
                addr: value,
                persistent: true,
                think: 5,
            });
            MemOp {
                kind: OpKind::Read,
                addr: slot,
                persistent: false,
                think: 10,
            }
        } else {
            // get: read index slot then the value line.
            self.pending.push(MemOp {
                kind: OpKind::Read,
                addr: value,
                persistent: false,
                think: 5,
            });
            MemOp {
                kind: OpKind::Read,
                addr: slot,
                persistent: false,
                think: 10,
            }
        }
    }
}

/// YCSB-like key-value workload: Zipfian key popularity (approximated by
/// three nested hot sets), 95/5 read/update mix — the cloud-serving
/// profile most KV papers evaluate against (workload B).
#[derive(Clone, Debug)]
pub struct Ycsb {
    footprint: u64,
    rng: Splitmix,
    pending: Vec<MemOp>,
}

impl Ycsb {
    /// Creates the workload.
    pub fn new(footprint: u64, seed: u64) -> Self {
        Self {
            footprint,
            rng: Splitmix::new(seed),
            pending: Vec::new(),
        }
    }

    fn zipf_like(&mut self, bound: u64) -> u64 {
        // Nested hot sets: 50% of traffic in 1/64, 80% in 1/8.
        let region = match self.rng.below(10) {
            0..=4 => bound / 64,
            5..=7 => bound / 8,
            _ => bound,
        };
        self.rng.below(region.max(64))
    }
}

impl Workload for Ycsb {
    fn name(&self) -> &str {
        "ycsb"
    }
    fn is_persistent(&self) -> bool {
        true
    }
    fn footprint_bytes(&self) -> u64 {
        self.footprint
    }
    fn next_op(&mut self) -> MemOp {
        if let Some(op) = self.pending.pop() {
            return op;
        }
        let key = line_align(self.zipf_like(self.footprint));
        if self.rng.percent(5) {
            // update: read-modify-write the record, persist.
            self.pending.push(MemOp {
                kind: OpKind::Write,
                addr: key,
                persistent: true,
                think: 6,
            });
        }
        MemOp {
            kind: OpKind::Read,
            addr: key,
            persistent: false,
            think: 18,
        }
    }
}

/// Vacation-like transactional workload (STAMP): each "reservation"
/// touches three tables (flights/rooms/cars) with reads, then commits a
/// few persistent writes plus an undo-log entry.
#[derive(Clone, Debug)]
pub struct Vacation {
    footprint: u64,
    rng: Splitmix,
    pending: Vec<MemOp>,
    log_head: u64,
}

impl Vacation {
    /// Creates the workload.
    pub fn new(footprint: u64, seed: u64) -> Self {
        Self {
            footprint,
            rng: Splitmix::new(seed),
            pending: Vec::new(),
            log_head: 0,
        }
    }
}

impl Workload for Vacation {
    fn name(&self) -> &str {
        "vacation"
    }
    fn is_persistent(&self) -> bool {
        true
    }
    fn footprint_bytes(&self) -> u64 {
        self.footprint
    }
    fn next_op(&mut self) -> MemOp {
        if let Some(op) = self.pending.pop() {
            return op;
        }
        let table_size = self.footprint / 4; // 3 tables + log region
        let log_base = 3 * table_size;
        // Transaction: probe each table twice (index + record)...
        let mut ops = Vec::with_capacity(8);
        for table in 0..3u64 {
            let record = table * table_size + line_align(self.rng.hot_below(table_size));
            ops.push(MemOp {
                kind: OpKind::Read,
                addr: record,
                persistent: false,
                think: 9,
            });
            ops.push(MemOp {
                kind: OpKind::Read,
                addr: record + 64,
                persistent: false,
                think: 4,
            });
        }
        // ...then commit: undo-log append + one record update.
        let log = log_base + (self.log_head % (self.footprint - log_base));
        self.log_head += 64;
        ops.push(MemOp {
            kind: OpKind::Write,
            addr: line_align(log),
            persistent: true,
            think: 5,
        });
        let victim = line_align(self.rng.hot_below(3 * table_size));
        ops.push(MemOp {
            kind: OpKind::Write,
            addr: victim,
            persistent: true,
            think: 5,
        });
        ops.reverse();
        self.pending = ops;
        self.pending.pop().expect("transaction is nonempty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(w: &mut dyn Workload, n: usize) -> (usize, usize, usize) {
        let (mut r, mut wr, mut p) = (0, 0, 0);
        for _ in 0..n {
            let op = w.next_op();
            match op.kind {
                OpKind::Read => r += 1,
                OpKind::Write => wr += 1,
            }
            if op.persistent {
                p += 1;
            }
        }
        (r, wr, p)
    }

    #[test]
    fn ctree_is_read_dominant_with_persistent_writes() {
        let mut w = Ctree::new(1 << 22, 1);
        let (r, wr, p) = drain(&mut w, 10_000);
        assert!(r > wr, "tree walks dominate: r={r} w={wr}");
        assert_eq!(wr, p, "all ctree writes are persistent");
    }

    #[test]
    fn redo_log_is_write_heavy_and_sequential() {
        let mut w = RedoLog::new(1 << 20, 2);
        let (r, wr, _) = drain(&mut w, 10_000);
        assert!(wr > r, "log appends dominate: r={r} w={wr}");
        // Log addresses increase between consecutive writes.
        let mut last = None;
        for _ in 0..100 {
            let op = w.next_op();
            if op.kind == OpKind::Write {
                if let Some(prev) = last {
                    assert!(op.addr > prev || op.addr == 0);
                }
                last = Some(op.addr);
            }
        }
    }

    #[test]
    fn sps_transactions_are_balanced() {
        let mut w = Sps::new(1 << 20, 3);
        let (r, wr, p) = drain(&mut w, 8000);
        assert_eq!(r, wr);
        assert_eq!(p, wr);
    }

    #[test]
    fn queue_addresses_advance() {
        let mut w = Queue::new(1 << 16, 4);
        let a = w.next_op();
        let ops: Vec<_> = (0..50).map(|_| w.next_op()).collect();
        assert!(ops.iter().any(|o| o.addr != a.addr));
    }

    #[test]
    fn pmemkv_mixes_puts_and_gets() {
        let mut w = Pmemkv::new(1 << 22, 5);
        let (r, wr, _) = drain(&mut w, 10_000);
        // ~2 writes per put, ~2 reads per get, 50/50 mix with a put read.
        assert!(r > 0 && wr > 0);
        assert!(r > wr, "gets contribute extra reads: r={r} w={wr}");
    }

    #[test]
    fn ycsb_is_read_heavy_and_skewed() {
        let mut w = Ycsb::new(1 << 24, 7);
        let mut reads = 0;
        let mut hot = 0;
        let n = 20_000;
        for _ in 0..n {
            let op = w.next_op();
            if op.kind == OpKind::Read {
                reads += 1;
            }
            if op.addr < (1 << 24) / 64 {
                hot += 1;
            }
        }
        assert!(reads as f64 > 0.9 * n as f64, "reads {reads}");
        assert!(hot as f64 > 0.4 * n as f64, "hot-set traffic {hot}");
    }

    #[test]
    fn vacation_transactions_commit_persistently() {
        let mut w = Vacation::new(1 << 22, 8);
        let (r, wr, p) = drain(&mut w, 8000);
        assert!(r > wr, "probes dominate: r={r} w={wr}");
        assert_eq!(wr, p, "all commits persistent");
        assert_eq!((r + wr) % 8, 0, "whole transactions of 8 ops");
    }

    #[test]
    fn hashmap_reads_every_transaction() {
        let mut w = Hashmap::new(1 << 20, 6);
        let (r, _, p) = drain(&mut w, 5000);
        assert!(r >= 5000 / 3);
        assert!(p > 0);
    }
}
