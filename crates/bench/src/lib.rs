#![warn(missing_docs)]

//! Shared helpers for the experiment harness that regenerates every table
//! and figure of the paper (see `DESIGN.md` for the index).
//!
//! Each `fig*` binary prints the same rows/series the paper reports.
//! Runs are sized by two environment variables so CI can use quick passes
//! while full reproductions crank them up:
//!
//! * `SOTERIA_OPS` — memory operations per workload for the performance
//!   figures (default 200 000),
//! * `SOTERIA_ITERS` — Monte Carlo iterations per FIT point for the
//!   resilience figures (default 100 000).

use soteria::clone::CloningPolicy;
use soteria_simcpu::{RunResult, System, SystemConfig};
use soteria_workloads::{standard_suite, SuiteConfig};

/// Reads a sizing knob from the environment.
pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Geometric mean of a nonempty slice.
///
/// # Panics
///
/// Panics on an empty slice or non-positive values.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of nothing");
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geomean needs positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

/// The three schemes of the evaluation, in figure order.
pub fn schemes() -> Vec<CloningPolicy> {
    vec![
        CloningPolicy::None,
        CloningPolicy::Relaxed,
        CloningPolicy::Aggressive,
    ]
}

/// Runs every workload of the suite under every scheme; rows come back
/// grouped per workload in scheme order. Runs in parallel across
/// (workload, scheme) pairs.
pub fn run_performance_suite(ops: u64, footprint: u64, capacity: u64) -> Vec<Vec<RunResult>> {
    let policies = schemes();
    let suite_config = SuiteConfig {
        footprint_bytes: footprint,
        seed: 0xda7a,
    };
    let names: Vec<String> = standard_suite(&suite_config)
        .iter()
        .map(|w| w.name().to_string())
        .collect();

    let mut jobs: Vec<(usize, usize)> = Vec::new();
    for w in 0..names.len() {
        for p in 0..policies.len() {
            jobs.push((w, p));
        }
    }
    let results: Vec<(usize, usize, RunResult)> = soteria_rt::thread::parallel_map(
        jobs,
        soteria_rt::thread::default_threads(),
        |(w, p)| {
            let mut workloads = standard_suite(&suite_config);
            let workload = &mut workloads[w];
            let mut system = System::new(SystemConfig::table3(policies[p].clone(), capacity));
            let result = system.run(workload.as_mut(), ops);
            (w, p, result)
        },
    );

    let mut grouped: Vec<Vec<Option<RunResult>>> = vec![vec![None, None, None]; names.len()];
    for (w, p, r) in results {
        grouped[w][p] = Some(r);
    }
    grouped
        .into_iter()
        .map(|row| row.into_iter().map(|r| r.expect("every job ran")).collect())
        .collect()
}

/// Prints a separator-framed section header.
pub fn header(title: &str) {
    println!("\n{}", "=".repeat(78));
    println!("{title}");
    println!("{}", "=".repeat(78));
}

/// Formats a ratio as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

/// Opens a CSV sink for machine-readable figure data when `SOTERIA_CSV`
/// names a directory (created if missing). Each figure binary writes one
/// `<name>.csv` alongside its human-readable table.
pub fn csv_sink(name: &str) -> Option<std::fs::File> {
    let dir = std::env::var("SOTERIA_CSV").ok()?;
    std::fs::create_dir_all(&dir).ok()?;
    std::fs::File::create(std::path::Path::new(&dir).join(format!("{name}.csv"))).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_constants() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_mixed() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_zero() {
        geomean(&[0.0, 1.0]);
    }

    #[test]
    fn env_default_applies() {
        assert_eq!(env_u64("SOTERIA_SURELY_UNSET_VAR", 7), 7);
    }

    #[test]
    fn csv_sink_disabled_without_env() {
        std::env::remove_var("SOTERIA_CSV");
        assert!(csv_sink("nope").is_none());
    }

    #[test]
    fn csv_sink_writes_when_enabled() {
        use std::io::Write;
        let dir = std::env::temp_dir().join("soteria_csv_test");
        std::env::set_var("SOTERIA_CSV", &dir);
        let mut f = csv_sink("probe").expect("sink");
        writeln!(f, "a,b").unwrap();
        std::env::remove_var("SOTERIA_CSV");
        let content = std::fs::read_to_string(dir.join("probe.csv")).unwrap();
        assert_eq!(content, "a,b\n");
    }

    #[test]
    fn schemes_are_three() {
        let s = schemes();
        assert_eq!(s.len(), 3);
        assert_eq!(s[0].name(), "Baseline");
        assert_eq!(s[1].name(), "SRC");
        assert_eq!(s[2].name(), "SAC");
    }
}
