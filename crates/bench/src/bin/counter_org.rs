//! Counter-organization comparison (§2.4): 64-ary split counters (the
//! paper's/VAULT's choice) vs 128-ary morphable counters (paper reference 36), on
//! identical write streams.
//!
//! Reports storage overhead, re-encryption events and re-encryption
//! *lines* (the actual write cost) for four canonical patterns.
//!
//! ```text
//! cargo run --release -p soteria-bench --bin counter_org
//! ```

use soteria::counter::{BumpOutcome, CounterBlock};
use soteria::morphable::{MorphOutcome, MorphableBlock};
use soteria_bench::header;
use soteria_workloads::Splitmix;

/// A stream of line indices within an 8 KiB region (128 lines).
fn stream(pattern: &str, writes: usize) -> Vec<usize> {
    let mut rng = Splitmix::new(0xc0de);
    (0..writes)
        .map(|i| match pattern {
            "sequential" => i % 128,
            "hot-line" => 7,
            "hot-set" => (rng.below(8)) as usize, // 8 hot lines
            "uniform" => rng.below(128) as usize,
            _ => unreachable!("pattern list is closed"),
        })
        .collect()
}

fn main() {
    header("Counter organizations — split-64 vs morphable-128 (§2.4)");
    println!("storage: split-64 = 1/64 of data (1.56%), morphable-128 = 1/128 (0.78%)");
    let writes = 100_000;
    println!(
        "\n{:>12} | {:>26} | {:>26}",
        "pattern", "split-64 (reenc / lines)", "morphable (reenc / lines)"
    );
    println!("{}", "-".repeat(72));
    for pattern in ["sequential", "hot-line", "hot-set", "uniform"] {
        let lines = stream(pattern, writes);
        // Split counters: two blocks cover the 128-line region.
        let mut split = [CounterBlock::new(), CounterBlock::new()];
        let mut split_reenc = 0u64;
        for &l in &lines {
            if matches!(
                split[l / 64].bump(l % 64),
                BumpOutcome::PageReencrypt { .. }
            ) {
                split_reenc += 1;
            }
        }
        // Morphable: one block covers the region.
        let mut morph = MorphableBlock::new();
        let mut morph_reenc = 0u64;
        let mut morphs = 0u64;
        for &l in &lines {
            match morph.bump(l) {
                MorphOutcome::RegionReencrypt { .. } => morph_reenc += 1,
                MorphOutcome::Morphed { .. } => morphs += 1,
                MorphOutcome::Bumped { .. } => {}
            }
        }
        println!(
            "{:>12} | {:>15} / {:>8} | {:>10} ({} morphs) / {:>8}",
            pattern,
            split_reenc,
            split_reenc * 64,
            morph_reenc,
            morphs,
            morph_reenc * 128,
        );
    }
    println!("\nMorphable counters halve the metadata footprint and absorb skewed");
    println!("traffic via format morphing, but uniformly-hot regions re-encrypt");
    println!("128 lines at a time where split counters re-encrypt 64 — the");
    println!("trade-off that kept VAULT-style split counters in the paper's design.");
}
