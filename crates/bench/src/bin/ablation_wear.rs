//! Ablation: write endurance — where do Soteria's extra writes land, and
//! does wear leveling absorb them? PCM endures ~10^8 writes per cell
//! (§1); the metadata regions see the most concentrated traffic, so the
//! question is whether cloning makes any line meaningfully hotter.
//!
//! ```text
//! SOTERIA_OPS=300000 cargo run --release -p soteria-bench --bin ablation_wear
//! ```

use soteria::clone::CloningPolicy;
use soteria::{DataAddr, Fidelity, SecureMemoryConfig, SecureMemoryController};
use soteria_bench::{env_u64, header};
use soteria_workloads::{SuiteConfig, Workload};

fn run(policy: CloningPolicy, ops: u64) -> (u64, u64, f64, String) {
    let config = SecureMemoryConfig::builder()
        .capacity_bytes(32 << 20)
        .metadata_cache(64 * 1024, 8)
        .cloning(policy)
        .fidelity(Fidelity::Timing)
        .build()
        .expect("valid config");
    let mut c = SecureMemoryController::new(config);
    let suite = SuiteConfig {
        footprint_bytes: 32 << 20,
        seed: 0xab1e,
    };
    let mut w = soteria_workloads::Sps::new(suite.footprint_bytes, suite.seed);
    for _ in 0..ops {
        let op = w.next_op();
        let line = (op.addr / 64) % c.layout().data_lines();
        if op.kind == soteria_workloads::OpKind::Write {
            c.write(DataAddr::new(line), &[0u8; 64]).expect("write");
        } else {
            c.read(DataAddr::new(line)).expect("read");
        }
    }
    let wear = c.device().wear();
    let total = wear.total_writes();
    let (hot_addr, hot_count) = wear.hottest().expect("writes happened");
    let hottest_region = match c.layout().classify(hot_addr) {
        soteria::layout::Region::Data(_) => "data".to_string(),
        soteria::layout::Region::DataMac => "data-MAC".to_string(),
        soteria::layout::Region::LeafMac => "leaf-MAC".to_string(),
        soteria::layout::Region::Meta(m) => format!("L{}", m.level),
        soteria::layout::Region::Shadow(_) => "shadow".to_string(),
        soteria::layout::Region::Clone { meta, .. } => format!("clone(L{})", meta.level),
        soteria::layout::Region::Unmapped => "unmapped".to_string(),
    };
    (total, hot_count, wear.imbalance(), hottest_region)
}

fn main() {
    let ops = env_u64("SOTERIA_OPS", 200_000);
    header(&format!(
        "Ablation — write endurance under cloning (sps, {ops} ops)"
    ));
    println!(
        "{:>9} | {:>10} | {:>12} | {:>10} | {:>12}",
        "scheme", "writes", "hottest line", "imbalance", "hot region"
    );
    println!("{}", "-".repeat(66));
    for policy in [
        CloningPolicy::None,
        CloningPolicy::Relaxed,
        CloningPolicy::Aggressive,
    ] {
        let name = policy.name();
        let (total, hot, imbalance, region) = run(policy, ops);
        println!(
            "{:>9} | {:>10} | {:>12} | {:>9.1}x | {:>12}",
            name, total, hot, imbalance, region
        );
    }
    println!("\nThe hottest cells belong to the *baseline* metadata machinery (a");
    println!("leaf-MAC line serves 8 counter blocks' writebacks; shadow slots take");
    println!("one write per store) — and the hottest line and imbalance are");
    println!("unchanged by SRC/SAC. Clone regions inherit only the eviction-rate");
    println!("traffic, and upper-level clones are written orders of magnitude more");
    println!("rarely still: Soteria does not create a new endurance hot spot.");
    println!("Start-gap wear leveling (NvmDimm::enable_wear_leveling) rotates the");
    println!("remaining hot lines across the physical array.");
}
