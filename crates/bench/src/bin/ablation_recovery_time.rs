//! Ablation: recovery cost — Anubis-style shadow-guided recovery vs an
//! Osiris-style exhaustive whole-memory scan (§2.6 / Table 1), across
//! capacities.
//!
//! The paper chose Anubis for Soteria because it recovers "within
//! seconds" while Osiris "needs to check every encryption"; this binary
//! measures both on the real recovery implementations.
//!
//! ```text
//! cargo run --release -p soteria-bench --bin ablation_recovery_time
//! ```

use soteria::clone::CloningPolicy;
use soteria::recovery::{recover, recover_exhaustive};
use soteria::{DataAddr, SecureMemoryConfig, SecureMemoryController};
use soteria_bench::header;

fn build(capacity: u64) -> SecureMemoryController {
    let config = SecureMemoryConfig::builder()
        .capacity_bytes(capacity)
        .metadata_cache(64 * 1024, 8)
        .cloning(CloningPolicy::Relaxed)
        .build()
        .expect("valid config");
    let mut c = SecureMemoryController::new(config);
    // Fixed dirty working set regardless of capacity, persisted cleanly
    // except for a shallow tail (the state both schemes can recover).
    for i in 0..512u64 {
        c.write(
            DataAddr::new(i * 131 % c.layout().data_lines()),
            &[i as u8; 64],
        )
        .expect("write");
    }
    c.persist_all().expect("persist");
    for i in 0..16u64 {
        c.write(DataAddr::new(i), &[0xcc; 64]).expect("write");
    }
    c
}

fn main() {
    header("Ablation — recovery cost: Anubis shadow vs exhaustive Osiris scan");
    println!(
        "{:>10} | {:>22} | {:>22} | {:>8}",
        "capacity", "shadow (reads / ms)", "exhaustive (reads / ms)", "speedup"
    );
    println!("{}", "-".repeat(76));
    for capacity in [1u64 << 20, 1 << 22, 1 << 24, 1 << 26] {
        let shadow = recover(build(capacity).crash()).1;
        let exhaustive = recover_exhaustive(build(capacity).crash()).1;
        assert!(shadow.is_complete() && exhaustive.is_complete());
        let ms = |ns: u64| ns as f64 / 1e6;
        println!(
            "{:>7} MiB | {:>12} / {:>6.2} | {:>12} / {:>6.2} | {:>7.1}x",
            capacity >> 20,
            shadow.nvm_reads,
            ms(shadow.estimated_duration_ns()),
            exhaustive.nvm_reads,
            ms(exhaustive.estimated_duration_ns()),
            exhaustive.estimated_duration_ns() as f64
                / shadow.estimated_duration_ns().max(1) as f64,
        );
    }
    println!("\nShadow-guided recovery scales with *tracked dirty state* (the cache");
    println!("size), the exhaustive scan with *capacity* — extrapolated to the 8 TB");
    println!("of Fig. 12, the scan costs hours while Anubis stays in seconds, which");
    println!("is why Table 1 pairs lazy ToC with shadow tracking.");
}
