//! Table 2: Soteria metadata cloning depths for SRC and SAC across the
//! nine-level (1 TB) tree, plus the WPQ-atomicity rationale for the cap
//! at depth 5.
//!
//! ```text
//! cargo run -p soteria-bench --bin table2_depths
//! ```

use soteria::clone::CloningPolicy;
use soteria::layout::MAX_CLONE_DEPTH;
use soteria::SecureMemoryConfig;

fn main() {
    soteria_bench::header("Table 2 — cloning depth per tree level (9-level / 1 TB tree)");
    let levels = 9u8;
    print!("{:>6} |", "scheme");
    for l in 1..=levels {
        print!(" {:>3}", format!("L{l}"));
    }
    println!();
    println!("{}", "-".repeat(8 + 4 * levels as usize));
    for policy in [CloningPolicy::Relaxed, CloningPolicy::Aggressive] {
        print!("{:>6} |", policy.name());
        for l in 1..=levels {
            print!(" {:>3}", policy.depth(l, levels));
        }
        println!();
    }
    println!(
        "\nMax depth {} is set by atomic WPQ commit: the minimum WPQ holds 8",
        MAX_CLONE_DEPTH
    );
    println!("entries and a secure write already produces up to 3 (cipher, data MAC,");
    println!("shadow log), so a clone group deeper than 5 could fail to commit");
    println!("atomically across a crash (§3.2.1). The configuration layer enforces it:");
    let err = SecureMemoryConfig::builder()
        .cloning(CloningPolicy::Aggressive)
        .wpq_entries(4)
        .build()
        .unwrap_err();
    println!("  SAC with a 4-entry WPQ is rejected: {err}");
}
