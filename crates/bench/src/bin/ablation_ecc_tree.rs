//! Ablations for the decoupling argument (§3.1 / §6.2) and the tree
//! choice (§2.5 / Table 1):
//!
//! 1. **ECC strength** — SEC-DED-class (corrects 0 whole chips), Chipkill
//!    (1), double-Chipkill (2): Soteria with baseline ECC should beat a
//!    stronger ECC working alone, which is the paper's §6.2 claim.
//! 2. **ToC vs BMT** — BMT intermediate nodes can be recomputed from
//!    children, so only counter-block losses hurt; ToC turns every
//!    intermediate-node UE into unverifiable data. Soteria exists because
//!    the industry ships ToC.
//! 3. **Eager vs lazy tree update** — the Table 1 motivation: eager makes
//!    recovery trivial but multiplies writes.
//!
//! ```text
//! SOTERIA_ITERS=200000 cargo run --release -p soteria-bench --bin ablation_ecc_tree
//! ```

use soteria::analysis::TreeKind;
use soteria::clone::CloningPolicy;
use soteria::config::TreeUpdate;
use soteria::{DataAddr, SecureMemoryConfig, SecureMemoryController};
use soteria_bench::{env_u64, header};
use soteria_faultsim::{run_campaign, CampaignConfig};

fn main() {
    let iterations = env_u64("SOTERIA_ITERS", 100_000);
    let fit = 80.0;

    header(&format!("Ablation 1 — ECC strength vs Soteria (FIT {fit})"));
    println!(
        "{:>16} | {:>12} | {:>12} | {:>12}",
        "ECC", "L_error", "Baseline UDR", "SRC UDR"
    );
    println!("{}", "-".repeat(64));
    for (name, chips) in [
        ("SEC-DED-class", 0usize),
        ("Chipkill", 1),
        ("2x Chipkill", 2),
    ] {
        let mut config = CampaignConfig::table4(fit);
        config.iterations = iterations;
        config.correctable_chips = chips;
        let r = run_campaign(&config, &[CloningPolicy::None, CloningPolicy::Relaxed]);
        println!(
            "{:>16} | {:>12.3e} | {:>12.3e} | {:>12.3e}",
            name, r[0].mean_error_ratio, r[0].mean_udr, r[1].mean_udr
        );
    }
    println!("\n§6.2: 'Soteria with baseline ECC can provide better survivability of");
    println!("security metadata compared to a stronger ECC working alone' — compare");
    println!("SRC-over-Chipkill with the 2x-Chipkill baseline column.");

    header(&format!(
        "Ablation 2 — ToC vs BMT integrity tree (FIT {fit}, baseline ECC)"
    ));
    println!("{:>6} | {:>12} | {:>12}", "tree", "Baseline UDR", "SRC UDR");
    println!("{}", "-".repeat(40));
    for (name, tree) in [("ToC", TreeKind::Toc), ("BMT", TreeKind::Bmt)] {
        let mut config = CampaignConfig::table4(fit);
        config.iterations = iterations;
        config.tree = tree;
        let r = run_campaign(&config, &[CloningPolicy::None, CloningPolicy::Relaxed]);
        println!(
            "{:>6} | {:>12.3e} | {:>12.3e}",
            name, r[0].mean_udr, r[1].mean_udr
        );
    }
    println!("\nBMT can rebuild intermediate nodes (§2.5), so only counter losses");
    println!("count — but ToC is what industry ships, and there Soteria is essential.");

    // At FIT 80, scrub-suppressible pairs (a transient that would expire
    // before its partner arrives) are rarer than the Monte Carlo
    // resolution; run this panel at an elevated rate where the effect is
    // measurable, as fault-environment ablations usually do.
    let scrub_fit = 800.0;
    header(&format!(
        "Ablation 3 — patrol scrubbing vs loss (FIT {scrub_fit}, baseline scheme)"
    ));
    println!(
        "{:>12} | {:>12} | {:>12}",
        "scrub", "L_error", "Baseline UDR"
    );
    println!("{}", "-".repeat(44));
    for (name, interval) in [
        ("none", None),
        ("monthly", Some(30.0 * 24.0)),
        ("weekly", Some(7.0 * 24.0)),
        ("daily", Some(24.0)),
    ] {
        let mut config = CampaignConfig::table4(scrub_fit);
        config.iterations = iterations;
        config.scrub_interval_hours = interval;
        let r = run_campaign(&config, &[CloningPolicy::None]);
        println!(
            "{:>12} | {:>12.3e} | {:>12.3e}",
            name, r[0].mean_error_ratio, r[0].mean_udr
        );
    }
    println!(
        "
Scrubbing repairs lone transient faults before a partner arrives, so"
    );
    println!("fewer two-fault coincidences defeat Chipkill. It cannot help against");
    println!("permanent-fault pairs — which is where Soteria's clones still matter.");

    header("Ablation 4 — eager vs lazy tree update (write amplification)");
    let stores = 2_000u64;
    println!(
        "{:>6} | {:>10} | {:>14} | {:>12}",
        "mode", "NVM writes", "writes/store", "shadow"
    );
    println!("{}", "-".repeat(52));
    for (name, update) in [
        ("lazy", TreeUpdate::Lazy),
        ("triad1", TreeUpdate::Triad { persist_levels: 1 }),
        ("triad2", TreeUpdate::Triad { persist_levels: 2 }),
        ("eager", TreeUpdate::Eager),
    ] {
        let config = SecureMemoryConfig::builder()
            .capacity_bytes(1 << 24)
            .metadata_cache(64 * 1024, 8)
            .tree_update(update)
            .build()
            .expect("valid config");
        let mut c = SecureMemoryController::new(config);
        for i in 0..stores {
            c.write(
                DataAddr::new((i * 64) % c.layout().data_lines()),
                &[1u8; 64],
            )
            .expect("write");
        }
        let s = c.stats();
        println!(
            "{:>6} | {:>10} | {:>14.2} | {:>12}",
            name,
            s.nvm_writes,
            s.nvm_writes as f64 / stores as f64,
            s.writes.shadow
        );
    }
    println!("\nLazy + Anubis shadow is Table 1's choice: eager update pays one");
    println!("writeback per tree level per store; Triad-NVM [5] interpolates,");
    println!("trading write amplification for less recovery work per level.");
}
