//! Figure 3: expected lost/unverifiable data vs number of uncorrectable
//! errors, secure vs non-secure, for a 4 TB memory.
//!
//! The paper's headline: the secure system is ~12x less resilient because
//! every tree level contributes as much expected loss as the whole data
//! region.
//!
//! ```text
//! cargo run -p soteria-bench --bin fig03_expected_loss
//! ```

use soteria::analysis::ExpectedLossModel;

fn main() {
    soteria_bench::header("Figure 3 — expected data loss vs uncorrectable errors (4 TB)");
    let model = ExpectedLossModel::new(4u64 << 40);
    println!(
        "tree levels (excl. root): {}   amplification: {:.1}x (paper: ~12x)",
        model.levels(),
        model.amplification()
    );
    println!(
        "\n{:>8} | {:>22} | {:>22}",
        "errors", "non-secure loss (KB)", "secure loss (KB)"
    );
    println!("{}", "-".repeat(60));
    for errors in [1u64, 2, 4, 6, 8, 10, 16, 32] {
        println!(
            "{:>8} | {:>22.3} | {:>22.3}",
            errors,
            model.nonsecure_loss_bytes(errors) / 1024.0,
            model.secure_loss_bytes(errors) / 1024.0,
        );
    }
    println!(
        "\nEach of the {} tree levels adds ~1 data-region-equivalent of",
        model.levels()
    );
    println!("expected loss; MAC lines add one more (footnote 2 of the paper).");
}
