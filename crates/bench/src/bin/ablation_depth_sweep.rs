//! Ablation: uniform clone depth 1–5 vs UDR (generalizes Table 2 — how
//! much does each additional clone buy?), plus the shadow-entry
//! duplication ablation and the WPQ-size sensitivity check.
//!
//! ```text
//! SOTERIA_ITERS=200000 cargo run --release -p soteria-bench --bin ablation_depth_sweep
//! ```

use soteria::clone::CloningPolicy;
use soteria_bench::{env_u64, header};
use soteria_faultsim::{estimate_clone_udr, run_campaign, CampaignConfig};

fn main() {
    let iterations = env_u64("SOTERIA_ITERS", 100_000);
    let fit = 80.0;

    header(&format!(
        "Ablation — uniform clone depth vs UDR (FIT {fit})"
    ));
    // Depth 1 (no clones) from the ordinary campaign; depths >= 2 need
    // the rare-event estimator (their losses require co-active large
    // faults that naive sampling cannot resolve).
    let mut config = CampaignConfig::table4(fit);
    config.iterations = iterations;
    let base = run_campaign(&config, &[CloningPolicy::Custom(vec![1])])[0].mean_udr;
    let clone_policies: Vec<CloningPolicy> =
        (2..=5u8).map(|d| CloningPolicy::Custom(vec![d])).collect();
    let rare = estimate_clone_udr(&config, &clone_policies, iterations.min(3000), 5);
    println!("{:>6} | {:>12} | {:>14}", "depth", "mean UDR", "vs depth 1");
    println!("{}", "-".repeat(40));
    println!("{:>6} | {:>12.3e} | {:>14}", 1, base, "1.0x");
    for (d, r) in (2..=5).zip(rare.iter()) {
        let gain = if r.mean_udr > 0.0 && base > 0.0 {
            format!("{:.1e}x", base / r.mean_udr)
        } else {
            "inf".into()
        };
        println!("{:>6} | {:>12.3e} | {:>14}", d, r.mean_udr, gain);
    }
    println!("\nThe first clone buys the most (independent-failure product law);");
    println!("beyond depth 2 only correlated rank/bank faults remain, so returns");
    println!("diminish — exactly why SRC is already within ~20x of SAC (Fig. 11).");

    header("Ablation — WPQ size vs maximum atomically-commitable depth");
    for wpq in [4usize, 8, 16, 64] {
        let ok = soteria::SecureMemoryConfig::builder()
            .cloning(CloningPolicy::Aggressive)
            .wpq_entries(wpq)
            .build()
            .is_ok();
        println!(
            "WPQ {wpq:>3} entries: SAC (depth 5) {}",
            if ok { "commits" } else { "REJECTED" }
        );
    }
}
