//! Figure 12: total data loss (`L_error` + `L_unverifiable`) translated
//! to an 8 TB NVM main memory, for Non-Secure, Secure Baseline, SRC and
//! SAC.
//!
//! Paper shape: the secure baseline loses ~5x more data than non-secure
//! (verification failures on top of plain errors); SRC and SAC pull
//! `L_total` back to essentially `L_error`.
//!
//! ```text
//! SOTERIA_ITERS=1000000 cargo run --release -p soteria-bench --bin fig12_data_loss
//! ```

use soteria::clone::CloningPolicy;
use soteria_bench::{env_u64, header};
use soteria_faultsim::{estimate_clone_udr, run_campaign, CampaignConfig};

fn main() {
    let iterations = env_u64("SOTERIA_ITERS", 100_000);
    let fit = 80.0;
    let total_bytes = 8.0 * (1u64 << 40) as f64;

    header(&format!(
        "Figure 12 — data loss for an 8 TB NVM (FIT {fit}, {iterations} iterations)"
    ));
    let mut config = CampaignConfig::table4(fit);
    config.iterations = iterations;
    let results = run_campaign(
        &config,
        &[
            CloningPolicy::None,
            CloningPolicy::Relaxed,
            CloningPolicy::Aggressive,
        ],
    );
    // Clone-scheme UDRs are dominated by rare >= 2-large-fault events that
    // naive sampling misses; resolve them with the importance-sampled
    // estimator (see fig11's rare-event panel).
    let rare = estimate_clone_udr(
        &config,
        &[CloningPolicy::Relaxed, CloningPolicy::Aggressive],
        env_u64("SOTERIA_RARE", 3000),
        5,
    );
    // The 16 GiB campaign DIMM scales to 8 TB as independent DIMMs: the
    // loss *ratios* carry over directly (as in the paper's translation).
    let l_error = results[0].mean_error_ratio * total_bytes;
    println!(
        "\n{:>16} | {:>14} | {:>16} | {:>14} | {:>8}",
        "scheme", "L_error (MB)", "L_unverif (MB)", "L_total (MB)", "vs non-sec"
    );
    println!("{}", "-".repeat(82));
    let mb = 1024.0 * 1024.0;
    println!(
        "{:>16} | {:>14.3} | {:>16.3} | {:>14.3} | {:>8.2}x",
        "Non-Secure",
        l_error / mb,
        0.0,
        l_error / mb,
        1.0
    );
    for r in &results {
        let udr = match r.policy {
            CloningPolicy::Relaxed => r.mean_udr.max(rare[0].mean_udr),
            CloningPolicy::Aggressive => r.mean_udr.max(rare[1].mean_udr),
            _ => r.mean_udr,
        };
        let unverifiable = udr * total_bytes;
        let total = l_error + unverifiable;
        let name = match r.policy {
            CloningPolicy::None => "Secure Baseline",
            CloningPolicy::Relaxed => "SRC",
            CloningPolicy::Aggressive => "SAC",
            CloningPolicy::Custom(_) => "Custom",
        };
        println!(
            "{:>16} | {:>14.3} | {:>16.3} | {:>14.3} | {:>8.2}x",
            name,
            l_error / mb,
            unverifiable / mb,
            total / mb,
            total / l_error,
        );
    }
    println!("\nPaper: Secure Baseline loses ~5.06x the non-secure system; SRC/SAC keep");
    println!("L_total essentially equal to L_error.");
}
