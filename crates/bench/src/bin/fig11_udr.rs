//! Figure 11: Unverifiable Data Ratio vs failure rate (FIT 1–80) for the
//! secure baseline, SRC and SAC, under Chipkill over five simulated
//! years — plus the Table 4 FaultSim configuration.
//!
//! Paper numbers at FIT 80: baseline ~3e-5, SRC ~2.66e-8, SAC ~1.5e-9;
//! geometric-mean UDR reductions ~2.5e3 (SRC) and ~3.7e4 (SAC).
//!
//! ```text
//! SOTERIA_ITERS=1000000 cargo run --release -p soteria-bench --bin fig11_udr
//! ```

use soteria::clone::CloningPolicy;
use std::io::Write;

use soteria_bench::{csv_sink, env_u64, geomean, header};
use soteria_faultsim::{cluster_mtbf_hours, estimate_clone_udr, run_campaign, CampaignConfig};

fn main() {
    let iterations = env_u64("SOTERIA_ITERS", 100_000);

    header("Table 4 — FaultSim configuration");
    println!("Chips 18 (9/rank x 2 ranks) | banks 16 | rows 16384 | cols 4096");
    println!("Repair: Chipkill-Correct | failure distribution: Hopper [39]");
    println!("Data block 512 bits | 5-year campaigns | {iterations} iterations/FIT");

    header("Figure 11 — UDR vs FIT (Baseline / SRC / SAC)");
    println!(
        "{:>5} | {:>10} | {:>12} | {:>12} | {:>12} | {:>9} {:>9}",
        "FIT", "MTBF(h)", "Baseline", "SRC", "SAC", "SRC gain", "SAC gain"
    );
    println!("{}", "-".repeat(86));
    let mut csv = csv_sink("fig11");
    if let Some(f) = &mut csv {
        let _ = writeln!(f, "fit,baseline_udr,src_udr,sac_udr");
    }
    let mut src_gains = Vec::new();
    let mut sac_gains = Vec::new();
    for fit in [1.0f64, 5.0, 10.0, 20.0, 40.0, 60.0, 80.0] {
        let mut config = CampaignConfig::table4(fit);
        config.iterations = iterations;
        let results = run_campaign(
            &config,
            &[
                CloningPolicy::None,
                CloningPolicy::Relaxed,
                CloningPolicy::Aggressive,
            ],
        );
        let (base, src, sac) = (&results[0], &results[1], &results[2]);
        let mtbf = cluster_mtbf_hours(fit, 20_000, 4, 18);
        let gain = |udr: f64| {
            if udr > 0.0 && base.mean_udr > 0.0 {
                format!("{:.1e}", base.mean_udr / udr)
            } else if base.mean_udr > 0.0 {
                "inf".to_string()
            } else {
                "-".to_string()
            }
        };
        if let Some(f) = &mut csv {
            let _ = writeln!(
                f,
                "{},{:e},{:e},{:e}",
                fit, base.mean_udr, src.mean_udr, sac.mean_udr
            );
        }
        if src.mean_udr > 0.0 && base.mean_udr > 0.0 {
            src_gains.push(base.mean_udr / src.mean_udr);
        }
        if sac.mean_udr > 0.0 && base.mean_udr > 0.0 {
            sac_gains.push(base.mean_udr / sac.mean_udr);
        }
        println!(
            "{:>5} | {:>10.1} | {:>12.3e} | {:>12.3e} | {:>12.3e} | {:>9} {:>9}",
            fit,
            mtbf,
            base.mean_udr,
            src.mean_udr,
            sac.mean_udr,
            gain(src.mean_udr),
            gain(sac.mean_udr),
        );
    }
    if !src_gains.is_empty() {
        println!(
            "\ngeomean UDR reduction (where both nonzero): SRC {:.2e}",
            geomean(&src_gains)
        );
    }
    if !sac_gains.is_empty() {
        println!(
            "geomean UDR reduction (where both nonzero): SAC {:.2e}",
            geomean(&sac_gains)
        );
    }
    println!("\nPaper: SRC 2.5e3x and SAC 3.7e4x geomean reduction; at low FIT Soteria");
    println!("shows *no* metadata loss at all while the baseline already loses data.");
    println!("(Clone-scheme losses need >= 2 co-active bank-scale faults; naive Monte");
    println!("Carlo rarely samples them — the rare-event panel below resolves them.)");

    header("Figure 11 (rare-event panel) — clone-scheme UDR at FIT 80");
    let samples = env_u64("SOTERIA_RARE", 3000);
    let config = CampaignConfig::table4(80.0);
    let rare = estimate_clone_udr(
        &config,
        &[CloningPolicy::Relaxed, CloningPolicy::Aggressive],
        samples,
        5,
    );
    let mut base_config = CampaignConfig::table4(80.0);
    base_config.iterations = iterations;
    let base = run_campaign(&base_config, &[CloningPolicy::None]);
    println!(
        "importance sampling conditioned on k >= 2 large faults (lambda = {:.4}),",
        rare[0].lambda_large
    );
    println!("{samples} samples per k, exact Poisson reweighting:\n");
    println!("{:>9} | {:>12} | {:>14}", "scheme", "UDR", "vs baseline");
    println!("{}", "-".repeat(44));
    println!(
        "{:>9} | {:>12.3e} | {:>14}",
        "Baseline", base[0].mean_udr, "1x"
    );
    for r in &rare {
        println!(
            "{:>9} | {:>12.3e} | {:>13.2e}x",
            r.policy.name(),
            r.mean_udr,
            base[0].mean_udr / r.mean_udr.max(f64::MIN_POSITIVE),
        );
    }
    println!("\nPaper at FIT 80: baseline ~3e-5, SRC 2.66e-8, SAC 1.5e-9.");
}
