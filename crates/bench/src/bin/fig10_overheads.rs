//! Figure 10: (a) execution-time overhead of SRC/SAC over the secure
//! baseline, (b) NVM write overhead, (c) metadata-cache evictions per
//! memory request — plus the Table 3 system configuration the runs use.
//!
//! Paper numbers: SRC ≈ 1 % slowdown, SAC ≈ 1.1 %; write overheads
//! ≈ 4.3 % / 4.4 %; evictions ≈ 1.3 % of memory operations on average.
//!
//! ```text
//! SOTERIA_OPS=1000000 cargo run --release -p soteria-bench --bin fig10_overheads
//! ```

use std::io::Write;

use soteria_bench::{csv_sink, env_u64, geomean, header, pct, run_performance_suite};

fn main() {
    let ops = env_u64("SOTERIA_OPS", 200_000);
    let footprint = 64u64 << 20;
    let capacity = 64u64 << 20;

    header("Table 3 — simulated system");
    println!("CPU: x86-64 trace-driven, 2.67 GHz | L1 32kB/2w 2cyc | L2 512kB/8w 20cyc");
    println!("LLC 8MB/64w 32cyc | PCM 150ns read / 300ns write | 16 banks");
    println!("AES counter mode, 64-ary split counters | ToC arity 8 | md-cache 512kB/8w");
    println!(
        "(protected capacity scaled to the {} MiB workload footprint)",
        footprint >> 20
    );

    header(&format!(
        "Figure 10 — Soteria overheads ({ops} ops/workload)"
    ));
    let rows = run_performance_suite(ops, footprint, capacity);
    let mut csv = csv_sink("fig10");
    if let Some(f) = &mut csv {
        let _ = writeln!(
            f,
            "workload,src_time,sac_time,src_writes,sac_writes,evict_per_op"
        );
    }

    println!(
        "\n{:>12} | {:>10} {:>10} | {:>10} {:>10} | {:>9}",
        "workload", "SRC time", "SAC time", "SRC wr", "SAC wr", "evict/op"
    );
    println!("{}", "-".repeat(74));
    let mut src_time = Vec::new();
    let mut sac_time = Vec::new();
    let mut src_wr = Vec::new();
    let mut sac_wr = Vec::new();
    let mut evictions = Vec::new();
    for row in &rows {
        let (base, src, sac) = (&row[0], &row[1], &row[2]);
        let ts = src.cycles as f64 / base.cycles as f64;
        let ta = sac.cycles as f64 / base.cycles as f64;
        // A cache-resident volatile workload can produce zero NVM writes
        // in a short run: its write overhead is then trivially 1.0.
        let wratio = |x: u64| {
            if base.nvm_writes == 0 {
                1.0
            } else {
                x as f64 / base.nvm_writes as f64
            }
        };
        let ws = wratio(src.nvm_writes);
        let wa = wratio(sac.nvm_writes);
        println!(
            "{:>12} | {:>10.4} {:>10.4} | {:>10.4} {:>10.4} | {:>9}",
            base.workload,
            ts,
            ta,
            ws,
            wa,
            pct(base.evictions_per_op()),
        );
        if let Some(f) = &mut csv {
            let _ = writeln!(
                f,
                "{},{:.6},{:.6},{:.6},{:.6},{:.6}",
                base.workload,
                ts,
                ta,
                ws,
                wa,
                base.evictions_per_op()
            );
        }
        src_time.push(ts);
        sac_time.push(ta);
        src_wr.push(ws);
        sac_wr.push(wa);
        evictions.push(base.evictions_per_op());
    }
    println!("{}", "-".repeat(74));
    println!(
        "{:>12} | {:>10.4} {:>10.4} | {:>10.4} {:>10.4} | {:>9}",
        "geomean",
        geomean(&src_time),
        geomean(&sac_time),
        geomean(&src_wr),
        geomean(&sac_wr),
        pct(evictions.iter().sum::<f64>() / evictions.len() as f64),
    );
    println!("\nFig. 10a (paper): SRC ~1.01x, SAC ~1.011x execution time");
    println!("Fig. 10b (paper): SRC ~1.043x, SAC ~1.044x NVM writes");
    println!("Fig. 10c (paper): ~1.3% metadata evictions per memory op on average");
}
