//! Figure 4: percentage of metadata-cache evictions per Merkle-tree level
//! under the lazy update scheme, for every workload.
//!
//! The shape the paper reports: the leaf (counter) level dominates,
//! upper levels are evicted (and thus cloned) only rarely — this is the
//! property that makes SAC's deep cloning nearly free.
//!
//! ```text
//! SOTERIA_OPS=500000 cargo run --release -p soteria-bench --bin fig04_eviction_levels
//! ```

use soteria_bench::{env_u64, header, run_performance_suite};

fn main() {
    let ops = env_u64("SOTERIA_OPS", 200_000);
    let footprint = 64u64 << 20;
    let capacity = 64u64 << 20;
    header(&format!(
        "Figure 4 — evictions per tree level, lazy update ({ops} ops/workload)"
    ));
    let rows = run_performance_suite(ops, footprint, capacity);
    let levels = rows
        .iter()
        .map(|r| r[0].evictions_by_level.len())
        .max()
        .unwrap_or(0);
    print!("{:>12} |", "workload");
    for l in 1..=levels {
        print!(" {:>7} |", format!("L{l}"));
    }
    println!(" {:>10}", "evictions");
    println!("{}", "-".repeat(14 + 10 * levels + 12));
    let mut sums = vec![0.0f64; levels];
    for row in &rows {
        let base = &row[0]; // baseline run defines the eviction shape
        let f = base.eviction_fractions();
        print!("{:>12} |", base.workload);
        for (l, sum) in sums.iter_mut().enumerate() {
            let v = f.get(l).copied().unwrap_or(0.0);
            *sum += v;
            print!(" {:>6.2}% |", v * 100.0);
        }
        println!(" {:>10}", base.total_evictions());
    }
    print!("{:>12} |", "mean");
    for s in &sums {
        print!(" {:>6.2}% |", s / rows.len() as f64 * 100.0);
    }
    println!();
    println!("\nPaper shape: lowest two levels >10% each, next two 1-10%, top levels <1%.");
}
