//! Supplemental: the total cost of memory security (non-secure NVM vs
//! the secure baseline vs SRC/SAC), per workload.
//!
//! The paper normalizes Fig. 10 to the *secure* baseline because the
//! security machinery is a given for NVM (§1); this binary adds the
//! classical secure-memory-overhead view so the two costs — security
//! itself vs Soteria's cloning on top — can be compared directly.
//!
//! ```text
//! SOTERIA_OPS=500000 cargo run --release -p soteria-bench --bin security_cost
//! ```

use soteria::clone::CloningPolicy;
use soteria_bench::{env_u64, geomean, header};
use soteria_simcpu::{System, SystemConfig};
use soteria_workloads::{standard_suite, SuiteConfig};

fn main() {
    let ops = env_u64("SOTERIA_OPS", 200_000);
    let footprint = 64u64 << 20;
    header(&format!(
        "Security cost — non-secure vs secure baseline vs SRC ({ops} ops/workload)"
    ));
    println!(
        "{:>12} | {:>12} | {:>14} | {:>12}",
        "workload", "insec cyc/op", "secure vs insec", "SRC vs secure"
    );
    println!("{}", "-".repeat(60));
    let suite_config = SuiteConfig {
        footprint_bytes: footprint,
        seed: 0xda7a,
    };
    let names: Vec<String> = standard_suite(&suite_config)
        .iter()
        .map(|w| w.name().to_string())
        .collect();
    let mut sec_ratios = Vec::new();
    let mut src_ratios = Vec::new();
    for name in &names {
        let run = |policy: Option<CloningPolicy>| {
            let config =
                SystemConfig::table3(policy.clone().unwrap_or(CloningPolicy::None), footprint);
            let mut system = match policy {
                Some(_) => System::new(config),
                None => System::insecure(config),
            };
            let mut workloads = standard_suite(&suite_config);
            let w = workloads
                .iter_mut()
                .find(|w| w.name() == name)
                .expect("suite name");
            system.run(w.as_mut(), ops).cycles
        };
        let insecure = run(None);
        let secure = run(Some(CloningPolicy::None));
        let src = run(Some(CloningPolicy::Relaxed));
        let sec_ratio = secure as f64 / insecure as f64;
        let src_ratio = src as f64 / secure as f64;
        sec_ratios.push(sec_ratio);
        src_ratios.push(src_ratio);
        println!(
            "{:>12} | {:>12.1} | {:>13.2}x | {:>11.4}x",
            name,
            insecure as f64 / ops as f64,
            sec_ratio,
            src_ratio,
        );
    }
    println!("{}", "-".repeat(60));
    println!(
        "{:>12} | {:>12} | {:>13.2}x | {:>11.4}x",
        "geomean",
        "",
        geomean(&sec_ratios),
        geomean(&src_ratios),
    );
    println!("\nThe security machinery itself (encryption + integrity + crash");
    println!("consistency) is the expensive part — flush-heavy persistent workloads");
    println!("pay multiples; cached read traffic pays little. Soteria's cloning");
    println!("adds ~1% on top of that baseline, which is the paper's whole point:");
    println!("metadata resilience is nearly free once the machinery exists.");
}
