//! CI gate over the microbenchmark JSON: `bench_check <fresh> <baseline>`.
//!
//! Fails (exit 1) when either document is malformed — wrong schema,
//! missing fields, non-positive medians — or when any kernel present in
//! the baseline is missing from the fresh run, or regressed beyond
//! `SOTERIA_BENCH_MAX_REGRESSION` × its baseline median (default 2.0; CI
//! machines are noisy, so the gate is a tripwire for order-of-magnitude
//! mistakes, not a 5% performance SLO).

use std::process::ExitCode;

use soteria_rt::json::Json;

const SCHEMA: &str = "soteria-bench-kernels/v1";

/// One kernel's figures pulled out of a validated document.
struct Kernel {
    name: String,
    median_ns: f64,
}

fn load(path: &str) -> Result<Vec<Kernel>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{path}: missing \"schema\""))?;
    if schema != SCHEMA {
        return Err(format!("{path}: schema {schema:?}, expected {SCHEMA:?}"));
    }
    let kernels = doc
        .get("kernels")
        .and_then(Json::entries)
        .ok_or_else(|| format!("{path}: missing \"kernels\" object"))?;
    if kernels.is_empty() {
        return Err(format!("{path}: \"kernels\" is empty"));
    }
    kernels
        .iter()
        .map(|(name, entry)| {
            let median_ns = entry
                .get("median_ns")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("{path}: kernel {name:?} lacks \"median_ns\""))?;
            if !median_ns.is_finite() || median_ns <= 0.0 {
                return Err(format!("{path}: kernel {name:?} median {median_ns} <= 0"));
            }
            Ok(Kernel {
                name: name.clone(),
                median_ns,
            })
        })
        .collect()
}

fn run(fresh_path: &str, baseline_path: &str) -> Result<(), String> {
    let fresh = load(fresh_path)?;
    let baseline = load(baseline_path)?;
    let max_regression: f64 = std::env::var("SOTERIA_BENCH_MAX_REGRESSION")
        .ok()
        .map(|v| {
            v.parse()
                .map_err(|_| format!("SOTERIA_BENCH_MAX_REGRESSION {v:?} is not a number"))
        })
        .transpose()?
        .unwrap_or(2.0);

    println!(
        "{:<38} {:>14} {:>14} {:>8}",
        "kernel", "baseline ns", "fresh ns", "ratio"
    );
    let mut failures = Vec::new();
    for base in &baseline {
        let Some(now) = fresh.iter().find(|k| k.name == base.name) else {
            failures.push(format!("kernel {:?} missing from {fresh_path}", base.name));
            continue;
        };
        let ratio = now.median_ns / base.median_ns;
        let flag = if ratio > max_regression { "  REGRESSED" } else { "" };
        println!(
            "{:<38} {:>14.1} {:>14.1} {:>7.2}x{flag}",
            base.name, base.median_ns, now.median_ns, ratio
        );
        if ratio > max_regression {
            failures.push(format!(
                "kernel {:?} regressed {ratio:.2}x (limit {max_regression}x)",
                base.name
            ));
        }
    }
    if failures.is_empty() {
        println!(
            "OK: {} kernels within {max_regression}x of baseline",
            baseline.len()
        );
        Ok(())
    } else {
        Err(failures.join("\n"))
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let [_, fresh, baseline] = args.as_slice() else {
        eprintln!("usage: bench_check <fresh.json> <baseline.json>");
        return ExitCode::FAILURE;
    };
    match run(fresh, baseline) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("bench_check failed:\n{message}");
            ExitCode::FAILURE
        }
    }
}
