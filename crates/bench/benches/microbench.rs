//! Micro-benchmarks for the building blocks: the crypto engine,
//! Reed–Solomon/Chipkill codecs, the secure controller datapath, and one
//! FaultSim iteration. These quantify simulator throughput (they are not
//! paper figures — the `fig*` binaries regenerate those).
//!
//! Runs on the in-tree wall-clock harness ([`soteria_rt::bench`]):
//! calibrated batches, warmup, median/p95 per-iteration times. Tune with
//! `SOTERIA_BENCH_SAMPLES` / `SOTERIA_BENCH_WARMUP_MS` /
//! `SOTERIA_BENCH_MIN_BATCH_US`.

use soteria_rt::bench::{black_box, Harness};

use soteria::clone::CloningPolicy;
use soteria::{DataAddr, Fidelity, SecureMemoryConfig, SecureMemoryController};
use soteria_crypto::ctr::CounterModeCipher;
use soteria_crypto::mac::MacEngine;
use soteria_crypto::sha256::Sha256;
use soteria_crypto::{EncryptionKey, MacKey};
use soteria_ecc::chipkill::{ChipkillCodec, LineCodec};
use soteria_faultsim::{run_campaign, CampaignConfig};

fn bench_crypto(c: &mut Harness) {
    let cipher = CounterModeCipher::new(EncryptionKey::from_bytes([1; 16]));
    let mac = MacEngine::new(MacKey::from_bytes([2; 32]));
    let line = [0xabu8; 64];
    c.bench_function("aes_ctr_encrypt_line", |b| {
        b.iter(|| cipher.encrypt_line(black_box(&line), black_box(0x40), black_box(7)))
    });
    c.bench_function("sha256_64B", |b| b.iter(|| Sha256::digest(black_box(&line))));
    c.bench_function("data_mac_64bit", |b| {
        b.iter(|| mac.data_mac(black_box(0x40), black_box(&line), black_box(7)))
    });
}

fn bench_gcm(c: &mut Harness) {
    use soteria_crypto::gcm::AesGcm;
    let gcm = AesGcm::new([3; 16]);
    let line = [0x42u8; 64];
    c.bench_function("aes_gcm_line_tag", |b| {
        b.iter(|| gcm.line_tag(black_box(0x40), black_box(&line), black_box(9)))
    });
    let nonce = [1u8; 12];
    c.bench_function("aes_gcm_seal_64B", |b| {
        b.iter(|| gcm.seal(black_box(&nonce), b"aad", black_box(&line)))
    });
}

fn bench_chipkill(c: &mut Harness) {
    let codec = ChipkillCodec::table4();
    let line = [0x5au8; 64];
    let clean = codec.encode_line(&line);
    let mut faulty = clean.clone();
    for (i, b) in faulty.iter_mut().enumerate() {
        if i % 18 == 3 {
            *b ^= 0x77;
        }
    }
    c.bench_function("chipkill_encode_line", |b| {
        b.iter(|| codec.encode_line(black_box(&line)))
    });
    c.bench_function("chipkill_decode_clean", |b| {
        b.iter(|| codec.decode_line(black_box(&clean)))
    });
    c.bench_function("chipkill_decode_chip_kill", |b| {
        b.iter(|| codec.decode_line(black_box(&faulty)))
    });
    let mut two_dead = clean.clone();
    for (i, b) in two_dead.iter_mut().enumerate() {
        let chip = i % 18;
        if chip == 3 || chip == 11 {
            *b ^= 0x77;
        }
    }
    c.bench_function("chipkill_decode_two_marked_erasures", |b| {
        b.iter(|| codec.decode_line_marked(black_box(&two_dead), &[3, 11]))
    });
}

fn controller(fidelity: Fidelity, policy: CloningPolicy) -> SecureMemoryController {
    let config = SecureMemoryConfig::builder()
        .capacity_bytes(1 << 24)
        .metadata_cache(64 * 1024, 8)
        .cloning(policy)
        .fidelity(fidelity)
        .build()
        .expect("valid config");
    SecureMemoryController::new(config)
}

fn bench_controller(c: &mut Harness) {
    for (name, fidelity) in [
        ("functional", Fidelity::Functional),
        ("timing", Fidelity::Timing),
    ] {
        let mut ctrl = controller(fidelity, CloningPolicy::Aggressive);
        let mut i = 0u64;
        c.bench_function(&format!("controller_write_{name}"), |b| {
            b.iter(|| {
                i = (i + 64) % ctrl.layout().data_lines();
                ctrl.write(DataAddr::new(i), black_box(&[9u8; 64]))
                    .expect("write")
            })
        });
        let mut ctrl = controller(fidelity, CloningPolicy::Aggressive);
        for j in 0..1024u64 {
            ctrl.write(DataAddr::new(j), &[1u8; 64])
                .expect("warm-up write");
        }
        let mut j = 0u64;
        c.bench_function(&format!("controller_read_{name}"), |b| {
            b.iter(|| {
                j = (j + 1) % 1024;
                ctrl.read(DataAddr::new(j)).expect("read")
            })
        });
    }
}

fn bench_faultsim(c: &mut Harness) {
    let mut config = CampaignConfig::table4(80.0);
    config.iterations = 200;
    config.threads = 1;
    config.capacity_bytes = 1 << 30;
    c.bench_function("faultsim_200_iterations_fit80", |b| {
        b.iter(|| run_campaign(black_box(&config), &[CloningPolicy::Relaxed]))
    });
}

fn main() {
    let mut harness = Harness::new();
    bench_crypto(&mut harness);
    bench_gcm(&mut harness);
    bench_chipkill(&mut harness);
    bench_controller(&mut harness);
    bench_faultsim(&mut harness);
    harness.finish();
}
