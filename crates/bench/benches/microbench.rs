//! Micro-benchmarks for the building blocks: the crypto engine,
//! Reed–Solomon/Chipkill codecs, the secure controller datapath, and one
//! FaultSim iteration. These quantify simulator throughput (they are not
//! paper figures — the `fig*` binaries regenerate those).
//!
//! Runs on the in-tree wall-clock harness ([`soteria_rt::bench`]):
//! calibrated batches, warmup, median/p95 per-iteration times. Tune with
//! `SOTERIA_BENCH_SAMPLES` / `SOTERIA_BENCH_WARMUP_MS` /
//! `SOTERIA_BENCH_MIN_BATCH_US`.
//!
//! Hot kernels are benchmarked in **pairs**: `<name>` is the optimized
//! path and `<name>_ref` the bit-identical reference implementation it
//! replaced (equivalence is proven by tests in the owning crates). After
//! the run, every result — plus the `median(ref) / median(optimized)`
//! speedup for each pair — is written as JSON to `$SOTERIA_BENCH_JSON`
//! (default `BENCH_kernels.json` in the working directory) so CI can diff
//! against the committed baseline with the `bench_check` binary.

use soteria_rt::bench::{black_box, Harness, Stats};
use soteria_rt::json::Json;

use soteria::clone::CloningPolicy;
use soteria::mdcache::{CachedBlock, MetadataCache};
use soteria::{DataAddr, Fidelity, MetaId, SecureMemoryConfig, SecureMemoryController};
use soteria_crypto::aes::Aes128;
use soteria_crypto::ctr::CounterModeCipher;
use soteria_crypto::mac::MacEngine;
use soteria_crypto::sha256::Sha256;
use soteria_crypto::{EncryptionKey, MacKey};
use soteria_ecc::chipkill::{ChipkillCodec, LineCodec};
use soteria_ecc::rs::ReedSolomon;
use soteria_faultsim::{run_campaign, CampaignConfig};
use soteria_nvm::LineAddr;

fn bench_crypto(c: &mut Harness) {
    let aes = Aes128::new([4; 16]);
    let block = [0x6cu8; 16];
    c.bench_function("aes128_encrypt_block", |b| {
        b.iter(|| aes.encrypt_block(black_box(&block)))
    });
    c.bench_function("aes128_encrypt_block_ref", |b| {
        b.iter(|| aes.encrypt_block_reference(black_box(&block)))
    });
    let cipher = CounterModeCipher::new(EncryptionKey::from_bytes([1; 16]));
    let mac = MacEngine::new(MacKey::from_bytes([2; 32]));
    let line = [0xabu8; 64];
    c.bench_function("aes_ctr_encrypt_line", |b| {
        b.iter(|| cipher.encrypt_line(black_box(&line), black_box(0x40), black_box(7)))
    });
    c.bench_function("aes_ctr_encrypt_line_ref", |b| {
        b.iter(|| cipher.encrypt_line_reference(black_box(&line), black_box(0x40), black_box(7)))
    });
    c.bench_function("sha256_64B", |b| b.iter(|| Sha256::digest(black_box(&line))));
    c.bench_function("sha256_64B_ref", |b| {
        b.iter(|| Sha256::digest_portable(black_box(&line)))
    });
    c.bench_function("data_mac_64bit", |b| {
        b.iter(|| mac.data_mac(black_box(0x40), black_box(&line), black_box(7)))
    });
}

fn bench_gcm(c: &mut Harness) {
    use soteria_crypto::gcm::AesGcm;
    let gcm = AesGcm::new([3; 16]);
    let line = [0x42u8; 64];
    c.bench_function("aes_gcm_line_tag", |b| {
        b.iter(|| gcm.line_tag(black_box(0x40), black_box(&line), black_box(9)))
    });
    let nonce = [1u8; 12];
    c.bench_function("aes_gcm_seal_64B", |b| {
        b.iter(|| gcm.seal(black_box(&nonce), b"aad", black_box(&line)))
    });
    // The GHASH field multiply itself, dispatch vs. the shifted-table
    // reference — tracks the PCLMUL path the same way
    // `aes128_encrypt_block` / `_ref` tracks AES-NI. Chained so each
    // iteration depends on the last (latency, like Horner's rule).
    let mut acc: u128 = 0x0123_4567_89ab_cdef_u128 << 64 | 0xfedc_ba98_7654_3210;
    c.bench_function("ghash", |b| {
        b.iter(|| {
            acc = gcm.mul_h(black_box(acc) ^ 1);
            acc
        })
    });
    c.bench_function("ghash_ref", |b| {
        b.iter(|| {
            acc = gcm.mul_h_table(black_box(acc) ^ 1);
            acc
        })
    });
}

fn bench_chipkill(c: &mut Harness) {
    let codec = ChipkillCodec::table4();
    let line = [0x5au8; 64];
    let clean = codec.encode_line(&line);
    let mut faulty = clean.clone();
    for (i, b) in faulty.iter_mut().enumerate() {
        if i % 18 == 3 {
            *b ^= 0x77;
        }
    }
    c.bench_function("chipkill_encode_line", |b| {
        b.iter(|| codec.encode_line(black_box(&line)))
    });
    c.bench_function("chipkill_decode_clean", |b| {
        b.iter(|| codec.decode_line(black_box(&clean)))
    });
    c.bench_function("chipkill_decode_chip_kill", |b| {
        b.iter(|| codec.decode_line(black_box(&faulty)))
    });
    let mut two_dead = clean.clone();
    for (i, b) in two_dead.iter_mut().enumerate() {
        let chip = i % 18;
        if chip == 3 || chip == 11 {
            *b ^= 0x77;
        }
    }
    c.bench_function("chipkill_decode_two_marked_erasures", |b| {
        b.iter(|| codec.decode_line_marked(black_box(&two_dead), &[3, 11]))
    });
}

fn bench_rs(c: &mut Harness) {
    // The Table 4 beat code: RS(18, 16) over one 18-chip beat.
    let rs = ReedSolomon::new(18, 16).expect("valid geometry");
    let data: Vec<u8> = (0..16u8).map(|i| i.wrapping_mul(37) ^ 0x5a).collect();
    let mut cw = rs.encode(&data).expect("encode");
    cw[3] ^= 0x77; // non-zero syndromes exercise the full Horner pass
    c.bench_function("rs_syndromes", |b| b.iter(|| rs.syndromes(black_box(&cw))));
    c.bench_function("rs_syndromes_ref", |b| {
        b.iter(|| rs.syndromes_reference(black_box(&cw)))
    });
    let mut out = vec![0u8; 18];
    c.bench_function("rs_encode_into", |b| {
        b.iter(|| rs.encode_into(black_box(&data), black_box(&mut out)))
    });
}

fn bench_mdcache(c: &mut Harness) {
    let block = |level: u8| CachedBlock::clean(MetaId::new(level, 0), [7u8; 64]);
    // Table 3 geometry: 256 KiB, 8-way ⇒ 512 sets.
    let mut cache = MetadataCache::new(256 * 1024, 8);
    let slots = cache.slots();
    for i in 0..slots {
        cache.insert(LineAddr::new(i), block(1), &[]);
    }
    let mut i = 0u64;
    c.bench_function("mdcache_lookup_hit", |b| {
        b.iter(|| {
            i = (i + 1) % slots;
            cache.lookup(black_box(LineAddr::new(i))).is_some()
        })
    });
    let mut j = 0u64;
    c.bench_function("mdcache_lookup_miss", |b| {
        b.iter(|| {
            j = (j + 1) % slots;
            cache.lookup(black_box(LineAddr::new(slots + j))).is_some()
        })
    });
    let mut k = 0u64;
    c.bench_function("mdcache_insert_evict", |b| {
        b.iter(|| {
            k += slots; // every insert maps to a full set and evicts
            cache.insert(black_box(LineAddr::new(k)), block(1), &[])
        })
    });
    let mut dirty_cache = MetadataCache::new(256 * 1024, 8);
    for i in 0..slots {
        let blk = if i % 16 == 0 {
            CachedBlock::modified(MetaId::new(1, 0), [7u8; 64])
        } else {
            block(1)
        };
        dirty_cache.insert(LineAddr::new(i), blk, &[]);
    }
    c.bench_function("mdcache_dirty_addrs_scan", |b| {
        b.iter(|| dirty_cache.dirty_addrs().count())
    });
}

fn controller(fidelity: Fidelity, policy: CloningPolicy) -> SecureMemoryController {
    let config = SecureMemoryConfig::builder()
        .capacity_bytes(1 << 24)
        .metadata_cache(64 * 1024, 8)
        .cloning(policy)
        .fidelity(fidelity)
        .build()
        .expect("valid config");
    SecureMemoryController::new(config)
}

fn bench_controller(c: &mut Harness) {
    for (name, fidelity) in [
        ("functional", Fidelity::Functional),
        ("timing", Fidelity::Timing),
    ] {
        let mut ctrl = controller(fidelity, CloningPolicy::Aggressive);
        let mut i = 0u64;
        c.bench_function(&format!("controller_write_{name}"), |b| {
            b.iter(|| {
                i = (i + 64) % ctrl.layout().data_lines();
                ctrl.write(DataAddr::new(i), black_box(&[9u8; 64]))
                    .expect("write")
            })
        });
        let mut ctrl = controller(fidelity, CloningPolicy::Aggressive);
        for j in 0..1024u64 {
            ctrl.write(DataAddr::new(j), &[1u8; 64])
                .expect("warm-up write");
        }
        let mut j = 0u64;
        c.bench_function(&format!("controller_read_{name}"), |b| {
            b.iter(|| {
                j = (j + 1) % 1024;
                ctrl.read(DataAddr::new(j)).expect("read")
            })
        });
    }
}

fn bench_write_stages(c: &mut Harness) {
    // Per-stage breakdown of the §3.2.1 write chain, at the exact
    // shapes `commit_writes` pays per line: one CTR keystream + XOR
    // (cipher), one data MAC (mac), one metadata-block MAC as paid per
    // touched tree level (tree), and one shadow-entry encode + on-chip
    // tree fold (shadow). A regression in `controller_write_functional`
    // localizes to whichever of these moved.
    use soteria::shadow::{encode_entry, ShadowMode, ShadowRecord, ShadowTree};
    let cipher = CounterModeCipher::new(EncryptionKey::from_bytes([1; 16]));
    let mac = MacEngine::new(MacKey::from_bytes([2; 32]));
    let line = [0x9au8; 64];
    let mut ctr = 0u64;
    c.bench_function("controller_write_cipher", |b| {
        b.iter(|| {
            ctr += 1;
            cipher.encrypt_line(black_box(&line), black_box(0x40 * 64), black_box(ctr))
        })
    });
    let ct = cipher.encrypt_line(&line, 0x40 * 64, 7);
    c.bench_function("controller_write_mac", |b| {
        b.iter(|| {
            ctr += 1;
            mac.data_mac(black_box(0x40 * 64), black_box(&ct), black_box(ctr))
        })
    });
    c.bench_function("controller_write_tree", |b| {
        b.iter(|| {
            ctr += 1;
            mac.counter_block_mac(black_box(0x80 * 64), black_box(&line), black_box(ctr))
        })
    });
    let record = ShadowRecord {
        meta: MetaId::new(1, 3),
        lsbs: [5u16; 8],
        mac: 0x1234_5678,
    };
    let mut tree = ShadowTree::new(1024);
    let mut slot = 0u64;
    c.bench_function("controller_write_shadow", |b| {
        b.iter(|| {
            slot = (slot + 1) % 1024;
            let entry = encode_entry(black_box(&record), ShadowMode::Duplicated);
            tree.update(slot, &entry);
            tree.root()[0]
        })
    });
}

fn bench_obs(c: &mut Harness) {
    use soteria_rt::obs::{Metrics, TraceBuffer};
    use soteria_rt::obs_fields;
    // The contract the instrumented hot paths rely on: a disabled buffer
    // costs one predictable branch, field construction included — the
    // closure must not run.
    let mut off = TraceBuffer::disabled();
    let mut x = 0u64;
    c.bench_function("obs_emit_disabled", |b| {
        b.iter(|| {
            x = x.wrapping_add(1);
            off.emit_with("ctl", "bench", || obs_fields![("x", x), ("y", 2u64)]);
            black_box(off.len())
        })
    });
    // Steady-state enabled cost (ring at capacity: one pop + one push).
    let mut on = TraceBuffer::with_capacity(1024);
    c.bench_function("obs_emit_enabled", |b| {
        b.iter(|| {
            x = x.wrapping_add(1);
            on.emit_with("ctl", "bench", || obs_fields![("x", x), ("y", 2u64)]);
            black_box(on.len())
        })
    });
    let mut metrics = Metrics::enabled();
    metrics.inc("bench.counter", 1);
    metrics.observe("bench.histogram", 1);
    c.bench_function("obs_counter_inc", |b| {
        b.iter(|| metrics.inc(black_box("bench.counter"), 1))
    });
    c.bench_function("obs_histogram_observe", |b| {
        b.iter(|| {
            x = x.wrapping_add(0x9e37);
            metrics.observe(black_box("bench.histogram"), x & 0xffff)
        })
    });
    // The end-to-end overhead question the ISSUE's gate asks: the
    // controller write path with tracing compiled in and *enabled*
    // (disabled cost is already covered by controller_write_* above).
    let mut ctrl = controller(Fidelity::Functional, CloningPolicy::Aggressive);
    ctrl.enable_obs();
    let mut i = 0u64;
    c.bench_function("controller_write_functional_traced", |b| {
        b.iter(|| {
            i = (i + 64) % ctrl.layout().data_lines();
            ctrl.write(DataAddr::new(i), black_box(&[9u8; 64]))
                .expect("write")
        })
    });
}

fn bench_faultsim(c: &mut Harness) {
    let mut config = CampaignConfig::table4(80.0);
    config.iterations = 200;
    config.threads = 1;
    config.capacity_bytes = 1 << 30;
    c.bench_function("faultsim_200_iterations_fit80", |b| {
        b.iter(|| run_campaign(black_box(&config), &[CloningPolicy::Relaxed]))
    });
}

/// Serializes the results as the `soteria-bench-kernels/v1` document:
/// every kernel's median/p95/batch, a per-kernel `speedup` field
/// (`median(<name>_ref) / median(<name>)` when the run contains the
/// kernel's `_ref` twin, JSON `null` otherwise), plus the aggregate
/// `speedups` object older tooling reads.
fn results_to_json(stats: &[Stats]) -> Json {
    let kernels = Json::Obj(
        stats
            .iter()
            .map(|s| {
                let speedup = stats
                    .iter()
                    .find(|r| r.name == format!("{}_ref", s.name))
                    .map_or(Json::Null, |r| Json::Num(r.median_ns / s.median_ns));
                (
                    s.name.clone(),
                    Json::Obj(vec![
                        ("median_ns".to_string(), Json::Num(s.median_ns)),
                        ("p95_ns".to_string(), Json::Num(s.p95_ns)),
                        ("batch".to_string(), Json::Num(s.batch as f64)),
                        ("speedup".to_string(), speedup),
                    ]),
                )
            })
            .collect(),
    );
    let speedups = Json::Obj(
        stats
            .iter()
            .filter_map(|s| {
                let reference = stats.iter().find(|r| r.name == format!("{}_ref", s.name))?;
                Some((
                    s.name.clone(),
                    Json::Num(reference.median_ns / s.median_ns),
                ))
            })
            .collect(),
    );
    Json::Obj(vec![
        (
            "schema".to_string(),
            Json::Str("soteria-bench-kernels/v1".to_string()),
        ),
        ("kernels".to_string(), kernels),
        ("speedups".to_string(), speedups),
    ])
}

fn main() {
    let mut harness = Harness::new();
    bench_crypto(&mut harness);
    bench_gcm(&mut harness);
    bench_chipkill(&mut harness);
    bench_rs(&mut harness);
    bench_mdcache(&mut harness);
    bench_controller(&mut harness);
    bench_write_stages(&mut harness);
    bench_obs(&mut harness);
    bench_faultsim(&mut harness);
    let stats = harness.finish();
    let path = std::env::var("SOTERIA_BENCH_JSON").unwrap_or_else(|_| "BENCH_kernels.json".into());
    std::fs::write(&path, results_to_json(&stats).to_pretty_string())
        .unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("wrote {path}");
}
