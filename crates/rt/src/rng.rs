//! Deterministic, seedable pseudo-random number generation.
//!
//! Two generators:
//!
//! * [`SplitMix64`] — a 64-bit state mixer (Steele et al., OOPSLA 2014).
//!   Used directly for seed expansion and per-iteration stream derivation,
//!   because every output of a distinct input is a distinct, well-mixed
//!   word (it is a bijection on `u64`).
//! * [`Xoshiro256StarStar`] — the workhorse generator (Blackman & Vigna,
//!   2018): 256-bit state, period 2^256 − 1, passes BigCrush. Exported as
//!   [`StdRng`] so call sites read like the `rand` API they replaced.
//!
//! Everything here is pinned: the same seed produces the same stream on
//! every platform, forever. Monte Carlo regression tests depend on that.

/// SplitMix64: stateless-feeling mixer used for seed expansion.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

/// The golden-ratio increment of the SplitMix64 Weyl sequence.
pub const GOLDEN_GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

impl SplitMix64 {
    /// Seeds the mixer.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 mixed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Derives a well-mixed per-stream seed from a base seed and a stream
/// index — the scheme behind thread-count-invariant Monte Carlo: stream
/// `i` is the same whether one worker or sixteen process it.
pub fn stream_seed(base: u64, stream: u64) -> u64 {
    SplitMix64::new(base ^ stream.wrapping_mul(GOLDEN_GAMMA)).next_u64()
}

/// xoshiro256** generator. Alias: [`StdRng`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

/// The workspace's standard RNG (named for drop-in familiarity).
pub type StdRng = Xoshiro256StarStar;

impl Xoshiro256StarStar {
    /// Seeds the generator, expanding the 64-bit seed through
    /// [`SplitMix64`] as the xoshiro authors recommend (never all-zero
    /// state, decorrelated words).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut mixer = SplitMix64::new(seed);
        Self {
            s: [
                mixer.next_u64(),
                mixer.next_u64(),
                mixer.next_u64(),
                mixer.next_u64(),
            ],
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniformly distributed value of a primitive type (`u8`–`u64`,
    /// `usize`, `bool`, or `f64` in `[0, 1)`).
    pub fn random<T: Standard>(&mut self) -> T {
        T::standard(self)
    }

    /// A uniform value from a half-open or inclusive integer range.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    pub fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_from(self)
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn uniform_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `u64` in `[0, bound)` without modulo bias (Lemire's
    /// multiply-shift with rejection).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn bounded_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let m = u128::from(self.next_u64()) * u128::from(bound);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Poisson-distributed count with mean `lambda`.
    ///
    /// Knuth's product method for small means; larger means split
    /// recursively (a sum of independent Poissons is Poisson), keeping the
    /// sampler exact and fully deterministic at any `lambda`.
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite `lambda`.
    pub fn poisson(&mut self, lambda: f64) -> u64 {
        assert!(
            lambda >= 0.0 && lambda.is_finite(),
            "lambda must be finite and non-negative, got {lambda}"
        );
        if lambda == 0.0 {
            return 0;
        }
        let mut remaining = lambda;
        let mut total = 0u64;
        // exp(-30) ≈ 1e-13 still sits comfortably inside f64 range, so the
        // product method stays numerically sound per chunk.
        while remaining > 30.0 {
            total += self.poisson_knuth(15.0);
            remaining -= 15.0;
        }
        total + self.poisson_knuth(remaining)
    }

    fn poisson_knuth(&mut self, lambda: f64) -> u64 {
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.uniform_f64();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }

    /// Exponentially distributed waiting time with the given `rate`
    /// (mean `1 / rate`), via inversion.
    ///
    /// # Panics
    ///
    /// Panics unless `rate > 0`.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "rate must be positive, got {rate}");
        // uniform_f64 is in [0, 1), so 1 − u is in (0, 1] and ln is finite.
        -(1.0 - self.uniform_f64()).ln() / rate
    }
}

/// Types a [`StdRng`] can draw uniformly over their whole domain
/// (`f64` means `[0, 1)`).
pub trait Standard: Sized {
    /// Draws one value.
    fn standard(rng: &mut Xoshiro256StarStar) -> Self;
}

impl Standard for u64 {
    fn standard(rng: &mut Xoshiro256StarStar) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn standard(rng: &mut Xoshiro256StarStar) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u16 {
    fn standard(rng: &mut Xoshiro256StarStar) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u8 {
    fn standard(rng: &mut Xoshiro256StarStar) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn standard(rng: &mut Xoshiro256StarStar) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for i64 {
    fn standard(rng: &mut Xoshiro256StarStar) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for i32 {
    fn standard(rng: &mut Xoshiro256StarStar) -> Self {
        (rng.next_u64() >> 32) as i32
    }
}

impl Standard for bool {
    fn standard(rng: &mut Xoshiro256StarStar) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn standard(rng: &mut Xoshiro256StarStar) -> Self {
        rng.uniform_f64()
    }
}

/// Ranges a [`StdRng`] can sample uniformly.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value from the range.
    fn sample_from(self, rng: &mut Xoshiro256StarStar) -> Self::Output;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from(self, rng: &mut Xoshiro256StarStar) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.bounded_u64(span) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from(self, rng: &mut Xoshiro256StarStar) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as u64) - (start as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + rng.bounded_u64(span + 1) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from(self, rng: &mut Xoshiro256StarStar) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(rng.bounded_u64(span) as i64) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from(self, rng: &mut Xoshiro256StarStar) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as i64).wrapping_sub(start as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i64).wrapping_add(rng.bounded_u64(span + 1) as i64) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i32, i64);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample_from(self, rng: &mut Xoshiro256StarStar) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.uniform_f64() * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_matches_reference_vectors() {
        // Reference values for seed 1234567 from the public-domain
        // splitmix64.c (Vigna).
        let mut rng = SplitMix64::new(1234567);
        assert_eq!(rng.next_u64(), 6457827717110365317);
        assert_eq!(rng.next_u64(), 3203168211198807973);
        assert_eq!(rng.next_u64(), 9817491932198370423);
    }

    #[test]
    fn xoshiro_is_deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn uniform_f64_is_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_f64_mean_is_half() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.uniform_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn ranges_stay_in_bounds_and_hit_everything() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.random_range(2u32..9);
            assert!((2..9).contains(&v));
            seen[(v - 2) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 7 values reachable: {seen:?}");
        for _ in 0..1000 {
            let v = rng.random_range(5u8..=5);
            assert_eq!(v, 5);
        }
        for _ in 0..1000 {
            let v = rng.random_range(-4i64..4);
            assert!((-4..4).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        StdRng::seed_from_u64(0).random_range(3u32..3);
    }

    #[test]
    fn bounded_u64_is_unbiased_enough() {
        // Chi-square-ish sanity check over a bound that exercises the
        // rejection path (not a power of two).
        let mut rng = StdRng::seed_from_u64(9);
        let bound = 6u64;
        let n = 60_000u64;
        let mut counts = [0u64; 6];
        for _ in 0..n {
            counts[rng.bounded_u64(bound) as usize] += 1;
        }
        let expected = n as f64 / bound as f64;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.05, "bucket {i}: {c} vs {expected}");
        }
    }

    #[test]
    fn poisson_matches_mean_and_variance() {
        let mut rng = StdRng::seed_from_u64(5);
        for &lambda in &[0.1, 2.5, 45.0] {
            let n = 20_000;
            let draws: Vec<u64> = (0..n).map(|_| rng.poisson(lambda)).collect();
            let mean = draws.iter().sum::<u64>() as f64 / n as f64;
            let var = draws
                .iter()
                .map(|&k| (k as f64 - mean).powi(2))
                .sum::<f64>()
                / n as f64;
            let tol = 4.0 * (lambda / n as f64).sqrt().max(0.01);
            assert!((mean - lambda).abs() < tol, "λ={lambda}: mean {mean}");
            assert!(
                (var - lambda).abs() < 10.0 * tol,
                "λ={lambda}: var {var}"
            );
        }
    }

    #[test]
    fn poisson_zero_lambda_is_zero() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(rng.poisson(0.0), 0);
    }

    #[test]
    fn exponential_matches_mean() {
        let mut rng = StdRng::seed_from_u64(21);
        let rate = 0.25;
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(rate)).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "mean {mean}");
        for _ in 0..1000 {
            assert!(rng.exponential(3.0) >= 0.0);
        }
    }

    #[test]
    fn stream_seeds_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(stream_seed(0xda7a, i)));
        }
    }

    #[test]
    fn standard_bool_is_balanced() {
        let mut rng = StdRng::seed_from_u64(2);
        let trues = (0..10_000).filter(|_| rng.random::<bool>()).count();
        assert!((4_500..5_500).contains(&trues), "{trues}");
    }
}
