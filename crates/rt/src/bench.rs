//! A small wall-clock micro-benchmark harness (warmup, calibrated
//! batches, median/p95 reporting) — the workspace's replacement for an
//! external benchmark framework.
//!
//! Mechanics per benchmark:
//!
//! 1. **Calibrate**: time one batch, then grow the batch size until a
//!    batch takes at least [`Config::min_batch`] — per-iteration timer
//!    overhead becomes negligible.
//! 2. **Warm up** for [`Config::warmup`] (caches, branch predictors,
//!    allocator arenas).
//! 3. **Sample**: run [`Config::samples`] batches, recording mean
//!    nanoseconds per iteration for each batch.
//! 4. **Report** min / median / p95 / max per-iteration time.
//!
//! Knobs come from the environment so CI can run quick passes:
//! `SOTERIA_BENCH_SAMPLES`, `SOTERIA_BENCH_WARMUP_MS`,
//! `SOTERIA_BENCH_MIN_BATCH_US`.

use std::time::{Duration, Instant};

/// Re-export so bench binaries need only this module.
pub use std::hint::black_box;

/// Harness configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Timed batches per benchmark.
    pub samples: usize,
    /// Wall-clock warmup before sampling.
    pub warmup: Duration,
    /// Minimum duration of one timed batch.
    pub min_batch: Duration,
}

impl Default for Config {
    fn default() -> Self {
        let env = |name: &str, default: u64| -> u64 {
            std::env::var(name)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        };
        Self {
            samples: env("SOTERIA_BENCH_SAMPLES", 30) as usize,
            warmup: Duration::from_millis(env("SOTERIA_BENCH_WARMUP_MS", 300)),
            min_batch: Duration::from_micros(env("SOTERIA_BENCH_MIN_BATCH_US", 2_000)),
        }
    }
}

/// Statistics for one benchmark, in nanoseconds per iteration.
#[derive(Clone, Debug)]
pub struct Stats {
    /// Benchmark name.
    pub name: String,
    /// Iterations per timed batch after calibration.
    pub batch: u64,
    /// Fastest batch.
    pub min_ns: f64,
    /// Median batch.
    pub median_ns: f64,
    /// 95th-percentile batch.
    pub p95_ns: f64,
    /// Slowest batch.
    pub max_ns: f64,
}

/// Handed to each benchmark routine; the routine calls [`Bencher::iter`]
/// with the code under test (mirrors the familiar `b.iter(|| …)` shape).
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs the closure `iters` times and records the elapsed wall time.
    /// The closure's result is passed through [`black_box`] so the
    /// optimizer cannot delete the work.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// The benchmark harness: construct once, call
/// [`Harness::bench_function`] per benchmark, then [`Harness::finish`].
pub struct Harness {
    config: Config,
    results: Vec<Stats>,
}

impl Harness {
    /// A harness with environment-tunable defaults.
    pub fn new() -> Self {
        Self::with_config(Config::default())
    }

    /// A harness with explicit configuration.
    pub fn with_config(config: Config) -> Self {
        println!(
            "{:<38} {:>12} {:>12} {:>12} {:>10}",
            "benchmark", "median", "p95", "min", "batch"
        );
        println!("{}", "-".repeat(88));
        Self {
            config,
            results: Vec::new(),
        }
    }

    /// Measures one benchmark and prints its row immediately.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut routine: F) {
        let mut run = |iters: u64| -> Duration {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            routine(&mut b);
            b.elapsed
        };

        // Calibrate batch size.
        let mut batch = 1u64;
        loop {
            let t = run(batch);
            if t >= self.config.min_batch || batch >= 1 << 30 {
                break;
            }
            // Aim past the threshold with headroom; at least double.
            let scale = if t.is_zero() {
                8.0
            } else {
                (self.config.min_batch.as_secs_f64() / t.as_secs_f64() * 1.5).max(2.0)
            };
            batch = ((batch as f64 * scale) as u64).max(batch * 2);
        }

        // Warm up.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.config.warmup {
            run(batch);
        }

        // Sample.
        let mut per_iter_ns: Vec<f64> = (0..self.config.samples.max(1))
            .map(|_| run(batch).as_nanos() as f64 / batch as f64)
            .collect();
        per_iter_ns.sort_by(|a, b| a.total_cmp(b));
        let pick = |q: f64| -> f64 {
            let idx = ((per_iter_ns.len() - 1) as f64 * q).round() as usize;
            per_iter_ns[idx]
        };
        let stats = Stats {
            name: name.to_string(),
            batch,
            min_ns: per_iter_ns[0],
            median_ns: pick(0.5),
            p95_ns: pick(0.95),
            max_ns: *per_iter_ns.last().expect("samples >= 1"),
        };
        println!(
            "{:<38} {:>12} {:>12} {:>12} {:>10}",
            stats.name,
            format_ns(stats.median_ns),
            format_ns(stats.p95_ns),
            format_ns(stats.min_ns),
            stats.batch
        );
        self.results.push(stats);
    }

    /// Returns every measurement taken so far.
    pub fn results(&self) -> &[Stats] {
        &self.results
    }

    /// Prints the footer and consumes the harness.
    pub fn finish(self) -> Vec<Stats> {
        println!("{}", "-".repeat(88));
        println!(
            "{} benchmarks · {} samples each · times are per iteration",
            self.results.len(),
            self.config.samples
        );
        self.results
    }
}

impl Default for Harness {
    fn default() -> Self {
        Self::new()
    }
}

/// Human-readable nanosecond figure (`12.3 ns`, `4.56 µs`, `7.89 ms`).
pub fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> Config {
        Config {
            samples: 5,
            warmup: Duration::from_millis(1),
            min_batch: Duration::from_micros(50),
        }
    }

    #[test]
    fn harness_measures_something_positive() {
        let mut h = Harness::with_config(quick_config());
        h.bench_function("spin", |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for i in 0..100u64 {
                    acc = acc.wrapping_add(black_box(i));
                }
                acc
            })
        });
        let stats = h.finish();
        assert_eq!(stats.len(), 1);
        let s = &stats[0];
        assert!(s.min_ns > 0.0);
        assert!(s.min_ns <= s.median_ns);
        assert!(s.median_ns <= s.p95_ns);
        assert!(s.p95_ns <= s.max_ns);
        assert!(s.batch >= 1);
    }

    #[test]
    fn calibration_grows_batches_for_fast_bodies() {
        let mut h = Harness::with_config(quick_config());
        h.bench_function("noop", |b| b.iter(|| 1u64 + 1));
        assert!(
            h.results()[0].batch > 1,
            "a ~1 ns body must batch up: {}",
            h.results()[0].batch
        );
    }

    #[test]
    fn format_ns_scales_units() {
        assert_eq!(format_ns(12.34), "12.3 ns");
        assert_eq!(format_ns(4_560.0), "4.56 µs");
        assert_eq!(format_ns(7_890_000.0), "7.89 ms");
        assert_eq!(format_ns(1_500_000_000.0), "1.50 s");
    }
}
