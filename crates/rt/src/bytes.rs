//! Fixed-width byte-slice helpers.
//!
//! The simulator crates constantly carve little-endian integers out of
//! wire-format slices (`&buf[off..off + 4]`). Doing that with
//! `try_into().expect(..)` scatters panic sites through library code;
//! these helpers centralize the one unavoidable length check here in
//! `rt`, where the determinism linter's panic rule (`P1`) does not
//! apply, and keep call sites down to a single expression.
//!
//! Every helper takes a slice whose length the caller has already fixed
//! with a constant-width range; a mismatch is a caller bug and panics
//! with `copy_from_slice`'s length message.

/// Copies `bytes` into a fixed-size array.
///
/// Panics if `bytes.len() != N` — call sites pass constant-width ranges
/// (`&buf[o..o + N]`), so the lengths agree by construction.
#[inline]
#[must_use]
pub fn chunk<const N: usize>(bytes: &[u8]) -> [u8; N] {
    let mut out = [0u8; N];
    out.copy_from_slice(bytes);
    out
}

/// Reads a little-endian `u16` from a 2-byte slice.
#[inline]
#[must_use]
pub fn u16_le(bytes: &[u8]) -> u16 {
    u16::from_le_bytes(chunk(bytes))
}

/// Reads a little-endian `u32` from a 4-byte slice.
#[inline]
#[must_use]
pub fn u32_le(bytes: &[u8]) -> u32 {
    u32::from_le_bytes(chunk(bytes))
}

/// Reads a little-endian `u64` from an 8-byte slice.
#[inline]
#[must_use]
pub fn u64_le(bytes: &[u8]) -> u64 {
    u64::from_le_bytes(chunk(bytes))
}

/// Reads a native-endian `u64` from an 8-byte slice.
#[inline]
#[must_use]
pub fn u64_ne(bytes: &[u8]) -> u64 {
    u64::from_ne_bytes(chunk(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_round_trips() {
        let buf = [1u8, 2, 3, 4, 5, 6, 7, 8, 9];
        assert_eq!(chunk::<4>(&buf[2..6]), [3, 4, 5, 6]);
        assert_eq!(u16_le(&buf[0..2]), 0x0201);
        assert_eq!(u32_le(&buf[0..4]), 0x0403_0201);
        assert_eq!(u64_le(&buf[1..9]), 0x0908_0706_0504_0302);
        assert_eq!(u64_ne(&buf[1..9]), u64::from_ne_bytes(chunk(&buf[1..9])));
    }

    #[test]
    #[should_panic]
    fn chunk_panics_on_length_mismatch() {
        let _ = chunk::<4>(&[1u8, 2, 3]);
    }
}
