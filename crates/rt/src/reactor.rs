//! Readiness polling for non-blocking I/O: epoll on Linux, POSIX
//! `poll(2)` everywhere else — zero dependencies.
//!
//! The workspace is hermetic (no libc crate, no mio), so the two
//! backends declare the handful of C functions they need directly;
//! the symbols resolve against the libc every Rust binary already
//! links. [`Poller`] is a level-triggered readiness queue: register a
//! file descriptor under a `u64` key with a read/write [`Interest`],
//! then [`Poller::wait`] fills a buffer of [`Event`]s. One poller, one
//! thread — the service's reactor owns it for the life of the process.
//!
//! On Linux both backends are compiled and tested; [`Poller::new`]
//! picks epoll, [`Poller::with_backend`] forces the portable fallback
//! (exercised by unit tests so the non-Linux path cannot rot).
//!
//! ```no_run
//! use soteria_rt::reactor::{Event, Interest, Poller};
//! use std::net::TcpListener;
//! use std::os::fd::AsRawFd;
//! use std::time::Duration;
//!
//! let listener = TcpListener::bind("127.0.0.1:0").unwrap();
//! listener.set_nonblocking(true).unwrap();
//! let mut poller = Poller::new().unwrap();
//! poller.register(listener.as_raw_fd(), 7, Interest::Read).unwrap();
//! let mut events: Vec<Event> = Vec::new();
//! poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
//! ```

use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

/// Which readiness a registration asks for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Interest {
    /// Wake when the descriptor is readable (or the peer hung up).
    Read,
    /// Wake when the descriptor is writable.
    Write,
    /// Wake on either direction.
    Both,
}

impl Interest {
    fn readable(self) -> bool {
        matches!(self, Interest::Read | Interest::Both)
    }

    fn writable(self) -> bool {
        matches!(self, Interest::Write | Interest::Both)
    }
}

/// One readiness notification from [`Poller::wait`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// The key the descriptor was registered under.
    pub key: u64,
    /// The descriptor has bytes to read (or a pending accept).
    pub readable: bool,
    /// The descriptor can accept more bytes.
    pub writable: bool,
    /// The peer closed or the descriptor errored; reads will drain
    /// whatever is left and then return 0/error.
    pub hangup: bool,
}

/// Which polling backend a [`Poller`] uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// Linux `epoll(7)`; O(ready) wakeups.
    #[cfg(target_os = "linux")]
    Epoll,
    /// POSIX `poll(2)`; O(registered) per wait, portable.
    Poll,
}

/// Converts an optional timeout to the millisecond convention shared by
/// `epoll_wait` and `poll`: `-1` blocks, `0` returns immediately, and a
/// sub-millisecond positive timeout rounds up so waits cannot spin.
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(t) => {
            let ms = t.as_millis();
            if ms == 0 && !t.is_zero() {
                1
            } else {
                ms.min(i32::MAX as u128) as i32
            }
        }
    }
}

/// A level-triggered readiness poller over raw file descriptors.
#[derive(Debug)]
pub struct Poller {
    backend: BackendImpl,
}

#[derive(Debug)]
enum BackendImpl {
    #[cfg(target_os = "linux")]
    Epoll(epoll::Epoll),
    Poll(poll::Poll),
}

impl Poller {
    /// Opens the best backend for this platform (epoll on Linux).
    pub fn new() -> io::Result<Poller> {
        #[cfg(target_os = "linux")]
        {
            Poller::with_backend(Backend::Epoll)
        }
        #[cfg(not(target_os = "linux"))]
        {
            Poller::with_backend(Backend::Poll)
        }
    }

    /// Opens a specific backend (tests force the portable fallback).
    pub fn with_backend(backend: Backend) -> io::Result<Poller> {
        let backend = match backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll => BackendImpl::Epoll(epoll::Epoll::open()?),
            Backend::Poll => BackendImpl::Poll(poll::Poll::new()),
        };
        Ok(Poller { backend })
    }

    /// Which backend this poller runs on.
    pub fn backend(&self) -> Backend {
        match &self.backend {
            #[cfg(target_os = "linux")]
            BackendImpl::Epoll(_) => Backend::Epoll,
            BackendImpl::Poll(_) => Backend::Poll,
        }
    }

    /// Starts watching `fd` under `key`. One registration per fd.
    pub fn register(&mut self, fd: RawFd, key: u64, interest: Interest) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            BackendImpl::Epoll(e) => e.register(fd, key, interest),
            BackendImpl::Poll(p) => p.register(fd, key, interest),
        }
    }

    /// Changes the interest (and key) of an already-registered fd.
    pub fn modify(&mut self, fd: RawFd, key: u64, interest: Interest) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            BackendImpl::Epoll(e) => e.modify(fd, key, interest),
            BackendImpl::Poll(p) => p.modify(fd, key, interest),
        }
    }

    /// Stops watching `fd`. Call before closing the descriptor.
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            BackendImpl::Epoll(e) => e.deregister(fd),
            BackendImpl::Poll(p) => p.deregister(fd),
        }
    }

    /// Blocks until at least one registered fd is ready or `timeout`
    /// elapses (`None` blocks indefinitely), then fills `events`.
    /// Clears `events` first; returns the number of events delivered.
    /// `EINTR` is retried internally.
    pub fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            BackendImpl::Epoll(e) => e.wait(events, timeout),
            BackendImpl::Poll(p) => p.wait(events, timeout),
        }
    }
}

#[cfg(target_os = "linux")]
mod epoll {
    //! The Linux epoll backend: O(ready) wakeups, one syscall per wait.

    use super::{timeout_ms, Event, Interest};
    use std::io;
    use std::os::fd::{FromRawFd, OwnedFd, RawFd};
    use std::time::Duration;

    /// Kernel `struct epoll_event`. The x86-64 ABI packs it (the kernel
    /// header applies `__attribute__((packed))` there only).
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    }

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    fn mask(interest: Interest) -> u32 {
        let mut events = EPOLLRDHUP;
        if interest.readable() {
            events |= EPOLLIN;
        }
        if interest.writable() {
            events |= EPOLLOUT;
        }
        events
    }

    #[derive(Debug)]
    pub(super) struct Epoll {
        /// The epoll instance; closed on drop.
        epfd: OwnedFd,
        scratch: Vec<EpollEvent>,
    }

    impl std::fmt::Debug for EpollEvent {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            // Copy out of the (possibly packed) struct before formatting.
            let (events, data) = (self.events, self.data);
            write!(f, "EpollEvent {{ events: {events:#x}, data: {data} }}")
        }
    }

    impl Epoll {
        pub(super) fn open() -> io::Result<Epoll> {
            // SAFETY: epoll_create1 takes no pointers; any flag value is
            // safe to pass and errors are reported via the return value.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            // SAFETY: epfd was just returned by epoll_create1 as a fresh
            // open descriptor this process exclusively owns.
            let epfd = unsafe { OwnedFd::from_raw_fd(epfd) };
            Ok(Epoll {
                epfd,
                scratch: vec![EpollEvent { events: 0, data: 0 }; 256],
            })
        }

        fn epfd(&self) -> i32 {
            use std::os::fd::AsRawFd;
            self.epfd.as_raw_fd()
        }

        fn ctl(&mut self, op: i32, fd: RawFd, key: u64, interest: Interest) -> io::Result<()> {
            let mut event = EpollEvent {
                events: mask(interest),
                data: key,
            };
            // SAFETY: `event` is a live stack value matching the kernel
            // ABI layout; the kernel reads it before the call returns
            // (and ignores it entirely for EPOLL_CTL_DEL).
            let rc = unsafe { epoll_ctl(self.epfd(), op, fd, &mut event) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub(super) fn register(&mut self, fd: RawFd, key: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, key, interest)
        }

        pub(super) fn modify(&mut self, fd: RawFd, key: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, key, interest)
        }

        pub(super) fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, Interest::Read)
        }

        pub(super) fn wait(
            &mut self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            let n = loop {
                // SAFETY: `scratch` is a live, initialized buffer and
                // `maxevents` is exactly its length, so the kernel writes
                // only within bounds.
                let rc = unsafe {
                    epoll_wait(
                        self.epfd(),
                        self.scratch.as_mut_ptr(),
                        self.scratch.len() as i32,
                        timeout_ms(timeout),
                    )
                };
                if rc >= 0 {
                    break rc as usize;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            };
            for raw in &self.scratch[..n] {
                let (bits, key) = (raw.events, raw.data);
                events.push(Event {
                    key,
                    readable: bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0,
                    writable: bits & (EPOLLOUT | EPOLLHUP | EPOLLERR) != 0,
                    hangup: bits & (EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0,
                });
            }
            Ok(n)
        }
    }
}

mod poll {
    //! The portable `poll(2)` backend: the fd set lives in user space
    //! and is handed to the kernel on every wait.

    use super::{timeout_ms, Event, Interest};
    use std::io;
    use std::os::fd::RawFd;
    use std::time::Duration;

    /// POSIX `struct pollfd`.
    #[repr(C)]
    #[derive(Clone, Copy, Debug)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    extern "C" {
        /// `nfds_t` is `c_ulong`, which is pointer-width on every Unix
        /// this workspace targets.
        fn poll(fds: *mut PollFd, nfds: usize, timeout: i32) -> i32;
    }

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    fn mask(interest: Interest) -> i16 {
        let mut events = 0;
        if interest.readable() {
            events |= POLLIN;
        }
        if interest.writable() {
            events |= POLLOUT;
        }
        events
    }

    #[derive(Debug)]
    pub(super) struct Poll {
        fds: Vec<PollFd>,
        keys: Vec<u64>,
    }

    impl Poll {
        pub(super) fn new() -> Poll {
            Poll {
                fds: Vec::new(),
                keys: Vec::new(),
            }
        }

        fn position(&self, fd: RawFd) -> io::Result<usize> {
            self.fds
                .iter()
                .position(|p| p.fd == fd)
                .ok_or_else(|| io::Error::from(io::ErrorKind::NotFound))
        }

        pub(super) fn register(&mut self, fd: RawFd, key: u64, interest: Interest) -> io::Result<()> {
            if self.fds.iter().any(|p| p.fd == fd) {
                return Err(io::Error::from(io::ErrorKind::AlreadyExists));
            }
            self.fds.push(PollFd {
                fd,
                events: mask(interest),
                revents: 0,
            });
            self.keys.push(key);
            Ok(())
        }

        pub(super) fn modify(&mut self, fd: RawFd, key: u64, interest: Interest) -> io::Result<()> {
            let i = self.position(fd)?;
            self.fds[i].events = mask(interest);
            self.keys[i] = key;
            Ok(())
        }

        pub(super) fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            let i = self.position(fd)?;
            self.fds.swap_remove(i);
            self.keys.swap_remove(i);
            Ok(())
        }

        pub(super) fn wait(
            &mut self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            for p in &mut self.fds {
                p.revents = 0;
            }
            loop {
                // SAFETY: `fds` is a live, contiguous buffer of PollFd
                // and `nfds` is exactly its length; the kernel writes
                // only the `revents` fields within bounds.
                let rc = unsafe { poll(self.fds.as_mut_ptr(), self.fds.len(), timeout_ms(timeout)) };
                if rc >= 0 {
                    break;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            }
            for (p, &key) in self.fds.iter().zip(&self.keys) {
                if p.revents == 0 {
                    continue;
                }
                let bits = p.revents;
                events.push(Event {
                    key,
                    readable: bits & (POLLIN | POLLHUP | POLLERR) != 0,
                    writable: bits & (POLLOUT | POLLHUP | POLLERR) != 0,
                    hangup: bits & (POLLHUP | POLLERR) != 0,
                });
            }
            Ok(events.len())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    fn backends() -> Vec<Backend> {
        #[cfg(target_os = "linux")]
        {
            vec![Backend::Epoll, Backend::Poll]
        }
        #[cfg(not(target_os = "linux"))]
        {
            vec![Backend::Poll]
        }
    }

    fn wait_for_key(poller: &mut Poller, key: u64, tries: usize) -> Option<Event> {
        let mut events = Vec::new();
        for _ in 0..tries {
            poller
                .wait(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
            if let Some(ev) = events.iter().find(|e| e.key == key) {
                return Some(*ev);
            }
        }
        None
    }

    #[test]
    fn listener_becomes_readable_on_connect() {
        for backend in backends() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            listener.set_nonblocking(true).unwrap();
            let mut poller = Poller::with_backend(backend).unwrap();
            poller
                .register(listener.as_raw_fd(), 1, Interest::Read)
                .unwrap();

            // Nothing pending yet: a short wait returns no events.
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert!(
                events.is_empty(),
                "{backend:?}: spurious events {events:?}"
            );

            let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            let ev = wait_for_key(&mut poller, 1, 50)
                .unwrap_or_else(|| panic!("{backend:?}: no accept readiness"));
            assert!(ev.readable);
        }
    }

    #[test]
    fn stream_readable_after_peer_write_and_hangup_after_close() {
        for backend in backends() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            let (server, _) = listener.accept().unwrap();
            server.set_nonblocking(true).unwrap();

            let mut poller = Poller::with_backend(backend).unwrap();
            poller
                .register(server.as_raw_fd(), 42, Interest::Read)
                .unwrap();

            client.write_all(b"ping").unwrap();
            let ev = wait_for_key(&mut poller, 42, 50)
                .unwrap_or_else(|| panic!("{backend:?}: no read readiness"));
            assert!(ev.readable);

            let mut buf = [0u8; 8];
            let n = (&server).read(&mut buf).unwrap();
            assert_eq!(&buf[..n], b"ping");

            drop(client);
            let ev = wait_for_key(&mut poller, 42, 50)
                .unwrap_or_else(|| panic!("{backend:?}: no hangup readiness"));
            assert!(ev.readable, "{backend:?}: EOF must read as readable");
        }
    }

    #[test]
    fn write_interest_and_modify_and_deregister() {
        for backend in backends() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            let (server, _) = listener.accept().unwrap();
            drop(server);
            client.set_nonblocking(true).unwrap();

            let mut poller = Poller::with_backend(backend).unwrap();
            poller
                .register(client.as_raw_fd(), 7, Interest::Write)
                .unwrap();
            let ev = wait_for_key(&mut poller, 7, 50)
                .unwrap_or_else(|| panic!("{backend:?}: no write readiness"));
            assert!(ev.writable);

            // Rekey + switch interest, then confirm the new key arrives.
            poller
                .modify(client.as_raw_fd(), 9, Interest::Both)
                .unwrap();
            let ev = wait_for_key(&mut poller, 9, 50)
                .unwrap_or_else(|| panic!("{backend:?}: no readiness after modify"));
            assert!(ev.writable);

            poller.deregister(client.as_raw_fd()).unwrap();
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert!(
                events.is_empty(),
                "{backend:?}: events after deregister {events:?}"
            );
        }
    }

    #[test]
    fn timeout_conversion_rounds_up() {
        assert_eq!(timeout_ms(None), -1);
        assert_eq!(timeout_ms(Some(Duration::ZERO)), 0);
        assert_eq!(timeout_ms(Some(Duration::from_micros(1))), 1);
        assert_eq!(timeout_ms(Some(Duration::from_millis(250))), 250);
        assert_eq!(timeout_ms(Some(Duration::from_secs(1 << 40))), i32::MAX);
    }
}
