//! A minimal JSON value type with a parser and writer — the workspace's
//! machine-readable interchange format (benchmark baselines, CI checks).
//!
//! The build is hermetic (no `serde`), so this module implements just
//! enough of RFC 8259 for trusted, tool-generated documents:
//!
//! * All six value kinds; numbers are `f64` (plenty for nanosecond
//!   medians and counters).
//! * Objects preserve **insertion order** — emitted documents diff
//!   cleanly in review, and parse → write round-trips are stable.
//! * String escapes: the two-character forms plus `\uXXXX`, including
//!   surrogate pairs.
//! * Errors carry the byte offset where parsing failed.

use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order (duplicate keys are kept as-is).
    Obj(Vec<(String, Json)>),
}

/// A parse failure: what went wrong and the byte offset it happened at.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError {
    /// Byte offset into the input where the parser stopped.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses a complete JSON document (rejects trailing garbage).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(value)
    }

    /// Looks up `key` in an object (first match); `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value entries in insertion order, if this is an object.
    pub fn entries(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(entries) => Some(entries),
            _ => None,
        }
    }

    /// Serializes with two-space indentation and a trailing newline —
    /// the format for committed artifacts (clean line-oriented diffs).
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(0));
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => write_seq(out, indent, '[', ']', items.len(), |out, i, ind| {
                items[i].write(out, ind);
            }),
            Json::Obj(entries) => write_seq(out, indent, '{', '}', entries.len(), |out, i, ind| {
                write_string(out, &entries[i].0);
                out.push_str(": ");
                entries[i].1.write(out, ind);
            }),
        }
    }
}

impl fmt::Display for Json {
    /// Compact (single-line) serialization.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None);
        f.write_str(&out)
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, Option<usize>),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    let inner = indent.map(|d| d + 1);
    for i in 0..len {
        if let Some(depth) = inner {
            out.push('\n');
            out.push_str(&"  ".repeat(depth));
        }
        item(out, i, inner);
        if i + 1 < len {
            out.push(',');
            if indent.is_none() {
                out.push(' ');
            }
        }
    }
    if let Some(depth) = indent {
        out.push('\n');
        out.push_str(&"  ".repeat(depth));
    }
    out.push(close);
}

fn write_number(out: &mut String, n: f64) {
    if n.is_finite() {
        // `{}` on f64 prints the shortest string that round-trips.
        if n == n.trunc() && n.abs() < 1e15 {
            out.push_str(&format!("{}", n as i64));
        } else {
            out.push_str(&format!("{n}"));
        }
    } else {
        // JSON has no Inf/NaN; null is the conventional stand-in.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("expected a JSON value")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(entries));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(&format!("invalid number '{text}'")))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xd800..0xdc00).contains(&hi) {
                                // High surrogate: a \uXXXX low surrogate
                                // must follow.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape character")),
                    }
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("raw control character in string"));
                }
                Some(_) => {
                    // Copy one whole UTF-8 scalar (input is valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let digit = self
                .peek()
                .and_then(|c| (c as char).to_digit(16))
                .ok_or_else(|| self.err("expected four hex digits"))?;
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(Json::parse("-1.5e3").unwrap(), Json::Num(-1500.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures_in_order() {
        let doc = r#"{"b": [1, 2, {"x": null}], "a": {"k": "v"}}"#;
        let v = Json::parse(doc).unwrap();
        let entries = v.entries().unwrap();
        assert_eq!(entries[0].0, "b");
        assert_eq!(entries[1].0, "a");
        assert_eq!(v.get("b").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().get("k").unwrap().as_str().unwrap(),
            "v"
        );
    }

    #[test]
    fn parses_string_escapes() {
        let v = Json::parse(r#""a\n\t\"\\\u0041\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "a\n\t\"\\Aé😀");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "", "{", "[1,", "{\"a\"}", "{\"a\":}", "tru", "1 2", "\"\\q\"",
            "\"unterminated", "nul", "[1 2]", "\"\\ud800x\"", "01a",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted malformed: {bad:?}");
        }
    }

    #[test]
    fn errors_carry_offsets() {
        let e = Json::parse("[1, x]").unwrap_err();
        assert_eq!(e.offset, 4);
    }

    #[test]
    fn round_trips_through_pretty_and_compact() {
        let doc = r#"{"schema": "v1", "kernels": {"aes": {"median_ns": 12.5, "batch": 65536}}, "list": [true, null, -3]}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(Json::parse(&v.to_pretty_string()).unwrap(), v);
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn pretty_output_is_line_oriented() {
        let v = Json::parse(r#"{"a": 1, "b": [2, 3]}"#).unwrap();
        let pretty = v.to_pretty_string();
        assert!(pretty.ends_with('\n'));
        assert!(pretty.contains("\n  \"a\": 1,\n"));
        assert!(pretty.contains("\n    2,\n"));
    }

    #[test]
    fn integral_numbers_print_without_fraction() {
        assert_eq!(Json::Num(65536.0).to_string(), "65536");
        assert_eq!(Json::Num(12.5).to_string(), "12.5");
        assert_eq!(Json::Num(-0.25).to_string(), "-0.25");
    }

    #[test]
    fn empty_containers_stay_compact() {
        assert_eq!(Json::Arr(vec![]).to_pretty_string(), "[]\n");
        assert_eq!(Json::Obj(vec![]).to_pretty_string(), "{}\n");
    }
}
