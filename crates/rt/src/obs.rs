//! Deterministic observability: structured trace events, typed counters,
//! log2-bucket histograms, and scoped wall-clock timers.
//!
//! # Design
//!
//! Simulation results in this workspace are bit-identical for a seed at
//! any thread count (see `crates/faultsim`). This module extends that
//! guarantee to *observability*: a trace captured from a same-seed run is
//! byte-identical regardless of parallelism, because
//!
//! * trace events carry only **logical** facts (addresses, counters,
//!   seeds, outcomes) — never wall-clock times, pointers, or thread ids;
//! * sequence numbers are assigned by the single [`TraceBuffer`] that
//!   owns the stream, and parallel producers hand their events over in a
//!   fixed merge order (the faultsim campaign merges per-block, exactly
//!   like its floating-point accumulators);
//! * serialization goes through [`crate::json`] (insertion-ordered
//!   objects, shortest-round-trip `f64` formatting), so the same values
//!   always produce the same bytes.
//!
//! Wall-clock durations are real diagnostics too, so [`Timer`] and the
//! `timers` section of [`Metrics`] exist — but they are quarantined:
//! timer histograms never enter a trace, and
//! [`Metrics::snapshot_json`] excludes them unless explicitly asked.
//!
//! # Cost when disabled
//!
//! Every recording entry point starts with a branch on an `enabled`
//! bool. Callers build fields behind [`TraceBuffer::enabled`] checks (or
//! use the closure-taking emitters), so a disabled `Obs` costs one
//! predictable branch per site — hot paths keep their optimized speeds
//! with observability compiled in (`obs_*` kernels in the microbench
//! suite pin this).

use std::collections::VecDeque;
use std::time::Instant;

use crate::json::{Json, JsonError};

/// The largest integer `f64` (and therefore JSON numbers as this
/// workspace writes them) can represent exactly.
const MAX_EXACT_JSON_INT: u64 = 1 << 53;

// ---------------------------------------------------------------------------
// Fields & events
// ---------------------------------------------------------------------------

/// One typed value attached to a [`TraceEvent`].
#[derive(Clone, Debug, PartialEq)]
pub enum Field {
    /// An unsigned count or index. Values above 2^53 serialize as a hex
    /// string (JSON numbers are `f64` here and would silently round).
    U64(u64),
    /// A signed quantity.
    I64(i64),
    /// A ratio or mean. Serialized via the shortest round-trip form, so
    /// equal values always produce equal bytes.
    F64(f64),
    /// A full-width identifier (RNG seed, root hash fragment); always
    /// serialized as `"0x…"` with 16 hex digits.
    Hex(u64),
    /// A short label (policy name, outcome).
    Str(&'static str),
    /// A flag.
    Bool(bool),
}

impl Field {
    fn to_json(&self) -> Json {
        match *self {
            Field::U64(v) if v < MAX_EXACT_JSON_INT => Json::Num(v as f64),
            Field::U64(v) => Json::Str(format!("{v:#x}")),
            Field::I64(v) => Json::Num(v as f64),
            Field::F64(v) => Json::Num(v),
            Field::Hex(v) => Json::Str(format!("{v:#018x}")),
            Field::Str(s) => Json::Str(s.to_string()),
            Field::Bool(b) => Json::Bool(b),
        }
    }
}

macro_rules! impl_field_from {
    ($($t:ty => $variant:ident as $cast:ty),*) => {$(
        impl From<$t> for Field {
            fn from(v: $t) -> Field {
                Field::$variant(v as $cast)
            }
        }
    )*};
}
impl_field_from!(
    u8 => U64 as u64, u16 => U64 as u64, u32 => U64 as u64,
    u64 => U64 as u64, usize => U64 as u64,
    i32 => I64 as i64, i64 => I64 as i64,
    f64 => F64 as f64
);
impl From<bool> for Field {
    fn from(v: bool) -> Field {
        Field::Bool(v)
    }
}
impl From<&'static str> for Field {
    fn from(v: &'static str) -> Field {
        Field::Str(v)
    }
}

/// One structured trace event.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Position in the owning stream (strictly increasing per domain;
    /// gaps mean the ring buffer dropped predecessors).
    pub seq: u64,
    /// The emitting subsystem (`"ctl"`, `"dev"`, `"rec"`, `"campaign"`).
    pub domain: &'static str,
    /// The event name within the domain.
    pub name: &'static str,
    /// Typed payload, in emission order.
    pub fields: Vec<(&'static str, Field)>,
}

impl TraceEvent {
    /// Builds an event with `seq = 0` (assigned when a [`TraceBuffer`]
    /// absorbs it).
    pub fn new(
        domain: &'static str,
        name: &'static str,
        fields: Vec<(&'static str, Field)>,
    ) -> Self {
        Self {
            seq: 0,
            domain,
            name,
            fields,
        }
    }

    /// The event as an insertion-ordered JSON object
    /// (`seq`, `domain`, `event`, then the payload fields).
    pub fn to_json(&self) -> Json {
        let mut entries = Vec::with_capacity(3 + self.fields.len());
        entries.push(("seq".to_string(), Json::Num(self.seq as f64)));
        entries.push(("domain".to_string(), Json::Str(self.domain.to_string())));
        entries.push(("event".to_string(), Json::Str(self.name.to_string())));
        for (k, v) in &self.fields {
            entries.push((k.to_string(), v.to_json()));
        }
        Json::Obj(entries)
    }

    /// The event as one compact NDJSON line (no trailing newline).
    pub fn ndjson_line(&self) -> String {
        self.to_json().to_string()
    }
}

// ---------------------------------------------------------------------------
// Trace buffer
// ---------------------------------------------------------------------------

/// Default ring capacity: large enough for every test/CLI scenario in
/// the repo, small enough to bound memory on runaway workloads.
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 16;

/// A ring buffer of [`TraceEvent`]s with a monotonic sequence counter.
///
/// Disabled buffers (the default) record nothing and cost one branch per
/// emission site.
#[derive(Clone, Debug, Default)]
pub struct TraceBuffer {
    enabled: bool,
    capacity: usize,
    next_seq: u64,
    dropped: u64,
    events: VecDeque<TraceEvent>,
}

impl TraceBuffer {
    /// A disabled buffer: every `emit` is a no-op.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// An enabled buffer holding at most `capacity` events (oldest
    /// dropped first).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "trace buffer needs capacity");
        Self {
            enabled: true,
            capacity,
            next_seq: 0,
            dropped: 0,
            events: VecDeque::new(),
        }
    }

    /// Whether events are being recorded. Check this before building an
    /// expensive payload.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Turns recording on (keeping existing events) with the default
    /// capacity if none was set.
    pub fn enable(&mut self) {
        if self.capacity == 0 {
            self.capacity = DEFAULT_TRACE_CAPACITY;
        }
        self.enabled = true;
    }

    /// Records one event, assigning the next sequence number. No-op when
    /// disabled.
    #[inline]
    pub fn emit(&mut self, domain: &'static str, name: &'static str) {
        if !self.enabled {
            return;
        }
        self.push(TraceEvent::new(domain, name, Vec::new()));
    }

    /// Records one event with a lazily built payload. The closure runs
    /// only when the buffer is enabled, so field construction stays off
    /// the disabled hot path.
    #[inline]
    pub fn emit_with<F>(&mut self, domain: &'static str, name: &'static str, fields: F)
    where
        F: FnOnce() -> Vec<(&'static str, Field)>,
    {
        if !self.enabled {
            return;
        }
        self.push(TraceEvent::new(domain, name, fields()));
    }

    fn push(&mut self, mut event: TraceEvent) {
        event.seq = self.next_seq;
        self.next_seq += 1;
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    /// Absorbs pre-built events (from parallel producers, already in
    /// their deterministic merge order), sequencing each as if emitted
    /// here. No-op when disabled.
    pub fn absorb<I: IntoIterator<Item = TraceEvent>>(&mut self, events: I) {
        if !self.enabled {
            return;
        }
        for e in events {
            self.push(e);
        }
    }

    /// Events currently held, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when no events are held.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events dropped to the ring bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Serializes every held event as NDJSON (one compact object per
    /// line, trailing newline when nonempty).
    pub fn export_ndjson(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.ndjson_line());
            out.push('\n');
        }
        out
    }

    /// Drops all held events (sequence numbers keep advancing).
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

// ---------------------------------------------------------------------------
// NDJSON validation
// ---------------------------------------------------------------------------

/// A trace-validation failure: which line and what went wrong.
#[derive(Clone, Debug, PartialEq)]
pub struct NdjsonError {
    /// 1-based line number.
    pub line: usize,
    /// Description (parser errors include the byte offset in the line).
    pub message: String,
}

impl std::fmt::Display for NdjsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for NdjsonError {}

/// Parses and validates an NDJSON trace: every line must be a JSON
/// object carrying `seq` (strictly increasing per `domain`), `domain`,
/// and `event`. Returns the parsed objects in file order.
///
/// # Errors
///
/// Returns [`NdjsonError`] naming the first offending line.
pub fn parse_ndjson(text: &str) -> Result<Vec<Json>, NdjsonError> {
    let mut out = Vec::new();
    let mut last_seq: Vec<(String, f64)> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let err = |message: String| NdjsonError {
            line: lineno,
            message,
        };
        let value =
            Json::parse(line).map_err(|e: JsonError| err(format!("{e}")))?;
        if value.entries().is_none() {
            return Err(err("not a JSON object".to_string()));
        }
        let seq = value
            .get("seq")
            .and_then(Json::as_f64)
            .ok_or_else(|| err("missing numeric \"seq\"".to_string()))?;
        let domain = value
            .get("domain")
            .and_then(Json::as_str)
            .ok_or_else(|| err("missing string \"domain\"".to_string()))?
            .to_string();
        if value.get("event").and_then(Json::as_str).is_none() {
            return Err(err("missing string \"event\"".to_string()));
        }
        match last_seq.iter_mut().find(|(d, _)| *d == domain) {
            Some((_, prev)) => {
                if seq <= *prev {
                    return Err(err(format!(
                        "seq {seq} not increasing within domain {domain:?} (prev {prev})"
                    )));
                }
                *prev = seq;
            }
            None => last_seq.push((domain, seq)),
        }
        out.push(value);
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Metrics: counters + log2 histograms + timers
// ---------------------------------------------------------------------------

/// A histogram over `u64` values with power-of-two buckets.
///
/// Bucket `i` holds values whose bit length is `i` — bucket 0 is exactly
/// `{0}`, bucket 1 is `{1}`, bucket 2 is `{2,3}`, bucket 3 is `{4..8}`,
/// … — so one `[u64; 65]` covers the whole domain with relative error
/// bounded by 2x, plenty for occupancy and latency shapes.
#[derive(Clone, Debug)]
pub struct Log2Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Self {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Log2Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        let bucket = (64 - value.leading_zeros()) as usize;
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean observation (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// An upper bound on the `q`-quantile (0.0–1.0): the exclusive upper
    /// edge of the bucket holding the `ceil(q·count)`-th observation.
    pub fn quantile_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return if i == 0 { 0 } else { (1u128 << i) as u64 - 1 };
            }
        }
        self.max
    }

    /// The histogram as JSON: count/min/max/mean plus `[lower bound,
    /// count]` pairs for each nonempty bucket, ascending.
    pub fn to_json(&self) -> Json {
        let buckets: Vec<Json> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(i, &n)| {
                let lower = if i == 0 { 0u64 } else { 1u64 << (i - 1) };
                Json::Arr(vec![Json::Num(lower as f64), Json::Num(n as f64)])
            })
            .collect();
        Json::Obj(vec![
            ("count".to_string(), Json::Num(self.count as f64)),
            (
                "min".to_string(),
                Json::Num(self.min().unwrap_or(0) as f64),
            ),
            ("max".to_string(), Json::Num(self.max as f64)),
            ("mean".to_string(), Json::Num(self.mean())),
            ("buckets".to_string(), Json::Arr(buckets)),
        ])
    }
}

/// A started wall-clock measurement; see [`Metrics::timer`].
///
/// Holds no reference to the metrics registry, so hot paths can start a
/// timer, keep using `&mut self`, and hand the result back at the end.
#[derive(Debug)]
pub struct Timer {
    start: Option<Instant>,
}

impl Timer {
    /// Starts a timer — armed only if `enabled` (disarmed timers never
    /// read the clock).
    #[inline]
    pub fn start(enabled: bool) -> Self {
        Self {
            start: enabled.then(Instant::now),
        }
    }

    /// Elapsed nanoseconds, `None` if the timer was disarmed.
    #[inline]
    pub fn stop(self) -> Option<u64> {
        self.start.map(|s| s.elapsed().as_nanos() as u64)
    }
}

/// Insertion-ordered registry of named counters, histograms, and timer
/// histograms. Disabled (the default) registries record nothing.
///
/// Counters and histograms hold logical quantities and are deterministic
/// for a seed; timer histograms hold wall-clock nanoseconds and are
/// **not** — [`Metrics::snapshot_json`] therefore excludes timers unless
/// `include_timers` is set.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    enabled: bool,
    counters: Vec<(&'static str, u64)>,
    histograms: Vec<(&'static str, Log2Histogram)>,
    timers: Vec<(&'static str, Log2Histogram)>,
}

impl Metrics {
    /// A disabled registry: every recording call is a no-op.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// An enabled registry.
    pub fn enabled() -> Self {
        Self {
            enabled: true,
            ..Self::default()
        }
    }

    /// Whether recording is on.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Turns recording on, keeping existing values.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Adds `by` to the named counter (registering it on first use).
    #[inline]
    pub fn inc(&mut self, name: &'static str, by: u64) {
        if !self.enabled {
            return;
        }
        match self.counters.iter_mut().find(|(n, _)| *n == name) {
            Some((_, v)) => *v += by,
            None => self.counters.push((name, by)),
        }
    }

    /// Records one observation into the named histogram.
    #[inline]
    pub fn observe(&mut self, name: &'static str, value: u64) {
        if !self.enabled {
            return;
        }
        match self.histograms.iter_mut().find(|(n, _)| *n == name) {
            Some((_, h)) => h.record(value),
            None => {
                let mut h = Log2Histogram::new();
                h.record(value);
                self.histograms.push((name, h));
            }
        }
    }

    /// Starts a scoped timer; pass the result to [`Metrics::observe_timer`].
    #[inline]
    pub fn timer(&self) -> Timer {
        Timer::start(self.enabled)
    }

    /// Folds a finished [`Timer`] into the named timer histogram.
    #[inline]
    pub fn observe_timer(&mut self, name: &'static str, timer: Timer) {
        if let Some(ns) = timer.stop() {
            match self.timers.iter_mut().find(|(n, _)| *n == name) {
                Some((_, h)) => h.record(ns),
                None => {
                    let mut h = Log2Histogram::new();
                    h.record(ns);
                    self.timers.push((name, h));
                }
            }
        }
    }

    /// Current value of a counter (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |&(_, v)| v)
    }

    /// The named histogram, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Log2Histogram> {
        self.histograms
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, h)| h)
    }

    /// Merges another registry into this one (counter sums, histogram
    /// merges by bucket). Used to combine per-component registries into
    /// one snapshot.
    pub fn merge(&mut self, other: &Metrics) {
        if !self.enabled {
            return;
        }
        for &(name, v) in &other.counters {
            self.inc(name, v);
        }
        for (name, h) in other.histograms.iter().chain(other.timers.iter()) {
            let dest = if other.histograms.iter().any(|(n, _)| n == name) {
                &mut self.histograms
            } else {
                &mut self.timers
            };
            match dest.iter_mut().find(|(n, _)| n == name) {
                Some((_, mine)) => {
                    for (b, &n) in h.buckets.iter().enumerate() {
                        mine.buckets[b] += n;
                    }
                    mine.count += h.count;
                    mine.sum += h.sum;
                    mine.min = mine.min.min(h.min);
                    mine.max = mine.max.max(h.max);
                }
                None => dest.push((name, h.clone())),
            }
        }
    }

    /// The registry in Prometheus text exposition format, every metric
    /// name prefixed with `prefix_`.
    ///
    /// * Counters render as `counter` metrics.
    /// * Histograms and timer histograms render as `histogram` metrics:
    ///   cumulative `_bucket{le="…"}` lines at each nonempty log2 bucket's
    ///   inclusive upper edge (`2^i − 1`), a `+Inf` bucket, `_sum`, and
    ///   `_count`.
    /// * A metric name may carry its own label set in curly braces
    ///   (e.g. `http_latency_ns{endpoint="healthz"}`); the labels are
    ///   spliced into every emitted sample (`le` is appended for
    ///   buckets), and `# TYPE` headers are emitted once per base name.
    pub fn to_prometheus(&self, prefix: &str) -> String {
        // Splits `latency{endpoint="x"}` into ("latency", `endpoint="x"`).
        fn split_labels(name: &str) -> (&str, Option<&str>) {
            match name.split_once('{') {
                Some((base, rest)) => (base, rest.strip_suffix('}')),
                None => (name, None),
            }
        }
        // `{existing,extra}` / `{existing}` / `{extra}` / `` as available.
        fn braces(labels: Option<&str>, extra: Option<&str>) -> String {
            match (labels, extra) {
                (Some(l), Some(e)) => format!("{{{l},{e}}}"),
                (Some(l), None) => format!("{{{l}}}"),
                (None, Some(e)) => format!("{{{e}}}"),
                (None, None) => String::new(),
            }
        }
        let mut out = String::new();
        let mut typed: Vec<String> = Vec::new();
        let mut type_line = |out: &mut String, full: &str, kind: &str| {
            if !typed.iter().any(|t| t == full) {
                out.push_str(&format!("# TYPE {full} {kind}\n"));
                typed.push(full.to_string());
            }
        };
        for &(name, v) in &self.counters {
            let (base, labels) = split_labels(name);
            let full = format!("{prefix}_{base}");
            type_line(&mut out, &full, "counter");
            out.push_str(&format!("{full}{} {v}\n", braces(labels, None)));
        }
        for (name, h) in self.histograms.iter().chain(self.timers.iter()) {
            let (base, labels) = split_labels(name);
            let full = format!("{prefix}_{base}");
            type_line(&mut out, &full, "histogram");
            let mut cumulative = 0u64;
            for (i, &n) in h.buckets.iter().enumerate() {
                if n == 0 {
                    continue;
                }
                cumulative += n;
                // Log2 bucket `i` holds values of bit length `i`, so its
                // inclusive upper edge is `2^i − 1`.
                let upper = if i == 0 { 0 } else { ((1u128 << i) - 1) as u64 };
                let le = format!("le=\"{upper}\"");
                out.push_str(&format!(
                    "{full}_bucket{} {cumulative}\n",
                    braces(labels, Some(&le))
                ));
            }
            out.push_str(&format!(
                "{full}_bucket{} {}\n",
                braces(labels, Some("le=\"+Inf\"")),
                h.count
            ));
            out.push_str(&format!("{full}_sum{} {}\n", braces(labels, None), h.sum));
            out.push_str(&format!(
                "{full}_count{} {}\n",
                braces(labels, None),
                h.count
            ));
        }
        out
    }

    /// The registry as a JSON object: `counters` and `histograms` in
    /// registration order — deterministic for a seed. Set
    /// `include_timers` to append the wall-clock `timers` section
    /// (diagnostics only; never byte-stable).
    pub fn snapshot_json(&self, include_timers: bool) -> Json {
        let counters = Json::Obj(
            self.counters
                .iter()
                .map(|&(n, v)| (n.to_string(), Json::Num(v as f64)))
                .collect(),
        );
        let histograms = Json::Obj(
            self.histograms
                .iter()
                .map(|(n, h)| (n.to_string(), h.to_json()))
                .collect(),
        );
        let mut entries = vec![
            ("counters".to_string(), counters),
            ("histograms".to_string(), histograms),
        ];
        if include_timers {
            entries.push((
                "timers".to_string(),
                Json::Obj(
                    self.timers
                        .iter()
                        .map(|(n, h)| (n.to_string(), h.to_json()))
                        .collect(),
                ),
            ));
        }
        Json::Obj(entries)
    }
}

// ---------------------------------------------------------------------------
// Obs: the per-component handle
// ---------------------------------------------------------------------------

/// One component's observability handle: a trace stream plus a metrics
/// registry. Constructed disabled; enabling is an explicit opt-in so
/// hot paths stay at full speed by default.
#[derive(Clone, Debug, Default)]
pub struct Obs {
    /// Structured trace events (deterministic for a seed).
    pub trace: TraceBuffer,
    /// Counters/histograms/timers.
    pub metrics: Metrics,
}

impl Obs {
    /// A fully disabled handle (the default for every component).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Enables both tracing (default ring capacity) and metrics.
    pub fn enable(&mut self) {
        self.trace.enable();
        self.metrics.enable();
    }

    /// `true` if either tracing or metrics is recording.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.trace.enabled() || self.metrics.is_enabled()
    }
}

/// Builds a `Vec<(&'static str, Field)>` payload tersely:
/// `fields![("addr", addr), ("dirty", true)]`.
#[macro_export]
macro_rules! obs_fields {
    ($(($k:expr, $v:expr)),* $(,)?) => {
        vec![$(($k, $crate::obs::Field::from($v))),*]
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_buffer_records_nothing() {
        let mut t = TraceBuffer::disabled();
        t.emit("d", "e");
        t.emit_with("d", "e", || panic!("fields must not be built"));
        assert!(t.is_empty());
        assert_eq!(t.export_ndjson(), "");
    }

    #[test]
    fn events_sequence_and_serialize() {
        let mut t = TraceBuffer::with_capacity(8);
        t.emit_with("ctl", "write", || {
            obs_fields![("addr", 5u64), ("ok", true)]
        });
        t.emit("ctl", "flush");
        let lines = t.export_ndjson();
        assert_eq!(
            lines,
            "{\"seq\": 0, \"domain\": \"ctl\", \"event\": \"write\", \"addr\": 5, \"ok\": true}\n\
             {\"seq\": 1, \"domain\": \"ctl\", \"event\": \"flush\"}\n"
        );
        assert_eq!(parse_ndjson(&lines).unwrap().len(), 2);
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let mut t = TraceBuffer::with_capacity(2);
        for _ in 0..5 {
            t.emit("d", "e");
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 3);
        let seqs: Vec<u64> = t.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![3, 4]);
        // Gapped but increasing seqs still validate.
        assert!(parse_ndjson(&t.export_ndjson()).is_ok());
    }

    #[test]
    fn absorb_sequences_in_merge_order() {
        let mut t = TraceBuffer::with_capacity(8);
        let batch = vec![
            TraceEvent::new("sim", "a", Vec::new()),
            TraceEvent::new("sim", "b", Vec::new()),
        ];
        t.absorb(batch);
        let got: Vec<(u64, &str)> = t.events().map(|e| (e.seq, e.name)).collect();
        assert_eq!(got, vec![(0, "a"), (1, "b")]);
    }

    #[test]
    fn large_u64_and_hex_fields_round_trip_without_precision_loss() {
        let mut t = TraceBuffer::with_capacity(4);
        t.emit_with("d", "e", || {
            obs_fields![("big", u64::MAX), ("seed", Field::Hex(0x0123_4567_89ab_cdef))]
        });
        let line = t.export_ndjson();
        let doc = &parse_ndjson(&line).unwrap()[0];
        assert_eq!(doc.get("big").unwrap().as_str().unwrap(), "0xffffffffffffffff");
        assert_eq!(
            doc.get("seed").unwrap().as_str().unwrap(),
            "0x0123456789abcdef"
        );
    }

    #[test]
    fn ndjson_validator_rejects_bad_traces() {
        // Not an object.
        assert_eq!(parse_ndjson("[1]\n").unwrap_err().line, 1);
        // Missing fields.
        assert!(parse_ndjson("{\"seq\": 0}\n").is_err());
        // Non-monotonic within a domain.
        let bad = "{\"seq\": 1, \"domain\": \"a\", \"event\": \"x\"}\n\
                   {\"seq\": 1, \"domain\": \"a\", \"event\": \"y\"}\n";
        assert_eq!(parse_ndjson(bad).unwrap_err().line, 2);
        // Independent domains keep independent sequences.
        let ok = "{\"seq\": 5, \"domain\": \"a\", \"event\": \"x\"}\n\
                  {\"seq\": 1, \"domain\": \"b\", \"event\": \"y\"}\n\
                  {\"seq\": 6, \"domain\": \"a\", \"event\": \"z\"}\n";
        assert_eq!(parse_ndjson(ok).unwrap().len(), 3);
        // Malformed JSON reports the line.
        assert_eq!(parse_ndjson("{\"seq\": 0,\n").unwrap_err().line, 1);
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let mut h = Log2Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1000));
        assert!((h.mean() - 1025.0 / 8.0).abs() < 1e-12);
        // Bucket lower bounds: 0→0, 1→1, {2,3}→2, {4..7}→4, {8}→8, 1000→512.
        let json = h.to_json();
        let buckets = json.get("buckets").unwrap().as_array().unwrap();
        let lowers: Vec<f64> = buckets
            .iter()
            .map(|b| b.as_array().unwrap()[0].as_f64().unwrap())
            .collect();
        assert_eq!(lowers, vec![0.0, 1.0, 2.0, 4.0, 8.0, 512.0]);
        assert_eq!(h.quantile_bound(0.5), 3); // 4th of 8 lands in {2,3}
        assert!(h.quantile_bound(1.0) >= 1000);
    }

    #[test]
    fn metrics_counters_histograms_and_merge() {
        let mut a = Metrics::enabled();
        a.inc("reads", 2);
        a.inc("reads", 3);
        a.observe("occ", 4);
        let mut b = Metrics::enabled();
        b.inc("reads", 10);
        b.inc("writes", 1);
        b.observe("occ", 8);
        a.merge(&b);
        assert_eq!(a.counter("reads"), 15);
        assert_eq!(a.counter("writes"), 1);
        assert_eq!(a.histogram("occ").unwrap().count(), 2);
        // Snapshot is insertion-ordered and omits timers by default.
        let snap = a.snapshot_json(false);
        let keys: Vec<&str> = snap.entries().unwrap().iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["counters", "histograms"]);
        let counter_keys: Vec<&str> = snap
            .get("counters")
            .unwrap()
            .entries()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(counter_keys, vec!["reads", "writes"]);
    }

    #[test]
    fn disabled_metrics_record_nothing() {
        let mut m = Metrics::disabled();
        m.inc("x", 5);
        m.observe("y", 1);
        let t = m.timer();
        m.observe_timer("z", t);
        assert_eq!(m.counter("x"), 0);
        assert!(m.histogram("y").is_none());
        let snap = m.snapshot_json(true);
        assert_eq!(snap.get("timers").unwrap().entries().unwrap().len(), 0);
    }

    #[test]
    fn timers_are_quarantined_from_deterministic_snapshots() {
        let mut m = Metrics::enabled();
        let t = m.timer();
        std::hint::black_box(0u64);
        m.observe_timer("span", t);
        assert!(m.snapshot_json(false).get("timers").is_none());
        let with = m.snapshot_json(true);
        assert_eq!(
            with.get("timers").unwrap().entries().unwrap()[0].0,
            "span"
        );
    }

    #[test]
    fn prometheus_rendering_counters_and_histograms() {
        let mut m = Metrics::enabled();
        m.inc("requests", 3);
        m.inc("rejected{code=\"429\"}", 2);
        m.observe("queue_wait", 0);
        m.observe("queue_wait", 5);
        m.observe("queue_wait", 5);
        let text = m.to_prometheus("svc");
        assert!(text.contains("# TYPE svc_requests counter\n"));
        assert!(text.contains("svc_requests 3\n"));
        // Labels embedded in the metric name pass through.
        assert!(text.contains("# TYPE svc_rejected counter\n"));
        assert!(text.contains("svc_rejected{code=\"429\"} 2\n"));
        // Histogram: 0 lands in bucket le="0", the 5s in le="7"; buckets
        // are cumulative and close with +Inf, sum, count.
        assert!(text.contains("# TYPE svc_queue_wait histogram\n"));
        assert!(text.contains("svc_queue_wait_bucket{le=\"0\"} 1\n"));
        assert!(text.contains("svc_queue_wait_bucket{le=\"7\"} 3\n"));
        assert!(text.contains("svc_queue_wait_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("svc_queue_wait_sum 10\n"));
        assert!(text.contains("svc_queue_wait_count 3\n"));
    }

    #[test]
    fn prometheus_labelled_histogram_merges_le_into_labels() {
        let mut m = Metrics::enabled();
        let t = m.timer();
        m.observe_timer("latency_ns{endpoint=\"healthz\"}", t);
        let text = m.to_prometheus("svc");
        assert!(text.contains("# TYPE svc_latency_ns histogram\n"));
        assert!(
            text.contains("svc_latency_ns_bucket{endpoint=\"healthz\",le=\"+Inf\"} 1\n"),
            "{text}"
        );
        assert!(text.contains("svc_latency_ns_count{endpoint=\"healthz\"} 1\n"));
        // One TYPE header per base name even with several label sets.
        let t2 = m.timer();
        m.observe_timer("latency_ns{endpoint=\"metrics\"}", t2);
        let text = m.to_prometheus("svc");
        assert_eq!(text.matches("# TYPE svc_latency_ns histogram").count(), 1);
    }

    #[test]
    fn disarmed_timer_never_reads_the_clock() {
        let t = Timer::start(false);
        assert_eq!(t.stop(), None);
    }

    #[test]
    fn obs_handle_default_is_fully_disabled() {
        let mut o = Obs::disabled();
        assert!(!o.is_enabled());
        o.trace.emit("d", "e");
        o.metrics.inc("c", 1);
        assert!(o.trace.is_empty());
        assert_eq!(o.metrics.counter("c"), 0);
        o.enable();
        assert!(o.is_enabled());
        o.trace.emit("d", "e");
        assert_eq!(o.trace.len(), 1);
    }
}
