//! Crash-consistency checking: a pure reference model and exhaustive
//! crash-point oracle for atomic-commit storage stacks.
//!
//! # The contract being checked
//!
//! A storage stack with a write-pending queue (WPQ) inside the ADR
//! (asynchronous DRAM refresh) power-fail domain promises an
//! *atomic-and-committing* interface, in the spirit of the PSA storage
//! resilience contract: once a transaction's write group is **accepted**
//! into the WPQ it is durable (ADR drains the queue on power loss), and
//! until it is accepted none of it is. The observable invariant is
//! therefore:
//!
//! > **Any crash observes a prefix of committed transactions, and never
//! > a torn transaction.**
//!
//! This module knows nothing about the memory controller it checks — it
//! works on three deliberately narrow abstractions so that any stack
//! (and any future integrity scheme) can be put under the same oracle:
//!
//! * a **transaction script** ([`Tx`]): the workload, as `(line, fill)`
//!   write sets;
//! * a **census** ([`Census`]): one instrumented dry run that maps each
//!   transaction to the WPQ *event* at which it committed;
//! * a **crash run** ([`CrashRun`]): the system under test executed with
//!   a crash fuse armed at one event, recovered, and read back.
//!
//! The event clock counts every durability-relevant WPQ step — each
//! group accept and each stall-induced drain. Crash point `k` means "the
//! machine dies the instant event `k` completes"; point `0` means it was
//! dead from the start. [`check_script`] enumerates **every** point
//! `0..=total_events` and compares each recovered state against the pure
//! model [`expected_state`]. ADR flush steps at power-off are validated
//! separately by [`replay_journal`], a pure model of the queue itself
//! (FIFO order, bounded occupancy, group contiguity, empty after flush).
//!
//! # Determinism
//!
//! Crash points are fanned out with [`crate::thread::parallel_map`]
//! (static contiguous chunks, item-order results) and divergences are
//! folded in point order, so the verdict — including which divergent
//! point is reported first — is byte-identical at any thread count.

use std::collections::BTreeMap;

use crate::rng::StdRng;
use crate::thread::parallel_map;

// ---------------------------------------------------------------------------
// Transaction scripts and the pure reference model
// ---------------------------------------------------------------------------

/// One transaction: a set of line writes that must commit atomically.
///
/// Lines are abstract `u64` identifiers (the adapter maps them to device
/// addresses); each write fills its whole line with a single byte so the
/// reference model stays a `line → fill` map.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Tx {
    /// The `(line, fill)` writes of this transaction, in program order.
    /// Later writes to the same line win.
    pub writes: Vec<(u64, u8)>,
}

impl Tx {
    /// Renders the transaction as a compact `line:fill` list for
    /// regression corpora and divergence reports.
    pub fn describe(&self) -> String {
        let parts: Vec<String> = self
            .writes
            .iter()
            .map(|&(line, fill)| format!("{line}:{fill:02x}"))
            .collect();
        parts.join(",")
    }
}

/// Generates a deterministic transaction script from a seed.
///
/// The script has `1..=max_txns` transactions of `1..=max_writes` writes
/// each, over `lines` distinct lines. Line choice is biased toward a
/// small hot set (line 0..8) half of the time so scripts revisit lines,
/// exercise counter bumps past the Osiris threshold, and collide inside
/// one metadata cache set. Same seed ⇒ same script, forever.
pub fn gen_script(seed: u64, max_txns: usize, max_writes: usize, lines: u64) -> Vec<Tx> {
    let mut rng = StdRng::seed_from_u64(seed);
    let max_txns = max_txns.max(1);
    let max_writes = max_writes.max(1);
    let lines = lines.max(1);
    let txns = 1 + rng.bounded_u64(max_txns as u64) as usize;
    (0..txns)
        .map(|_| {
            let writes = 1 + rng.bounded_u64(max_writes as u64) as usize;
            Tx {
                writes: (0..writes)
                    .map(|_| {
                        let line = if rng.bounded_u64(2) == 0 {
                            rng.bounded_u64(8.min(lines))
                        } else {
                            rng.bounded_u64(lines)
                        };
                        (line, rng.next_u64() as u8)
                    })
                    .collect(),
            }
        })
        .collect()
}

/// Every line any transaction of `script` touches, sorted and deduped —
/// the read-back set a crash run must report.
pub fn script_lines(script: &[Tx]) -> Vec<u64> {
    let mut lines: Vec<u64> = script
        .iter()
        .flat_map(|tx| tx.writes.iter().map(|&(line, _)| line))
        .collect();
    lines.sort_unstable();
    lines.dedup();
    lines
}

/// The pure reference model: the state after the first `committed`
/// transactions of `script` have been applied, as a `line → fill` map.
/// Lines never written are absent (they must read as all-zeroes).
pub fn expected_state(script: &[Tx], committed: usize) -> BTreeMap<u64, u8> {
    let mut state = BTreeMap::new();
    for tx in script.iter().take(committed.min(script.len())) {
        for &(line, fill) in &tx.writes {
            state.insert(line, fill);
        }
    }
    state
}

// ---------------------------------------------------------------------------
// Census: mapping crash points to committed prefixes
// ---------------------------------------------------------------------------

/// The instrumented dry run's answer to "which prefix is committed at
/// event `k`?" — the total event count of the full script plus the
/// accept event of each transaction, in script order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Census {
    /// WPQ event-clock value after the full script ran (accepts plus
    /// stall drains; ADR flush steps do not tick the clock).
    pub total_events: u64,
    /// For each transaction, the event at which its commit group was
    /// accepted. Strictly increasing: commits are ordered.
    pub commit_events: Vec<u64>,
}

impl Census {
    /// How many transactions are committed when the machine dies right
    /// after event `point` completes.
    pub fn committed_at(&self, point: u64) -> usize {
        self.commit_events.iter().take_while(|&&e| e <= point).count()
    }

    /// Internal consistency: commit events must be strictly increasing
    /// and bounded by the total. Returns the first violation.
    pub fn validate(&self) -> Result<(), String> {
        let mut prev = 0u64;
        for (i, &e) in self.commit_events.iter().enumerate() {
            if e <= prev {
                return Err(format!(
                    "commit event {e} of transaction {i} does not follow {prev}"
                ));
            }
            if e > self.total_events {
                return Err(format!(
                    "commit event {e} of transaction {i} exceeds total {}",
                    self.total_events
                ));
            }
            prev = e;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Crash runs and the oracle
// ---------------------------------------------------------------------------

/// What one crash-recover-readback execution observed.
#[derive(Clone, Debug)]
pub struct CrashRun {
    /// Post-recovery contents of every script line, in ascending line
    /// order: `Some(bytes)` on a successful read, `None` when the read
    /// failed (integrity violation, unverifiable metadata, …).
    pub reads: Vec<(u64, Option<[u8; 64]>)>,
    /// Whether recovery reported itself complete (nothing unverifiable).
    pub recovery_complete: bool,
    /// The WPQ drain clock recorded at the crash — checked to be
    /// monotone in the crash point across the sweep.
    pub drain_clock: u64,
    /// The last few trace events before the crash, one NDJSON line each;
    /// shown verbatim when this point diverges.
    pub trace_tail: String,
    /// An error the workload hit *before* the crash fuse fired (a live
    /// system must execute its script cleanly). `None` when clean.
    pub exec_error: Option<String>,
}

/// How strictly recovered state is judged.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OracleMode {
    /// Recovery must be complete and every script line must read back
    /// exactly per the reference model (Anubis-style shadow recovery).
    Strict,
    /// Reads that succeed must match the model — *no silent corruption,
    /// ever* — but a read may fail if and only if recovery already
    /// declared itself incomplete (Osiris-style scan recovery, which
    /// cannot always rebuild unshadowed metadata).
    Weak,
}

impl OracleMode {
    /// Stable lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            OracleMode::Strict => "strict",
            OracleMode::Weak => "weak",
        }
    }
}

/// A crash point whose recovered state contradicts the reference model.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// The WPQ event the fuse was armed at.
    pub point: u64,
    /// What contradicted the model.
    pub reason: String,
    /// The last trace events before that crash (NDJSON lines).
    pub trace_tail: String,
}

/// The oracle's verdict for one script on one configuration.
#[derive(Clone, Debug)]
pub struct ScriptVerdict {
    /// How many crash points were enumerated (`total_events + 1`).
    pub points_checked: u64,
    /// The first divergent crash point, if any.
    pub divergence: Option<Divergence>,
}

/// Judges a single crash run against the reference model. Returns the
/// reason the run diverges, or `None` when it honours the contract.
pub fn check_point(script: &[Tx], census: &Census, mode: OracleMode, point: u64, run: &CrashRun) -> Option<String> {
    if let Some(err) = &run.exec_error {
        return Some(format!("script execution failed before the crash: {err}"));
    }
    let committed = census.committed_at(point);
    let model = expected_state(script, committed);
    if mode == OracleMode::Strict && !run.recovery_complete {
        return Some(format!(
            "recovery incomplete with {committed} transactions committed"
        ));
    }
    for &(line, got) in &run.reads {
        let want = model.get(&line).copied();
        match (got, want) {
            (Some(bytes), Some(fill)) => {
                if bytes != [fill; 64] {
                    return Some(format!(
                        "line {line}: read fill {:#04x} where the model (prefix of {committed}) has {fill:#04x}",
                        bytes[0]
                    ));
                }
            }
            (Some(bytes), None) => {
                if bytes != [0u8; 64] {
                    return Some(format!(
                        "line {line}: read fill {:#04x} where the model has never written it",
                        bytes[0]
                    ));
                }
            }
            (None, _) => {
                if mode == OracleMode::Strict || run.recovery_complete {
                    return Some(format!(
                        "line {line}: read failed although recovery claimed completeness"
                    ));
                }
            }
        }
    }
    None
}

/// Enumerates **every** crash point of a script and judges each one.
///
/// `run` executes the system under test with the crash fuse armed at the
/// given event and returns what it observed; it is called once per point
/// in `0..=census.total_events`, fanned out over `threads` workers with
/// deterministic chunking. Beyond the per-point model check, the sweep
/// asserts the drain clock recorded at the crash never moves backwards
/// as the crash point advances (the PR 3 invariant, now checker-owned).
pub fn check_script<F>(
    script: &[Tx],
    census: &Census,
    mode: OracleMode,
    threads: usize,
    run: F,
) -> ScriptVerdict
where
    F: Fn(u64) -> CrashRun + Sync,
{
    let points: Vec<u64> = (0..=census.total_events).collect();
    let points_checked = points.len() as u64;
    let runs = parallel_map(points, threads, |point| (point, run(point)));
    let mut divergence = None;
    let mut prev_clock = 0u64;
    for (point, run) in &runs {
        let mut reason = check_point(script, census, mode, *point, run);
        if reason.is_none() && run.drain_clock < prev_clock {
            reason = Some(format!(
                "drain clock went backwards: {} < {prev_clock}",
                run.drain_clock
            ));
        }
        prev_clock = prev_clock.max(run.drain_clock);
        if let Some(reason) = reason {
            divergence = Some(Divergence {
                point: *point,
                reason,
                trace_tail: run.trace_tail.clone(),
            });
            break;
        }
    }
    ScriptVerdict {
        points_checked,
        divergence,
    }
}

// ---------------------------------------------------------------------------
// WPQ journal: a pure model of the queue itself
// ---------------------------------------------------------------------------

/// 64-bit FNV-1a fingerprint — how journal records identify a line's
/// payload without storing all 64 bytes.
pub fn fingerprint64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One durability-relevant WPQ event, as journaled by the queue.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WpqEventRecord {
    /// A write group was accepted whole (event-clock tick).
    Accept {
        /// The event-clock value of this accept.
        event: u64,
        /// The accepted `(line address, payload fingerprint)` pairs, in
        /// queue order.
        writes: Vec<(u64, u64)>,
    },
    /// A full queue drained its oldest entry to media to make room
    /// (event-clock tick).
    StallDrain {
        /// The event-clock value of this drain.
        event: u64,
        /// Line address drained.
        addr: u64,
        /// Payload fingerprint drained.
        fp: u64,
    },
    /// ADR flushed one entry at power-off (no event-clock tick: the
    /// flush is not a crash point, it is what makes accepts durable).
    FlushDrain {
        /// Line address flushed.
        addr: u64,
        /// Payload fingerprint flushed.
        fp: u64,
    },
}

/// Summary statistics of a validated journal.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct JournalSummary {
    /// Number of group accepts.
    pub accepts: u64,
    /// Total writes accepted across all groups.
    pub writes_accepted: u64,
    /// Stall-induced drains.
    pub stall_drains: u64,
    /// ADR flush drains.
    pub flush_drains: u64,
    /// Peak queue occupancy observed.
    pub max_occupancy: usize,
}

/// Replays a WPQ journal against a pure FIFO-queue model and checks the
/// queue discipline the ADR contract rests on:
///
/// * the event clock ticks by exactly one per accept / stall drain;
/// * every drain (stall or flush) pops exactly the oldest entry;
/// * occupancy never exceeds `capacity`;
/// * after the final record the queue is empty (everything accepted
///   reached media) — ADR drained the whole queue.
///
/// Returns summary statistics, or the first discipline violation.
pub fn replay_journal(records: &[WpqEventRecord], capacity: usize) -> Result<JournalSummary, String> {
    let mut queue: std::collections::VecDeque<(u64, u64)> = std::collections::VecDeque::new();
    let mut clock = 0u64;
    let mut summary = JournalSummary::default();
    for (i, rec) in records.iter().enumerate() {
        match rec {
            WpqEventRecord::Accept { event, writes } => {
                clock += 1;
                if *event != clock {
                    return Err(format!("record {i}: accept event {event}, clock {clock}"));
                }
                if writes.is_empty() {
                    return Err(format!("record {i}: empty accept group"));
                }
                if queue.len() + writes.len() > capacity {
                    return Err(format!(
                        "record {i}: accept of {} overflows queue of {} (capacity {capacity})",
                        writes.len(),
                        queue.len()
                    ));
                }
                queue.extend(writes.iter().copied());
                summary.accepts += 1;
                summary.writes_accepted += writes.len() as u64;
            }
            WpqEventRecord::StallDrain { event, addr, fp } => {
                clock += 1;
                if *event != clock {
                    return Err(format!("record {i}: drain event {event}, clock {clock}"));
                }
                summary.stall_drains += 1;
                match queue.pop_front() {
                    Some(head) if head == (*addr, *fp) => {}
                    Some(head) => {
                        return Err(format!(
                            "record {i}: stall drain of {addr:#x} is not the queue head {:#x}",
                            head.0
                        ))
                    }
                    None => return Err(format!("record {i}: stall drain from an empty queue")),
                }
            }
            WpqEventRecord::FlushDrain { addr, fp } => {
                summary.flush_drains += 1;
                match queue.pop_front() {
                    Some(head) if head == (*addr, *fp) => {}
                    Some(head) => {
                        return Err(format!(
                            "record {i}: flush drain of {addr:#x} is not the queue head {:#x}",
                            head.0
                        ))
                    }
                    None => return Err(format!("record {i}: flush drain from an empty queue")),
                }
            }
        }
        summary.max_occupancy = summary.max_occupancy.max(queue.len());
    }
    if !queue.is_empty() {
        return Err(format!(
            "{} accepted writes never reached media (ADR must flush the whole queue)",
            queue.len()
        ));
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy atomic store: groups land on media wholly at their accept
    /// event if the event precedes the crash point, else not at all.
    fn toy_run(script: &[Tx], census: &Census, point: u64, torn: bool) -> CrashRun {
        let committed = census.committed_at(point);
        let mut model = expected_state(script, committed);
        if torn && committed < script.len() {
            // Simulate a torn transaction: half of the next
            // (uncommitted) transaction leaks to media.
            if let Some(&(line, fill)) = script[committed].writes.first() {
                model.insert(line, fill);
            }
        }
        let reads = script_lines(script)
            .into_iter()
            .map(|line| (line, Some(model.get(&line).map_or([0u8; 64], |&f| [f; 64]))))
            .collect();
        CrashRun {
            reads,
            recovery_complete: true,
            drain_clock: point,
            trace_tail: String::new(),
            exec_error: None,
        }
    }

    fn toy_census(script: &[Tx]) -> Census {
        // One accept event per transaction, no stalls.
        Census {
            total_events: script.len() as u64,
            commit_events: (1..=script.len() as u64).collect(),
        }
    }

    #[test]
    fn scripts_are_deterministic_and_bounded() {
        let a = gen_script(42, 8, 3, 64);
        let b = gen_script(42, 8, 3, 64);
        assert_eq!(a, b);
        assert!(!a.is_empty() && a.len() <= 8);
        for tx in &a {
            assert!(!tx.writes.is_empty() && tx.writes.len() <= 3);
            assert!(tx.writes.iter().all(|&(line, _)| line < 64));
        }
        assert_ne!(gen_script(43, 8, 3, 64), a);
    }

    #[test]
    fn reference_model_applies_prefixes_in_order() {
        let script = vec![
            Tx { writes: vec![(1, 0xaa), (2, 0xbb)] },
            Tx { writes: vec![(1, 0xcc)] },
        ];
        assert!(expected_state(&script, 0).is_empty());
        assert_eq!(expected_state(&script, 1).get(&1), Some(&0xaa));
        assert_eq!(expected_state(&script, 2).get(&1), Some(&0xcc));
        assert_eq!(expected_state(&script, 9).get(&2), Some(&0xbb));
        assert_eq!(script_lines(&script), vec![1, 2]);
    }

    #[test]
    fn census_maps_points_to_prefixes() {
        let census = Census { total_events: 7, commit_events: vec![2, 5] };
        assert_eq!(census.committed_at(0), 0);
        assert_eq!(census.committed_at(2), 1);
        assert_eq!(census.committed_at(4), 1);
        assert_eq!(census.committed_at(5), 2);
        assert!(census.validate().is_ok());
        let bad = Census { total_events: 3, commit_events: vec![2, 2] };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn honest_atomic_store_passes_every_point() {
        let script = gen_script(7, 6, 3, 16);
        let census = toy_census(&script);
        let verdict = check_script(&script, &census, OracleMode::Strict, 2, |p| {
            toy_run(&script, &census, p, false)
        });
        assert_eq!(verdict.points_checked, census.total_events + 1);
        assert!(verdict.divergence.is_none());
    }

    #[test]
    fn torn_transaction_is_caught_at_the_first_bad_point() {
        let script = vec![
            Tx { writes: vec![(3, 0x11)] },
            Tx { writes: vec![(4, 0x22), (3, 0x33)] },
        ];
        let census = toy_census(&script);
        let verdict = check_script(&script, &census, OracleMode::Strict, 1, |p| {
            toy_run(&script, &census, p, true)
        });
        let d = verdict.divergence.expect("torn write must diverge");
        assert_eq!(d.point, 0, "first bad point reported first");
        assert!(d.reason.contains("line"), "reason names the line: {}", d.reason);
    }

    #[test]
    fn verdicts_are_thread_count_invariant() {
        let script = gen_script(11, 8, 3, 32);
        let census = toy_census(&script);
        let run = |p| toy_run(&script, &census, p, p % 5 == 4);
        let v1 = check_script(&script, &census, OracleMode::Strict, 1, run);
        let v4 = check_script(&script, &census, OracleMode::Strict, 4, run);
        assert_eq!(v1.points_checked, v4.points_checked);
        match (&v1.divergence, &v4.divergence) {
            (Some(a), Some(b)) => {
                assert_eq!(a.point, b.point);
                assert_eq!(a.reason, b.reason);
            }
            (None, None) => {}
            other => panic!("thread count changed the verdict: {other:?}"),
        }
    }

    #[test]
    fn weak_mode_tolerates_failed_reads_only_when_incomplete() {
        let script = vec![Tx { writes: vec![(1, 0x55)] }];
        let census = toy_census(&script);
        let mut run = toy_run(&script, &census, 1, false);
        run.reads[0].1 = None;
        run.recovery_complete = false;
        assert!(check_point(&script, &census, OracleMode::Weak, 1, &run).is_none());
        assert!(check_point(&script, &census, OracleMode::Strict, 1, &run).is_some());
        run.recovery_complete = true;
        assert!(
            check_point(&script, &census, OracleMode::Weak, 1, &run).is_some(),
            "a complete recovery may not lose reads even in weak mode"
        );
    }

    #[test]
    fn exec_errors_always_diverge() {
        let script = vec![Tx { writes: vec![(1, 0x55)] }];
        let census = toy_census(&script);
        let mut run = toy_run(&script, &census, 1, false);
        run.exec_error = Some("write failed".into());
        assert!(check_point(&script, &census, OracleMode::Weak, 1, &run).is_some());
    }

    #[test]
    fn journal_replay_accepts_a_clean_history() {
        let records = vec![
            WpqEventRecord::Accept { event: 1, writes: vec![(10, 1), (11, 2)] },
            WpqEventRecord::Accept { event: 2, writes: vec![(12, 3)] },
            WpqEventRecord::StallDrain { event: 3, addr: 10, fp: 1 },
            WpqEventRecord::FlushDrain { addr: 11, fp: 2 },
            WpqEventRecord::FlushDrain { addr: 12, fp: 3 },
        ];
        let s = replay_journal(&records, 4).expect("clean history replays");
        assert_eq!(s.accepts, 2);
        assert_eq!(s.writes_accepted, 3);
        assert_eq!(s.stall_drains, 1);
        assert_eq!(s.flush_drains, 2);
        assert_eq!(s.max_occupancy, 3);
    }

    #[test]
    fn journal_replay_rejects_discipline_violations() {
        // Out-of-order drain.
        let records = vec![
            WpqEventRecord::Accept { event: 1, writes: vec![(10, 1), (11, 2)] },
            WpqEventRecord::FlushDrain { addr: 11, fp: 2 },
        ];
        assert!(replay_journal(&records, 4).is_err());
        // Overflow.
        let records = vec![WpqEventRecord::Accept { event: 1, writes: vec![(1, 1), (2, 2), (3, 3)] }];
        assert!(replay_journal(&records, 2).is_err());
        // Un-flushed residue.
        let records = vec![WpqEventRecord::Accept { event: 1, writes: vec![(1, 1)] }];
        assert!(replay_journal(&records, 4).is_err());
        // Clock skew.
        let records = vec![WpqEventRecord::Accept { event: 2, writes: vec![(1, 1)] }];
        assert!(replay_journal(&records, 4).is_err());
    }

    #[test]
    fn fingerprints_distinguish_payloads() {
        assert_ne!(fingerprint64(&[0u8; 64]), fingerprint64(&[1u8; 64]));
        assert_eq!(fingerprint64(b"abc"), fingerprint64(b"abc"));
    }

    #[test]
    fn tx_describe_is_compact() {
        let tx = Tx { writes: vec![(3, 0xab), (17, 0x01)] };
        assert_eq!(tx.describe(), "3:ab,17:01");
    }
}
