//! Scoped-thread fan-out built on [`std::thread::scope`].
//!
//! The workspace's parallelism is embarrassingly simple: N workers over
//! borrowed read-only state, join all, merge. This module packages that
//! shape so call sites never touch `std::thread` plumbing (and so no
//! external scoped-thread crate is needed).

/// Runs `f(0), f(1), …, f(tasks - 1)` on `tasks` scoped threads and
/// returns the results **in task order** (not completion order) — callers
/// that reduce floating-point partials get a deterministic reduction
/// order for free.
///
/// `tasks == 0` returns an empty vector; `tasks == 1` runs inline on the
/// caller's thread (no spawn overhead for the sequential case).
///
/// # Panics
///
/// Propagates the panic of any worker.
pub fn fan_out<R, F>(tasks: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    match tasks {
        0 => Vec::new(),
        1 => vec![f(0)],
        _ => std::thread::scope(|scope| {
            let f = &f;
            let handles: Vec<_> = (0..tasks)
                .map(|t| scope.spawn(move || f(t)))
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(r) => r,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        }),
    }
}

/// Splits `items` across up to `threads` workers, applies `f` to every
/// item, and returns one result per item **in item order**. The
/// assignment of items to workers is static (contiguous chunks), so runs
/// are reproducible for any thread count.
pub fn parallel_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let threads = threads.max(1).min(items.len());
    let chunk = items.len().div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut items = items;
    // Drain front-to-back so chunk i holds items [i*chunk, (i+1)*chunk).
    while !items.is_empty() {
        let rest = items.split_off(chunk.min(items.len()));
        chunks.push(std::mem::replace(&mut items, rest));
    }
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| match h.join() {
                Ok(r) => r,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    })
}

/// A sensible worker count: the machine's parallelism, with a fallback.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(4, |n| n.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fan_out_preserves_task_order() {
        let r = fan_out(8, |t| t * 10);
        assert_eq!(r, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn fan_out_zero_and_one() {
        assert!(fan_out(0, |t| t).is_empty());
        assert_eq!(fan_out(1, |t| t + 5), vec![5]);
    }

    #[test]
    fn fan_out_borrows_environment() {
        let data = [1u64, 2, 3, 4];
        let sums = fan_out(2, |t| data.iter().skip(t * 2).take(2).sum::<u64>());
        assert_eq!(sums, vec![3, 7]);
    }

    #[test]
    #[should_panic(expected = "worker 3 exploded")]
    fn fan_out_propagates_panics() {
        fan_out(5, |t| {
            if t == 3 {
                panic!("worker {t} exploded");
            }
            t
        });
    }

    #[test]
    fn parallel_map_preserves_item_order() {
        let items: Vec<u64> = (0..100).collect();
        let doubled = parallel_map(items.clone(), 7, |x| x * 2);
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_more_threads_than_items() {
        assert_eq!(parallel_map(vec![1, 2], 16, |x| x + 1), vec![2, 3]);
        assert!(parallel_map(Vec::<u64>::new(), 4, |x| x).is_empty());
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
