//! A minimal, fully deterministic property-testing harness: seeded
//! generators, bounded value-based shrinking, and a plain-text regression
//! corpus that replays known-bad cases before any novel ones.
//!
//! # Shape
//!
//! ```
//! use soteria_rt::prop::{any, check, vec, Config};
//!
//! check(
//!     "sum_is_commutative",
//!     &Config::with_cases(32),
//!     &(any::<u8>(), any::<u8>()),
//!     |&(a, b)| {
//!         soteria_rt::prop_assert_eq!(
//!             a as u16 + b as u16,
//!             b as u16 + a as u16
//!         );
//!         Ok(())
//!     },
//! );
//! # let _ = vec(any::<u8>(), 3);
//! ```
//!
//! Each case is generated from a seed derived from the configured base
//! seed, the test name, and the case index — so one failing case can be
//! replayed forever by storing just its seed. On failure the harness
//! (1) shrinks the value greedily through [`Strategy::shrink`] candidates
//! under a bounded budget, (2) appends `name seed=0x…` to the configured
//! regression corpus, and (3) panics with the minimal value, the original
//! error, and the seed.
//!
//! # Regression corpus format
//!
//! ```text
//! # comments and blank lines are ignored
//! counter_block_roundtrips seed=0x4fe310945049bec9  # shrinks to …
//! ```
//!
//! Entries whose name matches the running test are replayed first.

use std::collections::BTreeSet;
use std::fmt::Debug;
use std::io::Write as _;
use std::path::PathBuf;

use crate::rng::{stream_seed, StdRng};

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A seeded generator of values plus a shrinker toward "simpler" ones.
pub trait Strategy {
    /// The type of value generated.
    type Value: Clone + Debug;

    /// Generates one value from the RNG.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Candidate simplifications of `value`, simplest first. An empty
    /// vector means the value is fully shrunk.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        (**self).shrink(value)
    }
}

/// Shrink candidates for an integer-like value toward `low`: a halving
/// ladder `low, v − d/2, v − d/4, …, v − 1` (simplest first). Greedy
/// descent over this ladder behaves like binary search, reaching the
/// failure boundary in O(log²) test invocations.
fn shrink_toward_u64(low: u64, v: u64) -> Vec<u64> {
    let mut out = Vec::new();
    if v == low {
        return out;
    }
    let mut delta = v - low;
    while delta > 0 {
        let candidate = v - delta;
        if out.last() != Some(&candidate) {
            out.push(candidate);
        }
        delta /= 2;
    }
    out
}

// ---------------------------------------------------------------------------
// any::<T>() — full-domain primitives
// ---------------------------------------------------------------------------

/// Full-domain strategy for a primitive; see [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

/// The whole domain of a primitive type (`u8`–`u64`, `usize`, `i32`,
/// `i64`, `bool`, or `f64` in `[0, 1)`).
pub fn any<T>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! impl_any_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random()
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_toward_u64(0, *value as u64)
                    .into_iter()
                    .map(|v| v as $t)
                    .collect()
            }
        }
    )*};
}

impl_any_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random()
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                let v = *value;
                let mut out = Vec::new();
                if v != 0 {
                    out.push(0);
                    if v < 0 && v.checked_neg().is_some() {
                        out.push(-v);
                    }
                    let half = v / 2;
                    if half != 0 && half != v {
                        out.push(half);
                    }
                }
                out
            }
        }
    )*};
}

impl_any_int!(i32, i64);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut StdRng) -> bool {
        rng.random()
    }
    fn shrink(&self, value: &bool) -> Vec<bool> {
        if *value {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl Strategy for Any<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.random()
    }
    fn shrink(&self, value: &f64) -> Vec<f64> {
        if *value == 0.0 {
            Vec::new()
        } else {
            vec![0.0, value / 2.0]
        }
    }
}

// ---------------------------------------------------------------------------
// Ranges as strategies
// ---------------------------------------------------------------------------

macro_rules! impl_range_strategy_uint {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_toward_u64(self.start as u64, *value as u64)
                    .into_iter()
                    .map(|v| v as $t)
                    .collect()
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_toward_u64(*self.start() as u64, *value as u64)
                    .into_iter()
                    .map(|v| v as $t)
                    .collect()
            }
        }
    )*};
}

impl_range_strategy_uint!(u8, u16, u32, u64, usize);

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

/// An inclusive size window for generated collections.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    /// Smallest allowed size.
    pub min: usize,
    /// Largest allowed size.
    pub max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { min: n, max: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        Self {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl SizeRange {
    fn sample(&self, rng: &mut StdRng) -> usize {
        rng.random_range(self.min..=self.max)
    }
}

/// Strategy for `Vec<T>`; see [`vec()`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// A vector whose length is drawn from `size` and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }

    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let mut out = Vec::new();
        let len = value.len();
        // Structural shrinks first: halves, then single-element removals.
        if len / 2 >= self.size.min && len > self.size.min {
            out.push(value[..len / 2].to_vec());
            out.push(value[len - len / 2..].to_vec());
        }
        if len > self.size.min {
            for i in 0..len.min(16) {
                let mut smaller = value.clone();
                smaller.remove(i);
                out.push(smaller);
            }
        }
        // Element-wise shrinks on a bounded prefix.
        for i in 0..len.min(16) {
            for replacement in self.element.shrink(&value[i]).into_iter().take(3) {
                let mut simpler = value.clone();
                simpler[i] = replacement;
                out.push(simpler);
            }
        }
        out
    }
}

/// Strategy for `BTreeSet<T>`; see [`btree_set`].
#[derive(Clone, Debug)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

/// A `BTreeSet` holding between `size.min` and `size.max` distinct
/// elements from `element`. If the element domain is too small to reach
/// the sampled size, the set is returned at its achievable size (still
/// at least one element whenever `size.max > 0`).
pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let target = self.size.sample(rng);
        let mut set = BTreeSet::new();
        let mut attempts = 0usize;
        while set.len() < target && attempts < 100 * (target + 1) {
            set.insert(self.element.generate(rng));
            attempts += 1;
        }
        set
    }

    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let mut out = Vec::new();
        if value.len() > self.size.min {
            for drop in value.iter().take(16) {
                let mut smaller = value.clone();
                smaller.remove(drop);
                out.push(smaller);
            }
        }
        for elem in value.iter().take(16) {
            for replacement in self.element.shrink(elem).into_iter().take(3) {
                let mut simpler = value.clone();
                simpler.remove(elem);
                simpler.insert(replacement);
                if simpler.len() >= self.size.min {
                    out.push(simpler);
                }
            }
        }
        out
    }
}

/// Strategy for `[T; N]`; see [`array()`].
#[derive(Clone, Debug)]
pub struct ArrayStrategy<S, const N: usize> {
    element: S,
}

/// A fixed-size array of `N` elements drawn from `element`.
pub fn array<S: Strategy, const N: usize>(element: S) -> ArrayStrategy<S, N>
where
    S::Value: Copy,
{
    ArrayStrategy { element }
}

impl<S: Strategy, const N: usize> Strategy for ArrayStrategy<S, N>
where
    S::Value: Copy,
{
    type Value = [S::Value; N];

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        std::array::from_fn(|_| self.element.generate(rng))
    }

    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let mut out = Vec::new();
        for i in 0..N.min(16) {
            for replacement in self.element.shrink(&value[i]).into_iter().take(2) {
                let mut simpler = *value;
                simpler[i] = replacement;
                out.push(simpler);
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Tuples
// ---------------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for candidate in self.$idx.shrink(&value.$idx) {
                        let mut simpler = value.clone();
                        simpler.$idx = candidate;
                        out.push(simpler);
                    }
                )+
                out
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// The result a property body returns per case.
pub type CaseResult = Result<(), String>;

/// Runner configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Novel cases to generate.
    pub cases: u32,
    /// Base seed; every case seed derives from it, the test name, and the
    /// case index.
    pub seed: u64,
    /// Total test invocations the shrinker may spend.
    pub max_shrink_iters: u32,
    /// Regression corpus path (replayed first; appended to on failure).
    pub regression_file: Option<PathBuf>,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            cases: 64,
            seed: 0x5072_0b5e_5072_0b5e,
            max_shrink_iters: 1024,
            regression_file: None,
        }
    }
}

impl Config {
    /// A config generating `cases` novel cases.
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }

    /// Attaches a regression corpus file.
    pub fn regressions(mut self, path: impl Into<PathBuf>) -> Self {
        self.regression_file = Some(path.into());
        self
    }
}

/// FNV-1a over the test name, so each test gets its own seed stream.
fn name_hash(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn load_regression_seeds(path: &PathBuf, name: &str) -> Vec<u64> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut seeds = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(entry_name), Some(seed_part)) = (parts.next(), parts.next()) else {
            continue;
        };
        if entry_name != name {
            continue;
        }
        if let Some(hex) = seed_part.strip_prefix("seed=0x") {
            if let Ok(seed) = u64::from_str_radix(hex, 16) {
                seeds.push(seed);
            }
        }
    }
    seeds
}

fn record_regression(path: &PathBuf, name: &str, case_seed: u64, minimal: &impl Debug) {
    // Skip when the entry is already in the corpus.
    if load_regression_seeds(path, name).contains(&case_seed) {
        return;
    }
    let mut debug = format!("{minimal:?}");
    if debug.len() > 300 {
        debug.truncate(300);
        debug.push('…');
    }
    let debug = debug.replace('\n', " ");
    if let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(path) {
        let _ = writeln!(f, "{name} seed=0x{case_seed:016x}  # shrinks to {debug}");
    }
}

/// Runs a property: replays the regression corpus for `name`, then
/// generates `config.cases` novel cases. On failure it shrinks the case,
/// records its seed in the corpus, and panics with the minimal
/// counterexample.
///
/// # Panics
///
/// Panics when the property fails for any case.
pub fn check<S, F>(name: &str, config: &Config, strategy: &S, test: F)
where
    S: Strategy,
    F: Fn(&S::Value) -> CaseResult,
{
    let base = config.seed ^ name_hash(name);

    // 1. Known-bad cases first.
    if let Some(path) = &config.regression_file {
        for seed in load_regression_seeds(path, name) {
            run_case(name, config, strategy, &test, seed, true);
        }
    }

    // 2. Novel cases.
    for case in 0..config.cases {
        let case_seed = stream_seed(base, u64::from(case));
        run_case(name, config, strategy, &test, case_seed, false);
    }
}

fn run_case<S, F>(
    name: &str,
    config: &Config,
    strategy: &S,
    test: &F,
    case_seed: u64,
    is_replay: bool,
) where
    S: Strategy,
    F: Fn(&S::Value) -> CaseResult,
{
    let mut rng = StdRng::seed_from_u64(case_seed);
    let value = strategy.generate(&mut rng);
    let Err(error) = test(&value) else {
        return;
    };

    // Shrink greedily under a global budget.
    let mut minimal = value;
    let mut minimal_error = error;
    let mut budget = config.max_shrink_iters;
    'shrinking: loop {
        for candidate in strategy.shrink(&minimal) {
            if budget == 0 {
                break 'shrinking;
            }
            budget -= 1;
            if let Err(e) = test(&candidate) {
                minimal = candidate;
                minimal_error = e;
                continue 'shrinking;
            }
        }
        break;
    }

    if !is_replay {
        if let Some(path) = &config.regression_file {
            record_regression(path, name, case_seed, &minimal);
        }
    }
    let origin = if is_replay {
        "regression corpus replay"
    } else {
        "novel case"
    };
    panic!(
        "property `{name}` failed ({origin}, seed=0x{case_seed:016x})\n\
         minimal counterexample: {minimal:#?}\n\
         error: {minimal_error}"
    );
}

/// Asserts a condition inside a property body, failing the case (not the
/// process) so the harness can shrink.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a property body, failing the case so the
/// harness can shrink.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        if left != right {
            return Err(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?} ({}:{})",
                stringify!($left),
                stringify!($right),
                left,
                right,
                file!(),
                line!()
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if left != right {
            return Err(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                left,
                right
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let count = std::cell::Cell::new(0u32);
        check(
            "always_true",
            &Config::with_cases(50),
            &any::<u64>(),
            |_| {
                count.set(count.get() + 1);
                Ok(())
            },
        );
        assert_eq!(count.get(), 50);
    }

    #[test]
    #[should_panic(expected = "property `always_false` failed")]
    fn failing_property_panics() {
        check(
            "always_false",
            &Config::with_cases(10),
            &any::<u32>(),
            |_| Err("nope".to_string()),
        );
    }

    #[test]
    fn shrinking_finds_the_boundary() {
        // Property "v < 1000" fails for v >= 1000; the minimal
        // counterexample must shrink all the way down to exactly 1000.
        let minimal = std::cell::Cell::new(u64::MAX);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            check(
                "boundary",
                &Config::with_cases(20),
                &any::<u64>(),
                |&v| {
                    if v >= 1000 {
                        minimal.set(minimal.get().min(v));
                        Err(format!("{v} too big"))
                    } else {
                        Ok(())
                    }
                },
            );
        }));
        assert!(result.is_err(), "property must fail");
        assert_eq!(minimal.get(), 1000, "shrinker must reach the boundary");
    }

    #[test]
    fn vec_shrinking_reduces_length() {
        let min_len = std::cell::Cell::new(usize::MAX);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            check(
                "vec_min",
                &Config::with_cases(5),
                &vec(any::<u8>(), 0..50usize),
                |v| {
                    if v.len() >= 3 {
                        min_len.set(min_len.get().min(v.len()));
                        Err("too long".into())
                    } else {
                        Ok(())
                    }
                },
            );
        }));
        assert!(result.is_err());
        assert_eq!(min_len.get(), 3, "minimal failing length is 3");
    }

    #[test]
    fn generation_is_deterministic_per_name_and_seed() {
        let collect = |name: &str| {
            let values = std::cell::RefCell::new(Vec::new());
            check(name, &Config::with_cases(10), &any::<u64>(), |&v| {
                values.borrow_mut().push(v);
                Ok(())
            });
            values.into_inner()
        };
        assert_eq!(collect("det_a"), collect("det_a"));
        assert_ne!(collect("det_a"), collect("det_b"));
    }

    #[test]
    fn btree_set_respects_size_window() {
        check(
            "btree_sizes",
            &Config::with_cases(64),
            &btree_set(0usize..100, 1..=4usize),
            |s| {
                crate::prop_assert!((1..=4).contains(&s.len()), "size {}", s.len());
                Ok(())
            },
        );
    }

    #[test]
    fn array_and_tuple_generate() {
        check(
            "arrays",
            &Config::with_cases(16),
            &(array::<_, 16>(any::<u8>()), any::<bool>(), 0u32..7),
            |&(bytes, _flag, small)| {
                crate::prop_assert_eq!(bytes.len(), 16);
                crate::prop_assert!(small < 7);
                Ok(())
            },
        );
    }

    #[test]
    fn regression_corpus_roundtrip() {
        let dir = std::env::temp_dir().join("soteria_rt_prop_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("corpus_{}.txt", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let config = Config::with_cases(20).regressions(&path);

        // First run fails and records the seed.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            check("corpus_rt", &config, &any::<u64>(), |&v| {
                if v >= 10 {
                    Err("big".into())
                } else {
                    Ok(())
                }
            });
        }));
        assert!(result.is_err());
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("corpus_rt seed=0x"), "corpus: {text}");
        let recorded = load_regression_seeds(&path, "corpus_rt");
        assert_eq!(recorded.len(), 1);

        // Second run replays the recorded case first and fails on it even
        // with zero novel cases.
        let replay_only = Config {
            cases: 0,
            ..config.clone()
        };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            check("corpus_rt", &replay_only, &any::<u64>(), |&v| {
                if v >= 10 {
                    Err("big".into())
                } else {
                    Ok(())
                }
            });
        }));
        let message = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(
            message.contains("regression corpus replay"),
            "panic must name the corpus: {message}"
        );

        // Failing again must not duplicate the entry.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            check("corpus_rt", &config, &any::<u64>(), |&v| {
                if v >= 10 {
                    Err("big".into())
                } else {
                    Ok(())
                }
            });
        }));
        assert!(result.is_err());
        assert_eq!(load_regression_seeds(&path, "corpus_rt").len(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn name_hash_separates_names() {
        assert_ne!(name_hash("a"), name_hash("b"));
        assert_eq!(name_hash("same"), name_hash("same"));
    }
}
