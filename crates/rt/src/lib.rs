#![warn(missing_docs)]

//! `soteria-rt`: the zero-dependency runtime substrate of the Soteria
//! workspace.
//!
//! The build environment is hermetic — no crate registry is reachable —
//! so everything the simulator, test suites, and benchmarks need beyond
//! `std` lives here:
//!
//! * [`rng`] — deterministic seedable PRNG (SplitMix64 seed expansion +
//!   xoshiro256\*\*) with uniform, range, Poisson, and exponential
//!   sampling. Same seed ⇒ same stream, on every platform, forever.
//! * [`prop`] — a minimal property-testing harness: seeded generators,
//!   bounded shrinking, and a plain-text regression corpus replayed
//!   before novel cases.
//! * [`thread`] — scoped-thread fan-out on [`std::thread::scope`] whose
//!   results come back in task order (deterministic reductions).
//! * [`mod@bench`] — a wall-clock micro-benchmark harness (calibrated
//!   batches, warmup, median/p95).
//! * [`json`] — a minimal order-preserving JSON value, parser, and
//!   writer for machine-readable artifacts (benchmark baselines).
//! * [`bytes`] — fixed-width byte-slice helpers (`chunk`, `u32_le`, …)
//!   that centralize the slice→array length check instead of scattering
//!   `try_into().expect(..)` panic sites through library code.
//! * [`crashck`] — crash-consistency checking: a pure committed-prefix
//!   reference model, an exhaustive crash-point oracle, and a replayable
//!   WPQ journal model for atomic-commit storage stacks.
//! * [`obs`] — deterministic observability: structured trace events
//!   (ring-buffered, NDJSON export), typed counters, log2 histograms,
//!   and scoped timers that are no-ops unless enabled. Same seed ⇒
//!   byte-identical trace, at any thread count.
//!
//! Policy: **no crate in this workspace may depend on anything outside
//! the workspace.** CI builds with `--offline` against an empty registry
//! cache, so a reintroduced external dependency fails the build.

pub mod bench;
pub mod bytes;
pub mod crashck;
pub mod json;
pub mod obs;
pub mod prop;
pub mod reactor;
pub mod rng;
pub mod thread;

pub use rng::{SplitMix64, StdRng, Xoshiro256StarStar};
