//! Chipkill-Correct: whole-chip failure tolerance via chip-striped
//! Reed–Solomon symbols, plus a pluggable [`LineCodec`] abstraction so the
//! NVM device model can swap ECC strength (the decoupling ablation of
//! §3.1/§6.2).
//!
//! The Table 4 DIMM has 18 × 8-bit chips. Every memory *beat* transfers one
//! byte from each chip; 16 of those bytes are data and 2 are Reed–Solomon
//! parity, i.e. an RS(18, 16) codeword **per beat** with one symbol per
//! chip. A 64-byte line needs 4 beats. Any single chip can fail outright
//! and every beat still corrects its one lost symbol — that is
//! Chipkill-Correct. Two chips failing within a rank defeats it
//! (uncorrectable), which is precisely the event the FaultSim campaign
//! counts.
//!
//! # Example
//!
//! ```
//! use soteria_ecc::chipkill::{ChipkillCodec, LineCodec};
//!
//! let codec = ChipkillCodec::table4();
//! let line = [0xabu8; 64];
//! let mut stored = codec.encode_line(&line);
//! // Kill chip 7: every byte it contributes goes bad.
//! for (i, b) in stored.iter_mut().enumerate() {
//!     if i % 18 == 7 { *b = 0xff; }
//! }
//! let (decoded, outcome) = codec.decode_line(&stored);
//! assert_eq!(decoded, line);
//! assert!(outcome.is_usable());
//! ```

use crate::hamming::SecDed72;
use crate::rs::ReedSolomon;
use crate::CorrectionOutcome;

/// A codec that turns a 64-byte line into a stored codeword and back,
/// reporting correction outcomes.
///
/// Stored byte `i` belongs to chip `i % total_chips()`, so fault injectors
/// can target whole chips uniformly across codecs.
pub trait LineCodec {
    /// Number of chips the codeword is striped over.
    fn total_chips(&self) -> usize;

    /// Stored codeword size in bytes for one 64-byte line.
    fn codeword_bytes(&self) -> usize;

    /// Guaranteed-correctable number of *whole chips*.
    fn correctable_chips(&self) -> usize;

    /// Encodes a line into its stored codeword.
    fn encode_line(&self, line: &[u8; 64]) -> Vec<u8>;

    /// Encodes a line into an existing codeword buffer, reusing its
    /// allocation when it already has the right size (the overwrite-heavy
    /// NVM device path). Falls back to [`LineCodec::encode_line`].
    fn encode_line_into(&self, line: &[u8; 64], stored: &mut Vec<u8>) {
        *stored = self.encode_line(line);
    }

    /// Decodes a stored codeword.
    ///
    /// # Panics
    ///
    /// Panics if `stored.len() != self.codeword_bytes()`.
    fn decode_line(&self, stored: &[u8]) -> ([u8; 64], CorrectionOutcome);

    /// Decodes treating `marked_chips` as erasures (chip marking / chip
    /// sparing: a chip known to be dead no longer consumes the unknown-
    /// error budget). Codecs without erasure support fall back to plain
    /// decoding.
    fn decode_line_marked(
        &self,
        stored: &[u8],
        marked_chips: &[usize],
    ) -> ([u8; 64], CorrectionOutcome) {
        let _ = marked_chips;
        self.decode_line(stored)
    }
}

/// Chipkill-Correct codec: RS(data_chips + check_chips, data_chips) per
/// beat, one 8-bit symbol per chip.
#[derive(Clone, Debug)]
pub struct ChipkillCodec {
    rs: ReedSolomon,
    data_chips: usize,
    total_chips: usize,
    beats: usize,
}

impl ChipkillCodec {
    /// Creates a codec for a DIMM with `data_chips` data chips and
    /// `check_chips` redundant chips.
    ///
    /// # Panics
    ///
    /// Panics unless `data_chips` divides 64 and the RS parameters are
    /// valid.
    pub fn new(data_chips: usize, check_chips: usize) -> Self {
        assert!(
            64 % data_chips == 0,
            "data chips must divide the 64-byte line"
        );
        let total = data_chips + check_chips;
        let rs = ReedSolomon::new(total, data_chips)
            // lint:allow(P1, the asserts above pin n and k to valid RS parameters)
            .expect("chip counts form valid Reed-Solomon parameters");
        Self {
            rs,
            data_chips,
            total_chips: total,
            beats: 64 / data_chips,
        }
    }

    /// The paper's Table 4 configuration: 18 chips, 16 data + 2 check,
    /// single-chipkill (corrects 1 chip, detects 2).
    pub fn table4() -> Self {
        Self::new(16, 2)
    }

    /// Double-chipkill ablation: 16 data + 4 check chips, corrects 2.
    pub fn double_chipkill() -> Self {
        Self::new(16, 4)
    }

    /// Number of beats (codewords) per 64-byte line.
    pub fn beats(&self) -> usize {
        self.beats
    }
}

impl ChipkillCodec {
    fn decode_impl(&self, stored: &[u8], marked: &[usize]) -> ([u8; 64], CorrectionOutcome) {
        assert_eq!(
            stored.len(),
            self.codeword_bytes(),
            "stored codeword size mismatch"
        );
        let mut line = [0u8; 64];
        let mut corrected_symbols = 0usize;
        let mut any_uncorrectable = false;
        for beat in 0..self.beats {
            let cw = &stored[beat * self.total_chips..(beat + 1) * self.total_chips];
            // Clean fast path: a zero syndrome vector means `cw` is a valid
            // codeword, which is exactly when `rs.decode` returns the data
            // symbols unchanged as Clean — skip its allocations entirely.
            // The overwhelming majority of reads (no injected faults) land
            // here.
            if marked.is_empty() && matches!(self.rs.syndromes_all_zero(cw), Ok(true)) {
                line[beat * self.data_chips..(beat + 1) * self.data_chips]
                    .copy_from_slice(&cw[..self.data_chips]);
                continue;
            }
            let (data, outcome) = if marked.is_empty() {
                self.rs
                    .decode(cw)
                    // lint:allow(P1, the codeword slice is exactly n symbols by construction)
                    .expect("decode length is n by construction")
            } else {
                self.rs
                    .decode_with_erasures(cw, marked)
                    // lint:allow(P1, the codeword slice is exactly n symbols by construction)
                    .expect("decode length is n by construction")
            };
            line[beat * self.data_chips..(beat + 1) * self.data_chips].copy_from_slice(&data);
            match outcome {
                CorrectionOutcome::Clean => {}
                CorrectionOutcome::Corrected { symbols } => corrected_symbols += symbols,
                CorrectionOutcome::Uncorrectable => any_uncorrectable = true,
            }
        }
        let outcome = if any_uncorrectable {
            CorrectionOutcome::Uncorrectable
        } else if corrected_symbols > 0 {
            CorrectionOutcome::Corrected {
                symbols: corrected_symbols,
            }
        } else {
            CorrectionOutcome::Clean
        };
        (line, outcome)
    }
}

impl LineCodec for ChipkillCodec {
    fn total_chips(&self) -> usize {
        self.total_chips
    }

    fn codeword_bytes(&self) -> usize {
        self.beats * self.total_chips
    }

    fn correctable_chips(&self) -> usize {
        self.rs.correctable()
    }

    fn encode_line(&self, line: &[u8; 64]) -> Vec<u8> {
        // One stored buffer for the whole line; each beat encodes in
        // place into its slice (no per-beat codeword allocation).
        let mut stored = vec![0u8; self.codeword_bytes()];
        for beat in 0..self.beats {
            let data = &line[beat * self.data_chips..(beat + 1) * self.data_chips];
            self.rs
                .encode_into(
                    data,
                    &mut stored[beat * self.total_chips..(beat + 1) * self.total_chips],
                )
                // lint:allow(P1, the data slice is exactly k symbols by construction)
                .expect("encode length is k by construction");
        }
        stored
    }

    fn encode_line_into(&self, line: &[u8; 64], stored: &mut Vec<u8>) {
        stored.resize(self.codeword_bytes(), 0);
        for beat in 0..self.beats {
            let data = &line[beat * self.data_chips..(beat + 1) * self.data_chips];
            self.rs
                .encode_into(
                    data,
                    &mut stored[beat * self.total_chips..(beat + 1) * self.total_chips],
                )
                // lint:allow(P1, the data slice is exactly k symbols by construction)
                .expect("encode length is k by construction");
        }
    }

    fn decode_line(&self, stored: &[u8]) -> ([u8; 64], CorrectionOutcome) {
        self.decode_impl(stored, &[])
    }

    fn decode_line_marked(
        &self,
        stored: &[u8],
        marked_chips: &[usize],
    ) -> ([u8; 64], CorrectionOutcome) {
        self.decode_impl(stored, marked_chips)
    }
}

/// Conventional SEC-DED codec: Hamming(72, 64) per 64-bit word, eight
/// codewords per line (the weaker-ECC ablation).
#[derive(Clone, Copy, Debug, Default)]
pub struct SecDedCodec;

impl SecDedCodec {
    /// Creates the codec.
    pub fn new() -> Self {
        Self
    }
}

impl LineCodec for SecDedCodec {
    fn total_chips(&self) -> usize {
        18
    }

    fn codeword_bytes(&self) -> usize {
        72 // 8 words x 9 bytes
    }

    fn correctable_chips(&self) -> usize {
        0 // corrects single bits only; any whole-chip failure is fatal
    }

    fn encode_line(&self, line: &[u8; 64]) -> Vec<u8> {
        let mut stored = Vec::with_capacity(72);
        for w in 0..8 {
            let word = soteria_rt::bytes::u64_le(&line[8 * w..8 * w + 8]);
            let raw = SecDed72::encode(word).raw();
            stored.extend_from_slice(&raw.to_le_bytes()[..9]);
        }
        stored
    }

    fn decode_line(&self, stored: &[u8]) -> ([u8; 64], CorrectionOutcome) {
        assert_eq!(stored.len(), 72, "stored codeword size mismatch");
        let mut line = [0u8; 64];
        let mut corrected = 0usize;
        let mut any_uncorrectable = false;
        for w in 0..8 {
            let mut raw_bytes = [0u8; 16];
            raw_bytes[..9].copy_from_slice(&stored[9 * w..9 * w + 9]);
            let cw = SecDed72::from_raw(u128::from_le_bytes(raw_bytes));
            let (word, outcome) = cw.decode();
            line[8 * w..8 * w + 8].copy_from_slice(&word.to_le_bytes());
            match outcome {
                CorrectionOutcome::Clean => {}
                CorrectionOutcome::Corrected { symbols } => corrected += symbols,
                CorrectionOutcome::Uncorrectable => any_uncorrectable = true,
            }
        }
        let outcome = if any_uncorrectable {
            CorrectionOutcome::Uncorrectable
        } else if corrected > 0 {
            CorrectionOutcome::Corrected { symbols: corrected }
        } else {
            CorrectionOutcome::Clean
        };
        (line, outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_line() -> [u8; 64] {
        core::array::from_fn(|i| (i as u8).wrapping_mul(37).wrapping_add(11))
    }

    #[test]
    fn table4_geometry() {
        let c = ChipkillCodec::table4();
        assert_eq!(c.total_chips(), 18);
        assert_eq!(c.beats(), 4);
        assert_eq!(c.codeword_bytes(), 72);
        assert_eq!(c.correctable_chips(), 1);
    }

    #[test]
    fn clean_roundtrip() {
        let c = ChipkillCodec::table4();
        let line = sample_line();
        let (decoded, outcome) = c.decode_line(&c.encode_line(&line));
        assert_eq!(decoded, line);
        assert_eq!(outcome, CorrectionOutcome::Clean);
    }

    #[test]
    fn encode_line_into_matches_encode_line() {
        let c = ChipkillCodec::table4();
        let line = sample_line();
        // Wrong-size and right-size buffers both end up identical to the
        // allocating encoder.
        for initial in [0usize, 10, 72, 100] {
            let mut stored = vec![0xeeu8; initial];
            c.encode_line_into(&line, &mut stored);
            assert_eq!(stored, c.encode_line(&line), "initial size {initial}");
        }
        let s = SecDedCodec::new();
        let mut stored = Vec::new();
        s.encode_line_into(&line, &mut stored);
        assert_eq!(stored, s.encode_line(&line));
    }

    #[test]
    fn survives_any_single_chip_kill() {
        let c = ChipkillCodec::table4();
        let line = sample_line();
        let clean = c.encode_line(&line);
        for chip in 0..18 {
            let mut stored = clean.clone();
            for (i, b) in stored.iter_mut().enumerate() {
                if i % 18 == chip {
                    *b ^= 0xa5; // corrupt every beat of this chip
                }
            }
            let (decoded, outcome) = c.decode_line(&stored);
            assert_eq!(decoded, line, "chip {chip}");
            assert!(
                matches!(outcome, CorrectionOutcome::Corrected { .. }),
                "chip {chip}"
            );
        }
    }

    #[test]
    fn two_chip_kill_is_uncorrectable() {
        let c = ChipkillCodec::table4();
        let line = sample_line();
        let mut stored = c.encode_line(&line);
        for (i, b) in stored.iter_mut().enumerate() {
            let chip = i % 18;
            if chip == 3 || chip == 11 {
                *b ^= 0x77;
            }
        }
        let (_, outcome) = c.decode_line(&stored);
        assert_eq!(outcome, CorrectionOutcome::Uncorrectable);
    }

    #[test]
    fn double_chipkill_survives_two_chips() {
        let c = ChipkillCodec::double_chipkill();
        assert_eq!(c.correctable_chips(), 2);
        let line = sample_line();
        let mut stored = c.encode_line(&line);
        for (i, b) in stored.iter_mut().enumerate() {
            let chip = i % c.total_chips();
            if chip == 0 || chip == 10 {
                *b ^= 0x42;
            }
        }
        let (decoded, outcome) = c.decode_line(&stored);
        assert_eq!(decoded, line);
        assert!(matches!(outcome, CorrectionOutcome::Corrected { .. }));
    }

    #[test]
    fn single_bit_error_is_corrected() {
        let c = ChipkillCodec::table4();
        let line = sample_line();
        let mut stored = c.encode_line(&line);
        stored[40] ^= 0x04;
        let (decoded, outcome) = c.decode_line(&stored);
        assert_eq!(decoded, line);
        assert_eq!(outcome, CorrectionOutcome::Corrected { symbols: 1 });
    }

    #[test]
    fn secded_roundtrip_and_single_bits() {
        let c = SecDedCodec::new();
        let line = sample_line();
        let clean = c.encode_line(&line);
        assert_eq!(clean.len(), 72);
        let (decoded, outcome) = c.decode_line(&clean);
        assert_eq!(decoded, line);
        assert_eq!(outcome, CorrectionOutcome::Clean);

        // One bit flip in each of two different words: both corrected.
        let mut stored = clean.clone();
        stored[0] ^= 0x01;
        stored[30] ^= 0x10;
        let (decoded, outcome) = c.decode_line(&stored);
        assert_eq!(decoded, line);
        assert!(matches!(
            outcome,
            CorrectionOutcome::Corrected { symbols: 2 }
        ));
    }

    #[test]
    fn secded_cannot_survive_chip_kill() {
        // A whole-chip failure hits 8 bits per affected word: SEC-DED either
        // detects it as uncorrectable or — when the 8 flips alias to a zero
        // syndrome — *silently corrupts* the data. Either way the data is
        // never both "usable" and correct, which is exactly why Table 4
        // specifies chipkill for NVM DIMMs.
        let c = SecDedCodec::new();
        let line = sample_line();
        for chip in 0..18 {
            for pattern in [0xffu8, 0x5a, 0x03] {
                let mut stored = c.encode_line(&line);
                for (i, b) in stored.iter_mut().enumerate() {
                    if i % 18 == chip {
                        *b ^= pattern;
                    }
                }
                let (decoded, outcome) = c.decode_line(&stored);
                assert!(
                    outcome == CorrectionOutcome::Uncorrectable || decoded != line,
                    "chip {chip} pattern {pattern:#x}: SEC-DED claimed a clean recovery"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn decode_length_checked() {
        ChipkillCodec::table4().decode_line(&[0u8; 71]);
    }

    #[test]
    fn marking_survives_two_dead_chips() {
        // RS(18,16) has d = 3: two unknown bad chips are fatal, but two
        // *marked* chips are pure erasures (e = 2 <= 2t) and both recover.
        let c = ChipkillCodec::table4();
        let line = sample_line();
        let mut stored = c.encode_line(&line);
        for (i, b) in stored.iter_mut().enumerate() {
            let chip = i % 18;
            if chip == 5 || chip == 11 {
                *b ^= 0xff;
            }
        }
        let (_, plain) = c.decode_line(&stored);
        assert_eq!(plain, CorrectionOutcome::Uncorrectable);
        let (decoded, marked) = c.decode_line_marked(&stored, &[5, 11]);
        assert_eq!(decoded, line);
        assert!(marked.is_usable(), "{marked:?}");
    }

    #[test]
    fn double_chipkill_marking_absorbs_dead_chip_plus_fresh_error() {
        // With 2t = 4: one marked dead chip (e = 1) plus one unknown
        // error (2v = 2) fits the budget (3 <= 4).
        let c = ChipkillCodec::double_chipkill();
        let line = sample_line();
        let mut stored = c.encode_line(&line);
        for (i, b) in stored.iter_mut().enumerate() {
            if i % c.total_chips() == 5 {
                *b ^= 0xff; // dead chip
            }
        }
        stored[12] ^= 0x08; // fresh single-symbol error elsewhere
        let (decoded, marked) = c.decode_line_marked(&stored, &[5]);
        assert_eq!(decoded, line);
        assert!(marked.is_usable(), "{marked:?}");
    }

    #[test]
    fn marking_a_healthy_chip_is_harmless() {
        let c = ChipkillCodec::table4();
        let line = sample_line();
        let stored = c.encode_line(&line);
        let (decoded, outcome) = c.decode_line_marked(&stored, &[0]);
        assert_eq!(decoded, line);
        assert_eq!(outcome, CorrectionOutcome::Clean);
    }
}
