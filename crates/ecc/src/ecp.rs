//! Error-Correcting Pointers (ECP) for hard faults.
//!
//! [Schechter et al., "Use ECP, not ECC, for hard failures in resistive
//! memories", ISCA 2010] — instead of a code, store up to `P` *pointers*
//! to known-bad cells plus the correct value for each. This matches the
//! stuck-at failure mode of worn-out PCM cells: once a cell is known bad,
//! it stays bad, and a pointer repairs it forever.
//!
//! The paper (§2.3) lists ECP alongside ECC as the standard NVM
//! reliability toolbox; `soteria-nvm` uses this module for permanent
//! (wear-out) faults while Reed–Solomon handles transient ones.
//!
//! # Example
//!
//! ```
//! use soteria_ecc::ecp::EcpBlock;
//!
//! let mut ecp = EcpBlock::<6>::new();
//! assert!(ecp.record_stuck_bit(100, true));
//! let mut line = [0u8; 64];
//! // cell 100 is stuck at 1; ECP knows its true value is 1, so a read of a
//! // line whose bit 100 should be 1 needs no repair, but a stored 0 would
//! // be repaired on write-verify. Here we just apply the overlay:
//! ecp.apply(&mut line);
//! assert_eq!(line[12] & (1 << 4), 1 << 4); // bit 100 = byte 12, bit 4
//! ```

/// One repair pointer: a bit position within a 512-bit block plus the
/// replacement value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EcpEntry {
    /// Bit index within the 512-bit data block.
    pub bit: u16,
    /// The correct value of that bit.
    pub value: bool,
}

/// An ECP repair structure with capacity for `P` stuck cells per block
/// (ECP-6 — `P = 6` — is the configuration from the ECP paper). The
/// default span is a 512-bit data block; ECC-encoded codewords use
/// [`EcpBlock::with_span`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EcpBlock<const P: usize> {
    entries: Vec<EcpEntry>,
    span_bits: u16,
}

impl<const P: usize> Default for EcpBlock<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const P: usize> EcpBlock<P> {
    /// Creates an empty repair structure over a 512-bit block.
    pub fn new() -> Self {
        Self::with_span(512)
    }

    /// Creates an empty repair structure over `span_bits` cells (e.g. the
    /// 576-bit Chipkill codeword of one line).
    ///
    /// # Panics
    ///
    /// Panics if `span_bits == 0`.
    pub fn with_span(span_bits: u16) -> Self {
        assert!(span_bits > 0, "span must be positive");
        Self {
            entries: Vec::new(),
            span_bits,
        }
    }

    /// Number of pointers in use.
    pub fn used(&self) -> usize {
        self.entries.len()
    }

    /// Remaining repair capacity.
    pub fn remaining(&self) -> usize {
        P - self.entries.len()
    }

    /// Returns `true` if the block has exhausted its pointers; a further
    /// stuck cell makes the block unrepairable (triggering page retirement
    /// / row sparing upstream).
    pub fn is_exhausted(&self) -> bool {
        self.entries.len() >= P
    }

    /// Records that `bit` is stuck and stores its correct value.
    ///
    /// Returns `false` (without recording) when capacity is exhausted.
    /// Re-recording a known bit updates its value and always succeeds.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 512`.
    pub fn record_stuck_bit(&mut self, bit: u16, value: bool) -> bool {
        assert!(
            bit < self.span_bits,
            "ECP covers a {}-bit block, got bit {bit}",
            self.span_bits
        );
        if let Some(e) = self.entries.iter_mut().find(|e| e.bit == bit) {
            e.value = value;
            return true;
        }
        if self.is_exhausted() {
            return false;
        }
        self.entries.push(EcpEntry { bit, value });
        true
    }

    /// Overwrites the repaired bits in `data` with their correct values.
    ///
    /// # Panics
    ///
    /// Panics if `data` is shorter than the span.
    pub fn apply(&self, data: &mut [u8]) {
        assert!(
            data.len() * 8 >= self.span_bits as usize,
            "buffer shorter than ECP span"
        );
        for e in &self.entries {
            let byte = (e.bit / 8) as usize;
            let bit = e.bit % 8;
            if e.value {
                data[byte] |= 1 << bit;
            } else {
                data[byte] &= !(1 << bit);
            }
        }
    }

    /// Iterates over the recorded repair entries.
    pub fn iter(&self) -> impl Iterator<Item = &EcpEntry> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_up_to_capacity() {
        let mut ecp = EcpBlock::<2>::new();
        assert!(ecp.record_stuck_bit(0, true));
        assert!(ecp.record_stuck_bit(1, false));
        assert!(ecp.is_exhausted());
        assert!(!ecp.record_stuck_bit(2, true));
        assert_eq!(ecp.used(), 2);
    }

    #[test]
    fn re_record_updates_in_place() {
        let mut ecp = EcpBlock::<1>::new();
        assert!(ecp.record_stuck_bit(5, true));
        assert!(ecp.record_stuck_bit(5, false)); // same cell, new value
        assert_eq!(ecp.used(), 1);
        let mut line = [0xffu8; 64];
        ecp.apply(&mut line);
        assert_eq!(line[0] & (1 << 5), 0);
    }

    #[test]
    fn apply_repairs_reads() {
        let mut ecp = EcpBlock::<6>::new();
        ecp.record_stuck_bit(511, true);
        ecp.record_stuck_bit(0, false);
        let mut line = [0u8; 64];
        line[0] = 0x01; // stuck-at-0 cell read as 1 -> must be cleared
        ecp.apply(&mut line);
        assert_eq!(line[0], 0);
        assert_eq!(line[63] & 0x80, 0x80);
    }

    #[test]
    fn remaining_counts_down() {
        let mut ecp = EcpBlock::<6>::new();
        assert_eq!(ecp.remaining(), 6);
        ecp.record_stuck_bit(3, true);
        assert_eq!(ecp.remaining(), 5);
    }

    #[test]
    #[should_panic(expected = "512-bit block")]
    fn bit_bounds_checked() {
        EcpBlock::<6>::new().record_stuck_bit(512, true);
    }

    #[test]
    fn custom_span_accepts_codeword_bits() {
        let mut ecp = EcpBlock::<6>::with_span(576);
        assert!(ecp.record_stuck_bit(575, true));
        let mut cw = vec![0u8; 72];
        ecp.apply(&mut cw);
        assert_eq!(cw[71] & 0x80, 0x80);
    }
}
