//! SEC-DED Hamming(72, 64): single-error-correct, double-error-detect.
//!
//! This is the classic extended-Hamming code used by conventional ECC
//! DIMMs. The Soteria ablations use it as the "weaker ECC" alternative to
//! [`crate::chipkill`] — §3.1 argues the security metadata must not rely on
//! ECC strength, whatever it is.
//!
//! # Example
//!
//! ```
//! use soteria_ecc::hamming::SecDed72;
//! use soteria_ecc::CorrectionOutcome;
//!
//! let word = 0xdead_beef_cafe_f00du64;
//! let mut cw = SecDed72::encode(word);
//! cw.flip_bit(17);
//! let (decoded, outcome) = cw.decode();
//! assert_eq!(decoded, word);
//! assert_eq!(outcome, CorrectionOutcome::Corrected { symbols: 1 });
//! ```

use crate::CorrectionOutcome;

/// Number of check bits (7 Hamming + 1 overall parity).
const CHECK_BITS: usize = 8;
/// Total codeword length in bits.
const TOTAL_BITS: usize = 72;

/// A 72-bit SEC-DED codeword protecting one 64-bit word.
///
/// Bit layout: positions 1..=71 hold the standard Hamming arrangement
/// (check bits at powers of two), position 0 holds the overall parity bit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SecDed72 {
    bits: u128, // low 72 bits used
}

impl SecDed72 {
    /// Encodes a 64-bit data word.
    pub fn encode(data: u64) -> Self {
        let mut bits: u128 = 0;
        // Scatter the 64 data bits over the non-power-of-two positions
        // 3,5,6,7,9,... within 1..=71.
        let mut data_idx = 0;
        for pos in 1..TOTAL_BITS {
            if pos.is_power_of_two() {
                continue;
            }
            if (data >> data_idx) & 1 != 0 {
                bits |= 1u128 << pos;
            }
            data_idx += 1;
        }
        debug_assert_eq!(data_idx, 64);
        // Hamming check bits: parity over positions with that bit set in
        // their index.
        for c in 0..(CHECK_BITS - 1) {
            let check_pos = 1usize << c;
            let mut parity = 0u32;
            for pos in 1..TOTAL_BITS {
                if pos & check_pos != 0 && (bits >> pos) & 1 != 0 {
                    parity ^= 1;
                }
            }
            if parity != 0 {
                bits |= 1u128 << check_pos;
            }
        }
        // Overall parity at position 0 (makes it SEC-DED).
        if !bits.count_ones().is_multiple_of(2) {
            bits |= 1;
        }
        Self { bits }
    }

    /// Returns the raw 72-bit codeword (low bits of the u128).
    pub fn raw(&self) -> u128 {
        self.bits
    }

    /// Reconstructs a codeword from raw bits (e.g. after storage).
    ///
    /// # Panics
    ///
    /// Panics if bits above position 71 are set.
    pub fn from_raw(bits: u128) -> Self {
        assert_eq!(bits >> TOTAL_BITS, 0, "SEC-DED codeword uses only 72 bits");
        Self { bits }
    }

    /// Flips one bit of the stored codeword (fault injection).
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 72`.
    pub fn flip_bit(&mut self, bit: usize) {
        assert!(bit < TOTAL_BITS, "bit index {bit} out of range");
        self.bits ^= 1u128 << bit;
    }

    fn extract_data(bits: u128) -> u64 {
        let mut data = 0u64;
        let mut data_idx = 0;
        for pos in 1..TOTAL_BITS {
            if pos.is_power_of_two() {
                continue;
            }
            if (bits >> pos) & 1 != 0 {
                data |= 1u64 << data_idx;
            }
            data_idx += 1;
        }
        data
    }

    /// Decodes, correcting a single-bit error and detecting double-bit
    /// errors.
    pub fn decode(&self) -> (u64, CorrectionOutcome) {
        let mut syndrome = 0usize;
        for c in 0..(CHECK_BITS - 1) {
            let check_pos = 1usize << c;
            let mut parity = 0u32;
            for pos in 1..TOTAL_BITS {
                if pos & check_pos != 0 && (self.bits >> pos) & 1 != 0 {
                    parity ^= 1;
                }
            }
            if parity != 0 {
                syndrome |= check_pos;
            }
        }
        let overall_parity = self.bits.count_ones() % 2;
        match (syndrome, overall_parity) {
            (0, 0) => (Self::extract_data(self.bits), CorrectionOutcome::Clean),
            (0, 1) => {
                // Error in the overall parity bit itself.
                (
                    Self::extract_data(self.bits),
                    CorrectionOutcome::Corrected { symbols: 1 },
                )
            }
            (s, 1) => {
                // Single-bit error at position s.
                if s < TOTAL_BITS {
                    let fixed = self.bits ^ (1u128 << s);
                    (
                        Self::extract_data(fixed),
                        CorrectionOutcome::Corrected { symbols: 1 },
                    )
                } else {
                    (
                        Self::extract_data(self.bits),
                        CorrectionOutcome::Uncorrectable,
                    )
                }
            }
            (_, 0) => {
                // Nonzero syndrome with even parity: double-bit error.
                (
                    Self::extract_data(self.bits),
                    CorrectionOutcome::Uncorrectable,
                )
            }
            _ => unreachable!("parity is 0 or 1"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_roundtrip() {
        for word in [0u64, u64::MAX, 0xdead_beef_cafe_f00d, 1, 1 << 63] {
            let (decoded, outcome) = SecDed72::encode(word).decode();
            assert_eq!(decoded, word);
            assert_eq!(outcome, CorrectionOutcome::Clean);
        }
    }

    #[test]
    fn corrects_every_single_bit_flip() {
        let word = 0x0123_4567_89ab_cdefu64;
        for bit in 0..72 {
            let mut cw = SecDed72::encode(word);
            cw.flip_bit(bit);
            let (decoded, outcome) = cw.decode();
            assert_eq!(decoded, word, "bit {bit}");
            assert_eq!(
                outcome,
                CorrectionOutcome::Corrected { symbols: 1 },
                "bit {bit}"
            );
        }
    }

    #[test]
    fn detects_every_double_bit_flip() {
        let word = 0xffff_0000_aaaa_5555u64;
        for b1 in (0..72).step_by(7) {
            for b2 in 0..72 {
                if b1 == b2 {
                    continue;
                }
                let mut cw = SecDed72::encode(word);
                cw.flip_bit(b1);
                cw.flip_bit(b2);
                let (_, outcome) = cw.decode();
                assert_eq!(
                    outcome,
                    CorrectionOutcome::Uncorrectable,
                    "bits {b1},{b2} should be detected-uncorrectable"
                );
            }
        }
    }

    #[test]
    fn triple_flips_may_miscorrect_but_never_report_clean() {
        // SEC-DED guarantees nothing for 3 flips except that the overall
        // parity flips, which always reports a (possibly wrong) correction;
        // a triple error must never decode as Clean.
        let word = 0x1111_2222_3333_4444u64;
        for (a, b, c) in [(0, 1, 2), (10, 30, 60), (5, 6, 71), (8, 16, 32)] {
            let mut cw = SecDed72::encode(word);
            cw.flip_bit(a);
            cw.flip_bit(b);
            cw.flip_bit(c);
            let (_, outcome) = cw.decode();
            assert_ne!(outcome, CorrectionOutcome::Clean, "bits {a},{b},{c}");
        }
    }

    #[test]
    fn from_raw_roundtrip() {
        let cw = SecDed72::encode(42);
        assert_eq!(SecDed72::from_raw(cw.raw()), cw);
    }

    #[test]
    #[should_panic(expected = "72 bits")]
    fn from_raw_rejects_wide_values() {
        let _ = SecDed72::from_raw(1u128 << 72);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn flip_bit_bounds_checked() {
        SecDed72::encode(0).flip_bit(72);
    }
}
