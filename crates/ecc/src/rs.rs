//! Reed–Solomon codes over GF(2^8).
//!
//! A systematic RS(n, k) code with `2t = n - k` parity symbols corrects up
//! to `t` symbol errors and detects more (with a small, realistic
//! miscorrection probability beyond the design distance). Decoding uses
//! syndrome computation, Berlekamp–Massey, Chien search and Forney's
//! algorithm.
//!
//! [`crate::chipkill`] instantiates RS(18, 16) — one 8-bit symbol per DRAM
//! chip per beat — to obtain Chipkill-Correct, and RS(20, 16) for the
//! stronger double-chipkill ablation.
//!
//! # Example
//!
//! ```
//! use soteria_ecc::rs::ReedSolomon;
//!
//! let rs = ReedSolomon::new(18, 16)?;
//! let mut cw = rs.encode(&[7u8; 16])?;
//! cw[3] ^= 0xff; // corrupt one symbol ("chip")
//! let (data, outcome) = rs.decode(&cw)?;
//! assert_eq!(data, vec![7u8; 16]);
//! assert!(outcome.is_usable());
//! # Ok::<(), soteria_ecc::rs::RsError>(())
//! ```

use crate::gf256::{poly_eval, poly_mul, Gf256, ALPHA_MUL, EXP, LOG};
use crate::CorrectionOutcome;

/// Sentinel in [`ReedSolomon::gen_log`] for a zero generator coefficient
/// (zero has no discrete log).
const ZERO_LOG: u16 = u16::MAX;

/// Multiply-by-zero row for [`ReedSolomon::par_rows`] positions whose
/// parity coefficient is zero (`ALPHA_MUL` only covers α^p ≠ 0).
static ZERO_ROW: [u8; 256] = [0u8; 256];

/// Errors returned by [`ReedSolomon`] operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RsError {
    /// `n` must satisfy `k < n <= 255`.
    InvalidParameters {
        /// Requested codeword length.
        n: usize,
        /// Requested data length.
        k: usize,
    },
    /// The input slice length does not match the code's `k` (for encode) or
    /// `n` (for decode).
    LengthMismatch {
        /// Expected length.
        expected: usize,
        /// Provided length.
        got: usize,
    },
}

impl std::fmt::Display for RsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RsError::InvalidParameters { n, k } => {
                write!(
                    f,
                    "invalid Reed-Solomon parameters n={n}, k={k} (need k < n <= 255)"
                )
            }
            RsError::LengthMismatch { expected, got } => {
                write!(f, "length mismatch: expected {expected} symbols, got {got}")
            }
        }
    }
}

impl std::error::Error for RsError {}

/// A systematic Reed–Solomon encoder/decoder over GF(2^8).
///
/// The generator coefficients and syndrome evaluation run in the **log
/// domain**: [`ReedSolomon::new`] precomputes the discrete logs of every
/// generator coefficient, so the encoder's inner loop is one antilog
/// lookup per coefficient (no per-symbol zero checks on the multiplier)
/// and the syndrome scan is a branch-light Horner pass over the raw
/// bytes.
#[derive(Clone, Debug)]
pub struct ReedSolomon {
    n: usize,
    k: usize,
    // Discrete logs of the lowest-degree-first generator polynomial
    // coefficients ([`ZERO_LOG`] for a zero coefficient).
    gen_log: Vec<u16>,
    // One multiply-by-constant table row per (syndrome, position):
    // `syn_rows[(i-1)*n + j] = &ALPHA_MUL[(i·(n-1-j)) mod 255]`, so the
    // syndrome scan is `acc ^= row[c]` — a `u8` index needs no bounds
    // check and there is no loop-carried multiply.
    syn_rows: Vec<&'static [u8; 256]>,
    // One multiply-by-constant row per (parity, data position):
    // `par_rows[j*k + i]` multiplies by parity byte j of the unit
    // message e_i, so systematic encoding — a GF(2^8)-linear map — is
    // the same branch-free scan shape as the syndromes.
    par_rows: Vec<&'static [u8; 256]>,
}

impl ReedSolomon {
    /// Creates an RS(n, k) code.
    ///
    /// # Errors
    ///
    /// Returns [`RsError::InvalidParameters`] unless `0 < k < n <= 255`.
    pub fn new(n: usize, k: usize) -> Result<Self, RsError> {
        if k == 0 || k >= n || n > 255 {
            return Err(RsError::InvalidParameters { n, k });
        }
        // g(x) = prod_{i=1}^{2t} (x - alpha^i)   (narrow-sense, b = 1)
        let mut generator = vec![Gf256::ONE];
        for i in 1..=(n - k) {
            generator = poly_mul(&generator, &[Gf256::alpha_pow(i), Gf256::ONE]);
        }
        let gen_log = generator
            .iter()
            .map(|g| g.log().map_or(ZERO_LOG, u16::from))
            .collect();
        let mut syn_rows = Vec::with_capacity((n - k) * n);
        for i in 1..=(n - k) {
            for j in 0..n {
                syn_rows.push(&ALPHA_MUL[(i * (n - 1 - j)) % 255]);
            }
        }
        let mut rs = Self {
            n,
            k,
            gen_log,
            syn_rows,
            par_rows: Vec::new(),
        };
        // Parity of the unit message e_i (via the division reference
        // encoder) gives column i of the linear parity map; linearity of
        // `rem(·)` over GF(2^8) makes the table encoder bit-identical.
        let mut par_rows = vec![&ZERO_ROW; (n - k) * k];
        let mut data = vec![0u8; k];
        let mut cw = vec![0u8; n];
        for i in 0..k {
            data[i] = 1;
            rs.encode_into_reference(&data, &mut cw)?;
            data[i] = 0;
            for j in 0..(n - k) {
                let p = cw[k + j];
                if p != 0 {
                    par_rows[j * k + i] = &ALPHA_MUL[LOG[p as usize] as usize];
                }
            }
        }
        rs.par_rows = par_rows;
        Ok(rs)
    }

    /// Codeword length in symbols.
    pub fn codeword_len(&self) -> usize {
        self.n
    }

    /// Data length in symbols.
    pub fn data_len(&self) -> usize {
        self.k
    }

    /// Number of parity symbols.
    pub fn parity_len(&self) -> usize {
        self.n - self.k
    }

    /// Maximum number of guaranteed-correctable symbol errors.
    pub fn correctable(&self) -> usize {
        (self.n - self.k) / 2
    }

    /// Encodes `data` (length `k`) into a codeword (length `n`), data
    /// symbols first, parity appended.
    ///
    /// # Errors
    ///
    /// Returns [`RsError::LengthMismatch`] if `data.len() != k`.
    pub fn encode(&self, data: &[u8]) -> Result<Vec<u8>, RsError> {
        let mut cw = vec![0u8; self.n];
        self.encode_into(data, &mut cw)?;
        Ok(cw)
    }

    /// Encodes `data` into a caller-provided codeword buffer of length
    /// `n` (data symbols first, parity appended) without allocating —
    /// the parity remainder is accumulated in place in `cw[k..]`.
    /// [`crate::chipkill`] uses this to stripe four beats into one stored
    /// buffer.
    ///
    /// # Errors
    ///
    /// Returns [`RsError::LengthMismatch`] if `data.len() != k` or
    /// `cw.len() != n`.
    pub fn encode_into(&self, data: &[u8], cw: &mut [u8]) -> Result<(), RsError> {
        if data.len() != self.k {
            return Err(RsError::LengthMismatch {
                expected: self.k,
                got: data.len(),
            });
        }
        if cw.len() != self.n {
            return Err(RsError::LengthMismatch {
                expected: self.n,
                got: cw.len(),
            });
        }
        // The systematic parity map is GF(2^8)-linear in the data
        // symbols, so each parity byte is an XOR of per-position
        // multiply-by-constant lookups through the row pointers built in
        // [`ReedSolomon::new`] — no feedback chain, no branches, two
        // parity rows fused per pass (same idiom as the syndrome scan).
        // Bit-identical to [`Self::encode_into_reference`].
        let (data_out, parity) = cw.split_at_mut(self.k);
        data_out.copy_from_slice(data);
        let parity_len = parity.len();
        let mut row = 0;
        while row + 1 < parity_len {
            let r0 = &self.par_rows[row * self.k..(row + 1) * self.k];
            let r1 = &self.par_rows[(row + 1) * self.k..(row + 2) * self.k];
            let (mut a0, mut a1) = (0u8, 0u8);
            for ((&d, t0), t1) in data.iter().zip(r0).zip(r1) {
                a0 ^= t0[d as usize];
                a1 ^= t1[d as usize];
            }
            parity[row] = a0;
            parity[row + 1] = a1;
            row += 2;
        }
        if row < parity_len {
            let rows = &self.par_rows[row * self.k..(row + 1) * self.k];
            let mut acc = 0u8;
            for (&d, table) in data.iter().zip(rows) {
                acc ^= table[d as usize];
            }
            parity[row] = acc;
        }
        Ok(())
    }

    /// The original synthetic-division systematic encoder, kept as the
    /// equivalence/benchmark reference for [`Self::encode_into`].
    ///
    /// # Errors
    ///
    /// Returns [`RsError::LengthMismatch`] if `data.len() != k` or
    /// `cw.len() != n`.
    pub fn encode_into_reference(&self, data: &[u8], cw: &mut [u8]) -> Result<(), RsError> {
        if data.len() != self.k {
            return Err(RsError::LengthMismatch {
                expected: self.k,
                got: data.len(),
            });
        }
        if cw.len() != self.n {
            return Err(RsError::LengthMismatch {
                expected: self.n,
                got: cw.len(),
            });
        }
        // Systematic encoding: c(x) = m(x)*x^(2t) + (m(x)*x^(2t) mod g(x)).
        // Polynomial coefficient i corresponds to codeword position i
        // counted from the END (lowest degree = last parity symbol).
        let (data_out, rem) = cw.split_at_mut(self.k);
        data_out.copy_from_slice(data);
        rem.fill(0);
        let parity_len = rem.len();
        // Synthetic division of m(x) * x^(2t) by g(x), feeding data
        // highest-degree-first (data[0] is the highest coefficient). The
        // feedback's log is taken once per data symbol; each coefficient
        // multiply is then a single antilog lookup.
        for &d in data {
            let feedback = d ^ rem[parity_len - 1];
            if feedback == 0 {
                rem.copy_within(0..parity_len - 1, 1);
                rem[0] = 0;
            } else {
                let fl = LOG[feedback as usize] as usize;
                for j in (1..parity_len).rev() {
                    let g = self.gen_log[j];
                    let term = if g == ZERO_LOG {
                        0
                    } else {
                        EXP[fl + g as usize]
                    };
                    rem[j] = rem[j - 1] ^ term;
                }
                let g0 = self.gen_log[0];
                rem[0] = if g0 == ZERO_LOG {
                    0
                } else {
                    EXP[fl + g0 as usize]
                };
            }
        }
        // rem is lowest-degree-first; the codeword stores parity
        // highest-degree-first.
        rem.reverse();
        Ok(())
    }

    /// Computes the 2t syndromes `S_i = C(α^i)`, `i = 1..=n-k`, straight
    /// over the raw codeword bytes: `S_i = Σ_j cw[j] · α^(i·deg(j))` with
    /// each product a single `ALPHA_MUL` load through the row pointers
    /// precomputed in [`ReedSolomon::new`]. Unlike a Horner scan there is
    /// no loop-carried multiply — the per-byte lookups are independent and
    /// only meet in an XOR — and because the table index is a `u8` the
    /// inner loop has no bounds checks or exponent arithmetic at all.
    pub fn syndromes(&self, cw: &[u8]) -> Vec<Gf256> {
        if cw.len() != self.n {
            // Off-geometry inputs (shortened/padded probes in tests) take
            // the generic evaluator; the hot path is always full-length.
            return self.syndromes_reference(cw);
        }
        let parity = self.n - self.k;
        let mut out = vec![Gf256::ZERO; parity];
        // Two syndrome rows per pass share the codeword loads and loop
        // control; their accumulators are independent, so the lookups
        // overlap in flight.
        let mut row = 0;
        while row + 1 < parity {
            let r0 = &self.syn_rows[row * self.n..(row + 1) * self.n];
            let r1 = &self.syn_rows[(row + 1) * self.n..(row + 2) * self.n];
            let (mut a0, mut a1) = (0u8, 0u8);
            for ((&c, t0), t1) in cw.iter().zip(r0).zip(r1) {
                a0 ^= t0[c as usize];
                a1 ^= t1[c as usize];
            }
            out[row] = Gf256::new(a0);
            out[row + 1] = Gf256::new(a1);
            row += 2;
        }
        if row < parity {
            let rows = &self.syn_rows[row * self.n..(row + 1) * self.n];
            let mut acc = 0u8;
            for (&c, table) in cw.iter().zip(rows) {
                acc ^= table[c as usize];
            }
            out[row] = Gf256::new(acc);
        }
        out
    }

    /// Returns `true` iff every syndrome of `cw` is zero — i.e. `cw` is a
    /// valid codeword. Same fused table scan as [`ReedSolomon::syndromes`]
    /// but allocation-free with an early exit, for the overwhelmingly
    /// common clean-read fast path in [`crate::chipkill`].
    ///
    /// # Errors
    ///
    /// Returns [`RsError::LengthMismatch`] if `cw.len() != n`.
    pub fn syndromes_all_zero(&self, cw: &[u8]) -> Result<bool, RsError> {
        if cw.len() != self.n {
            return Err(RsError::LengthMismatch {
                expected: self.n,
                got: cw.len(),
            });
        }
        let parity = self.n - self.k;
        let mut row = 0;
        while row + 1 < parity {
            let r0 = &self.syn_rows[row * self.n..(row + 1) * self.n];
            let r1 = &self.syn_rows[(row + 1) * self.n..(row + 2) * self.n];
            let (mut a0, mut a1) = (0u8, 0u8);
            for ((&c, t0), t1) in cw.iter().zip(r0).zip(r1) {
                a0 ^= t0[c as usize];
                a1 ^= t1[c as usize];
            }
            if a0 != 0 || a1 != 0 {
                return Ok(false);
            }
            row += 2;
        }
        if row < parity {
            let rows = &self.syn_rows[row * self.n..(row + 1) * self.n];
            let mut acc = 0u8;
            for (&c, table) in cw.iter().zip(rows) {
                acc ^= table[c as usize];
            }
            if acc != 0 {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// The original generic-polynomial syndrome computation (reversed
    /// coefficient buffer + [`poly_eval`]), kept as the benchmark and
    /// equivalence reference for [`ReedSolomon::syndromes`].
    pub fn syndromes_reference(&self, cw: &[u8]) -> Vec<Gf256> {
        let coeffs: Vec<Gf256> = cw.iter().rev().map(|&b| Gf256::new(b)).collect();
        (1..=(self.n - self.k))
            .map(|i| poly_eval(&coeffs, Gf256::alpha_pow(i)))
            .collect()
    }

    /// Decodes with known **erasure** positions (symbols flagged bad by
    /// external knowledge, e.g. a marked-dead chip). A code with `2t`
    /// parity symbols corrects `e` erasures plus `v` errors whenever
    /// `e + 2v <= 2t` — so RS(18,16) with one marked chip still corrects
    /// that chip *and* detects-or-pinpoints more.
    ///
    /// Implementation: the erasure magnitudes are solved directly from the
    /// syndromes (Vandermonde system); residual syndromes fall back to
    /// plain error decoding.
    ///
    /// **Detection margin**: with `e == 2t` every parity symbol is spent
    /// on erasures, so an *additional* unknown error is silently absorbed
    /// into wrong erasure magnitudes — an inherent property of MDS codes,
    /// not of this implementation. Fully-marked chipkill therefore relies
    /// on the layer above (the secure controller's MACs) to catch further
    /// corruption, which is yet another §3.1 decoupling argument.
    ///
    /// # Errors
    ///
    /// Returns [`RsError::LengthMismatch`] if `cw.len() != n`.
    ///
    /// # Panics
    ///
    /// Panics if any erasure position is out of range or duplicated.
    pub fn decode_with_erasures(
        &self,
        cw: &[u8],
        erasures: &[usize],
    ) -> Result<(Vec<u8>, CorrectionOutcome), RsError> {
        if cw.len() != self.n {
            return Err(RsError::LengthMismatch {
                expected: self.n,
                got: cw.len(),
            });
        }
        for (i, &p) in erasures.iter().enumerate() {
            assert!(p < self.n, "erasure position {p} out of range");
            assert!(
                !erasures[i + 1..].contains(&p),
                "duplicate erasure position {p}"
            );
        }
        if erasures.is_empty() {
            return self.decode(cw);
        }
        if erasures.len() > self.n - self.k {
            // More erasures than parity symbols: unrecoverable.
            return Ok((cw[..self.k].to_vec(), CorrectionOutcome::Uncorrectable));
        }
        let synd = self.syndromes(cw);
        if synd.iter().all(|s| s.is_zero()) {
            return Ok((cw[..self.k].to_vec(), CorrectionOutcome::Clean));
        }
        // Erasure locators X_j = alpha^(degree of erased coefficient).
        let xs: Vec<Gf256> = erasures
            .iter()
            .map(|&p| Gf256::alpha_pow(self.n - 1 - p))
            .collect();
        // Solve sum_j e_j * X_j^i = S_i for i = 1..=e (Vandermonde system)
        // by Gaussian elimination; with e <= 2t this is exact when the
        // only bad symbols are the erased ones.
        let e = xs.len();
        let mut m: Vec<Vec<Gf256>> = (0..e)
            .map(|row| {
                let mut r: Vec<Gf256> = xs.iter().map(|&x| x.pow(row + 1)).collect();
                r.push(synd[row]);
                r
            })
            .collect();
        // Gaussian elimination over GF(256).
        for col in 0..e {
            let pivot = (col..e).find(|&r| !m[r][col].is_zero());
            let Some(pivot) = pivot else {
                return Ok((cw[..self.k].to_vec(), CorrectionOutcome::Uncorrectable));
            };
            m.swap(col, pivot);
            let inv = m[col][col].inverse();
            for v in m[col].iter_mut() {
                *v = *v * inv;
            }
            for r in 0..e {
                if r != col && !m[r][col].is_zero() {
                    let f = m[r][col];
                    let pivot_row = m[col].clone();
                    for (cell, &p) in m[r].iter_mut().zip(pivot_row.iter()) {
                        *cell = *cell + p * f;
                    }
                }
            }
        }
        let mut corrected = cw.to_vec();
        let mut fixed = 0usize;
        for (j, &p) in erasures.iter().enumerate() {
            let magnitude = m[j][e];
            if !magnitude.is_zero() {
                corrected[p] ^= magnitude.value();
                fixed += 1;
            }
        }
        // All syndromes must vanish, otherwise errors beyond the erasures
        // are present (possibly correctable by full errors-and-erasures
        // decoding when 2t is larger; detected-uncorrectable here).
        if self.syndromes(&corrected).iter().any(|s| !s.is_zero()) {
            // Fall back to plain decoding: maybe the damage is elsewhere
            // and within the error budget.
            return self.decode(cw);
        }
        Ok((
            corrected[..self.k].to_vec(),
            CorrectionOutcome::Corrected { symbols: fixed },
        ))
    }

    /// Decodes a codeword, returning the (possibly corrected) data symbols
    /// and the correction outcome.
    ///
    /// When the error weight exceeds `t`, the decoder usually reports
    /// [`CorrectionOutcome::Uncorrectable`]; with probability ~`n/2^(8(t))`
    /// per pattern it may miscorrect, exactly like real hardware.
    ///
    /// # Errors
    ///
    /// Returns [`RsError::LengthMismatch`] if `cw.len() != n`.
    pub fn decode(&self, cw: &[u8]) -> Result<(Vec<u8>, CorrectionOutcome), RsError> {
        if cw.len() != self.n {
            return Err(RsError::LengthMismatch {
                expected: self.n,
                got: cw.len(),
            });
        }
        let synd = self.syndromes(cw);
        if synd.iter().all(|s| s.is_zero()) {
            return Ok((cw[..self.k].to_vec(), CorrectionOutcome::Clean));
        }

        // Berlekamp-Massey: find the error-locator polynomial sigma(x).
        let mut sigma = vec![Gf256::ONE];
        let mut prev_sigma = vec![Gf256::ONE];
        let mut l = 0usize;
        let mut m = 1usize;
        let mut b = Gf256::ONE;
        for i in 0..synd.len() {
            let mut delta = synd[i];
            for j in 1..=l.min(sigma.len() - 1) {
                delta = delta + sigma[j] * synd[i - j];
            }
            if delta.is_zero() {
                m += 1;
            } else if 2 * l <= i {
                let temp = sigma.clone();
                let scale = delta / b;
                let mut shifted = vec![Gf256::ZERO; m];
                shifted.extend(prev_sigma.iter().map(|&c| c * scale));
                if shifted.len() > sigma.len() {
                    sigma.resize(shifted.len(), Gf256::ZERO);
                }
                for (s, sh) in sigma.iter_mut().zip(shifted.iter()) {
                    *s = *s + *sh;
                }
                l = i + 1 - l;
                prev_sigma = temp;
                b = delta;
                m = 1;
            } else {
                let scale = delta / b;
                let mut shifted = vec![Gf256::ZERO; m];
                shifted.extend(prev_sigma.iter().map(|&c| c * scale));
                if shifted.len() > sigma.len() {
                    sigma.resize(shifted.len(), Gf256::ZERO);
                }
                for (s, sh) in sigma.iter_mut().zip(shifted.iter()) {
                    *s = *s + *sh;
                }
                m += 1;
            }
        }
        while sigma.last() == Some(&Gf256::ZERO) && sigma.len() > 1 {
            sigma.pop();
        }
        let num_errors = sigma.len() - 1;
        if num_errors == 0 || num_errors > self.correctable() || l != num_errors {
            return Ok((cw[..self.k].to_vec(), CorrectionOutcome::Uncorrectable));
        }

        // Chien search: roots of sigma give error locations.
        let mut error_positions = Vec::new(); // degree of the errored coefficient
        for pos in 0..self.n {
            // Candidate location X = alpha^pos; root test at X^{-1}.
            let x_inv = Gf256::alpha_pow(pos).inverse();
            if poly_eval(&sigma, x_inv).is_zero() {
                error_positions.push(pos);
            }
        }
        if error_positions.len() != num_errors {
            return Ok((cw[..self.k].to_vec(), CorrectionOutcome::Uncorrectable));
        }

        // Forney: error magnitudes. Omega(x) = S(x) * sigma(x) mod x^(2t).
        let s_poly: Vec<Gf256> = synd.clone();
        let mut omega = poly_mul(&s_poly, &sigma);
        omega.truncate(self.n - self.k);
        // sigma'(x): formal derivative (odd-degree terms only in char 2).
        let sigma_deriv: Vec<Gf256> = sigma
            .iter()
            .enumerate()
            .skip(1)
            .map(|(i, &c)| if i % 2 == 1 { c } else { Gf256::ZERO })
            .collect::<Vec<_>>()
            // derivative shifts degrees down by one
            .to_vec();

        let mut corrected = cw.to_vec();
        for &pos in &error_positions {
            let x = Gf256::alpha_pow(pos);
            let x_inv = x.inverse();
            let num = poly_eval(&omega, x_inv);
            let den = poly_eval(&sigma_deriv, x_inv);
            if den.is_zero() {
                return Ok((cw[..self.k].to_vec(), CorrectionOutcome::Uncorrectable));
            }
            // Narrow-sense (b=1) Forney correction: e = X * Omega(X^-1) / sigma'(X^-1)
            // with the convention S_i = C(alpha^i) starting at i = 1.
            let magnitude = num / den;
            let idx = self.n - 1 - pos; // vector index of degree `pos`
            corrected[idx] ^= magnitude.value();
        }

        // Re-check: all syndromes of the corrected word must vanish.
        if self.syndromes(&corrected).iter().any(|s| !s.is_zero()) {
            return Ok((cw[..self.k].to_vec(), CorrectionOutcome::Uncorrectable));
        }
        Ok((
            corrected[..self.k].to_vec(),
            CorrectionOutcome::Corrected {
                symbols: num_errors,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_parameters() {
        assert!(ReedSolomon::new(10, 10).is_err());
        assert!(ReedSolomon::new(10, 0).is_err());
        assert!(ReedSolomon::new(256, 200).is_err());
        assert!(ReedSolomon::new(18, 16).is_ok());
    }

    #[test]
    fn encode_length_checked() {
        let rs = ReedSolomon::new(18, 16).unwrap();
        assert_eq!(
            rs.encode(&[0u8; 15]),
            Err(RsError::LengthMismatch {
                expected: 16,
                got: 15
            })
        );
    }

    #[test]
    fn clean_roundtrip() {
        let rs = ReedSolomon::new(18, 16).unwrap();
        let data: Vec<u8> = (0..16).map(|i| i * 13).collect();
        let cw = rs.encode(&data).unwrap();
        assert_eq!(cw.len(), 18);
        let (decoded, outcome) = rs.decode(&cw).unwrap();
        assert_eq!(decoded, data);
        assert_eq!(outcome, CorrectionOutcome::Clean);
    }

    #[test]
    fn corrects_single_symbol_everywhere() {
        let rs = ReedSolomon::new(18, 16).unwrap();
        let data: Vec<u8> = (0..16u8)
            .map(|i| i.wrapping_mul(31).wrapping_add(5))
            .collect();
        let cw = rs.encode(&data).unwrap();
        for pos in 0..18 {
            for err in [0x01u8, 0x80, 0xff, 0x5a] {
                let mut bad = cw.clone();
                bad[pos] ^= err;
                let (decoded, outcome) = rs.decode(&bad).unwrap();
                assert_eq!(decoded, data, "pos={pos} err={err:#x}");
                assert_eq!(outcome, CorrectionOutcome::Corrected { symbols: 1 });
            }
        }
    }

    #[test]
    fn detects_double_symbol_with_t1() {
        // RS(18,16) has t=1; two-symbol errors must not be silently accepted
        // as clean. (A tiny miscorrection rate is allowed, but with these
        // fixed patterns the decoder must flag or miscorrect-detectably.)
        let rs = ReedSolomon::new(18, 16).unwrap();
        let data = [0xa5u8; 16];
        let cw = rs.encode(&data).unwrap();
        let mut detected = 0;
        let mut miscorrected = 0;
        let mut total = 0;
        for p1 in 0..18 {
            for p2 in (p1 + 1)..18 {
                let mut bad = cw.clone();
                bad[p1] ^= 0x3c;
                bad[p2] ^= 0xc3;
                let (decoded, outcome) = rs.decode(&bad).unwrap();
                total += 1;
                match outcome {
                    CorrectionOutcome::Clean => panic!("double error decoded as clean"),
                    CorrectionOutcome::Uncorrectable => detected += 1,
                    CorrectionOutcome::Corrected { .. } => {
                        if decoded != data {
                            miscorrected += 1;
                        }
                    }
                }
            }
        }
        // Virtually all double errors should be detected; d=3 allows some
        // miscorrections but they must be a small minority.
        assert!(
            detected * 2 > total,
            "detected {detected}/{total}, miscorrected {miscorrected}"
        );
    }

    #[test]
    fn t2_code_corrects_two_errors() {
        let rs = ReedSolomon::new(20, 16).unwrap();
        assert_eq!(rs.correctable(), 2);
        let data: Vec<u8> = (100..116).map(|i| i as u8).collect();
        let cw = rs.encode(&data).unwrap();
        for (p1, p2) in [(0, 1), (0, 19), (7, 13), (16, 17), (5, 18)] {
            let mut bad = cw.clone();
            bad[p1] ^= 0xde;
            bad[p2] ^= 0x01;
            let (decoded, outcome) = rs.decode(&bad).unwrap();
            assert_eq!(decoded, data, "p1={p1} p2={p2}");
            assert_eq!(outcome, CorrectionOutcome::Corrected { symbols: 2 });
        }
    }

    #[test]
    fn t2_code_flags_three_errors() {
        let rs = ReedSolomon::new(20, 16).unwrap();
        let data = [0x11u8; 16];
        let cw = rs.encode(&data).unwrap();
        let mut flagged = 0;
        let mut total = 0;
        for combo in [(0, 5, 10), (1, 2, 3), (17, 18, 19), (4, 9, 14)] {
            let mut bad = cw.clone();
            bad[combo.0] ^= 0x77;
            bad[combo.1] ^= 0x88;
            bad[combo.2] ^= 0x99;
            let (_, outcome) = rs.decode(&bad).unwrap();
            total += 1;
            if outcome == CorrectionOutcome::Uncorrectable {
                flagged += 1;
            }
        }
        assert!(flagged >= total - 1, "flagged {flagged}/{total}");
    }

    #[test]
    fn log_domain_syndromes_match_reference() {
        // Equivalence proof for the Horner syndrome scan: identical to
        // the generic poly_eval path on clean, corrupted, and
        // pseudo-random words, for both code geometries in use.
        for (n, k) in [(18usize, 16usize), (20, 16), (255, 223)] {
            let rs = ReedSolomon::new(n, k).unwrap();
            let data: Vec<u8> = (0..k).map(|i| (i * 89 + 7) as u8).collect();
            let mut cw = rs.encode(&data).unwrap();
            assert_eq!(rs.syndromes(&cw), rs.syndromes_reference(&cw));
            for pos in [0, k / 2, n - 1] {
                cw[pos] ^= 0x5f;
                assert_eq!(
                    rs.syndromes(&cw),
                    rs.syndromes_reference(&cw),
                    "n={n} k={k} pos={pos}"
                );
            }
            let noise: Vec<u8> = (0..n).map(|i| (i * 151 + 13) as u8).collect();
            assert_eq!(rs.syndromes(&noise), rs.syndromes_reference(&noise));
        }
    }

    #[test]
    fn table_encoder_matches_division_reference() {
        // Equivalence proof for the linear-map parity tables: identical to
        // the synthetic-division encoder on structured and pseudo-random
        // data, for every code geometry in use.
        for (n, k) in [(18usize, 16usize), (20, 16), (255, 223)] {
            let rs = ReedSolomon::new(n, k).unwrap();
            let mut fast = vec![0u8; n];
            let mut slow = vec![0xffu8; n];
            for seed in 0..64u32 {
                let data: Vec<u8> = (0..k)
                    .map(|i| ((i as u32).wrapping_mul(197).wrapping_add(seed * 5081 + 11) % 256) as u8)
                    .collect();
                rs.encode_into(&data, &mut fast).unwrap();
                rs.encode_into_reference(&data, &mut slow).unwrap();
                assert_eq!(fast, slow, "n={n} k={k} seed={seed}");
            }
            // Unit vectors and all-zero exercise the ZERO_ROW paths.
            let mut unit = vec![0u8; k];
            for i in [0, k / 2, k - 1] {
                unit[i] = 0xb7;
                rs.encode_into(&unit, &mut fast).unwrap();
                rs.encode_into_reference(&unit, &mut slow).unwrap();
                assert_eq!(fast, slow, "n={n} k={k} unit at {i}");
                unit[i] = 0;
            }
            rs.encode_into(&unit, &mut fast).unwrap();
            assert!(fast.iter().all(|&b| b == 0));
        }
    }

    #[test]
    fn syndromes_all_zero_matches_syndromes() {
        for (n, k) in [(18usize, 16usize), (20, 16)] {
            let rs = ReedSolomon::new(n, k).unwrap();
            let data: Vec<u8> = (0..k).map(|i| (i * 37 + 9) as u8).collect();
            let cw = rs.encode(&data).unwrap();
            assert!(rs.syndromes_all_zero(&cw).unwrap());
            for pos in 0..n {
                let mut bad = cw.clone();
                bad[pos] ^= 0x21;
                assert!(!rs.syndromes_all_zero(&bad).unwrap(), "pos={pos}");
                assert!(bad.iter().any(|&b| b != 0));
            }
            assert_eq!(
                rs.syndromes_all_zero(&cw[..n - 1]),
                Err(RsError::LengthMismatch {
                    expected: n,
                    got: n - 1
                })
            );
        }
    }

    #[test]
    fn encode_into_matches_encode_and_checks_lengths() {
        let rs = ReedSolomon::new(18, 16).unwrap();
        let data: Vec<u8> = (0..16u8).map(|i| i.wrapping_mul(201)).collect();
        let mut cw = [0xffu8; 18];
        rs.encode_into(&data, &mut cw).unwrap();
        assert_eq!(cw.to_vec(), rs.encode(&data).unwrap());
        assert_eq!(
            rs.encode_into(&data, &mut [0u8; 17]),
            Err(RsError::LengthMismatch {
                expected: 18,
                got: 17
            })
        );
        assert_eq!(
            rs.encode_into(&[0u8; 15], &mut cw),
            Err(RsError::LengthMismatch {
                expected: 16,
                got: 15
            })
        );
    }

    #[test]
    fn parity_is_systematic() {
        let rs = ReedSolomon::new(18, 16).unwrap();
        let data: Vec<u8> = (0..16).collect();
        let cw = rs.encode(&data).unwrap();
        assert_eq!(&cw[..16], &data[..]);
    }

    #[test]
    fn all_zero_data_gives_zero_codeword() {
        let rs = ReedSolomon::new(18, 16).unwrap();
        let cw = rs.encode(&[0u8; 16]).unwrap();
        assert!(cw.iter().all(|&b| b == 0));
    }

    #[test]
    fn erasures_recover_two_dead_symbols_with_t1_code() {
        // RS(18,16): 2 parity symbols correct at most 1 unknown error,
        // but TWO known erasures (e + 2v = 2 <= 2t).
        let rs = ReedSolomon::new(18, 16).unwrap();
        let data: Vec<u8> = (0..16u8)
            .map(|i| i.wrapping_mul(91).wrapping_add(3))
            .collect();
        let cw = rs.encode(&data).unwrap();
        for (p1, p2) in [(0usize, 1usize), (3, 17), (16, 17), (5, 9)] {
            let mut bad = cw.clone();
            bad[p1] ^= 0x42;
            bad[p2] ^= 0x99;
            // Plain decoding fails on two unknown errors...
            let (_, plain) = rs.decode(&bad).unwrap();
            assert_ne!(plain, CorrectionOutcome::Clean);
            // ...but with the positions known, both are recovered.
            let (decoded, outcome) = rs.decode_with_erasures(&bad, &[p1, p2]).unwrap();
            assert_eq!(decoded, data, "erasures {p1},{p2}");
            assert!(matches!(outcome, CorrectionOutcome::Corrected { .. }));
        }
    }

    #[test]
    fn erasure_positions_may_be_healthy() {
        // Marking a chip that happens to read correctly must not corrupt.
        let rs = ReedSolomon::new(18, 16).unwrap();
        let data = [0x77u8; 16];
        let cw = rs.encode(&data).unwrap();
        let (decoded, outcome) = rs.decode_with_erasures(&cw, &[4]).unwrap();
        assert_eq!(decoded, data.to_vec());
        assert_eq!(outcome, CorrectionOutcome::Clean);
        // One real error at the marked spot:
        let mut bad = cw.clone();
        bad[4] ^= 0x10;
        let (decoded, outcome) = rs.decode_with_erasures(&bad, &[4]).unwrap();
        assert_eq!(decoded, data.to_vec());
        assert!(matches!(
            outcome,
            CorrectionOutcome::Corrected { symbols: 1 }
        ));
    }

    #[test]
    fn erasure_plus_stray_error_detected_or_fixed_by_fallback() {
        // One marked position + one unknown error elsewhere: e + 2v = 3 >
        // 2t = 2, so the decoder must not return wrong data as Corrected.
        let rs = ReedSolomon::new(18, 16).unwrap();
        let data = [0xa1u8; 16];
        let cw = rs.encode(&data).unwrap();
        let mut bad = cw.clone();
        bad[2] ^= 0x55; // marked
        bad[9] ^= 0x0f; // stray
        let (decoded, outcome) = rs.decode_with_erasures(&bad, &[2]).unwrap();
        if matches!(
            outcome,
            CorrectionOutcome::Corrected { .. } | CorrectionOutcome::Clean
        ) {
            assert_eq!(decoded, data.to_vec(), "usable result must be correct");
        }
    }

    #[test]
    fn too_many_erasures_flagged() {
        let rs = ReedSolomon::new(18, 16).unwrap();
        let data = [1u8; 16];
        let mut cw = rs.encode(&data).unwrap();
        cw[0] ^= 1;
        cw[1] ^= 2;
        cw[2] ^= 3;
        let (_, outcome) = rs.decode_with_erasures(&cw, &[0, 1, 2]).unwrap();
        assert_eq!(outcome, CorrectionOutcome::Uncorrectable);
    }

    #[test]
    fn long_code_roundtrip() {
        let rs = ReedSolomon::new(255, 223).unwrap();
        let data: Vec<u8> = (0..223u32).map(|i| (i * 7 % 256) as u8).collect();
        let cw = rs.encode(&data).unwrap();
        let mut bad = cw.clone();
        // t = 16: inject 16 errors.
        for i in 0..16 {
            bad[i * 15] ^= (i + 1) as u8;
        }
        let (decoded, outcome) = rs.decode(&bad).unwrap();
        assert_eq!(decoded, data);
        assert_eq!(outcome, CorrectionOutcome::Corrected { symbols: 16 });
    }
}
