#![warn(missing_docs)]

//! Error-correction substrate for the Soteria reproduction.
//!
//! NVM DIMMs ship with strong in-memory ECC (§2.3 of the paper): the
//! evaluated system uses **Chipkill-Correct** over an 18-chip DIMM
//! (Table 4). This crate implements that stack from scratch:
//!
//! * [`gf256`] — arithmetic in GF(2^8),
//! * [`rs`] — generic Reed–Solomon codes (syndrome decoding with
//!   Berlekamp–Massey, Chien search and Forney's algorithm),
//! * [`chipkill`] — the chip-striped codeword layout that turns a
//!   Reed–Solomon symbol correction into whole-chip-failure tolerance,
//! * [`hamming`] — SEC-DED Hamming(72,64), the weaker "conventional" ECC
//!   used in ablation experiments,
//! * [`ecp`] — Error-Correcting Pointers for hard (stuck-at) faults
//!   [Schechter et al., ISCA 2010].
//!
//! Every decoder reports a [`CorrectionOutcome`] so the memory controller
//! can distinguish clean reads, corrected errors, and **detected
//! uncorrectable errors** (which trigger Soteria's clone-repair path).
//! Miscorrection (silent corruption) is possible for errors beyond the
//! design distance, exactly as in real codes, and is quantified in tests.

pub mod chipkill;
pub mod ecp;
pub mod gf256;
pub mod hamming;
pub mod rs;

/// The outcome of running an ECC decode over a (possibly faulty) codeword.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CorrectionOutcome {
    /// No error was present.
    Clean,
    /// Errors were present and fully corrected; payload is trustworthy.
    Corrected {
        /// Number of symbols (or bits, for Hamming) repaired.
        symbols: usize,
    },
    /// An error was detected but exceeds the correction capability.
    /// The payload must not be trusted; secure controllers treat this as a
    /// potential integrity failure (§2.7).
    Uncorrectable,
}

impl CorrectionOutcome {
    /// Returns `true` when the decoded payload may be used.
    pub fn is_usable(&self) -> bool {
        !matches!(self, CorrectionOutcome::Uncorrectable)
    }
}

impl std::fmt::Display for CorrectionOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CorrectionOutcome::Clean => write!(f, "clean"),
            CorrectionOutcome::Corrected { symbols } => write!(f, "corrected({symbols})"),
            CorrectionOutcome::Uncorrectable => write!(f, "uncorrectable"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_usability() {
        assert!(CorrectionOutcome::Clean.is_usable());
        assert!(CorrectionOutcome::Corrected { symbols: 1 }.is_usable());
        assert!(!CorrectionOutcome::Uncorrectable.is_usable());
    }

    #[test]
    fn outcome_display() {
        assert_eq!(CorrectionOutcome::Clean.to_string(), "clean");
        assert_eq!(
            CorrectionOutcome::Corrected { symbols: 2 }.to_string(),
            "corrected(2)"
        );
        assert_eq!(
            CorrectionOutcome::Uncorrectable.to_string(),
            "uncorrectable"
        );
    }
}
