//! Arithmetic in GF(2^8) with the primitive polynomial
//! `x^8 + x^4 + x^3 + x^2 + 1` (0x11d) and generator α = 0x02.
//!
//! This is the field underlying the Reed–Solomon codes in [`crate::rs`].
//! Log/antilog tables are built at **compile time** — every `mul`/`div`
//! is a fused pair of table lookups (the `EXP` table is doubled to 512
//! entries so `exp[log a + log b]` needs no mod-255 reduction and no
//! branch-per-bit loop), and the tables are plain `static` data with no
//! lazy-init check on the hot path.
//!
//! # Example
//!
//! ```
//! use soteria_ecc::gf256::Gf256;
//!
//! let a = Gf256::new(0x53);
//! let b = Gf256::new(0xca);
//! assert_eq!((a * b) / b, a);
//! ```

use std::ops::{Add, Div, Mul, Sub};

const POLY: u16 = 0x11d;

/// Antilog table: `EXP[i] = α^i`, doubled so `EXP[log a + log b]` works
/// without a mod-255 reduction. `pub(crate)` so the Reed–Solomon hot
/// loops can run Horner's rule directly in the log domain.
pub(crate) static EXP: [u8; 512] = {
    let mut exp = [0u8; 512];
    let mut x: u16 = 1;
    let mut i = 0;
    while i < 255 {
        exp[i] = x as u8;
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= POLY;
        }
        i += 1;
    }
    while i < 512 {
        exp[i] = exp[i - 255];
        i += 1;
    }
    exp
};

/// Log table: `LOG[α^i] = i` for nonzero bytes (`LOG[0]` is unused, 0).
pub(crate) static LOG: [u8; 256] = {
    let mut log = [0u8; 256];
    let mut i = 0;
    while i < 255 {
        log[EXP[i] as usize] = i as u8;
        i += 1;
    }
    log
};

/// Multiply-by-constant tables: `ALPHA_MUL[p][x] = x · α^p`, one
/// 256-byte row per power of the generator (64 KiB total, compile-time
/// built). A syndrome scan becomes one table load and one XOR per
/// codeword byte with **no loop-carried multiply** — the accumulations
/// are independent, so the CPU overlaps them instead of serializing a
/// log/antilog chain.
pub(crate) static ALPHA_MUL: [[u8; 256]; 255] = {
    let mut t = [[0u8; 256]; 255];
    let mut p = 0;
    while p < 255 {
        let mut x = 1;
        while x < 256 {
            // LOG[x] + p <= 254 + 254, inside the doubled EXP table.
            t[p][x] = EXP[LOG[x] as usize + p];
            x += 1;
        }
        p += 1;
    }
    t
};

/// An element of GF(2^8).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Gf256(u8);

impl Gf256 {
    /// The additive identity.
    pub const ZERO: Gf256 = Gf256(0);
    /// The multiplicative identity.
    pub const ONE: Gf256 = Gf256(1);
    /// The field generator α.
    pub const ALPHA: Gf256 = Gf256(2);

    /// Wraps a byte as a field element.
    pub fn new(value: u8) -> Self {
        Self(value)
    }

    /// Returns the raw byte.
    pub fn value(self) -> u8 {
        self.0
    }

    /// Returns α^`power` (power taken mod 255).
    pub fn alpha_pow(power: usize) -> Self {
        Gf256(EXP[power % 255])
    }

    /// Returns the multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if `self` is zero, which has no inverse.
    pub fn inverse(self) -> Self {
        assert!(self.0 != 0, "zero has no multiplicative inverse in GF(256)");
        Gf256(EXP[255 - LOG[self.0 as usize] as usize])
    }

    /// Returns `self` raised to `power`.
    pub fn pow(self, power: usize) -> Self {
        if self.0 == 0 {
            return if power == 0 { Gf256::ONE } else { Gf256::ZERO };
        }
        let log = LOG[self.0 as usize] as usize;
        Gf256(EXP[(log * power) % 255])
    }

    /// Returns the discrete log base α, or `None` for zero.
    pub fn log(self) -> Option<u8> {
        if self.0 == 0 {
            None
        } else {
            Some(LOG[self.0 as usize])
        }
    }

    /// Returns `true` if this is the zero element.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl From<u8> for Gf256 {
    fn from(value: u8) -> Self {
        Gf256(value)
    }
}

impl From<Gf256> for u8 {
    fn from(value: Gf256) -> Self {
        value.0
    }
}

impl Add for Gf256 {
    type Output = Gf256;
    // Field addition in characteristic 2 IS xor; clippy's arithmetic-impl
    // heuristic does not apply to finite fields.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn add(self, rhs: Gf256) -> Gf256 {
        Gf256(self.0 ^ rhs.0)
    }
}

impl Sub for Gf256 {
    type Output = Gf256;
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn sub(self, rhs: Gf256) -> Gf256 {
        // Characteristic 2: subtraction is addition.
        self + rhs
    }
}

impl Mul for Gf256 {
    type Output = Gf256;
    fn mul(self, rhs: Gf256) -> Gf256 {
        if self.0 == 0 || rhs.0 == 0 {
            return Gf256::ZERO;
        }
        Gf256(EXP[LOG[self.0 as usize] as usize + LOG[rhs.0 as usize] as usize])
    }
}

impl Div for Gf256 {
    type Output = Gf256;
    /// # Panics
    ///
    /// Panics on division by zero.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Gf256) -> Gf256 {
        assert!(rhs.0 != 0, "division by zero in GF(256)");
        if self.0 == 0 {
            return Gf256::ZERO;
        }
        // Fused quotient: exp[255 + log a - log b], one lookup instead of
        // a separate inverse + multiply.
        Gf256(EXP[255 + LOG[self.0 as usize] as usize - LOG[rhs.0 as usize] as usize])
    }
}

impl std::fmt::Display for Gf256 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#04x}", self.0)
    }
}

impl std::fmt::LowerHex for Gf256 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::LowerHex::fmt(&self.0, f)
    }
}

/// Evaluates a polynomial (coefficients lowest-degree-first) at `x`.
pub fn poly_eval(coeffs: &[Gf256], x: Gf256) -> Gf256 {
    // Horner's rule from the highest coefficient down.
    let mut acc = Gf256::ZERO;
    for &c in coeffs.iter().rev() {
        acc = acc * x + c;
    }
    acc
}

/// Multiplies two polynomials (coefficients lowest-degree-first).
pub fn poly_mul(a: &[Gf256], b: &[Gf256]) -> Vec<Gf256> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![Gf256::ZERO; a.len() + b.len() - 1];
    for (i, &ai) in a.iter().enumerate() {
        for (j, &bj) in b.iter().enumerate() {
            out[i + j] = out[i + j] + ai * bj;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addition_is_xor() {
        assert_eq!(Gf256::new(0x53) + Gf256::new(0xca), Gf256::new(0x99));
        assert_eq!(Gf256::new(7) + Gf256::new(7), Gf256::ZERO);
    }

    #[test]
    fn multiplication_known_value() {
        // 0x53 * 0xca = 0x01 in the AES field 0x11b, but here we use 0x11d.
        // Verify against a slow bitwise multiply instead.
        fn slow_mul(mut a: u16, mut b: u16) -> u8 {
            let mut p: u16 = 0;
            while b != 0 {
                if b & 1 != 0 {
                    p ^= a;
                }
                a <<= 1;
                if a & 0x100 != 0 {
                    a ^= POLY;
                }
                b >>= 1;
            }
            p as u8
        }
        for a in [0u8, 1, 2, 3, 0x53, 0x8e, 0xff] {
            for b in [0u8, 1, 2, 0x0a, 0xca, 0xfe, 0xff] {
                assert_eq!(
                    (Gf256::new(a) * Gf256::new(b)).value(),
                    slow_mul(a as u16, b as u16),
                    "a={a:#x} b={b:#x}"
                );
            }
        }
    }

    #[test]
    fn every_nonzero_element_has_inverse() {
        for v in 1..=255u8 {
            let x = Gf256::new(v);
            assert_eq!(x * x.inverse(), Gf256::ONE, "v={v}");
        }
    }

    #[test]
    #[should_panic(expected = "no multiplicative inverse")]
    fn zero_inverse_panics() {
        let _ = Gf256::ZERO.inverse();
    }

    #[test]
    fn alpha_generates_the_field() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..255 {
            assert!(seen.insert(Gf256::alpha_pow(i)));
        }
        assert_eq!(seen.len(), 255);
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let x = Gf256::new(0x1d);
        let mut acc = Gf256::ONE;
        for p in 0..20 {
            assert_eq!(x.pow(p), acc);
            acc = acc * x;
        }
    }

    #[test]
    fn pow_of_zero() {
        assert_eq!(Gf256::ZERO.pow(0), Gf256::ONE);
        assert_eq!(Gf256::ZERO.pow(5), Gf256::ZERO);
    }

    #[test]
    fn distributivity() {
        for (a, b, c) in [(3u8, 7u8, 200u8), (0x55, 0xaa, 0x0f), (1, 255, 128)] {
            let (a, b, c) = (Gf256::new(a), Gf256::new(b), Gf256::new(c));
            assert_eq!(a * (b + c), a * b + a * c);
        }
    }

    #[test]
    fn poly_eval_constant_and_linear() {
        let c = [Gf256::new(5)];
        assert_eq!(poly_eval(&c, Gf256::new(99)), Gf256::new(5));
        // p(x) = 3 + 2x at x = 4 -> 3 + 8 = 0x0b
        let p = [Gf256::new(3), Gf256::new(2)];
        assert_eq!(
            poly_eval(&p, Gf256::new(4)),
            Gf256::new(3) + Gf256::new(2) * Gf256::new(4)
        );
    }

    #[test]
    fn poly_mul_degrees_add() {
        let a = [Gf256::ONE, Gf256::ONE]; // 1 + x
        let b = [Gf256::ONE, Gf256::ONE]; // 1 + x
                                          // (1+x)^2 = 1 + x^2 in characteristic 2
        assert_eq!(poly_mul(&a, &b), vec![Gf256::ONE, Gf256::ZERO, Gf256::ONE]);
    }

    #[test]
    fn log_roundtrip() {
        for v in 1..=255u8 {
            let x = Gf256::new(v);
            assert_eq!(Gf256::alpha_pow(x.log().unwrap() as usize), x);
        }
        assert_eq!(Gf256::ZERO.log(), None);
    }
}
