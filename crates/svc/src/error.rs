//! The service's user-facing failure vocabulary.
//!
//! Every error a client can observe maps to exactly one HTTP status and
//! one actionable one-line message. The CLI and tests pin the exact
//! strings, so changes here are API changes.

use std::fmt;

/// A request-level failure, carrying everything needed to render both an
/// HTTP error response and a CLI one-liner.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SvcError {
    /// The request was syntactically or semantically invalid (bad config
    /// JSON, bad job id, missing body).
    BadRequest(String),
    /// The path or job does not exist.
    NotFound(String),
    /// The path exists but not for this method.
    MethodNotAllowed {
        /// The method the client used.
        method: String,
        /// The methods the path accepts.
        allowed: &'static str,
    },
    /// The client sent bytes too slowly (or stopped mid-request).
    RequestTimeout,
    /// The request head or body exceeded a configured size limit.
    PayloadTooLarge {
        /// Which part overflowed (`"body"` or `"header section"`).
        what: &'static str,
        /// The configured limit in bytes.
        limit: usize,
    },
    /// The bounded job queue is full; the client should back off.
    QueueFull {
        /// Suggested wait before retrying, in seconds (also sent as the
        /// `Retry-After` header).
        retry_after_secs: u64,
    },
    /// The server is shutting down and only drains already-accepted work.
    Draining,
}

impl SvcError {
    /// The HTTP status code and reason phrase for this error.
    pub fn status(&self) -> (u16, &'static str) {
        match self {
            SvcError::BadRequest(_) => (400, "Bad Request"),
            SvcError::NotFound(_) => (404, "Not Found"),
            SvcError::MethodNotAllowed { .. } => (405, "Method Not Allowed"),
            SvcError::RequestTimeout => (408, "Request Timeout"),
            SvcError::PayloadTooLarge { .. } => (413, "Payload Too Large"),
            SvcError::QueueFull { .. } => (429, "Too Many Requests"),
            SvcError::Draining => (503, "Service Unavailable"),
        }
    }
}

impl fmt::Display for SvcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SvcError::BadRequest(detail) => write!(f, "bad request: {detail}"),
            SvcError::NotFound(what) => write!(f, "not found: {what}"),
            SvcError::MethodNotAllowed { method, allowed } => {
                write!(f, "method {method} not allowed here (use {allowed})")
            }
            SvcError::RequestTimeout => write!(
                f,
                "request timed out: send the complete request within the server's read timeout"
            ),
            SvcError::PayloadTooLarge { what, limit } => {
                write!(f, "request {what} exceeds the {limit}-byte limit")
            }
            SvcError::QueueFull { retry_after_secs } => write!(
                f,
                "job queue is full; retry after {retry_after_secs}s (see Retry-After)"
            ),
            SvcError::Draining => {
                write!(f, "server is draining: finishing accepted jobs, not taking new ones")
            }
        }
    }
}

impl std::error::Error for SvcError {}

#[cfg(test)]
mod tests {
    use super::*;

    /// The exact user-facing strings — every failure a client can hit
    /// must print an actionable one-liner.
    #[test]
    fn display_strings_are_pinned() {
        let cases: Vec<(SvcError, &str)> = vec![
            (
                SvcError::BadRequest("field 'fit' must be a positive number".into()),
                "bad request: field 'fit' must be a positive number",
            ),
            (
                SvcError::NotFound("job 7".into()),
                "not found: job 7",
            ),
            (
                SvcError::MethodNotAllowed {
                    method: "PUT".into(),
                    allowed: "GET",
                },
                "method PUT not allowed here (use GET)",
            ),
            (
                SvcError::RequestTimeout,
                "request timed out: send the complete request within the server's read timeout",
            ),
            (
                SvcError::PayloadTooLarge {
                    what: "body",
                    limit: 65536,
                },
                "request body exceeds the 65536-byte limit",
            ),
            (
                SvcError::QueueFull {
                    retry_after_secs: 1,
                },
                "job queue is full; retry after 1s (see Retry-After)",
            ),
            (
                SvcError::Draining,
                "server is draining: finishing accepted jobs, not taking new ones",
            ),
        ];
        for (err, expected) in cases {
            assert_eq!(err.to_string(), expected);
        }
    }

    #[test]
    fn statuses_map_one_to_one() {
        assert_eq!(SvcError::BadRequest(String::new()).status().0, 400);
        assert_eq!(SvcError::NotFound(String::new()).status().0, 404);
        assert_eq!(
            SvcError::MethodNotAllowed {
                method: "GET".into(),
                allowed: "POST"
            }
            .status()
            .0,
            405
        );
        assert_eq!(SvcError::RequestTimeout.status().0, 408);
        assert_eq!(
            SvcError::PayloadTooLarge {
                what: "body",
                limit: 1
            }
            .status()
            .0,
            413
        );
        assert_eq!(
            SvcError::QueueFull {
                retry_after_secs: 1
            }
            .status()
            .0,
            429
        );
        assert_eq!(SvcError::Draining.status().0, 503);
    }
}
