//! Coordinator/worker sharding: one campaign, many nodes, the same
//! bytes.
//!
//! A [`Coordinator`] owns a job (campaign, compare, or crashck),
//! partitions its fixed accumulation blocks
//! (`soteria_faultsim::shard::total_blocks`) into contiguous chunks, and
//! leases chunks to registered workers — each an ordinary `soteria
//! serve` instance reached over the [`crate::client`] with tight
//! connect/read timeouts. Workers compute partial sums
//! (`POST /v1/blocks`); the coordinator folds them back through the
//! exact single-node reduction (`soteria_faultsim::shard::merge_partials`),
//! so the merged artifact is **byte-identical** to a single-node run at
//! the same seed, regardless of shard count or worker failures.
//!
//! Failure handling is lease-based and fully deterministic in its
//! arithmetic (only the *schedule* varies):
//!
//! * A worker whose RPCs fail after bounded retry-with-backoff
//!   ([`crate::client::retrying`]) is declared dead; its outstanding
//!   leases return to the pending queue ([`BlockScheduler::fail_worker`]).
//! * An idle worker steals the oldest outstanding lease of a slow peer
//!   ([`BlockScheduler::steal`]), duplicating work rather than waiting.
//!   Duplicate partials are bit-identical by construction, so the merge
//!   keeps whichever copy landed first.
//!
//! The coordinator also serves a small control plane: worker
//! registration, fleet status, and per-worker Prometheus gauges.

use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use soteria_faultsim::{
    compare_config_from_json, config_from_json, crashck_config_from_json, merge_partials,
    total_blocks, JobSpec,
};
use soteria_rt::json::Json;

use crate::client::{self, ClientConfig};
use crate::error::SvcError;
use crate::http::{self, ReadLimits};

/// Tunables for a [`Coordinator`]. Defaults suit tests and localhost
/// fleets; `soteria coordinate` exposes them as flags.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Workers to wait for before the campaign starts.
    pub min_workers: usize,
    /// How long to wait for `min_workers` registrations.
    pub register_timeout: Duration,
    /// Blocks per lease (the work-distribution grain).
    pub chunk_blocks: u64,
    /// Idle/poll cadence for job-status polls and lease scans.
    pub poll_interval: Duration,
    /// Attempts per worker RPC before the worker is declared dead.
    pub rpc_attempts: u32,
    /// Initial backoff between RPC retries (doubles, capped at 2 s).
    pub rpc_backoff: Duration,
    /// Connect/read timeouts for worker RPCs.
    pub client: ClientConfig,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            min_workers: 1,
            register_timeout: Duration::from_secs(30),
            chunk_blocks: 4,
            poll_interval: Duration::from_millis(50),
            rpc_attempts: 3,
            rpc_backoff: Duration::from_millis(100),
            client: ClientConfig {
                connect_timeout: Duration::from_secs(2),
                read_timeout: Duration::from_secs(10),
            },
        }
    }
}

/// One outstanding lease: `worker` is computing blocks `lo..hi`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Lease {
    /// The worker id holding the lease.
    pub worker: usize,
    /// First block (inclusive).
    pub lo: u64,
    /// Last block (exclusive).
    pub hi: u64,
    /// Issue order — lower is older; [`BlockScheduler::steal`] clones
    /// the oldest lease first.
    pub seq: u64,
}

/// The pure block-distribution state machine: which blocks are pending,
/// leased, or done, and how many block-reassignments failures caused.
///
/// Deliberately free of I/O and clocks so the property suite can drive
/// arbitrary lease/complete/fail interleavings and assert the merged
/// artifact never changes.
#[derive(Debug)]
pub struct BlockScheduler {
    total: u64,
    done: Vec<bool>,
    done_blocks: u64,
    pending: VecDeque<u64>,
    leases: Vec<Lease>,
    next_seq: u64,
    reassigned_blocks: u64,
}

impl BlockScheduler {
    /// A scheduler over blocks `0..total`, all pending.
    pub fn new(total: u64) -> BlockScheduler {
        BlockScheduler {
            total,
            done: vec![false; total as usize],
            done_blocks: 0,
            pending: (0..total).collect(),
            leases: Vec::new(),
            next_seq: 0,
            reassigned_blocks: 0,
        }
    }

    /// Leases up to `max_blocks` contiguous pending blocks to `worker`.
    /// Returns `None` when nothing is pending (work may still be in
    /// flight elsewhere — see [`BlockScheduler::steal`]).
    pub fn lease(&mut self, worker: usize, max_blocks: u64) -> Option<(u64, u64)> {
        let lo = *self.pending.front()?;
        self.pending.pop_front();
        let mut hi = lo + 1;
        while hi - lo < max_blocks.max(1) {
            match self.pending.front() {
                Some(&b) if b == hi => {
                    self.pending.pop_front();
                    hi += 1;
                }
                _ => break,
            }
        }
        self.leases.push(Lease {
            worker,
            lo,
            hi,
            seq: self.next_seq,
        });
        self.next_seq += 1;
        Some((lo, hi))
    }

    /// Clones the oldest outstanding lease of another worker for
    /// `worker` — the slow-peer hedge. Returns `None` when every
    /// outstanding lease is already the requester's own, already
    /// duplicated by the requester, or fully complete.
    pub fn steal(&mut self, worker: usize) -> Option<(u64, u64)> {
        let mut best: Option<(u64, u64, u64)> = None;
        for lease in &self.leases {
            if lease.worker == worker {
                continue;
            }
            if (lease.lo..lease.hi).all(|b| self.done[b as usize]) {
                continue;
            }
            if self
                .leases
                .iter()
                .any(|l| l.worker == worker && l.lo == lease.lo && l.hi == lease.hi)
            {
                continue;
            }
            match best {
                Some((_, _, seq)) if seq <= lease.seq => {}
                _ => best = Some((lease.lo, lease.hi, lease.seq)),
            }
        }
        let (lo, hi, _) = best?;
        self.leases.push(Lease {
            worker,
            lo,
            hi,
            seq: self.next_seq,
        });
        self.next_seq += 1;
        Some((lo, hi))
    }

    /// Records that `worker` finished blocks `lo..hi`. Blocks already
    /// completed by a duplicate lease stay done (partials are
    /// bit-identical, so first copy wins at merge time).
    pub fn complete(&mut self, worker: usize, lo: u64, hi: u64) {
        self.leases
            .retain(|l| !(l.worker == worker && l.lo == lo && l.hi == hi));
        for b in lo..hi.min(self.total) {
            if !self.done[b as usize] {
                self.done[b as usize] = true;
                self.done_blocks += 1;
            }
        }
        // A failed-then-reassigned block the original worker still
        // finished: drop the stale pending copy.
        self.pending.retain(|&b| !(lo..hi).contains(&b));
    }

    /// Voids every lease held by `worker` (it died or fell off the
    /// network). Its unfinished blocks return to the pending queue
    /// unless a duplicate lease still covers them elsewhere.
    pub fn fail_worker(&mut self, worker: usize) {
        let (dead, alive): (Vec<Lease>, Vec<Lease>) = std::mem::take(&mut self.leases)
            .into_iter()
            .partition(|l| l.worker == worker);
        self.leases = alive;
        for lease in dead {
            for b in lease.lo..lease.hi {
                let covered = self
                    .leases
                    .iter()
                    .any(|l| (l.lo..l.hi).contains(&b));
                if !self.done[b as usize] && !covered && !self.pending.contains(&b) {
                    self.pending.push_back(b);
                    self.reassigned_blocks += 1;
                }
            }
        }
        self.pending.make_contiguous().sort_unstable();
    }

    /// Whether every block is done.
    pub fn is_complete(&self) -> bool {
        self.done_blocks == self.total
    }

    /// Total blocks under management.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Blocks completed so far.
    pub fn done_blocks(&self) -> u64 {
        self.done_blocks
    }

    /// Blocks not yet folded into the merge (total − done).
    pub fn merge_lag(&self) -> u64 {
        self.total - self.done_blocks
    }

    /// Distinct unfinished blocks currently under lease.
    pub fn in_flight(&self) -> u64 {
        (0..self.total)
            .filter(|&b| {
                !self.done[b as usize] && self.leases.iter().any(|l| (l.lo..l.hi).contains(&b))
            })
            .count() as u64
    }

    /// Blocks that returned to the pending queue after a worker death.
    pub fn reassigned_blocks(&self) -> u64 {
        self.reassigned_blocks
    }

    /// The outstanding leases (oldest first is not guaranteed).
    pub fn leases(&self) -> &[Lease] {
        &self.leases
    }
}

struct WorkerEntry {
    addr: String,
    alive: bool,
    blocks_done: u64,
    driver_spawned: bool,
}

struct FleetState {
    workers: Vec<WorkerEntry>,
    scheduler: Option<BlockScheduler>,
    partials: Vec<Json>,
    finished: bool,
}

struct FleetShared {
    state: Mutex<FleetState>,
    changed: Condvar,
}

/// Renders the fleet's Prometheus exposition: fleet-wide gauges plus
/// one `{worker="…"}` series per registered worker.
fn render_metrics(state: &FleetState) -> String {
    let (total, in_flight, lag, reassigned) = match &state.scheduler {
        Some(s) => (s.total(), s.in_flight(), s.merge_lag(), s.reassigned_blocks()),
        None => (0, 0, 0, 0),
    };
    let alive = state.workers.iter().filter(|w| w.alive).count();
    let mut text = String::new();
    for (name, kind, value) in [
        ("workers", "gauge", state.workers.len() as u64),
        ("workers_alive", "gauge", alive as u64),
        ("blocks_total", "gauge", total),
        ("blocks_in_flight", "gauge", in_flight),
        ("merge_lag_blocks", "gauge", lag),
        ("reassignments_total", "counter", reassigned),
    ] {
        text.push_str(&format!(
            "# TYPE soteria_fleet_{name} {kind}\nsoteria_fleet_{name} {value}\n"
        ));
    }
    text.push_str("# TYPE soteria_fleet_worker_alive gauge\n");
    for (id, w) in state.workers.iter().enumerate() {
        text.push_str(&format!(
            "soteria_fleet_worker_alive{{worker=\"{id}\"}} {}\n",
            w.alive as u64
        ));
    }
    text.push_str("# TYPE soteria_fleet_worker_blocks_done counter\n");
    for (id, w) in state.workers.iter().enumerate() {
        text.push_str(&format!(
            "soteria_fleet_worker_blocks_done{{worker=\"{id}\"}} {}\n",
            w.blocks_done
        ));
    }
    text
}

/// The fleet coordinator: binds the control plane, waits for workers,
/// shards the job, merges the partials.
pub struct Coordinator {
    listener: TcpListener,
    local_addr: SocketAddr,
    config: FleetConfig,
    shared: Arc<FleetShared>,
}

impl Coordinator {
    /// Binds the control-plane listener (port 0 for ephemeral) without
    /// starting anything.
    ///
    /// # Errors
    ///
    /// Any socket error from bind.
    pub fn bind<A: ToSocketAddrs>(addr: A, config: FleetConfig) -> io::Result<Coordinator> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        Ok(Coordinator {
            listener,
            local_addr,
            config,
            shared: Arc::new(FleetShared {
                state: Mutex::new(FleetState {
                    workers: Vec::new(),
                    scheduler: None,
                    partials: Vec::new(),
                    finished: false,
                }),
                changed: Condvar::new(),
            }),
        })
    }

    /// The bound control-plane address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Runs the job to completion: serves the control plane, waits for
    /// `min_workers` registrations, leases block chunks to workers
    /// (reassigning on death, hedging on slowness), and merges the
    /// partials into the final `(result_json, ndjson)` artifact pair —
    /// byte-identical to a single-node run of the same `kind`/`config`.
    ///
    /// # Errors
    ///
    /// A one-line message when the config is invalid, no worker ever
    /// registers, or every worker dies before coverage completes.
    pub fn run(self, kind: &str, config_body: &Json) -> Result<(String, String), String> {
        let spec = parse_spec(kind, config_body)?;
        let total = total_blocks(&spec);
        let shared = &*self.shared;
        let config = &self.config;
        {
            let mut st = shared.state.lock().unwrap();
            st.scheduler = Some(BlockScheduler::new(total));
        }
        let stop = AtomicBool::new(false);
        let outcome: Result<Vec<Json>, String> = thread::scope(|s| {
            s.spawn(|| control_loop(&self.listener, shared, &stop));

            // Wait for the starting quorum.
            let deadline = Instant::now() + config.register_timeout;
            {
                let mut st = shared.state.lock().unwrap();
                while st.workers.len() < config.min_workers {
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    let (next, _) = shared
                        .changed
                        .wait_timeout(st, deadline - now)
                        .unwrap();
                    st = next;
                }
                if st.workers.is_empty() {
                    st.finished = true;
                    stop.store(true, Ordering::Relaxed);
                    return Err(format!(
                        "no worker registered within {:?}",
                        config.register_timeout
                    ));
                }
            }

            // Main loop: spawn a driver per registered worker (including
            // late joiners), until coverage completes or the fleet dies.
            let result = loop {
                let mut st = shared.state.lock().unwrap();
                for id in 0..st.workers.len() {
                    if st.workers[id].alive && !st.workers[id].driver_spawned {
                        st.workers[id].driver_spawned = true;
                        let addr = st.workers[id].addr.clone();
                        s.spawn(move || {
                            drive_worker(shared, config, kind, config_body, id, &addr)
                        });
                    }
                }
                let (complete, lag, total) = {
                    let sched = st
                        .scheduler
                        .as_ref()
                        .expect("scheduler is installed before drivers start");
                    (sched.is_complete(), sched.merge_lag(), sched.total())
                };
                if complete {
                    st.finished = true;
                    break Ok(std::mem::take(&mut st.partials));
                }
                if st.workers.iter().all(|w| !w.alive) {
                    st.finished = true;
                    break Err(format!(
                        "every worker died with {lag} of {total} blocks unmerged"
                    ));
                }
                let (next, _) = shared
                    .changed
                    .wait_timeout(st, config.poll_interval)
                    .unwrap();
                drop(next);
            };
            shared.changed.notify_all();
            // Drivers observe `finished` and exit; the control loop runs
            // until `stop` so late scrapes during shutdown still answer.
            stop.store(true, Ordering::Relaxed);
            result
        });
        let partials = outcome?;
        merge_partials(&spec, &partials)
    }
}

/// Parses a job `kind` + config body into the (non-`Blocks`) spec the
/// coordinator shards and merges.
fn parse_spec(kind: &str, config_body: &Json) -> Result<JobSpec, String> {
    match kind {
        "campaign" => Ok(JobSpec::Campaign(config_from_json(config_body)?)),
        "compare" => Ok(JobSpec::Compare(compare_config_from_json(config_body)?)),
        "crashck" => Ok(JobSpec::Crashck(crashck_config_from_json(config_body)?)),
        other => Err(format!("unknown kind '{other}' (campaign, compare, crashck)")),
    }
}

/// One worker's driver: lease → RPC → complete, until the campaign
/// finishes or the worker dies.
fn drive_worker(
    shared: &FleetShared,
    config: &FleetConfig,
    kind: &str,
    config_body: &Json,
    worker: usize,
    addr: &str,
) {
    enum Task {
        Range(u64, u64),
        Idle,
        Stop,
    }
    loop {
        let task = {
            let mut st = shared.state.lock().unwrap();
            if st.finished || !st.workers[worker].alive {
                Task::Stop
            } else {
                match st.scheduler.as_mut() {
                    None => Task::Stop,
                    Some(sched) if sched.is_complete() => Task::Stop,
                    Some(sched) => match sched
                        .lease(worker, config.chunk_blocks)
                        .or_else(|| sched.steal(worker))
                    {
                        Some((lo, hi)) => Task::Range(lo, hi),
                        None => Task::Idle,
                    },
                }
            }
        };
        match task {
            Task::Stop => break,
            Task::Idle => {
                // Keep assessing liveness while idle so a silently dead
                // worker is noticed even between leases.
                if rpc_get(addr, "/healthz", config).is_err() {
                    let mut st = shared.state.lock().unwrap();
                    st.workers[worker].alive = false;
                    if let Some(sched) = st.scheduler.as_mut() {
                        sched.fail_worker(worker);
                    }
                    shared.changed.notify_all();
                    break;
                }
                thread::sleep(config.poll_interval);
            }
            Task::Range(lo, hi) => {
                match run_range_on_worker(addr, kind, config_body, lo, hi, config) {
                    Ok(partial) => {
                        let mut st = shared.state.lock().unwrap();
                        st.workers[worker].blocks_done += hi - lo;
                        if let Some(sched) = st.scheduler.as_mut() {
                            sched.complete(worker, lo, hi);
                        }
                        st.partials.push(partial);
                        shared.changed.notify_all();
                    }
                    Err(_) => {
                        let mut st = shared.state.lock().unwrap();
                        st.workers[worker].alive = false;
                        if let Some(sched) = st.scheduler.as_mut() {
                            sched.fail_worker(worker);
                        }
                        shared.changed.notify_all();
                        break;
                    }
                }
            }
        }
    }
}

fn rpc_error(detail: String) -> io::Error {
    io::Error::other(detail)
}

fn rpc_get(addr: &str, path: &str, config: &FleetConfig) -> io::Result<client::HttpResponse> {
    client::retrying(config.rpc_attempts, config.rpc_backoff, || {
        client::request_with(addr, "GET", path, None, &config.client)
    })
}

/// Submits blocks `lo..hi` to `addr`, polls the job to completion, and
/// fetches the partial document. Every RPC retries with backoff; any
/// persistent failure bubbles up so the caller declares the worker dead.
fn run_range_on_worker(
    addr: &str,
    kind: &str,
    config_body: &Json,
    lo: u64,
    hi: u64,
    config: &FleetConfig,
) -> io::Result<Json> {
    let body = Json::Obj(vec![
        ("kind".into(), Json::Str(kind.into())),
        ("lo".into(), Json::Num(lo as f64)),
        ("hi".into(), Json::Num(hi as f64)),
        ("config".into(), config_body.clone()),
    ]);
    let bytes = body.to_string().into_bytes();
    let submit = client::retrying(config.rpc_attempts, config.rpc_backoff, || {
        let resp = client::request_with(
            addr,
            "POST",
            "/v1/blocks",
            Some(("application/json", &bytes)),
            &config.client,
        )?;
        // 429 (queue full) is transient: the bounded backoff makes room.
        if resp.status == 429 {
            return Err(rpc_error("worker queue full".into()));
        }
        Ok(resp)
    })?;
    if submit.status != 202 {
        return Err(rpc_error(format!(
            "block submit rejected with {}: {}",
            submit.status,
            submit.text()
        )));
    }
    let job = submit
        .json()
        .map_err(rpc_error)?
        .get("job")
        .and_then(Json::as_f64)
        .ok_or_else(|| rpc_error("submit response missing job id".into()))? as u64;
    loop {
        let status = rpc_get(addr, &format!("/v1/jobs/{job}"), config)?;
        let state = status
            .json()
            .map_err(rpc_error)?
            .get("status")
            .and_then(|s| s.as_str().map(str::to_string))
            .ok_or_else(|| rpc_error("status response missing status".into()))?;
        match state.as_str() {
            "done" => break,
            "failed" => return Err(rpc_error(format!("worker job {job} failed"))),
            _ => thread::sleep(config.poll_interval),
        }
    }
    let result = rpc_get(addr, &format!("/v1/jobs/{job}/result"), config)?;
    if result.status != 200 {
        return Err(rpc_error(format!(
            "partial fetch rejected with {}",
            result.status
        )));
    }
    result.json().map_err(rpc_error)
}

/// The control-plane accept loop: registration, status, metrics.
fn control_loop(listener: &TcpListener, shared: &FleetShared, stop: &AtomicBool) {
    let limits = ReadLimits::default();
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((mut stream, _)) => {
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
                let _ = handle_control(&mut stream, shared, &limits);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(25));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
}

fn handle_control(
    stream: &mut TcpStream,
    shared: &FleetShared,
    limits: &ReadLimits,
) -> io::Result<()> {
    let req = match http::read_request(stream, limits) {
        Ok(req) => req,
        Err(err) => return http::write_error(stream, &err),
    };
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => http::write_response(
            stream,
            200,
            "OK",
            "text/plain; charset=utf-8",
            &[],
            b"ok\n",
        ),
        ("GET", "/metrics") => {
            let st = shared.state.lock().unwrap();
            let text = render_metrics(&st);
            drop(st);
            http::write_response(
                stream,
                200,
                "OK",
                "text/plain; version=0.0.4",
                &[],
                text.as_bytes(),
            )
        }
        ("POST", "/v1/fleet/register") => {
            let outcome = register_from_request(&req.body, shared);
            match outcome {
                Ok(id) => {
                    let body = Json::Obj(vec![("worker".into(), Json::Num(id as f64))])
                        .to_pretty_string();
                    http::write_response(
                        stream,
                        200,
                        "OK",
                        "application/json",
                        &[],
                        body.as_bytes(),
                    )
                }
                Err(err) => http::write_error(stream, &err),
            }
        }
        ("GET", "/v1/fleet") => {
            let st = shared.state.lock().unwrap();
            let workers: Vec<Json> = st
                .workers
                .iter()
                .enumerate()
                .map(|(id, w)| {
                    Json::Obj(vec![
                        ("worker".into(), Json::Num(id as f64)),
                        ("addr".into(), Json::Str(w.addr.clone())),
                        ("alive".into(), Json::Bool(w.alive)),
                        ("blocks_done".into(), Json::Num(w.blocks_done as f64)),
                    ])
                })
                .collect();
            let (done, total) = match &st.scheduler {
                Some(s) => (s.done_blocks(), s.total()),
                None => (0, 0),
            };
            let body = Json::Obj(vec![
                ("workers".into(), Json::Arr(workers)),
                ("blocks_done".into(), Json::Num(done as f64)),
                ("blocks_total".into(), Json::Num(total as f64)),
                ("finished".into(), Json::Bool(st.finished)),
            ])
            .to_pretty_string();
            drop(st);
            http::write_response(stream, 200, "OK", "application/json", &[], body.as_bytes())
        }
        (_, "/healthz" | "/metrics" | "/v1/fleet") => http::write_error(
            stream,
            &SvcError::MethodNotAllowed {
                method: req.method.clone(),
                allowed: "GET",
            },
        ),
        (_, "/v1/fleet/register") => http::write_error(
            stream,
            &SvcError::MethodNotAllowed {
                method: req.method.clone(),
                allowed: "POST",
            },
        ),
        (_, path) => {
            http::write_error(stream, &SvcError::NotFound(format!("no route for '{path}'")))
        }
    }
}

fn register_from_request(body: &[u8], shared: &FleetShared) -> Result<usize, SvcError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| SvcError::BadRequest("registration must be UTF-8 JSON".into()))?;
    let doc = Json::parse(text)
        .map_err(|e| SvcError::BadRequest(format!("registration is not valid JSON: {e}")))?;
    let addr = doc
        .get("addr")
        .and_then(Json::as_str)
        .ok_or_else(|| SvcError::BadRequest("registration needs an 'addr' field".into()))?;
    if addr.to_socket_addrs().map(|mut a| a.next()).ok().flatten().is_none() {
        return Err(SvcError::BadRequest(format!(
            "worker addr '{addr}' does not resolve"
        )));
    }
    let mut st = shared.state.lock().unwrap();
    // Re-registration of the same address revives the existing slot
    // (a restarted worker keeps its id and its done-counter).
    let id = match st.workers.iter().position(|w| w.addr == addr) {
        Some(id) => {
            st.workers[id].alive = true;
            st.workers[id].driver_spawned = false;
            id
        }
        None => {
            st.workers.push(WorkerEntry {
                addr: addr.to_string(),
                alive: true,
                blocks_done: 0,
                driver_spawned: false,
            });
            st.workers.len() - 1
        }
    };
    shared.changed.notify_all();
    Ok(id)
}

/// Registers a worker's advertised address with a coordinator, with
/// retry — workers usually boot before their coordinator is reachable.
///
/// # Errors
///
/// The last attempt's error once every retry failed, or a rejection
/// from the coordinator.
pub fn register_worker(
    coordinator: &str,
    advertise: &str,
    attempts: u32,
    backoff: Duration,
    client_config: &ClientConfig,
) -> io::Result<usize> {
    let body = Json::Obj(vec![("addr".into(), Json::Str(advertise.into()))])
        .to_string()
        .into_bytes();
    client::retrying(attempts, backoff, || {
        let resp = client::request_with(
            coordinator,
            "POST",
            "/v1/fleet/register",
            Some(("application/json", &body)),
            client_config,
        )?;
        if resp.status != 200 {
            return Err(rpc_error(format!(
                "registration rejected with {}: {}",
                resp.status,
                resp.text()
            )));
        }
        resp.json()
            .map_err(rpc_error)?
            .get("worker")
            .and_then(Json::as_f64)
            .map(|id| id as usize)
            .ok_or_else(|| rpc_error("registration response missing worker id".into()))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheduler_leases_completes_and_reassigns() {
        let mut s = BlockScheduler::new(10);
        assert_eq!(s.lease(0, 4), Some((0, 4)));
        assert_eq!(s.lease(1, 4), Some((4, 8)));
        assert_eq!(s.lease(0, 4), Some((8, 10)));
        assert_eq!(s.lease(1, 4), None);
        assert_eq!(s.in_flight(), 10);

        s.complete(0, 0, 4);
        assert_eq!(s.done_blocks(), 4);
        assert_eq!(s.merge_lag(), 6);

        // Worker 1 dies holding 4..8: those blocks go back to pending.
        s.fail_worker(1);
        assert_eq!(s.reassigned_blocks(), 4);
        assert_eq!(s.lease(0, 8), Some((4, 8)));
        s.complete(0, 4, 8);
        s.complete(0, 8, 10);
        assert!(s.is_complete());
        assert_eq!(s.in_flight(), 0);
    }

    #[test]
    fn steal_duplicates_the_oldest_foreign_lease_once() {
        let mut s = BlockScheduler::new(8);
        let a = s.lease(0, 4).unwrap();
        let _b = s.lease(1, 4).unwrap();
        // Nothing pending: worker 2 steals worker 0's older lease.
        assert_eq!(s.lease(2, 4), None);
        assert_eq!(s.steal(2), Some(a));
        // No double-duplicate of the same range by the same worker.
        assert_eq!(s.steal(2), Some((4, 8)));
        assert_eq!(s.steal(2), None);
        // Whoever finishes first wins; the duplicate completion is a
        // no-op on the done set.
        s.complete(2, a.0, a.1);
        assert_eq!(s.done_blocks(), 4);
        s.complete(0, a.0, a.1);
        assert_eq!(s.done_blocks(), 4);
    }

    #[test]
    fn failed_blocks_covered_by_a_duplicate_are_not_repended() {
        let mut s = BlockScheduler::new(4);
        let a = s.lease(0, 4).unwrap();
        assert_eq!(s.steal(1), Some(a));
        s.fail_worker(0);
        // Worker 1's duplicate still covers 0..4 — nothing re-pends.
        assert_eq!(s.reassigned_blocks(), 0);
        assert_eq!(s.lease(2, 4), None);
        s.complete(1, 0, 4);
        assert!(s.is_complete());
    }

    #[test]
    fn metrics_exposition_is_exact() {
        let mut scheduler = BlockScheduler::new(8);
        let _ = scheduler.lease(0, 4);
        let _ = scheduler.lease(1, 4);
        scheduler.complete(0, 0, 4);
        scheduler.fail_worker(1);
        let state = FleetState {
            workers: vec![
                WorkerEntry {
                    addr: "127.0.0.1:9001".into(),
                    alive: true,
                    blocks_done: 4,
                    driver_spawned: true,
                },
                WorkerEntry {
                    addr: "127.0.0.1:9002".into(),
                    alive: false,
                    blocks_done: 0,
                    driver_spawned: true,
                },
            ],
            scheduler: Some(scheduler),
            partials: Vec::new(),
            finished: false,
        };
        assert_eq!(
            render_metrics(&state),
            "# TYPE soteria_fleet_workers gauge\n\
             soteria_fleet_workers 2\n\
             # TYPE soteria_fleet_workers_alive gauge\n\
             soteria_fleet_workers_alive 1\n\
             # TYPE soteria_fleet_blocks_total gauge\n\
             soteria_fleet_blocks_total 8\n\
             # TYPE soteria_fleet_blocks_in_flight gauge\n\
             soteria_fleet_blocks_in_flight 0\n\
             # TYPE soteria_fleet_merge_lag_blocks gauge\n\
             soteria_fleet_merge_lag_blocks 4\n\
             # TYPE soteria_fleet_reassignments_total counter\n\
             soteria_fleet_reassignments_total 4\n\
             # TYPE soteria_fleet_worker_alive gauge\n\
             soteria_fleet_worker_alive{worker=\"0\"} 1\n\
             soteria_fleet_worker_alive{worker=\"1\"} 0\n\
             # TYPE soteria_fleet_worker_blocks_done counter\n\
             soteria_fleet_worker_blocks_done{worker=\"0\"} 4\n\
             soteria_fleet_worker_blocks_done{worker=\"1\"} 0\n"
        );
    }

    #[test]
    fn registration_revives_and_rejects() {
        let shared = FleetShared {
            state: Mutex::new(FleetState {
                workers: Vec::new(),
                scheduler: None,
                partials: Vec::new(),
                finished: false,
            }),
            changed: Condvar::new(),
        };
        let id = register_from_request(br#"{"addr": "127.0.0.1:9001"}"#, &shared).unwrap();
        assert_eq!(id, 0);
        let id2 = register_from_request(br#"{"addr": "127.0.0.1:9002"}"#, &shared).unwrap();
        assert_eq!(id2, 1);
        shared.state.lock().unwrap().workers[0].alive = false;
        // Same address re-registers into the same, revived slot.
        let again = register_from_request(br#"{"addr": "127.0.0.1:9001"}"#, &shared).unwrap();
        assert_eq!(again, 0);
        assert!(shared.state.lock().unwrap().workers[0].alive);

        let err = register_from_request(b"{}", &shared).unwrap_err();
        assert!(err.to_string().contains("'addr'"), "{err}");
        let err = register_from_request(b"not json", &shared).unwrap_err();
        assert!(err.to_string().contains("valid JSON"), "{err}");
    }
}
