//! A concurrent-submission load generator for exercising the service's
//! backpressure path: N clients fire the same campaign config at once
//! and the report tallies accepts vs `429` rejections.

use std::net::SocketAddr;

use soteria_rt::json::Json;
use soteria_rt::thread::fan_out;

use crate::client;

/// One client's view of its submission attempt.
#[derive(Clone, Debug)]
pub struct SubmitOutcome {
    /// HTTP status of the submit (`202` accepted, `429` shed, …), or 0
    /// if the connection itself failed.
    pub status: u16,
    /// The job id, when accepted.
    pub job: Option<usize>,
    /// The `Retry-After` value, when shed.
    pub retry_after_secs: Option<u64>,
}

/// Aggregate of one burst.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Per-client outcomes, in client order.
    pub outcomes: Vec<SubmitOutcome>,
}

impl LoadReport {
    /// Job ids of every accepted submission.
    pub fn accepted_jobs(&self) -> Vec<usize> {
        self.outcomes.iter().filter_map(|o| o.job).collect()
    }

    /// Number of `429` rejections.
    pub fn rejected(&self) -> usize {
        self.outcomes.iter().filter(|o| o.status == 429).count()
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "{} clients: {} accepted, {} shed (429), {} other",
            self.outcomes.len(),
            self.accepted_jobs().len(),
            self.rejected(),
            self.outcomes
                .iter()
                .filter(|o| o.status != 202 && o.status != 429)
                .count()
        )
    }
}

/// Fires `clients` concurrent `POST /v1/campaigns` with the same
/// `config` body and collects every outcome. Threads are real: each
/// client opens its own connection, so queue contention is genuine.
pub fn submit_burst(addr: SocketAddr, config: &Json, clients: usize) -> LoadReport {
    let outcomes = fan_out(clients, |_| {
        match client::post_json(addr, "/v1/campaigns", config) {
            Ok(resp) => {
                let job = resp
                    .json()
                    .ok()
                    .and_then(|j| j.get("job").and_then(|v| v.as_f64()))
                    .map(|n| n as usize);
                let retry_after_secs = resp
                    .header("retry-after")
                    .and_then(|v| v.parse().ok());
                SubmitOutcome {
                    status: resp.status,
                    job: if resp.status == 202 { job } else { None },
                    retry_after_secs,
                }
            }
            Err(_) => SubmitOutcome {
                status: 0,
                job: None,
                retry_after_secs: None,
            },
        }
    });
    LoadReport { outcomes }
}
