//! A minimal HTTP/1.1 wire layer over [`std::net::TcpStream`].
//!
//! Only the subset the campaign service needs: one request per
//! connection (`Connection: close`), `Content-Length` bodies, hard
//! limits on header-section and body size, and a read timeout mapped to
//! [`SvcError::RequestTimeout`]. Anything outside that subset is a
//! [`SvcError::BadRequest`].

use std::io::{self, Read, Write};
use std::net::TcpStream;

use crate::error::SvcError;

/// Size limits applied while reading a request.
#[derive(Clone, Copy, Debug)]
pub struct ReadLimits {
    /// Maximum bytes for the request line + headers (incl. `\r\n\r\n`).
    pub max_head_bytes: usize,
    /// Maximum bytes for the body (`Content-Length` is checked before
    /// the body is read).
    pub max_body_bytes: usize,
}

impl Default for ReadLimits {
    fn default() -> Self {
        Self {
            max_head_bytes: 16 * 1024,
            max_body_bytes: 1024 * 1024,
        }
    }
}

/// A parsed request: method, path, lower-cased header names, raw body.
#[derive(Clone, Debug)]
pub struct Request {
    /// The request method, upper-case as sent (`GET`, `POST`, …).
    pub method: String,
    /// The request target, e.g. `/v1/jobs/3/trace` (query strings are
    /// kept verbatim; the service does not use them).
    pub path: String,
    /// Header `(name, value)` pairs; names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The raw request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// The first header with the given (lower-case) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

fn timeout_kind(kind: io::ErrorKind) -> bool {
    matches!(kind, io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

fn map_io(err: io::Error) -> SvcError {
    if timeout_kind(err.kind()) {
        SvcError::RequestTimeout
    } else {
        SvcError::BadRequest(format!("connection error while reading request: {err}"))
    }
}

/// Reads and parses one request from `stream`, enforcing `limits`.
///
/// The caller sets the stream's read timeout; a timeout while bytes are
/// still owed maps to [`SvcError::RequestTimeout`], an oversized head or
/// body to [`SvcError::PayloadTooLarge`], and malformed framing to
/// [`SvcError::BadRequest`].
pub fn read_request(stream: &mut TcpStream, limits: &ReadLimits) -> Result<Request, SvcError> {
    // Read byte-at-a-time until the blank line; request heads are tiny
    // and this keeps the code free of buffer-stitching bugs.
    let mut head = Vec::with_capacity(512);
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        if head.len() >= limits.max_head_bytes {
            return Err(SvcError::PayloadTooLarge {
                what: "header section",
                limit: limits.max_head_bytes,
            });
        }
        match stream.read(&mut byte) {
            Ok(0) => {
                return Err(SvcError::BadRequest(
                    "connection closed before the request was complete".into(),
                ))
            }
            Ok(_) => head.push(byte[0]),
            Err(e) => return Err(map_io(e)),
        }
    }
    let head = String::from_utf8(head)
        .map_err(|_| SvcError::BadRequest("request head is not valid UTF-8".into()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && p.starts_with('/') => (m, p, v),
        _ => {
            return Err(SvcError::BadRequest(format!(
                "malformed request line '{request_line}'"
            )))
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(SvcError::BadRequest(format!(
            "unsupported protocol '{version}' (use HTTP/1.1)"
        )));
    }
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line.split_once(':').ok_or_else(|| {
            SvcError::BadRequest(format!("malformed header line '{line}'"))
        })?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let mut request = Request {
        method: method.to_string(),
        path: path.to_string(),
        headers,
        body: Vec::new(),
    };
    if request.header("transfer-encoding").is_some() {
        return Err(SvcError::BadRequest(
            "chunked bodies are not supported; send Content-Length".into(),
        ));
    }
    if let Some(len) = request.header("content-length") {
        let len: usize = len.parse().map_err(|_| {
            SvcError::BadRequest(format!("invalid Content-Length '{len}'"))
        })?;
        if len > limits.max_body_bytes {
            // Best-effort drain (bounded) so closing the socket after the
            // 413 doesn't RST the connection before the client reads it.
            let mut sink = [0u8; 4096];
            let mut left = len.min(1 << 20);
            while left > 0 {
                let take = sink.len().min(left);
                match stream.read(&mut sink[..take]) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => left -= n,
                }
            }
            return Err(SvcError::PayloadTooLarge {
                what: "body",
                limit: limits.max_body_bytes,
            });
        }
        let mut body = vec![0u8; len];
        stream.read_exact(&mut body).map_err(map_io)?;
        request.body = body;
    }
    Ok(request)
}

/// Writes one `Connection: close` response and flushes it.
///
/// `extra_headers` come after the standard set; `Content-Length` is
/// always derived from `body`.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &[u8],
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Writes the error response for `err`: a JSON body with the pinned
/// one-line message, plus `Retry-After` for queue-full rejections.
pub fn write_error(stream: &mut TcpStream, err: &SvcError) -> io::Result<()> {
    let (status, reason) = err.status();
    let body = soteria_rt::json::Json::Obj(vec![(
        "error".into(),
        soteria_rt::json::Json::Str(err.to_string()),
    )])
    .to_pretty_string();
    let mut extra: Vec<(&str, String)> = Vec::new();
    if let SvcError::QueueFull { retry_after_secs } = err {
        extra.push(("Retry-After", retry_after_secs.to_string()));
    }
    write_response(
        stream,
        status,
        reason,
        "application/json",
        &extra,
        body.as_bytes(),
    )
}
