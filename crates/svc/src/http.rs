//! A minimal HTTP/1.1 wire layer.
//!
//! Only the subset the campaign service needs: one request per
//! connection (`Connection: close`), `Content-Length` bodies, hard
//! limits on header-section and body size, and a read timeout mapped to
//! [`SvcError::RequestTimeout`]. Anything outside that subset is a
//! [`SvcError::BadRequest`].
//!
//! The parser itself is incremental and transport-free:
//! [`parse_request`] consumes a byte buffer and either yields a complete
//! request, asks for more bytes, or fails with the pinned error. Both
//! the blocking [`read_request`] path (used by the fleet control plane)
//! and the non-blocking reactor server are thin transports over it, so
//! the two paths cannot drift apart.

use std::io::{self, Read, Write};
use std::net::TcpStream;

use crate::error::SvcError;

/// Size limits applied while reading a request.
#[derive(Clone, Copy, Debug)]
pub struct ReadLimits {
    /// Maximum bytes for the request line + headers (incl. `\r\n\r\n`).
    pub max_head_bytes: usize,
    /// Maximum bytes for the body (`Content-Length` is checked before
    /// the body is read).
    pub max_body_bytes: usize,
}

impl Default for ReadLimits {
    fn default() -> Self {
        Self {
            max_head_bytes: 16 * 1024,
            max_body_bytes: 1024 * 1024,
        }
    }
}

/// A parsed request: method, path, lower-cased header names, raw body.
#[derive(Clone, Debug)]
pub struct Request {
    /// The request method, upper-case as sent (`GET`, `POST`, …).
    pub method: String,
    /// The request target, e.g. `/v1/jobs/3/trace` (query strings are
    /// kept verbatim; the service does not use them).
    pub path: String,
    /// Header `(name, value)` pairs; names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The raw request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// The first header with the given (lower-case) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

fn timeout_kind(kind: io::ErrorKind) -> bool {
    matches!(kind, io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

fn map_io(err: io::Error) -> SvcError {
    if timeout_kind(err.kind()) {
        SvcError::RequestTimeout
    } else {
        SvcError::BadRequest(format!("connection error while reading request: {err}"))
    }
}

/// Locates the end of the header section (`\r\n\r\n`) in `buf`.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4)
}

/// Parses the request line + headers (everything before the body).
fn parse_head(head: &[u8]) -> Result<Request, SvcError> {
    let head = std::str::from_utf8(head)
        .map_err(|_| SvcError::BadRequest("request head is not valid UTF-8".into()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && p.starts_with('/') => (m, p, v),
        _ => {
            return Err(SvcError::BadRequest(format!(
                "malformed request line '{request_line}'"
            )))
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(SvcError::BadRequest(format!(
            "unsupported protocol '{version}' (use HTTP/1.1)"
        )));
    }
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| SvcError::BadRequest(format!("malformed header line '{line}'")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
        headers,
        body: Vec::new(),
    })
}

/// The declared `Content-Length` of a parsed head, after framing checks.
fn body_length(request: &Request, limits: &ReadLimits) -> Result<usize, SvcError> {
    if request.header("transfer-encoding").is_some() {
        return Err(SvcError::BadRequest(
            "chunked bodies are not supported; send Content-Length".into(),
        ));
    }
    let Some(len) = request.header("content-length") else {
        return Ok(0);
    };
    let len: usize = len
        .parse()
        .map_err(|_| SvcError::BadRequest(format!("invalid Content-Length '{len}'")))?;
    if len > limits.max_body_bytes {
        return Err(SvcError::PayloadTooLarge {
            what: "body",
            limit: limits.max_body_bytes,
        });
    }
    Ok(len)
}

/// Incrementally parses one request from `buf`, enforcing `limits`.
///
/// Returns `Ok(Some((request, consumed)))` once a complete request is
/// buffered (`consumed` bytes belong to it), `Ok(None)` when more bytes
/// are needed, and the pinned [`SvcError`] on oversized or malformed
/// input. Transport-free: both the blocking and reactor paths call this.
pub fn parse_request(buf: &[u8], limits: &ReadLimits) -> Result<Option<(Request, usize)>, SvcError> {
    let Some(head_end) = find_head_end(buf) else {
        if buf.len() >= limits.max_head_bytes {
            return Err(SvcError::PayloadTooLarge {
                what: "header section",
                limit: limits.max_head_bytes,
            });
        }
        return Ok(None);
    };
    if head_end > limits.max_head_bytes {
        return Err(SvcError::PayloadTooLarge {
            what: "header section",
            limit: limits.max_head_bytes,
        });
    }
    let mut request = parse_head(&buf[..head_end])?;
    let len = body_length(&request, limits)?;
    if buf.len() < head_end + len {
        return Ok(None);
    }
    request.body = buf[head_end..head_end + len].to_vec();
    Ok(Some((request, head_end + len)))
}

/// How many declared-but-unread body bytes are still owed by the peer —
/// the bounded-drain budget after an oversized-body rejection.
pub fn drain_budget(buf: &[u8]) -> usize {
    find_head_end(buf)
        .and_then(|head_end| {
            let request = parse_head(&buf[..head_end]).ok()?;
            let len: usize = request.header("content-length")?.parse().ok()?;
            Some(len.saturating_sub(buf.len() - head_end))
        })
        .unwrap_or(0)
}

/// Reads and parses one request from `stream`, enforcing `limits`.
///
/// The caller sets the stream's read timeout; a timeout while bytes are
/// still owed maps to [`SvcError::RequestTimeout`], an oversized head or
/// body to [`SvcError::PayloadTooLarge`], and malformed framing to
/// [`SvcError::BadRequest`].
pub fn read_request(stream: &mut TcpStream, limits: &ReadLimits) -> Result<Request, SvcError> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 4096];
    loop {
        match parse_request(&buf, limits) {
            Ok(Some((request, _consumed))) => return Ok(request),
            Ok(None) => {}
            Err(err @ SvcError::PayloadTooLarge { what: "body", .. }) => {
                // Best-effort drain (bounded) so closing the socket after
                // the 413 doesn't RST the connection before the client
                // reads it. Budget: the declared body minus what is
                // already buffered, capped at 1 MiB.
                let mut left = drain_budget(&buf).min(1 << 20);
                while left > 0 {
                    let take = chunk.len().min(left);
                    match stream.read(&mut chunk[..take]) {
                        Ok(0) | Err(_) => break,
                        Ok(n) => left -= n,
                    }
                }
                return Err(err);
            }
            Err(err) => return Err(err),
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                return Err(SvcError::BadRequest(
                    "connection closed before the request was complete".into(),
                ))
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) => return Err(map_io(e)),
        }
    }
}

/// Renders one `Connection: close` response to wire bytes.
///
/// `extra_headers` come after the standard set; `Content-Length` is
/// always derived from `body`.
pub fn render_response(
    status: u16,
    reason: &str,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &[u8],
) -> Vec<u8> {
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    let mut wire = head.into_bytes();
    wire.extend_from_slice(body);
    wire
}

/// Renders the error response for `err`: a JSON body with the pinned
/// one-line message, plus `Retry-After` for queue-full rejections.
pub fn render_error(err: &SvcError) -> Vec<u8> {
    let (status, reason) = err.status();
    let body = soteria_rt::json::Json::Obj(vec![(
        "error".into(),
        soteria_rt::json::Json::Str(err.to_string()),
    )])
    .to_pretty_string();
    let mut extra: Vec<(&str, String)> = Vec::new();
    if let SvcError::QueueFull { retry_after_secs } = err {
        extra.push(("Retry-After", retry_after_secs.to_string()));
    }
    render_response(status, reason, "application/json", &extra, body.as_bytes())
}

/// Writes one `Connection: close` response and flushes it.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &[u8],
) -> io::Result<()> {
    stream.write_all(&render_response(
        status,
        reason,
        content_type,
        extra_headers,
        body,
    ))?;
    stream.flush()
}

/// Writes the error response for `err` and flushes it.
pub fn write_error(stream: &mut TcpStream, err: &SvcError) -> io::Result<()> {
    stream.write_all(&render_error(err))?;
    stream.flush()
}
