//! The non-blocking connection engine: one reactor thread drives every
//! connection through read → route → write, so idle sockets cost a
//! buffer instead of a thread.
//!
//! Rehosts the exact same pieces the original thread-per-connection
//! listener used — [`crate::http::parse_request`] for framing,
//! [`crate::server`]'s `route` for semantics, the shared bounded queue
//! and worker pool for execution — on [`soteria_rt::reactor::Poller`]
//! (epoll on Linux, `poll(2)` elsewhere). Campaign execution stays on
//! the worker pool; the reactor only parses, routes, and shuttles
//! bytes, so a submit is accepted or shed in microseconds even while
//! thousands of connections are parked.
//!
//! Per-connection lifecycle:
//!
//! ```text
//! accept → Reading --parse ok--> route → Writing → close
//!             |  \--body too large--> DrainingBody → Writing → close
//!             \--deadline--> 408 → Writing → close
//! ```
//!
//! Error semantics (pinned strings, 408/413 mapping, bounded drain
//! before a 413, metrics increments) are identical to the blocking
//! path the integration suite was written against.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::time::{Duration, Instant};

use soteria_rt::obs::Timer;
use soteria_rt::reactor::{Event, Interest, Poller};

use crate::error::SvcError;
use crate::http::{drain_budget, parse_request, render_error, render_response};
use crate::server::{latency_metric, route, Response, ServerConfig, Shared};

/// The poller key reserved for the listening socket.
const LISTENER_KEY: u64 = u64::MAX;

/// Upper bound on one poll wait, so drain progress is noticed promptly.
const TICK: Duration = Duration::from_millis(25);

const READ_CHUNK: usize = 16 * 1024;

/// What to do with a connection after an I/O pass.
#[derive(PartialEq, Eq)]
enum Next {
    Keep,
    Close,
}

enum Phase {
    /// Accumulating request bytes until `parse_request` completes.
    Reading,
    /// Oversized body rejected; discarding the declared remainder
    /// (bounded) so the close does not RST the 413 away.
    DrainingBody {
        budget: usize,
        err: SvcError,
    },
    /// Response rendered; flushing `out`.
    Writing,
}

struct Conn {
    stream: TcpStream,
    buf: Vec<u8>,
    out: Vec<u8>,
    written: usize,
    /// Reads must make progress before this instant or the request
    /// times out (refreshed on every received chunk, mirroring the
    /// per-read timeout of the blocking path).
    deadline: Instant,
    timer: Option<Timer>,
    phase: Phase,
}

impl Conn {
    fn new(stream: TcpStream, read_timeout: Duration) -> Conn {
        Conn {
            stream,
            buf: Vec::with_capacity(512),
            out: Vec::new(),
            written: 0,
            deadline: Instant::now() + read_timeout,
            timer: Some(Timer::start(true)),
            phase: Phase::Reading,
        }
    }

    /// Writes as much of `out` as the socket accepts right now.
    fn flush(&mut self) -> Next {
        loop {
            if self.written == self.out.len() {
                let _ = self.stream.flush();
                return Next::Close;
            }
            match self.stream.write(&self.out[self.written..]) {
                Ok(0) => return Next::Close,
                Ok(n) => self.written += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Next::Keep,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return Next::Close,
            }
        }
    }

    /// Records metrics for the settled request, renders the response,
    /// and starts writing it. `path` is the routed request path, or
    /// `/` when the request never parsed (matching the blocking path).
    fn respond(
        &mut self,
        shared: &Shared,
        path: &str,
        outcome: Result<Response, SvcError>,
    ) -> Next {
        let status = match &outcome {
            Ok(resp) => resp.status,
            Err(err) => err.status().0,
        };
        {
            let mut st = shared.state.lock().unwrap();
            st.metrics.inc("requests_total", 1);
            if status == 429 {
                st.metrics.inc("rejected{code=\"429\"}", 1);
            }
            if let Some(timer) = self.timer.take() {
                st.metrics.observe_timer(latency_metric(path), timer);
            }
        }
        self.out = match outcome {
            Ok(resp) => render_response(
                resp.status,
                resp.reason,
                resp.content_type,
                &resp
                    .extra
                    .iter()
                    .map(|(n, v)| (*n, v.clone()))
                    .collect::<Vec<_>>(),
                &resp.body,
            ),
            Err(err) => render_error(&err),
        };
        self.written = 0;
        self.phase = Phase::Writing;
        self.flush()
    }

    /// A readable event while accumulating the request.
    fn on_reading(&mut self, shared: &Shared, config: &ServerConfig) -> Next {
        let mut chunk = [0u8; READ_CHUNK];
        let mut closed = false;
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    closed = true;
                    break;
                }
                Ok(n) => {
                    self.buf.extend_from_slice(&chunk[..n]);
                    self.deadline = Instant::now() + config.read_timeout;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    closed = true;
                    break;
                }
            }
        }
        match parse_request(&self.buf, &config.limits) {
            Ok(Some((request, _consumed))) => {
                let outcome = route(shared, config, &request);
                self.respond(shared, &request.path, outcome)
            }
            Ok(None) if closed => self.respond(
                shared,
                "/",
                Err(SvcError::BadRequest(
                    "connection closed before the request was complete".into(),
                )),
            ),
            Ok(None) => Next::Keep,
            Err(err @ SvcError::PayloadTooLarge { what: "body", .. }) => {
                let budget = drain_budget(&self.buf).min(1 << 20);
                if budget == 0 || closed {
                    self.respond(shared, "/", Err(err))
                } else {
                    self.buf.clear();
                    self.phase = Phase::DrainingBody { budget, err };
                    Next::Keep
                }
            }
            Err(err) => self.respond(shared, "/", Err(err)),
        }
    }

    /// A readable event while discarding an oversized body.
    fn on_draining(&mut self, shared: &Shared, config: &ServerConfig) -> Next {
        let mut chunk = [0u8; READ_CHUNK];
        let mut settle = false;
        loop {
            let Phase::DrainingBody { budget, .. } = &mut self.phase else {
                return Next::Keep;
            };
            if *budget == 0 || settle {
                break;
            }
            let take = chunk.len().min(*budget);
            match self.stream.read(&mut chunk[..take]) {
                Ok(0) => settle = true,
                Ok(n) => {
                    *budget -= n;
                    self.deadline = Instant::now() + config.read_timeout;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Next::Keep,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => settle = true,
            }
        }
        let Phase::DrainingBody { err, .. } =
            std::mem::replace(&mut self.phase, Phase::Writing)
        else {
            return Next::Keep;
        };
        self.respond(shared, "/", Err(err))
    }

    /// The deadline passed without a complete request.
    fn on_deadline(&mut self, shared: &Shared) -> Next {
        match std::mem::replace(&mut self.phase, Phase::Writing) {
            Phase::Reading => self.respond(shared, "/", Err(SvcError::RequestTimeout)),
            Phase::DrainingBody { err, .. } => self.respond(shared, "/", Err(err)),
            Phase::Writing => Next::Keep,
        }
    }
}

/// Accepts every pending connection; returns `false` when the listener
/// has failed fatally.
fn accept_all(
    listener: &TcpListener,
    config: &ServerConfig,
    poller: &mut Poller,
    conns: &mut Vec<Option<Conn>>,
) -> bool {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let conn = Conn::new(stream, config.read_timeout);
                let fd = conn.stream.as_raw_fd();
                let slot = match conns.iter().position(|c| c.is_none()) {
                    Some(i) => i,
                    None => {
                        conns.push(None);
                        conns.len() - 1
                    }
                };
                conns[slot] = Some(conn);
                if poller.register(fd, slot as u64, Interest::Read).is_err() {
                    conns[slot] = None;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return false,
        }
    }
}

fn close(poller: &mut Poller, conns: &mut [Option<Conn>], slot: usize) {
    if let Some(conn) = conns[slot].take() {
        let _ = poller.deregister(conn.stream.as_raw_fd());
    }
}

/// After an I/O pass left the connection alive, make sure the poller
/// watches the direction it is waiting on.
fn settle_interest(poller: &mut Poller, conns: &[Option<Conn>], slot: usize) {
    if let Some(conn) = conns[slot].as_ref() {
        let interest = match conn.phase {
            Phase::Writing => Interest::Write,
            _ => Interest::Read,
        };
        let _ = poller.modify(conn.stream.as_raw_fd(), slot as u64, interest);
    }
}

/// Runs the reactor until a drain completes: accepts, parses, routes,
/// and writes on one thread; job execution stays on the worker pool.
pub(crate) fn event_loop(listener: &TcpListener, config: &ServerConfig, shared: &Shared) {
    let mut poller = match Poller::new() {
        Ok(p) => p,
        Err(_) => {
            shared.begin_drain();
            return;
        }
    };
    if poller
        .register(listener.as_raw_fd(), LISTENER_KEY, Interest::Read)
        .is_err()
    {
        shared.begin_drain();
        return;
    }
    let mut conns: Vec<Option<Conn>> = Vec::new();
    let mut events: Vec<Event> = Vec::new();
    let mut accepting = true;
    loop {
        if shared.drained() {
            if accepting {
                let _ = poller.deregister(listener.as_raw_fd());
                accepting = false;
            }
            if conns.iter().all(|c| c.is_none()) {
                break;
            }
        }
        // Wait no longer than the soonest connection deadline (or one
        // tick, so a drain initiated elsewhere is noticed).
        let now = Instant::now();
        let mut timeout = TICK;
        for conn in conns.iter().flatten() {
            if !matches!(conn.phase, Phase::Writing) {
                timeout = timeout.min(conn.deadline.saturating_duration_since(now));
            }
        }
        if poller.wait(&mut events, Some(timeout)).is_err() {
            std::thread::sleep(Duration::from_millis(5));
            continue;
        }
        for &ev in &events {
            if ev.key == LISTENER_KEY {
                if accepting && !accept_all(listener, config, &mut poller, &mut conns) {
                    // Listener died: drain what was accepted and exit.
                    shared.begin_drain();
                    let _ = poller.deregister(listener.as_raw_fd());
                    accepting = false;
                }
                continue;
            }
            let slot = ev.key as usize;
            let Some(conn) = conns.get_mut(slot).and_then(|c| c.as_mut()) else {
                continue;
            };
            let next = match conn.phase {
                Phase::Writing => {
                    if ev.writable || ev.hangup {
                        conn.flush()
                    } else {
                        Next::Keep
                    }
                }
                Phase::Reading => conn.on_reading(shared, config),
                Phase::DrainingBody { .. } => conn.on_draining(shared, config),
            };
            match next {
                Next::Close => close(&mut poller, &mut conns, slot),
                Next::Keep => settle_interest(&mut poller, &conns, slot),
            }
        }
        // Deadline sweep: time out requests that stopped making progress.
        let now = Instant::now();
        for slot in 0..conns.len() {
            let Some(conn) = conns[slot].as_mut() else {
                continue;
            };
            if matches!(conn.phase, Phase::Writing) || now < conn.deadline {
                continue;
            }
            match conn.on_deadline(shared) {
                Next::Close => close(&mut poller, &mut conns, slot),
                Next::Keep => settle_interest(&mut poller, &conns, slot),
            }
        }
    }
}
