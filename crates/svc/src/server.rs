//! The campaign service: a bounded job queue feeding a fixed worker
//! pool, fronted by a single-threaded non-blocking HTTP/1.1 reactor
//! (see the private `nio` module).
//!
//! # Endpoints
//!
//! | Route | Method | Purpose |
//! |---|---|---|
//! | `/v1/campaigns` | POST | submit a campaign config, get `202` + job id |
//! | `/v1/compare` | POST | submit a cross-scheme compare config, get `202` + job id |
//! | `/v1/crashck` | POST | submit a crash-consistency sweep config, get `202` + job id |
//! | `/v1/blocks` | POST | submit a block-range shard of a job (fleet workers) |
//! | `/v1/jobs/{id}` | GET | job status (`queued`/`running`/`done`/`failed`) |
//! | `/v1/jobs/{id}/result` | GET | the result JSON, byte-identical to `soteria campaign --json` |
//! | `/v1/jobs/{id}/trace` | GET | the NDJSON trace, byte-identical to `--trace` |
//! | `/v1/shutdown` | POST | begin a graceful drain |
//! | `/healthz` | GET | liveness probe |
//! | `/metrics` | GET | Prometheus text exposition |
//!
//! # Backpressure and drain
//!
//! The queue holds at most `queue_capacity` jobs; a submit against a
//! full queue is rejected with `429` and a `Retry-After` header — jobs
//! are never silently dropped. A drain (via `POST /v1/shutdown` or
//! [`ServerHandle::shutdown`]) stops new submissions with `503`, lets
//! the workers finish every queued and in-flight job, keeps read-only
//! endpoints available meanwhile, and then closes the listener.

use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Duration;

use soteria_faultsim::{
    blocks_spec_from_json, compare_config_from_json, config_from_json, crashck_config_from_json,
    run_spec, JobSpec,
};
use soteria_rt::json::Json;
use soteria_rt::obs::Metrics;

use crate::error::SvcError;
use crate::http::{ReadLimits, Request};

/// Tunables for [`Server::bind`]. The defaults suit tests and small
/// deployments; `soteria serve` exposes them as flags.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Campaign worker threads (each runs one job at a time).
    pub workers: usize,
    /// Maximum queued (not yet running) jobs before submits get `429`.
    pub queue_capacity: usize,
    /// Seconds suggested in the `Retry-After` header on `429`.
    pub retry_after_secs: u64,
    /// Per-connection read timeout before a `408`.
    pub read_timeout: Duration,
    /// Size limits for request heads and bodies (`413` beyond them).
    pub limits: ReadLimits,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_capacity: 8,
            retry_after_secs: 1,
            read_timeout: Duration::from_secs(5),
            limits: ReadLimits::default(),
        }
    }
}

/// Where a job is in its lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Accepted and waiting in the queue.
    Queued,
    /// Claimed by a worker and executing.
    Running,
    /// Finished; result and trace are servable.
    Done,
    /// The campaign panicked; `error` in the status body says why.
    Failed,
}

impl JobState {
    /// The lowercase wire name used in status bodies.
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
        }
    }
}

struct Job {
    spec: JobSpec,
    state: JobState,
    /// `(result_json, ndjson)` — the artifact bytes [`run_spec`] emitted.
    output: Option<(String, String)>,
    error: Option<String>,
}

pub(crate) struct State {
    queue: VecDeque<usize>,
    jobs: Vec<Job>,
    in_flight: usize,
    draining: bool,
    pub(crate) metrics: Metrics,
}

pub(crate) struct Shared {
    pub(crate) state: Mutex<State>,
    job_ready: Condvar,
}

impl Shared {
    pub(crate) fn drained(&self) -> bool {
        let st = self.state.lock().unwrap();
        st.draining && st.queue.is_empty() && st.in_flight == 0
    }

    pub(crate) fn begin_drain(&self) {
        self.state.lock().unwrap().draining = true;
        self.job_ready.notify_all();
    }
}

/// A cloneable view of a running (or finished) server, for shutdown and
/// post-drain inspection from tests and the CLI.
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Begins a graceful drain: stop accepting jobs, finish the rest,
    /// then [`Server::serve`] returns.
    pub fn shutdown(&self) {
        self.shared.begin_drain();
    }

    /// The state of job `id`, if it exists.
    pub fn job_state(&self, id: usize) -> Option<JobState> {
        self.shared
            .state
            .lock()
            .unwrap()
            .jobs
            .get(id)
            .map(|j| j.state)
    }

    /// How many jobs have ever been accepted.
    pub fn job_count(&self) -> usize {
        self.shared.state.lock().unwrap().jobs.len()
    }

    /// Jobs accepted but not yet claimed by a worker.
    pub fn queue_depth(&self) -> usize {
        self.shared.state.lock().unwrap().queue.len()
    }

    /// Whether a drain has been requested and all work is finished.
    pub fn is_drained(&self) -> bool {
        self.shared.drained()
    }
}

/// The campaign service. [`Server::bind`] reserves the port; nothing
/// runs until [`Server::serve`].
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    config: ServerConfig,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listener (use port 0 for an ephemeral port) without
    /// starting any threads.
    pub fn bind<A: ToSocketAddrs>(addr: A, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        Ok(Server {
            listener,
            local_addr,
            config,
            shared: Arc::new(Shared {
                state: Mutex::new(State {
                    queue: VecDeque::new(),
                    jobs: Vec::new(),
                    in_flight: 0,
                    draining: false,
                    metrics: Metrics::enabled(),
                }),
                job_ready: Condvar::new(),
            }),
        })
    }

    /// The bound address (resolves port 0 to the real port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A handle for shutdown and inspection, usable from other threads
    /// and still valid after [`Server::serve`] returns.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Runs the reactor and worker pool until a drain completes: every
    /// accepted job reaches `done`/`failed`, every open connection
    /// settles, then the listener closes and this returns.
    pub fn serve(self) {
        let shared = &*self.shared;
        let config = &self.config;
        thread::scope(|s| {
            for _ in 0..config.workers.max(1) {
                s.spawn(move || worker_loop(shared));
            }
            crate::nio::event_loop(&self.listener, config, shared);
            // Release any worker parked on the condvar.
            shared.job_ready.notify_all();
        });
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let (id, spec) = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if let Some(id) = st.queue.pop_front() {
                    st.jobs[id].state = JobState::Running;
                    st.in_flight += 1;
                    break (id, st.jobs[id].spec.clone());
                }
                if st.draining {
                    return;
                }
                st = shared.job_ready.wait(st).unwrap();
            }
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| run_spec(&spec)));
        let mut st = shared.state.lock().unwrap();
        st.in_flight -= 1;
        match outcome {
            Ok(output) => {
                st.jobs[id].output = Some(output);
                st.jobs[id].state = JobState::Done;
                st.metrics.inc("jobs_completed", 1);
            }
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "job panicked".into());
                st.jobs[id].error = Some(msg);
                st.jobs[id].state = JobState::Failed;
                st.metrics.inc("jobs_failed", 1);
            }
        }
        drop(st);
        // Wake peers: idle workers re-check the drain condition, and the
        // accept loop's next poll sees `drained()`.
        shared.job_ready.notify_all();
    }
}

/// The endpoint label used in per-endpoint latency metric names. The
/// `Metrics` registry keys on `&'static str`, so the Prometheus label
/// pair is baked into the name and split back out at render time.
pub(crate) fn latency_metric(path: &str) -> &'static str {
    if path == "/healthz" {
        "latency_ns{endpoint=\"healthz\"}"
    } else if path == "/metrics" {
        "latency_ns{endpoint=\"metrics\"}"
    } else if path == "/v1/campaigns" {
        "latency_ns{endpoint=\"campaigns\"}"
    } else if path == "/v1/compare" {
        "latency_ns{endpoint=\"compare\"}"
    } else if path == "/v1/crashck" {
        "latency_ns{endpoint=\"crashck\"}"
    } else if path == "/v1/blocks" {
        "latency_ns{endpoint=\"blocks\"}"
    } else if path.starts_with("/v1/jobs/") {
        "latency_ns{endpoint=\"jobs\"}"
    } else if path == "/v1/shutdown" {
        "latency_ns{endpoint=\"shutdown\"}"
    } else {
        "latency_ns{endpoint=\"other\"}"
    }
}

pub(crate) struct Response {
    pub(crate) status: u16,
    pub(crate) reason: &'static str,
    pub(crate) content_type: &'static str,
    pub(crate) extra: Vec<(&'static str, String)>,
    pub(crate) body: Vec<u8>,
}

impl Response {
    fn json(status: u16, reason: &'static str, value: Json) -> Response {
        Response {
            status,
            reason,
            content_type: "application/json",
            extra: Vec::new(),
            body: value.to_pretty_string().into_bytes(),
        }
    }
}

pub(crate) fn route(
    shared: &Shared,
    config: &ServerConfig,
    req: &Request,
) -> Result<Response, SvcError> {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => Ok(Response {
            status: 200,
            reason: "OK",
            content_type: "text/plain; charset=utf-8",
            extra: Vec::new(),
            body: b"ok\n".to_vec(),
        }),
        (_, "/healthz") => Err(method_not_allowed(req, "GET")),
        ("GET", "/metrics") => Ok(metrics_response(shared)),
        (_, "/metrics") => Err(method_not_allowed(req, "GET")),
        ("POST", "/v1/campaigns") => submit_job(shared, config, req),
        (_, "/v1/campaigns") => Err(method_not_allowed(req, "POST")),
        ("POST", "/v1/compare") => submit_job(shared, config, req),
        (_, "/v1/compare") => Err(method_not_allowed(req, "POST")),
        ("POST", "/v1/crashck") => submit_job(shared, config, req),
        (_, "/v1/crashck") => Err(method_not_allowed(req, "POST")),
        ("POST", "/v1/blocks") => submit_job(shared, config, req),
        (_, "/v1/blocks") => Err(method_not_allowed(req, "POST")),
        ("POST", "/v1/shutdown") => {
            shared.begin_drain();
            Ok(Response::json(
                202,
                "Accepted",
                Json::Obj(vec![("status".into(), Json::Str("draining".into()))]),
            ))
        }
        (_, "/v1/shutdown") => Err(method_not_allowed(req, "POST")),
        ("GET", path) if path.starts_with("/v1/jobs/") => job_endpoint(shared, path),
        (_, path) if path.starts_with("/v1/jobs/") => Err(method_not_allowed(req, "GET")),
        (_, path) => Err(SvcError::NotFound(format!("no route for '{path}'"))),
    }
}

fn method_not_allowed(req: &Request, allowed: &'static str) -> SvcError {
    SvcError::MethodNotAllowed {
        method: req.method.clone(),
        allowed,
    }
}

fn submit_job(
    shared: &Shared,
    config: &ServerConfig,
    req: &Request,
) -> Result<Response, SvcError> {
    let kind = match req.path.as_str() {
        "/v1/compare" => "compare",
        "/v1/crashck" => "crashck",
        "/v1/blocks" => "blocks",
        _ => "campaign",
    };
    let text = std::str::from_utf8(&req.body)
        .map_err(|_| SvcError::BadRequest(format!("{kind} config must be UTF-8 JSON")))?;
    if text.trim().is_empty() {
        return Err(SvcError::BadRequest(format!(
            "missing body: POST a JSON {kind} config (e.g. '{{}}' for defaults)"
        )));
    }
    let body = Json::parse(text)
        .map_err(|e| SvcError::BadRequest(format!("config is not valid JSON: {e}")))?;
    let spec = match kind {
        "compare" => JobSpec::Compare(compare_config_from_json(&body).map_err(SvcError::BadRequest)?),
        "crashck" => JobSpec::Crashck(crashck_config_from_json(&body).map_err(SvcError::BadRequest)?),
        "blocks" => blocks_spec_from_json(&body).map_err(SvcError::BadRequest)?,
        _ => JobSpec::Campaign(config_from_json(&body).map_err(SvcError::BadRequest)?),
    };
    let mut st = shared.state.lock().unwrap();
    if st.draining {
        return Err(SvcError::Draining);
    }
    if st.queue.len() >= config.queue_capacity {
        return Err(SvcError::QueueFull {
            retry_after_secs: config.retry_after_secs,
        });
    }
    let id = st.jobs.len();
    st.jobs.push(Job {
        spec,
        state: JobState::Queued,
        output: None,
        error: None,
    });
    st.queue.push_back(id);
    let depth = st.queue.len() as u64;
    st.metrics.inc("jobs_submitted", 1);
    st.metrics.observe("queue_depth_at_submit", depth);
    drop(st);
    shared.job_ready.notify_one();
    Ok(Response::json(
        202,
        "Accepted",
        Json::Obj(vec![
            ("job".into(), Json::Num(id as f64)),
            ("status".into(), Json::Str("queued".into())),
            ("result".into(), Json::Str(format!("/v1/jobs/{id}/result"))),
            ("trace".into(), Json::Str(format!("/v1/jobs/{id}/trace"))),
        ]),
    ))
}

fn job_endpoint(shared: &Shared, path: &str) -> Result<Response, SvcError> {
    let rest = &path["/v1/jobs/".len()..];
    let (id_text, tail) = match rest.split_once('/') {
        Some((id, tail)) => (id, Some(tail)),
        None => (rest, None),
    };
    let id: usize = id_text.parse().map_err(|_| {
        SvcError::BadRequest(format!("job id must be a non-negative integer, got '{id_text}'"))
    })?;
    let st = shared.state.lock().unwrap();
    let job = st
        .jobs
        .get(id)
        .ok_or_else(|| SvcError::NotFound(format!("job {id}")))?;
    match tail {
        None => {
            let mut fields = vec![
                ("job".into(), Json::Num(id as f64)),
                ("status".into(), Json::Str(job.state.as_str().into())),
            ];
            if let Some(err) = &job.error {
                fields.push(("error".into(), Json::Str(err.clone())));
            }
            Ok(Response::json(200, "OK", Json::Obj(fields)))
        }
        Some(artifact @ ("result" | "trace")) => {
            let output = job.output.as_ref().ok_or_else(|| {
                SvcError::NotFound(format!(
                    "job {id} has no {artifact} yet (status: {})",
                    job.state.as_str()
                ))
            })?;
            // Served bytes come verbatim from `run_spec`, so they match
            // what `soteria campaign`/`soteria compare` write to disk.
            let (result_json, ndjson) = output;
            Ok(if artifact == "result" {
                Response {
                    status: 200,
                    reason: "OK",
                    content_type: "application/json",
                    extra: Vec::new(),
                    body: result_json.clone().into_bytes(),
                }
            } else {
                Response {
                    status: 200,
                    reason: "OK",
                    content_type: "application/x-ndjson",
                    extra: Vec::new(),
                    body: ndjson.clone().into_bytes(),
                }
            })
        }
        Some(other) => Err(SvcError::NotFound(format!(
            "job {id} has no artifact '{other}' (use result or trace)"
        ))),
    }
}

fn metrics_response(shared: &Shared) -> Response {
    let st = shared.state.lock().unwrap();
    let mut text = st.metrics.to_prometheus("soteria_svc");
    for (name, value) in [
        ("queue_depth", st.queue.len() as u64),
        ("in_flight", st.in_flight as u64),
        ("jobs_total", st.jobs.len() as u64),
        ("draining", st.draining as u64),
    ] {
        text.push_str(&format!(
            "# TYPE soteria_svc_{name} gauge\nsoteria_svc_{name} {value}\n"
        ));
    }
    Response {
        status: 200,
        reason: "OK",
        content_type: "text/plain; version=0.0.4",
        extra: Vec::new(),
        body: text.into_bytes(),
    }
}
