#![warn(missing_docs)]

//! The Soteria campaign service: campaigns as jobs over HTTP.
//!
//! A from-scratch HTTP/1.1 stack on [`std::net`] — the workspace's
//! hermetic-build policy means no hyper, no tokio, no serde. The server
//! ([`Server`]) accepts campaign configs as JSON, runs them on a fixed
//! worker pool behind a bounded queue, and serves results and NDJSON
//! traces whose bytes are **identical** to what `soteria campaign
//! --json/--trace` writes for the same seed (both front-ends share
//! `soteria_faultsim::job`).
//!
//! Load is shed, never dropped: a full queue answers `429` with
//! `Retry-After`, oversized requests get `413`, stalled ones `408`, and
//! a drain (`POST /v1/shutdown`) finishes every accepted job before the
//! listener closes.
//!
//! The crate also ships the matching blocking [`client`] and a
//! [`loadgen`] burst generator, both used by the CLI and the
//! integration tests.
//!
//! ```no_run
//! use soteria_svc::{client, Server, ServerConfig};
//!
//! let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
//! let addr = server.local_addr();
//! let handle = server.handle();
//! std::thread::spawn(move || server.serve());
//! let health = client::get(addr, "/healthz").unwrap();
//! assert_eq!(health.status, 200);
//! handle.shutdown();
//! ```

pub mod client;
pub mod error;
pub mod fleet;
pub mod http;
pub mod loadgen;
mod nio;
pub mod server;

pub use error::SvcError;
pub use fleet::{register_worker, BlockScheduler, Coordinator, FleetConfig, Lease};
pub use loadgen::{submit_burst, LoadReport, SubmitOutcome};
pub use server::{JobState, Server, ServerConfig, ServerHandle};
