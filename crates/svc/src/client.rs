//! A blocking HTTP/1.1 client for the campaign service, used by the
//! CLI (`soteria submit` / `soteria http`), the load generator, and the
//! integration tests. One request per connection, mirroring the
//! server's `Connection: close` policy.

use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use soteria_rt::json::Json;

/// Connection behaviour for [`request_with`]: how long to wait for a
/// connect and for response bytes. The fleet coordinator tightens these
/// so a dead worker is detected in seconds, not TCP-stack minutes.
#[derive(Clone, Copy, Debug)]
pub struct ClientConfig {
    /// Maximum time to establish the TCP connection.
    pub connect_timeout: Duration,
    /// Maximum time to wait on any single read or write.
    pub read_timeout: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            connect_timeout: Duration::from_secs(5),
            read_timeout: Duration::from_secs(30),
        }
    }
}

/// Runs `op` up to `attempts` times, sleeping `backoff` (doubled each
/// retry, capped at two seconds) between failures. Returns the first
/// success or the last error — the retry helper behind the fleet
/// coordinator's worker RPCs.
///
/// # Errors
///
/// The last attempt's error, once every attempt has failed.
pub fn retrying<T>(
    attempts: u32,
    backoff: Duration,
    mut op: impl FnMut() -> io::Result<T>,
) -> io::Result<T> {
    let attempts = attempts.max(1);
    let mut delay = backoff;
    let mut last: Option<io::Error> = None;
    for attempt in 0..attempts {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) => last = Some(e),
        }
        if attempt + 1 < attempts {
            std::thread::sleep(delay);
            delay = (delay * 2).min(Duration::from_secs(2));
        }
    }
    Err(last.unwrap_or_else(|| io::Error::other("no attempts made")))
}

/// A parsed response: status line, lower-cased headers, raw body.
#[derive(Clone, Debug)]
pub struct HttpResponse {
    /// The numeric status code.
    pub status: u16,
    /// The reason phrase (informational only).
    pub reason: String,
    /// Header `(name, value)` pairs; names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The raw response body.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// The first header with the given (lower-case) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text (lossy: this is for display and tests).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// The body parsed as JSON.
    ///
    /// # Errors
    ///
    /// Returns a one-line message when the body is not valid JSON.
    pub fn json(&self) -> Result<Json, String> {
        Json::parse(&self.text()).map_err(|e| format!("response body is not valid JSON: {e}"))
    }
}

/// Sends one request and reads the full response.
///
/// `body` is `(content_type, bytes)`; pass `None` for bodyless methods.
///
/// # Errors
///
/// Any socket or framing failure surfaces as [`io::Error`].
pub fn request<A: ToSocketAddrs>(
    addr: A,
    method: &str,
    path: &str,
    body: Option<(&str, &[u8])>,
) -> io::Result<HttpResponse> {
    request_with(addr, method, path, body, &ClientConfig::default())
}

/// [`request`] with explicit connect/read timeouts.
///
/// # Errors
///
/// Any socket or framing failure surfaces as [`io::Error`]; a connect
/// slower than `config.connect_timeout` or a read stalled longer than
/// `config.read_timeout` fails instead of hanging.
pub fn request_with<A: ToSocketAddrs>(
    addr: A,
    method: &str,
    path: &str,
    body: Option<(&str, &[u8])>,
    config: &ClientConfig,
) -> io::Result<HttpResponse> {
    let mut last: Option<io::Error> = None;
    let mut stream = None;
    for candidate in addr.to_socket_addrs()? {
        match TcpStream::connect_timeout(&candidate, config.connect_timeout) {
            Ok(s) => {
                stream = Some(s);
                break;
            }
            Err(e) => last = Some(e),
        }
    }
    let mut stream = stream.ok_or_else(|| {
        last.unwrap_or_else(|| {
            io::Error::new(io::ErrorKind::AddrNotAvailable, "address resolved to nothing")
        })
    })?;
    stream.set_read_timeout(Some(config.read_timeout))?;
    stream.set_write_timeout(Some(config.read_timeout))?;
    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: soteria\r\nConnection: close\r\n");
    if let Some((content_type, bytes)) = body {
        head.push_str(&format!(
            "Content-Type: {content_type}\r\nContent-Length: {}\r\n",
            bytes.len()
        ));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    if let Some((_, bytes)) = body {
        stream.write_all(bytes)?;
    }
    stream.flush()?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
}

/// `GET path`.
pub fn get<A: ToSocketAddrs>(addr: A, path: &str) -> io::Result<HttpResponse> {
    request(addr, "GET", path, None)
}

/// `POST path` with a JSON body.
pub fn post_json<A: ToSocketAddrs>(addr: A, path: &str, body: &Json) -> io::Result<HttpResponse> {
    let bytes = body.to_string().into_bytes();
    request(addr, "POST", path, Some(("application/json", &bytes)))
}

fn bad(detail: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, detail)
}

fn parse_response(raw: &[u8]) -> io::Result<HttpResponse> {
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| bad("response has no header/body separator".into()))?;
    let head = std::str::from_utf8(&raw[..split])
        .map_err(|_| bad("response head is not valid UTF-8".into()))?;
    let body = raw[split + 4..].to_vec();
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let mut parts = status_line.splitn(3, ' ');
    let (_version, status, reason) = (
        parts.next().unwrap_or(""),
        parts.next().unwrap_or(""),
        parts.next().unwrap_or("").to_string(),
    );
    let status: u16 = status
        .parse()
        .map_err(|_| bad(format!("malformed status line '{status_line}'")))?;
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| bad(format!("malformed response header '{line}'")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let response = HttpResponse {
        status,
        reason,
        headers,
        body,
    };
    if let Some(len) = response.header("content-length") {
        let len: usize = len
            .parse()
            .map_err(|_| bad(format!("invalid response Content-Length '{len}'")))?;
        if response.body.len() != len {
            return Err(bad(format!(
                "response body truncated: got {} of {len} bytes",
                response.body.len()
            )));
        }
    }
    Ok(response)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_simple_response() {
        let raw = b"HTTP/1.1 202 Accepted\r\nContent-Type: application/json\r\nContent-Length: 2\r\nRetry-After: 1\r\n\r\n{}";
        let r = parse_response(raw).unwrap();
        assert_eq!(r.status, 202);
        assert_eq!(r.reason, "Accepted");
        assert_eq!(r.header("retry-after"), Some("1"));
        assert_eq!(r.text(), "{}");
    }

    #[test]
    fn truncated_body_is_an_error() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\nok";
        assert!(parse_response(raw).is_err());
    }
}
