//! End-to-end tests for the campaign service: backpressure under a
//! concurrent burst, graceful drain, HTTP-vs-CLI byte identity, pinned
//! error strings, and a parse of the Prometheus exposition.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use soteria_faultsim::{compare_config_from_json, config_from_json, run_compare, run_job};
use soteria_rt::json::Json;
use soteria_svc::{client, submit_burst, JobState, Server, ServerConfig, ServerHandle};

/// Boots a server on an ephemeral port; returns its address, handle,
/// and the serve-thread join handle (joins when a drain completes).
fn boot(config: ServerConfig) -> (SocketAddr, ServerHandle, std::thread::JoinHandle<()>) {
    let server = Server::bind("127.0.0.1:0", config).expect("bind ephemeral port");
    let addr = server.local_addr();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.serve());
    (addr, handle, join)
}

fn wait_until(what: &str, timeout: Duration, mut cond: impl FnMut() -> bool) {
    let start = Instant::now();
    while !cond() {
        assert!(start.elapsed() < timeout, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// A campaign slow enough (~300ms debug) to hold the queue full while a
/// 16-client burst lands, but small enough to drain in seconds.
fn slow_campaign() -> Json {
    Json::parse(
        r#"{"fit": 1500, "iterations": 4000, "capacity_bytes": 67108864,
            "threads": 1, "seed": 7}"#,
    )
    .unwrap()
}

/// The ISSUE's acceptance scenario: pool of 2, queue of 4, 16 concurrent
/// clients. Only 202/429 are observed, at least one of each, no job is
/// lost or duplicated, every accepted job completes, and a drain
/// finishes them all before `serve` returns.
#[test]
fn backpressure_burst_then_graceful_drain() {
    let (addr, handle, join) = boot(ServerConfig {
        workers: 2,
        queue_capacity: 4,
        ..ServerConfig::default()
    });
    let report = submit_burst(addr, &slow_campaign(), 16);

    for outcome in &report.outcomes {
        assert!(
            outcome.status == 202 || outcome.status == 429,
            "burst must only see 202 or 429, got {}",
            outcome.status
        );
        if outcome.status == 429 {
            assert_eq!(outcome.retry_after_secs, Some(1), "429 carries Retry-After");
        }
    }
    let accepted = report.accepted_jobs();
    assert!(!accepted.is_empty(), "some submissions must be accepted");
    assert!(report.rejected() >= 1, "a full queue must shed at least one");
    assert_eq!(accepted.len() + report.rejected(), 16);

    // No lost or duplicated jobs: the accepted ids are exactly
    // {0, …, n-1} and the server tracked precisely that many.
    let mut ids = accepted.clone();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), accepted.len(), "job ids must be unique");
    assert_eq!(ids, (0..accepted.len()).collect::<Vec<_>>());
    assert_eq!(handle.job_count(), accepted.len());

    // Begin the drain over HTTP while jobs are still running; read-only
    // endpoints stay up, and new submissions are refused with 503.
    let shutdown = client::request(addr, "POST", "/v1/shutdown", None).unwrap();
    assert_eq!(shutdown.status, 202);
    let refused = client::post_json(addr, "/v1/campaigns", &slow_campaign()).unwrap();
    assert_eq!(refused.status, 503);
    assert_eq!(
        refused.json().unwrap().get("error").unwrap().as_str().unwrap(),
        "server is draining: finishing accepted jobs, not taking new ones"
    );
    assert_eq!(client::get(addr, "/healthz").unwrap().status, 200);

    join.join().expect("serve thread");
    assert!(handle.is_drained());
    assert_eq!(handle.queue_depth(), 0);
    for id in &accepted {
        assert_eq!(
            handle.job_state(*id),
            Some(JobState::Done),
            "drain must finish job {id}"
        );
    }
}

/// The determinism contract: the bytes served over HTTP for a job are
/// identical to what the CLI path (`run_job` on the same parsed config)
/// writes to disk.
#[test]
fn http_artifacts_match_cli_bytes() {
    let body = Json::parse(
        r#"{"fit": 1500, "iterations": 128, "capacity_bytes": 67108864,
            "seed": "0x5eed", "threads": 2}"#,
    )
    .unwrap();
    let (addr, handle, join) = boot(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    });

    let accepted = client::post_json(addr, "/v1/campaigns", &body).unwrap();
    assert_eq!(accepted.status, 202);
    let id = accepted.json().unwrap().get("job").unwrap().as_f64().unwrap() as usize;
    wait_until("job to finish", Duration::from_secs(30), || {
        handle.job_state(id) == Some(JobState::Done)
    });

    let status = client::get(addr, &format!("/v1/jobs/{id}")).unwrap();
    assert_eq!(status.status, 200);
    assert_eq!(
        status.json().unwrap().get("status").unwrap().as_str().unwrap(),
        "done"
    );

    let result = client::get(addr, &format!("/v1/jobs/{id}/result")).unwrap();
    let trace = client::get(addr, &format!("/v1/jobs/{id}/trace")).unwrap();
    assert_eq!(result.status, 200);
    assert_eq!(result.header("content-type"), Some("application/json"));
    assert_eq!(trace.status, 200);
    assert_eq!(trace.header("content-type"), Some("application/x-ndjson"));

    // The CLI path: same JSON → same config → same runner.
    let expected = run_job(&config_from_json(&body).unwrap());
    assert_eq!(result.body, expected.result_json.as_bytes(), "result bytes");
    assert_eq!(trace.body, expected.trace_ndjson.as_bytes(), "trace bytes");

    handle.shutdown();
    join.join().expect("serve thread");
}

/// The same determinism contract for the compare matrix: bytes served
/// from a `POST /v1/compare` job match `run_compare` on the same parsed
/// config — which `soteria compare --json/--ndjson` writes to disk.
#[test]
fn compare_artifacts_match_cli_bytes() {
    let body = Json::parse(
        r#"{"fit": 1500, "iterations": 96, "trace_ops": 256,
            "seed": "0x5eed", "threads": 2}"#,
    )
    .unwrap();
    let (addr, handle, join) = boot(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    });

    let accepted = client::post_json(addr, "/v1/compare", &body).unwrap();
    assert_eq!(accepted.status, 202);
    let id = accepted.json().unwrap().get("job").unwrap().as_f64().unwrap() as usize;
    wait_until("compare job to finish", Duration::from_secs(60), || {
        handle.job_state(id) == Some(JobState::Done)
    });

    let result = client::get(addr, &format!("/v1/jobs/{id}/result")).unwrap();
    let trace = client::get(addr, &format!("/v1/jobs/{id}/trace")).unwrap();
    assert_eq!(result.status, 200);
    assert_eq!(trace.status, 200);

    let expected = run_compare(&compare_config_from_json(&body).unwrap());
    assert_eq!(result.body, expected.result_json.as_bytes(), "result bytes");
    assert_eq!(trace.body, expected.ndjson.as_bytes(), "ndjson bytes");
    assert!(expected.rows.len() >= 6, "matrix must cover six+ schemes");

    // A bad compare config is rejected with the parser's message.
    let bad = client::post_json(
        addr,
        "/v1/compare",
        &Json::parse(r#"{"ecc": "double"}"#).unwrap(),
    )
    .unwrap();
    assert_eq!(bad.status, 400);

    handle.shutdown();
    join.join().expect("serve thread");
}

/// Every client-visible failure returns the pinned, actionable one-line
/// message from `SvcError`'s Display impl.
#[test]
fn error_paths_return_pinned_messages() {
    let (addr, handle, join) = boot(ServerConfig {
        workers: 1,
        read_timeout: Duration::from_millis(200),
        limits: soteria_svc::http::ReadLimits {
            max_head_bytes: 16 * 1024,
            max_body_bytes: 256,
        },
        ..ServerConfig::default()
    });
    let error_of = |resp: &client::HttpResponse| {
        resp.json()
            .unwrap()
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string()
    };

    let resp = client::get(addr, "/nope").unwrap();
    assert_eq!(resp.status, 404);
    assert_eq!(error_of(&resp), "not found: no route for '/nope'");

    let resp = client::request(addr, "PUT", "/healthz", None).unwrap();
    assert_eq!(resp.status, 405);
    assert_eq!(error_of(&resp), "method PUT not allowed here (use GET)");

    let resp = client::request(
        addr,
        "POST",
        "/v1/campaigns",
        Some(("application/json", b"{nope".as_slice())),
    )
    .unwrap();
    assert_eq!(resp.status, 400);
    assert!(
        error_of(&resp).starts_with("bad request: config is not valid JSON:"),
        "got: {}",
        error_of(&resp)
    );

    let resp = client::post_json(
        addr,
        "/v1/campaigns",
        &Json::parse(r#"{"iters": 5}"#).unwrap(),
    )
    .unwrap();
    assert_eq!(resp.status, 400);
    assert_eq!(
        error_of(&resp),
        "bad request: unknown field 'iters' (fit, iterations, ecc, tree, scrub_hours, seed, \
         threads, capacity_bytes)"
    );

    let resp = client::get(addr, "/v1/jobs/99").unwrap();
    assert_eq!(resp.status, 404);
    assert_eq!(error_of(&resp), "not found: job 99");

    let resp = client::get(addr, "/v1/jobs/abc").unwrap();
    assert_eq!(resp.status, 400);
    assert_eq!(
        error_of(&resp),
        "bad request: job id must be a non-negative integer, got 'abc'"
    );

    let oversized = vec![b' '; 300];
    let resp = client::request(
        addr,
        "POST",
        "/v1/campaigns",
        Some(("application/json", oversized.as_slice())),
    )
    .unwrap();
    assert_eq!(resp.status, 413);
    assert_eq!(error_of(&resp), "request body exceeds the 256-byte limit");

    // A stalled request: headers promise a body that never arrives.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(b"POST /v1/campaigns HTTP/1.1\r\nContent-Length: 10\r\n\r\n")
        .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    assert!(raw.starts_with("HTTP/1.1 408 Request Timeout"), "got: {raw}");
    assert!(
        raw.contains("request timed out: send the complete request within the server's read timeout"),
        "got: {raw}"
    );

    handle.shutdown();
    join.join().expect("serve thread");
}

/// `/metrics` exposes queue depth, in-flight, request totals, the 429
/// counter, and per-endpoint latency histograms — and the whole payload
/// parses as Prometheus text exposition with cumulative buckets.
#[test]
fn metrics_expose_and_parse() {
    let (addr, handle, join) = boot(ServerConfig {
        workers: 1,
        queue_capacity: 1,
        ..ServerConfig::default()
    });

    // Traffic: health checks, one running job, one queued, one shed.
    for _ in 0..3 {
        assert_eq!(client::get(addr, "/healthz").unwrap().status, 200);
    }
    assert_eq!(
        client::post_json(addr, "/v1/campaigns", &slow_campaign()).unwrap().status,
        202
    );
    wait_until("worker to claim job 0", Duration::from_secs(10), || {
        handle.job_state(0) == Some(JobState::Running)
    });
    assert_eq!(
        client::post_json(addr, "/v1/campaigns", &slow_campaign()).unwrap().status,
        202
    );
    let shed = client::post_json(addr, "/v1/campaigns", &slow_campaign()).unwrap();
    assert_eq!(shed.status, 429);
    assert_eq!(
        shed.json().unwrap().get("error").unwrap().as_str().unwrap(),
        "job queue is full; retry after 1s (see Retry-After)"
    );

    let resp = client::get(addr, "/metrics").unwrap();
    assert_eq!(resp.status, 200);
    assert!(resp
        .header("content-type")
        .unwrap()
        .starts_with("text/plain"));
    let text = resp.text();

    // Every line is either a TYPE comment or `name[{labels}] value`.
    let mut samples: Vec<(String, f64)> = Vec::new();
    for line in text.lines() {
        if let Some(comment) = line.strip_prefix("# TYPE ") {
            let mut parts = comment.split(' ');
            let (name, kind) = (parts.next().unwrap(), parts.next().unwrap_or(""));
            assert!(name.starts_with("soteria_svc_"), "bad TYPE line: {line}");
            assert!(
                matches!(kind, "counter" | "histogram" | "gauge"),
                "bad TYPE kind: {line}"
            );
            continue;
        }
        let (series, value) = line.rsplit_once(' ').expect("sample line has a value");
        let value: f64 = value.parse().unwrap_or_else(|_| panic!("bad value: {line}"));
        assert!(value.is_finite(), "non-finite sample: {line}");
        samples.push((series.to_string(), value));
    }
    let get = |series: &str| -> f64 {
        samples
            .iter()
            .find(|(s, _)| s == series)
            .unwrap_or_else(|| panic!("missing series {series} in:\n{text}"))
            .1
    };

    // Gauges reflect the live state: one running, one queued.
    assert_eq!(get("soteria_svc_queue_depth"), 1.0);
    assert_eq!(get("soteria_svc_in_flight"), 1.0);
    assert_eq!(get("soteria_svc_jobs_total"), 2.0);
    // Counters: 3 health + 3 submits so far (the /metrics request itself
    // is counted after its response snapshot).
    assert_eq!(get("soteria_svc_requests_total"), 6.0);
    assert_eq!(get("soteria_svc_jobs_submitted"), 2.0);
    assert_eq!(get("soteria_svc_rejected{code=\"429\"}"), 1.0);
    // Per-endpoint latency histograms: 3 healthz observations, and
    // cumulative buckets must be monotone up to +Inf == _count.
    assert_eq!(
        get("soteria_svc_latency_ns_count{endpoint=\"healthz\"}"),
        3.0
    );
    assert_eq!(
        get("soteria_svc_latency_ns_bucket{endpoint=\"healthz\",le=\"+Inf\"}"),
        3.0
    );
    assert!(get("soteria_svc_latency_ns_sum{endpoint=\"healthz\"}") > 0.0);
    let mut last = 0.0;
    for (series, value) in &samples {
        if series.starts_with("soteria_svc_latency_ns_bucket{endpoint=\"campaigns\"") {
            assert!(*value >= last, "buckets must be cumulative: {series}");
            last = *value;
        }
    }
    assert_eq!(
        last,
        get("soteria_svc_latency_ns_count{endpoint=\"campaigns\"}")
    );

    handle.shutdown();
    join.join().expect("serve thread");
}
