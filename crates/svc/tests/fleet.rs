//! Fleet end-to-end: a coordinator sharding real jobs over in-process
//! worker servers must merge to **byte-identical** artifacts vs a
//! single-node run at the same seed — for every job kind, for any
//! worker count, and across worker failures (a registered-but-dead
//! address and a live worker killed mid-campaign).

use std::net::{SocketAddr, TcpListener};
use std::thread;
use std::time::Duration;

use soteria_faultsim::{
    compare_config_from_json, config_from_json, crashck_config_from_json, run_spec, JobSpec,
};
use soteria_rt::json::Json;
use soteria_svc::{fleet, Coordinator, FleetConfig, Server, ServerConfig, ServerHandle};

/// Boots a worker server on an ephemeral port.
fn boot_worker() -> (SocketAddr, ServerHandle, thread::JoinHandle<()>) {
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).expect("bind worker");
    let addr = server.local_addr();
    let handle = server.handle();
    let join = thread::spawn(move || server.serve());
    (addr, handle, join)
}

/// An address that accepts nothing: bound, resolved, then dropped.
fn dead_addr() -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind throwaway port");
    listener.local_addr().expect("throwaway addr")
}

fn fast_fleet_config(min_workers: usize, chunk_blocks: u64) -> FleetConfig {
    FleetConfig {
        min_workers,
        register_timeout: Duration::from_secs(10),
        chunk_blocks,
        poll_interval: Duration::from_millis(10),
        rpc_attempts: 2,
        rpc_backoff: Duration::from_millis(20),
        ..FleetConfig::default()
    }
}

/// Runs `kind`/`config_body` through a coordinator with the given
/// worker addresses (some may be dead) and returns the merged artifact.
fn run_fleet(
    kind: &str,
    config_body: &Json,
    worker_addrs: &[SocketAddr],
    config: FleetConfig,
    kill_mid_run: Option<ServerHandle>,
) -> (String, String) {
    let coordinator =
        Coordinator::bind("127.0.0.1:0", config).expect("bind coordinator control plane");
    let control = coordinator.local_addr();
    let kind = kind.to_string();
    let body = config_body.clone();
    let run = thread::spawn(move || coordinator.run(&kind, &body));
    for addr in worker_addrs {
        let id = fleet::register_worker(
            &control.to_string(),
            &addr.to_string(),
            10,
            Duration::from_millis(20),
            &Default::default(),
        )
        .expect("register worker");
        assert!(id < worker_addrs.len(), "worker ids are dense");
    }
    if let Some(handle) = kill_mid_run {
        thread::sleep(Duration::from_millis(40));
        handle.shutdown();
    }
    run.join()
        .expect("coordinator thread")
        .expect("fleet run must converge")
}

#[test]
fn fleet_campaign_is_byte_identical_to_single_node() {
    let body = Json::parse(r#"{"fit": 1500, "iterations": 192, "threads": 2, "seed": 42}"#).unwrap();
    let expected = run_spec(&JobSpec::Campaign(config_from_json(&body).unwrap()));

    let workers: Vec<_> = (0..3).map(|_| boot_worker()).collect();
    let addrs: Vec<_> = workers.iter().map(|(a, _, _)| *a).collect();
    let got = run_fleet("campaign", &body, &addrs, fast_fleet_config(3, 1), None);
    assert_eq!(got, expected, "3-worker campaign merge must match single-node bytes");

    for (_, handle, join) in workers {
        handle.shutdown();
        join.join().unwrap();
    }
}

#[test]
fn fleet_compare_and_crashck_are_byte_identical_to_single_node() {
    let compare_body = Json::parse(r#"{"fit": 1500, "iterations": 128, "seed": 9}"#).unwrap();
    let crashck_body = Json::parse(r#"{"seed": "0x50f3", "scripts_per_cell": 1}"#).unwrap();
    let expected_compare = run_spec(&JobSpec::Compare(
        compare_config_from_json(&compare_body).unwrap(),
    ));
    let expected_crashck = run_spec(&JobSpec::Crashck(
        crashck_config_from_json(&crashck_body).unwrap(),
    ));

    let workers: Vec<_> = (0..2).map(|_| boot_worker()).collect();
    let addrs: Vec<_> = workers.iter().map(|(a, _, _)| *a).collect();
    let got_compare = run_fleet("compare", &compare_body, &addrs, fast_fleet_config(2, 1), None);
    assert_eq!(got_compare, expected_compare, "compare merge must match single-node bytes");
    let got_crashck = run_fleet("crashck", &crashck_body, &addrs, fast_fleet_config(2, 4), None);
    assert_eq!(got_crashck, expected_crashck, "crashck merge must match single-node bytes");

    for (_, handle, join) in workers {
        handle.shutdown();
        join.join().unwrap();
    }
}

/// The resilience scenario: one registered worker is a dead address
/// (fails on first lease, deterministically exercising reassignment)
/// and one live worker is killed mid-campaign. The surviving workers
/// absorb the reassigned blocks and the merge still lands on the exact
/// single-node bytes.
#[test]
fn fleet_survives_dead_and_killed_workers_with_identical_bytes() {
    let body =
        Json::parse(r#"{"fit": 1500, "iterations": 1536, "threads": 1, "seed": 77}"#).unwrap();
    let expected = run_spec(&JobSpec::Campaign(config_from_json(&body).unwrap()));

    let workers: Vec<_> = (0..3).map(|_| boot_worker()).collect();
    let mut addrs: Vec<_> = workers.iter().map(|(a, _, _)| *a).collect();
    addrs.push(dead_addr());
    let victim = workers[0].1.clone();
    let got = run_fleet("campaign", &body, &addrs, fast_fleet_config(4, 2), Some(victim));
    assert_eq!(
        got, expected,
        "merge must match single-node bytes despite a dead and a killed worker"
    );

    for (_, handle, join) in workers.into_iter().skip(1) {
        handle.shutdown();
        join.join().unwrap();
    }
}
