//! DIMM geometry and physical address mapping (Table 4).
//!
//! The evaluated DIMM has 18 × 8-bit chips organized as 2 ranks of 9
//! chips, operated in lockstep so that every 64-byte line is striped across
//! all 18 chips (16 data + 2 check — Chipkill). Each chip has 16 banks of
//! 16384 rows × 4096 columns.
//!
//! One row across the 16 data chips holds `16 chips × 4096 cols × 8 bit
//! / 512 bit = 1024` lines, so the full device is
//! `16384 rows × 16 banks × 1024 lines × 64 B = 16 GiB` — exactly the
//! simulated capacity of Table 3.

use crate::LineAddr;

/// Physical location of one line: the (bank, row, column-group) it
/// occupies. In lockstep mode the line spans **all** chips at these
/// coordinates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct LineLocation {
    /// Bank index within each chip.
    pub bank: u32,
    /// Row index within the bank.
    pub row: u32,
    /// Column group (line-sized slot) within the row.
    pub col: u32,
}

/// DIMM organization parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DimmGeometry {
    chips: u32,
    chips_per_rank: u32,
    ranks: u32,
    banks: u32,
    rows: u32,
    cols_per_row: u32, // line-sized column groups per row
}

impl DimmGeometry {
    /// Creates a geometry.
    ///
    /// # Panics
    ///
    /// Panics if `chips != chips_per_rank * ranks` or any dimension is 0.
    pub fn new(
        chips: u32,
        chips_per_rank: u32,
        ranks: u32,
        banks: u32,
        rows: u32,
        cols_per_row: u32,
    ) -> Self {
        assert!(chips > 0 && banks > 0 && rows > 0 && cols_per_row > 0);
        assert_eq!(
            chips,
            chips_per_rank * ranks,
            "chip count must equal chips/rank x ranks"
        );
        Self {
            chips,
            chips_per_rank,
            ranks,
            banks,
            rows,
            cols_per_row,
        }
    }

    /// The paper's Table 4 configuration: 18 chips (9/rank × 2 ranks),
    /// 16 banks, 16384 rows, 4096 byte-columns per chip (= 1024 line-sized
    /// column groups), 512-bit data blocks.
    pub fn table4() -> Self {
        Self::new(18, 9, 2, 16, 16384, 1024)
    }

    /// A tiny geometry for unit tests (256 lines).
    pub fn tiny() -> Self {
        Self::new(18, 9, 2, 4, 8, 8)
    }

    /// Number of chips on the DIMM.
    pub fn chips(&self) -> u32 {
        self.chips
    }

    /// Chips per rank.
    pub fn chips_per_rank(&self) -> u32 {
        self.chips_per_rank
    }

    /// Number of ranks.
    pub fn ranks(&self) -> u32 {
        self.ranks
    }

    /// Banks per chip.
    pub fn banks(&self) -> u32 {
        self.banks
    }

    /// Rows per bank.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Line-sized column groups per row.
    pub fn cols_per_row(&self) -> u32 {
        self.cols_per_row
    }

    /// Total number of 64-byte lines the DIMM stores.
    pub fn total_lines(&self) -> u64 {
        self.banks as u64 * self.rows as u64 * self.cols_per_row as u64
    }

    /// Total data capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.total_lines() * crate::LINE_BYTES
    }

    /// The rank a chip belongs to.
    ///
    /// # Panics
    ///
    /// Panics if `chip >= self.chips()`.
    pub fn rank_of_chip(&self, chip: u32) -> u32 {
        assert!(chip < self.chips, "chip {chip} out of range");
        chip / self.chips_per_rank
    }

    /// Maps a line address to its physical (bank, row, column) location.
    ///
    /// Consecutive lines interleave across column groups first, then
    /// banks, then rows — the open-row-friendly mapping DDR controllers
    /// use for streaming accesses.
    ///
    /// # Panics
    ///
    /// Panics if the address is beyond [`Self::total_lines`].
    pub fn locate(&self, addr: LineAddr) -> LineLocation {
        let idx = addr.index();
        assert!(idx < self.total_lines(), "{addr} beyond device capacity");
        let col = (idx % self.cols_per_row as u64) as u32;
        let bank = ((idx / self.cols_per_row as u64) % self.banks as u64) as u32;
        let row = (idx / (self.cols_per_row as u64 * self.banks as u64)) as u32;
        LineLocation { bank, row, col }
    }

    /// The inverse of [`Self::locate`].
    pub fn line_at(&self, loc: LineLocation) -> LineAddr {
        LineAddr::new(
            loc.row as u64 * self.cols_per_row as u64 * self.banks as u64
                + loc.bank as u64 * self.cols_per_row as u64
                + loc.col as u64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_capacity_is_16gib() {
        assert_eq!(DimmGeometry::table4().capacity_bytes(), 16u64 << 30);
    }

    #[test]
    fn locate_roundtrip() {
        let g = DimmGeometry::tiny();
        for idx in 0..g.total_lines() {
            let loc = g.locate(LineAddr::new(idx));
            assert_eq!(g.line_at(loc), LineAddr::new(idx));
        }
    }

    #[test]
    fn consecutive_lines_interleave_columns_first() {
        let g = DimmGeometry::table4();
        let a = g.locate(LineAddr::new(0));
        let b = g.locate(LineAddr::new(1));
        assert_eq!(a.bank, b.bank);
        assert_eq!(a.row, b.row);
        assert_eq!(b.col, a.col + 1);
    }

    #[test]
    fn rank_of_chip_partitions() {
        let g = DimmGeometry::table4();
        assert_eq!(g.rank_of_chip(0), 0);
        assert_eq!(g.rank_of_chip(8), 0);
        assert_eq!(g.rank_of_chip(9), 1);
        assert_eq!(g.rank_of_chip(17), 1);
    }

    #[test]
    #[should_panic(expected = "beyond device capacity")]
    fn locate_bounds_checked() {
        let g = DimmGeometry::tiny();
        let _ = g.locate(LineAddr::new(g.total_lines()));
    }

    #[test]
    #[should_panic(expected = "chips/rank x ranks")]
    fn chip_count_validated() {
        let _ = DimmGeometry::new(18, 8, 2, 16, 16384, 1024);
    }
}
