//! The memory fault taxonomy used by the resilience campaigns.
//!
//! Faults follow the field-study classification of Sridharan et al.
//! ("Memory errors in modern systems", ASPLOS 2015 — the Hopper
//! distribution referenced by Table 4): a fault lives on one chip (or, for
//! rank-level faults, a set of chips) and covers a bit / word / column /
//! row / bank / multi-bank / multi-rank footprint. Faults are **transient**
//! (overwriting the cells clears them) or **permanent** (stuck until
//! repaired).
//!
//! The device model applies faults lazily: a read corrupts exactly the
//! codeword bytes whose (chip, bank, row, column, beat) coordinates fall
//! inside a live fault's footprint, then runs the real ECC decoder.

use crate::geometry::{DimmGeometry, LineLocation};

/// Whether overwriting the affected cells clears the fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Cleared when the line is rewritten after fault onset.
    Transient,
    /// Persists across writes (stuck-at / wear-out).
    Permanent,
}

/// The physical footprint of a fault within each affected chip.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultFootprint {
    /// One bit of one beat of one line.
    SingleBit {
        /// Affected bank.
        bank: u32,
        /// Affected row.
        row: u32,
        /// Affected column group.
        col: u32,
        /// Beat within the line (which codeword).
        beat: u8,
        /// Bit within the chip's byte.
        bit: u8,
    },
    /// One full byte contribution (one beat) of one line.
    SingleWord {
        /// Affected bank.
        bank: u32,
        /// Affected row.
        row: u32,
        /// Affected column group.
        col: u32,
        /// Beat within the line.
        beat: u8,
    },
    /// Every row of one column group in one bank.
    SingleColumn {
        /// Affected bank.
        bank: u32,
        /// Affected column group.
        col: u32,
    },
    /// Every column of one row in one bank.
    SingleRow {
        /// Affected bank.
        bank: u32,
        /// Affected row.
        row: u32,
    },
    /// An entire bank of the chip.
    SingleBank {
        /// Affected bank.
        bank: u32,
    },
    /// Several banks of the chip.
    MultiBank {
        /// Bitmask of affected banks.
        bank_mask: u32,
    },
    /// The whole chip (also used for rank-level faults, which list
    /// several chips in [`FaultRecord::chips`]).
    WholeChip,
}

impl FaultFootprint {
    /// Does this footprint cover the given line location and beat?
    pub fn covers(&self, loc: LineLocation, beat_idx: u8) -> bool {
        match *self {
            FaultFootprint::SingleBit {
                bank,
                row,
                col,
                beat,
                ..
            } => loc.bank == bank && loc.row == row && loc.col == col && beat_idx == beat,
            FaultFootprint::SingleWord {
                bank,
                row,
                col,
                beat,
            } => loc.bank == bank && loc.row == row && loc.col == col && beat_idx == beat,
            FaultFootprint::SingleColumn { bank, col } => loc.bank == bank && loc.col == col,
            FaultFootprint::SingleRow { bank, row } => loc.bank == bank && loc.row == row,
            FaultFootprint::SingleBank { bank } => loc.bank == bank,
            FaultFootprint::MultiBank { bank_mask } => bank_mask & (1 << loc.bank) != 0,
            FaultFootprint::WholeChip => true,
        }
    }

    /// Does this footprint cover *any* beat of the given location?
    pub fn covers_line(&self, loc: LineLocation) -> bool {
        (0..8).any(|beat| self.covers(loc, beat))
    }
}

/// A fault somewhere on the DIMM.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultRecord {
    /// Affected chips (one chip normally; a whole rank for rank faults).
    pub chips: Vec<u32>,
    /// Footprint within each affected chip.
    pub footprint: FaultFootprint,
    /// Transient or permanent.
    pub kind: FaultKind,
    /// Device write-epoch at which the fault appeared. Transient faults do
    /// not corrupt lines written after this epoch.
    pub onset_epoch: u64,
    /// Seed for the deterministic corruption pattern.
    pub seed: u64,
}

impl FaultRecord {
    /// Creates a single-chip fault.
    ///
    /// # Panics
    ///
    /// Panics if `chip` is outside the geometry.
    pub fn on_chip(
        geometry: &DimmGeometry,
        chip: u32,
        footprint: FaultFootprint,
        kind: FaultKind,
    ) -> Self {
        assert!(chip < geometry.chips(), "chip {chip} out of range");
        Self {
            chips: vec![chip],
            footprint,
            kind,
            onset_epoch: 0,
            seed: 0,
        }
    }

    /// Creates a rank-level fault touching every chip of `rank`.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is outside the geometry.
    pub fn on_rank(
        geometry: &DimmGeometry,
        rank: u32,
        footprint: FaultFootprint,
        kind: FaultKind,
    ) -> Self {
        assert!(rank < geometry.ranks(), "rank {rank} out of range");
        let chips = (0..geometry.chips())
            .filter(|&c| geometry.rank_of_chip(c) == rank)
            .collect();
        Self {
            chips,
            footprint,
            kind,
            onset_epoch: 0,
            seed: 0,
        }
    }

    /// Deterministic nonzero corruption byte for a given (line, chip,
    /// beat); single-bit footprints flip only their one bit.
    pub fn corruption(&self, line_index: u64, chip: u32, beat: u8) -> u8 {
        if let FaultFootprint::SingleBit { bit, .. } = self.footprint {
            return 1 << bit;
        }
        // Cheap deterministic mix (splitmix64-style) so patterns differ per
        // location but are reproducible.
        let mut x = self
            .seed
            .wrapping_add(line_index.wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .wrapping_add((chip as u64) << 32)
            .wrapping_add(beat as u64);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        let b = (x ^ (x >> 31)) as u8;
        if b == 0 {
            0x01
        } else {
            b
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LineAddr;

    #[test]
    fn footprint_coverage() {
        let loc = LineLocation {
            bank: 2,
            row: 10,
            col: 5,
        };
        assert!(FaultFootprint::SingleRow { bank: 2, row: 10 }.covers(loc, 0));
        assert!(!FaultFootprint::SingleRow { bank: 2, row: 11 }.covers(loc, 0));
        assert!(FaultFootprint::SingleColumn { bank: 2, col: 5 }.covers(loc, 3));
        assert!(!FaultFootprint::SingleColumn { bank: 1, col: 5 }.covers(loc, 3));
        assert!(FaultFootprint::SingleBank { bank: 2 }.covers(loc, 7));
        assert!(FaultFootprint::MultiBank { bank_mask: 0b0100 }.covers(loc, 0));
        assert!(!FaultFootprint::MultiBank { bank_mask: 0b0010 }.covers(loc, 0));
        assert!(FaultFootprint::WholeChip.covers(loc, 0));
    }

    #[test]
    fn single_bit_covers_only_its_beat() {
        let loc = LineLocation {
            bank: 0,
            row: 0,
            col: 0,
        };
        let f = FaultFootprint::SingleBit {
            bank: 0,
            row: 0,
            col: 0,
            beat: 2,
            bit: 7,
        };
        assert!(f.covers(loc, 2));
        assert!(!f.covers(loc, 1));
    }

    #[test]
    fn rank_fault_lists_all_rank_chips() {
        let g = DimmGeometry::table4();
        let f = FaultRecord::on_rank(&g, 1, FaultFootprint::WholeChip, FaultKind::Transient);
        assert_eq!(f.chips, (9..18).collect::<Vec<u32>>());
    }

    #[test]
    fn corruption_is_nonzero_and_deterministic() {
        let g = DimmGeometry::table4();
        let f = FaultRecord::on_chip(
            &g,
            3,
            FaultFootprint::SingleBank { bank: 0 },
            FaultKind::Permanent,
        );
        for line in 0..100u64 {
            let c = f.corruption(line, 3, 0);
            assert_ne!(c, 0);
            assert_eq!(c, f.corruption(line, 3, 0));
        }
    }

    #[test]
    fn single_bit_corruption_flips_one_bit() {
        let g = DimmGeometry::table4();
        let f = FaultRecord::on_chip(
            &g,
            0,
            FaultFootprint::SingleBit {
                bank: 0,
                row: 0,
                col: 0,
                beat: 0,
                bit: 5,
            },
            FaultKind::Transient,
        );
        assert_eq!(f.corruption(9, 0, 0), 1 << 5);
    }

    #[test]
    fn covers_line_any_beat() {
        let g = DimmGeometry::tiny();
        let loc = g.locate(LineAddr::new(0));
        let f = FaultFootprint::SingleBit {
            bank: loc.bank,
            row: loc.row,
            col: loc.col,
            beat: 3,
            bit: 0,
        };
        assert!(f.covers_line(loc));
    }
}
