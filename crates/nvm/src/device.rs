//! The NVM DIMM device: storage, ECC decode and fault application.
//!
//! Two storage fidelities are offered:
//!
//! * **Functional** — every line is stored as its real ECC codeword;
//!   reads overlay live fault corruption onto the codeword bytes and run
//!   the actual [`LineCodec`] decoder. Used by the functional/security
//!   tests.
//! * **Symbolic** — payloads are not stored; a read determines its
//!   [`CorrectionOutcome`] by counting how many *distinct chips* have live
//!   faults covering the same beat (the exact condition under which
//!   Chipkill fails). Used by the performance simulator and the Monte
//!   Carlo fault campaigns, where content is irrelevant but outcome and
//!   write counts matter. A property test in `tests/` checks the two modes
//!   agree.

use std::collections::BTreeMap;

use soteria_ecc::chipkill::{ChipkillCodec, LineCodec, SecDedCodec};
use soteria_ecc::ecp::EcpBlock;
use soteria_ecc::CorrectionOutcome;
use soteria_rt::obs::{Field, Obs};
use soteria_rt::obs_fields;

use crate::fault::{FaultKind, FaultRecord};
use crate::geometry::DimmGeometry;
use crate::wear::{StartGapLeveler, WearTracker};
use crate::LineAddr;

/// Counters describing device activity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeviceStats {
    /// Total line reads.
    pub reads: u64,
    /// Total line writes.
    pub writes: u64,
    /// Reads that needed (and got) correction.
    pub corrected_reads: u64,
    /// Reads that hit a detected uncorrectable error.
    pub uncorrectable_reads: u64,
}

struct FunctionalStore {
    codec: Box<dyn LineCodec + Send + Sync>,
    // Flat line table indexed by physical line index, grown lazily toward
    // the geometry's total (plus the start-gap spare); an empty codeword
    // Vec marks a never-written line. Physical indices are dense and
    // bounded, so direct indexing replaces an ordered-map lookup on every
    // read and write of the controller's hot path.
    lines: Vec<(Vec<u8>, u64)>, // codeword, write epoch
}

impl FunctionalStore {
    fn get(&self, idx: u64) -> Option<&(Vec<u8>, u64)> {
        self.lines
            .get(idx as usize)
            .filter(|(cw, _)| !cw.is_empty())
    }

    fn slot_mut(lines: &mut Vec<(Vec<u8>, u64)>, idx: u64) -> &mut (Vec<u8>, u64) {
        let idx = idx as usize;
        if idx >= lines.len() {
            lines.resize_with(idx + 1, Default::default);
        }
        &mut lines[idx]
    }
}

struct SymbolicStore {
    correctable_chips: usize,
    beats: u8,
    epochs: BTreeMap<u64, u64>,
}

enum Storage {
    Functional(FunctionalStore),
    Symbolic(SymbolicStore),
}

/// A non-volatile DIMM.
pub struct NvmDimm {
    geometry: DimmGeometry,
    storage: Storage,
    faults: Vec<FaultRecord>,
    write_epoch: u64,
    stats: DeviceStats,
    wear: WearTracker,
    leveler: Option<StartGapLeveler>,
    // ECP-6 per line, lazily allocated on write-verify (None = disabled).
    ecp: Option<BTreeMap<u64, EcpBlock<6>>>,
    ecp_repaired_bits: u64,
    // Chips marked dead (chip marking / sparing): decoded as erasures.
    marked_chips: Vec<u32>,
    // Observability (disabled by default: one branch per event site).
    obs: Obs,
}

impl std::fmt::Debug for NvmDimm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NvmDimm")
            .field("geometry", &self.geometry)
            .field("faults", &self.faults.len())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl NvmDimm {
    /// Creates a functional device with Chipkill-Correct ECC (Table 4).
    pub fn chipkill(geometry: DimmGeometry) -> Self {
        Self::with_codec(geometry, Box::new(ChipkillCodec::table4()))
    }

    /// Creates a functional device with SEC-DED ECC (the weaker-ECC
    /// ablation).
    pub fn secded(geometry: DimmGeometry) -> Self {
        Self::with_codec(geometry, Box::new(SecDedCodec::new()))
    }

    /// Creates a functional device with an arbitrary codec.
    ///
    /// # Panics
    ///
    /// Panics if the codec's chip count differs from the geometry's.
    pub fn with_codec(geometry: DimmGeometry, codec: Box<dyn LineCodec + Send + Sync>) -> Self {
        assert_eq!(
            codec.total_chips() as u32,
            geometry.chips(),
            "codec chip striping must match DIMM geometry"
        );
        Self {
            geometry,
            storage: Storage::Functional(FunctionalStore {
                codec,
                lines: Vec::new(),
            }),
            faults: Vec::new(),
            write_epoch: 0,
            stats: DeviceStats::default(),
            wear: WearTracker::new(),
            leveler: None,
            ecp: None,
            ecp_repaired_bits: 0,
            marked_chips: Vec::new(),
            obs: Obs::disabled(),
        }
    }

    /// Creates a symbolic device that corrects up to `correctable_chips`
    /// simultaneously-faulty chips per beat (1 = Chipkill-Correct).
    pub fn symbolic(geometry: DimmGeometry, correctable_chips: usize) -> Self {
        Self {
            geometry,
            storage: Storage::Symbolic(SymbolicStore {
                correctable_chips,
                beats: 4,
                epochs: BTreeMap::new(),
            }),
            faults: Vec::new(),
            write_epoch: 0,
            stats: DeviceStats::default(),
            wear: WearTracker::new(),
            leveler: None,
            ecp: None,
            ecp_repaired_bits: 0,
            marked_chips: Vec::new(),
            obs: Obs::disabled(),
        }
    }

    /// Marks a chip as dead (chip marking): its symbols are decoded as
    /// erasures, so the remaining ECC budget covers fresh faults on other
    /// chips. An erasure consumes half the budget an unknown error does
    /// (`e + 2v <= 2t`); the RAS controller marks a chip after repeated
    /// corrections attribute to it.
    ///
    /// # Panics
    ///
    /// Panics if `chip` is outside the geometry.
    pub fn mark_chip(&mut self, chip: u32) {
        assert!(chip < self.geometry.chips(), "chip {chip} out of range");
        if !self.marked_chips.contains(&chip) {
            self.marked_chips.push(chip);
        }
    }

    /// Currently marked chips.
    pub fn marked_chips(&self) -> &[u32] {
        &self.marked_chips
    }

    /// Enables Error-Correcting Pointers (ECP-6, Schechter et al.): on
    /// every write, write-verify detects permanent single-bit faults in
    /// the line's cells and records repair pointers, so those cells no
    /// longer consume the ECC budget on reads. Functional storage only.
    ///
    /// # Panics
    ///
    /// Panics on a symbolic-storage device.
    pub fn enable_ecp(&mut self) {
        assert!(
            matches!(self.storage, Storage::Functional(_)),
            "ECP requires functional storage"
        );
        self.ecp = Some(BTreeMap::new());
    }

    /// Total stuck bits ECP has neutralized on reads so far.
    pub fn ecp_repaired_bits(&self) -> u64 {
        self.ecp_repaired_bits
    }

    /// Enables start-gap wear leveling [Qureshi et al., MICRO 2009]: the
    /// logical-to-physical mapping rotates by one line every
    /// `gap_write_interval` writes, so no physical line stays under a hot
    /// logical address. Must be called before any write.
    ///
    /// # Panics
    ///
    /// Panics if the device has already been written.
    pub fn enable_wear_leveling(&mut self, gap_write_interval: u64) {
        assert_eq!(
            self.write_epoch, 0,
            "enable wear leveling before first write"
        );
        self.leveler = Some(StartGapLeveler::new(
            self.geometry.total_lines(),
            gap_write_interval,
        ));
    }

    /// The wear-leveling state, if enabled.
    pub fn leveler(&self) -> Option<&StartGapLeveler> {
        self.leveler.as_ref()
    }

    fn translate(&self, addr: LineAddr) -> LineAddr {
        match &self.leveler {
            Some(l) => LineAddr::new(l.translate(addr.index())),
            None => addr,
        }
    }

    /// Physical location, tolerating the start-gap spare line one past
    /// the last geometric line.
    fn locate_physical(&self, addr: LineAddr) -> crate::geometry::LineLocation {
        if addr.index() == self.geometry.total_lines() {
            // The spare line borrows bank 0, column 0 of a virtual row.
            crate::geometry::LineLocation {
                bank: 0,
                row: self.geometry.rows(),
                col: 0,
            }
        } else {
            self.geometry.locate(addr)
        }
    }

    fn move_physical_line(&mut self, from: u64, to: u64) {
        match &mut self.storage {
            Storage::Functional(fs) => {
                // `take` leaves `(empty, 0)` behind, which is exactly the
                // vacant marker — a vacant source therefore clears `to`.
                let moved = std::mem::take(FunctionalStore::slot_mut(&mut fs.lines, from));
                *FunctionalStore::slot_mut(&mut fs.lines, to) = moved;
            }
            Storage::Symbolic(ss) => {
                if let Some(e) = ss.epochs.remove(&from) {
                    ss.epochs.insert(to, e);
                } else {
                    ss.epochs.remove(&to);
                }
            }
        }
    }

    /// The device geometry.
    pub fn geometry(&self) -> &DimmGeometry {
        &self.geometry
    }

    /// Activity counters.
    pub fn stats(&self) -> DeviceStats {
        self.stats
    }

    /// The device's observability handle (trace domain `"dev"`:
    /// `fault_injected`, `ue`, `remap`). Disabled by default.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Mutable access to the observability handle (enable it, drain the
    /// trace, merge metrics).
    pub fn obs_mut(&mut self) -> &mut Obs {
        &mut self.obs
    }

    /// Wear-tracking data.
    pub fn wear(&self) -> &WearTracker {
        &self.wear
    }

    /// Currently injected faults.
    pub fn faults(&self) -> &[FaultRecord] {
        &self.faults
    }

    /// Injects a fault; its onset is the current write epoch, so transient
    /// faults do not affect lines rewritten afterwards.
    pub fn inject_fault(&mut self, mut fault: FaultRecord) {
        fault.onset_epoch = self.write_epoch;
        fault.seed ^= 0x5eed_0000 ^ self.faults.len() as u64;
        self.obs.trace.emit_with("dev", "fault_injected", || {
            obs_fields![
                (
                    "kind",
                    match fault.kind {
                        FaultKind::Permanent => "permanent",
                        FaultKind::Transient => "transient",
                    }
                ),
                ("chips", fault.chips.len()),
                ("onset_epoch", fault.onset_epoch),
                ("seed", Field::Hex(fault.seed)),
            ]
        });
        self.obs.metrics.inc("dev.faults_injected", 1);
        self.faults.push(fault);
    }

    /// Removes all injected faults (e.g. after repair / post-package
    /// repair).
    pub fn clear_faults(&mut self) {
        self.faults.clear();
    }

    /// Writes a 64-byte line.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is beyond the geometry.
    pub fn write_line(&mut self, addr: LineAddr, line: &[u8; 64]) {
        let _ = self.geometry.locate(addr); // bounds check on the logical address
        if let Some(l) = &mut self.leveler {
            if let Some((from, to)) = l.record_write() {
                self.move_physical_line(from, to);
                self.obs.trace.emit_with("dev", "remap", || {
                    obs_fields![("from", from), ("to", to)]
                });
                self.obs.metrics.inc("dev.remaps", 1);
            }
        }
        let phys = self.translate(addr);
        self.write_epoch += 1;
        self.stats.writes += 1;
        self.wear.record_write(phys);
        match &mut self.storage {
            Storage::Functional(fs) => {
                // Overwrites (the common case: counters, MAC lines, tree
                // nodes) re-encode into the line's existing codeword
                // allocation.
                let entry = FunctionalStore::slot_mut(&mut fs.lines, phys.index());
                fs.codec.encode_line_into(line, &mut entry.0);
                entry.1 = self.write_epoch;
                let cw = &entry.0;
                // Write-verify: with ECP enabled, a read-back after the
                // write exposes cells pinned by permanent single-bit
                // faults; each gets a repair pointer holding the bit's
                // correct (just-written) value.
                if let Some(ecp) = &mut self.ecp {
                    let total_chips = fs.codec.total_chips() as u32;
                    let span = (fs.codec.codeword_bytes() * 8) as u16;
                    let loc = self.geometry.locate(addr);
                    for fault in &self.faults {
                        if fault.kind != FaultKind::Permanent {
                            continue;
                        }
                        let crate::fault::FaultFootprint::SingleBit { beat, bit, .. } =
                            fault.footprint
                        else {
                            continue;
                        };
                        if !fault.footprint.covers(loc, beat) {
                            continue;
                        }
                        for &chip in &fault.chips {
                            if chip >= total_chips {
                                continue;
                            }
                            let byte = beat as usize * total_chips as usize + chip as usize;
                            let cell = (byte * 8) as u16 + bit as u16;
                            let correct = (cw[byte] >> bit) & 1 != 0;
                            ecp.entry(phys.index())
                                .or_insert_with(|| EcpBlock::with_span(span))
                                .record_stuck_bit(cell, correct);
                        }
                    }
                }
            }
            Storage::Symbolic(ss) => {
                ss.epochs.insert(phys.index(), self.write_epoch);
            }
        }
    }

    fn line_epoch(&self, phys: LineAddr) -> u64 {
        match &self.storage {
            Storage::Functional(fs) => fs.get(phys.index()).map_or(0, |(_, e)| *e),
            Storage::Symbolic(ss) => ss.epochs.get(&phys.index()).copied().unwrap_or(0),
        }
    }

    fn fault_is_live(fault: &FaultRecord, line_epoch: u64) -> bool {
        match fault.kind {
            FaultKind::Permanent => true,
            FaultKind::Transient => line_epoch <= fault.onset_epoch,
        }
    }

    /// Reads a 64-byte line, returning its contents and the ECC outcome.
    ///
    /// Functional mode decodes the stored codeword after overlaying live
    /// fault corruption; symbolic mode derives the outcome from the set of
    /// distinct faulty chips per beat. Never-written lines read as zeroes.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is beyond the geometry.
    pub fn read_line(&mut self, addr: LineAddr) -> ([u8; 64], CorrectionOutcome) {
        let _ = self.geometry.locate(addr); // bounds check on the logical address
        let phys = self.translate(addr);
        self.stats.reads += 1;
        // Fast path: nothing can perturb the stored codeword (no injected
        // faults, no ECP, no marked chips), so decode it borrowed in place
        // — no clone, no epoch lookup, no per-byte fault overlay. This is
        // every read of a healthy device, i.e. the controller's hot path.
        if self.faults.is_empty() && self.ecp.is_none() && self.marked_chips.is_empty() {
            let outcome_and_line = match &self.storage {
                Storage::Functional(fs) => match fs.get(phys.index()) {
                    Some((cw, _)) => fs.codec.decode_line(cw),
                    // Never-written lines read as zeroes; encode→decode of
                    // the zero line is the identity (zero parity), so this
                    // matches the slow path byte for byte.
                    None => ([0u8; 64], CorrectionOutcome::Clean),
                },
                Storage::Symbolic(_) => ([0u8; 64], CorrectionOutcome::Clean),
            };
            self.note_read_outcome(addr, phys, outcome_and_line.1);
            return outcome_and_line;
        }
        let loc = self.locate_physical(phys);
        let line_epoch = self.line_epoch(phys);
        let outcome_and_line = match &self.storage {
            Storage::Functional(fs) => {
                let mut cw = match fs.get(phys.index()) {
                    Some((cw, _)) => cw.clone(),
                    None => fs.codec.encode_line(&[0u8; 64]),
                };
                let total_chips = fs.codec.total_chips() as u32;
                let mut corrupted = false;
                for fault in &self.faults {
                    if !Self::fault_is_live(fault, line_epoch) {
                        continue;
                    }
                    for (i, byte) in cw.iter_mut().enumerate() {
                        let chip = (i % total_chips as usize) as u32;
                        let beat = (i / total_chips as usize) as u8;
                        if fault.chips.contains(&chip) && fault.footprint.covers(loc, beat) {
                            *byte ^= fault.corruption(phys.index(), chip, beat);
                            corrupted = true;
                        }
                    }
                }
                // ECP repairs known-stuck cells before the ECC decoder
                // sees the word.
                let mut ecp_fixed = 0u64;
                if let Some(ecp) = &self.ecp {
                    if let Some(block) = ecp.get(&phys.index()) {
                        let before = cw.clone();
                        block.apply(&mut cw);
                        ecp_fixed = before
                            .iter()
                            .zip(cw.iter())
                            .map(|(a, b)| (a ^ b).count_ones() as u64)
                            .sum();
                    }
                }
                self.ecp_repaired_bits += ecp_fixed;
                let marks: Vec<usize> = self.marked_chips.iter().map(|&c| c as usize).collect();
                let (line, outcome) = if marks.is_empty() {
                    fs.codec.decode_line(&cw)
                } else {
                    fs.codec.decode_line_marked(&cw, &marks)
                };
                // Record corrupted-but-decoded-clean as clean: that is what
                // the controller observes (silent corruption shows up at
                // the MAC check instead).
                let _ = corrupted;
                (line, outcome)
            }
            Storage::Symbolic(ss) => {
                let mut worst = CorrectionOutcome::Clean;
                for beat in 0..ss.beats {
                    let mut chips: Vec<u32> = Vec::new();
                    for fault in &self.faults {
                        if !Self::fault_is_live(fault, line_epoch) {
                            continue;
                        }
                        if fault.footprint.covers(loc, beat) {
                            for &c in &fault.chips {
                                if !chips.contains(&c) {
                                    chips.push(c);
                                }
                            }
                        }
                    }
                    // Erasure accounting: marked chips cost half the
                    // budget of unknown errors (e + 2v <= 2t).
                    let unknown = chips
                        .iter()
                        .filter(|c| !self.marked_chips.contains(c))
                        .count();
                    let budget_used = self.marked_chips.len() + 2 * unknown;
                    let outcome = if chips.is_empty() {
                        CorrectionOutcome::Clean
                    } else if budget_used <= 2 * ss.correctable_chips {
                        CorrectionOutcome::Corrected {
                            symbols: chips.len(),
                        }
                    } else {
                        CorrectionOutcome::Uncorrectable
                    };
                    worst = match (worst, outcome) {
                        (_, CorrectionOutcome::Uncorrectable)
                        | (CorrectionOutcome::Uncorrectable, _) => CorrectionOutcome::Uncorrectable,
                        (
                            CorrectionOutcome::Corrected { symbols: a },
                            CorrectionOutcome::Corrected { symbols: b },
                        ) => CorrectionOutcome::Corrected { symbols: a + b },
                        (CorrectionOutcome::Corrected { symbols }, _)
                        | (_, CorrectionOutcome::Corrected { symbols }) => {
                            CorrectionOutcome::Corrected { symbols }
                        }
                        _ => CorrectionOutcome::Clean,
                    };
                }
                ([0u8; 64], worst)
            }
        };
        self.note_read_outcome(addr, phys, outcome_and_line.1);
        outcome_and_line
    }

    fn note_read_outcome(&mut self, addr: LineAddr, phys: LineAddr, outcome: CorrectionOutcome) {
        match outcome {
            CorrectionOutcome::Corrected { symbols } => {
                self.stats.corrected_reads += 1;
                self.obs.metrics.inc("dev.corrected_reads", 1);
                self.obs.metrics.observe("dev.corrected_symbols", symbols as u64);
            }
            CorrectionOutcome::Uncorrectable => {
                self.stats.uncorrectable_reads += 1;
                self.obs.trace.emit_with("dev", "ue", || {
                    obs_fields![("addr", addr.index()), ("phys", phys.index())]
                });
                self.obs.metrics.inc("dev.ue_reads", 1);
            }
            CorrectionOutcome::Clean => {}
        }
    }

    /// Scrubs one line: read, and if the content is usable, rewrite it so
    /// transient faults are cleansed. Returns the read outcome.
    pub fn scrub_line(&mut self, addr: LineAddr) -> CorrectionOutcome {
        let (line, outcome) = self.read_line(addr);
        if outcome.is_usable() {
            self.write_line(addr, &line);
        }
        outcome
    }

    /// Patrol-scrubs a line range `[start, end)` (the demand/patrol
    /// scrubber real memory controllers run in the background): every
    /// correctable line is rewritten clean, uncorrectable ones are
    /// counted for the RAS log.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the geometry.
    pub fn scrub_region(&mut self, start: LineAddr, end: LineAddr) -> ScrubReport {
        assert!(
            end.index() <= self.geometry.total_lines(),
            "scrub range beyond capacity"
        );
        let mut report = ScrubReport::default();
        for idx in start.index()..end.index() {
            report.scanned += 1;
            match self.scrub_line(LineAddr::new(idx)) {
                CorrectionOutcome::Clean => {}
                CorrectionOutcome::Corrected { .. } => report.corrected += 1,
                CorrectionOutcome::Uncorrectable => report.uncorrectable += 1,
            }
        }
        report
    }
}

/// Outcome of a patrol-scrub pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Lines scanned.
    pub scanned: u64,
    /// Lines whose errors were corrected and cleansed.
    pub corrected: u64,
    /// Lines with uncorrectable errors (left untouched, reported).
    pub uncorrectable: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultFootprint;

    fn dimm() -> NvmDimm {
        NvmDimm::chipkill(DimmGeometry::tiny())
    }

    #[test]
    fn unwritten_lines_read_zero() {
        let mut d = dimm();
        let (line, outcome) = d.read_line(LineAddr::new(0));
        assert_eq!(line, [0u8; 64]);
        assert_eq!(outcome, CorrectionOutcome::Clean);
    }

    #[test]
    fn write_read_roundtrip() {
        let mut d = dimm();
        let data = [0x3cu8; 64];
        d.write_line(LineAddr::new(5), &data);
        let (line, outcome) = d.read_line(LineAddr::new(5));
        assert_eq!(line, data);
        assert_eq!(outcome, CorrectionOutcome::Clean);
        assert_eq!(d.stats().writes, 1);
        assert_eq!(d.stats().reads, 1);
    }

    #[test]
    fn single_chip_fault_is_corrected() {
        let mut d = dimm();
        let data = [0x77u8; 64];
        d.write_line(LineAddr::new(3), &data);
        d.inject_fault(FaultRecord::on_chip(
            d.geometry(),
            4,
            FaultFootprint::WholeChip,
            FaultKind::Permanent,
        ));
        let (line, outcome) = d.read_line(LineAddr::new(3));
        assert_eq!(line, data);
        assert!(matches!(outcome, CorrectionOutcome::Corrected { .. }));
        assert_eq!(d.stats().corrected_reads, 1);
    }

    #[test]
    fn two_chip_fault_is_uncorrectable() {
        let mut d = dimm();
        d.write_line(LineAddr::new(3), &[1u8; 64]);
        for chip in [2, 9] {
            d.inject_fault(FaultRecord::on_chip(
                d.geometry(),
                chip,
                FaultFootprint::WholeChip,
                FaultKind::Permanent,
            ));
        }
        let (_, outcome) = d.read_line(LineAddr::new(3));
        assert_eq!(outcome, CorrectionOutcome::Uncorrectable);
        assert_eq!(d.stats().uncorrectable_reads, 1);
    }

    #[test]
    fn transient_fault_cleared_by_rewrite() {
        let mut d = dimm();
        d.write_line(LineAddr::new(7), &[9u8; 64]);
        d.inject_fault(FaultRecord::on_chip(
            d.geometry(),
            0,
            FaultFootprint::WholeChip,
            FaultKind::Transient,
        ));
        let (_, outcome) = d.read_line(LineAddr::new(7));
        assert!(matches!(outcome, CorrectionOutcome::Corrected { .. }));
        // Rewriting replaces the cell contents: transient corruption gone.
        d.write_line(LineAddr::new(7), &[9u8; 64]);
        let (_, outcome) = d.read_line(LineAddr::new(7));
        assert_eq!(outcome, CorrectionOutcome::Clean);
    }

    #[test]
    fn permanent_fault_survives_rewrite() {
        let mut d = dimm();
        d.write_line(LineAddr::new(7), &[9u8; 64]);
        d.inject_fault(FaultRecord::on_chip(
            d.geometry(),
            0,
            FaultFootprint::WholeChip,
            FaultKind::Permanent,
        ));
        d.write_line(LineAddr::new(7), &[9u8; 64]);
        let (_, outcome) = d.read_line(LineAddr::new(7));
        assert!(matches!(outcome, CorrectionOutcome::Corrected { .. }));
    }

    #[test]
    fn fault_scoped_to_row_spares_other_rows() {
        let mut d = dimm();
        let g = *d.geometry();
        let loc0 = g.locate(LineAddr::new(0));
        d.write_line(LineAddr::new(0), &[1u8; 64]);
        // A line in a different row of the same bank.
        let other = g.line_at(crate::geometry::LineLocation {
            bank: loc0.bank,
            row: loc0.row + 1,
            col: loc0.col,
        });
        d.write_line(other, &[2u8; 64]);
        d.inject_fault(FaultRecord::on_chip(
            &g,
            1,
            FaultFootprint::SingleRow {
                bank: loc0.bank,
                row: loc0.row,
            },
            FaultKind::Permanent,
        ));
        let (_, o0) = d.read_line(LineAddr::new(0));
        let (_, o1) = d.read_line(other);
        assert!(matches!(o0, CorrectionOutcome::Corrected { .. }));
        assert_eq!(o1, CorrectionOutcome::Clean);
    }

    #[test]
    fn scrub_cleans_transients() {
        let mut d = dimm();
        d.write_line(LineAddr::new(1), &[5u8; 64]);
        d.inject_fault(FaultRecord::on_chip(
            d.geometry(),
            3,
            FaultFootprint::WholeChip,
            FaultKind::Transient,
        ));
        assert!(matches!(
            d.scrub_line(LineAddr::new(1)),
            CorrectionOutcome::Corrected { .. }
        ));
        assert_eq!(d.scrub_line(LineAddr::new(1)), CorrectionOutcome::Clean);
    }

    #[test]
    fn symbolic_mode_matches_chipkill_semantics() {
        let g = DimmGeometry::tiny();
        let mut d = NvmDimm::symbolic(g, 1);
        d.write_line(LineAddr::new(0), &[0u8; 64]);
        let (_, o) = d.read_line(LineAddr::new(0));
        assert_eq!(o, CorrectionOutcome::Clean);
        d.inject_fault(FaultRecord::on_chip(
            &g,
            5,
            FaultFootprint::WholeChip,
            FaultKind::Permanent,
        ));
        let (_, o) = d.read_line(LineAddr::new(0));
        assert!(matches!(o, CorrectionOutcome::Corrected { .. }));
        d.inject_fault(FaultRecord::on_chip(
            &g,
            6,
            FaultFootprint::WholeChip,
            FaultKind::Permanent,
        ));
        let (_, o) = d.read_line(LineAddr::new(0));
        assert_eq!(o, CorrectionOutcome::Uncorrectable);
    }

    #[test]
    fn rank_fault_defeats_chipkill() {
        let mut d = dimm();
        d.write_line(LineAddr::new(2), &[4u8; 64]);
        let rank_fault = FaultRecord::on_rank(
            d.geometry(),
            0,
            FaultFootprint::WholeChip,
            FaultKind::Permanent,
        );
        d.inject_fault(rank_fault);
        let (_, outcome) = d.read_line(LineAddr::new(2));
        assert_eq!(outcome, CorrectionOutcome::Uncorrectable);
    }

    #[test]
    #[should_panic(expected = "beyond device capacity")]
    fn write_bounds_checked() {
        let mut d = dimm();
        let max = d.geometry().total_lines();
        d.write_line(LineAddr::new(max), &[0u8; 64]);
    }
}
