//! PCM timing model: Table 3 latencies plus a per-bank busy model.
//!
//! The performance simulator asks this model when a request to a given
//! line could complete, given the 150 ns read / 300 ns write PCM array
//! latencies and the fact that a bank can only serve one access at a time
//! (reads and writes to distinct banks overlap).

use crate::geometry::DimmGeometry;
use crate::LineAddr;

/// Nanosecond timestamps within the simulation.
pub type Ns = u64;

/// Array access latencies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NvmTiming {
    /// Read latency in nanoseconds.
    pub read_ns: Ns,
    /// Write latency in nanoseconds.
    pub write_ns: Ns,
}

impl NvmTiming {
    /// Table 3 PCM latencies: 150 ns read, 300 ns write.
    pub fn table3_pcm() -> Self {
        Self {
            read_ns: 150,
            write_ns: 300,
        }
    }

    /// DRAM-like latencies for sanity comparisons.
    pub fn dram_like() -> Self {
        Self {
            read_ns: 50,
            write_ns: 50,
        }
    }
}

impl Default for NvmTiming {
    fn default() -> Self {
        Self::table3_pcm()
    }
}

/// Kind of a memory access for timing purposes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A read of one line.
    Read,
    /// A write of one line.
    Write,
}

/// Tracks when each bank becomes free and schedules accesses.
#[derive(Clone, Debug)]
pub struct BankTimingModel {
    timing: NvmTiming,
    banks: usize,
    bank_free_at: Vec<Ns>,
    busy_ns: u64,
    accesses: u64,
}

impl BankTimingModel {
    /// Creates a model for the given geometry and latencies.
    pub fn new(geometry: &DimmGeometry, timing: NvmTiming) -> Self {
        let banks = geometry.banks() as usize;
        Self {
            timing,
            banks,
            bank_free_at: vec![0; banks],
            busy_ns: 0,
            accesses: 0,
        }
    }

    /// Latency parameters in use.
    pub fn timing(&self) -> NvmTiming {
        self.timing
    }

    /// Schedules an access to `addr` issued at time `now`; returns its
    /// completion time. The access occupies its bank until completion.
    pub fn schedule(
        &mut self,
        geometry: &DimmGeometry,
        addr: LineAddr,
        kind: AccessKind,
        now: Ns,
    ) -> Ns {
        let bank = geometry.locate(addr).bank as usize % self.banks;
        let start = now.max(self.bank_free_at[bank]);
        let latency = match kind {
            AccessKind::Read => self.timing.read_ns,
            AccessKind::Write => self.timing.write_ns,
        };
        let done = start + latency;
        self.bank_free_at[bank] = done;
        self.busy_ns += latency;
        self.accesses += 1;
        done
    }

    /// Total accesses scheduled.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Aggregate bank-busy nanoseconds (for utilization accounting).
    pub fn busy_ns(&self) -> u64 {
        self.busy_ns
    }

    /// The time at which all banks are idle.
    pub fn all_idle_at(&self) -> Ns {
        self.bank_free_at.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> DimmGeometry {
        DimmGeometry::table4()
    }

    #[test]
    fn read_write_latencies() {
        let g = geom();
        let mut m = BankTimingModel::new(&g, NvmTiming::table3_pcm());
        assert_eq!(m.schedule(&g, LineAddr::new(0), AccessKind::Read, 0), 150);
        // Same bank: serialized behind the read.
        assert_eq!(m.schedule(&g, LineAddr::new(1), AccessKind::Write, 0), 450);
    }

    #[test]
    fn different_banks_overlap() {
        let g = geom();
        let mut m = BankTimingModel::new(&g, NvmTiming::table3_pcm());
        // Lines 0 and cols_per_row land in different banks.
        let other_bank = LineAddr::new(g.cols_per_row() as u64);
        assert_eq!(m.schedule(&g, LineAddr::new(0), AccessKind::Read, 0), 150);
        assert_eq!(m.schedule(&g, other_bank, AccessKind::Read, 0), 150);
    }

    #[test]
    fn issue_after_busy_window() {
        let g = geom();
        let mut m = BankTimingModel::new(&g, NvmTiming::table3_pcm());
        m.schedule(&g, LineAddr::new(0), AccessKind::Read, 0);
        // Issued at t=1000, long after the bank freed at t=150.
        assert_eq!(
            m.schedule(&g, LineAddr::new(0), AccessKind::Read, 1000),
            1150
        );
    }

    #[test]
    fn stats_accumulate() {
        let g = geom();
        let mut m = BankTimingModel::new(&g, NvmTiming::table3_pcm());
        m.schedule(&g, LineAddr::new(0), AccessKind::Read, 0);
        m.schedule(&g, LineAddr::new(0), AccessKind::Write, 0);
        assert_eq!(m.accesses(), 2);
        assert_eq!(m.busy_ns(), 450);
        assert_eq!(m.all_idle_at(), 450);
    }
}
