#![warn(missing_docs)]

//! Non-volatile DIMM device model for the Soteria reproduction.
//!
//! This crate is the hardware substrate under the secure memory
//! controller: a PCM-like DIMM with
//!
//! * [`geometry`] — the Table 4 chip/rank/bank/row/column organization and
//!   the physical address mapping,
//! * [`device`] — byte-accurate storage of **ECC-encoded codewords**
//!   ([`soteria_ecc::chipkill`]) with lazy fault overlays, so reads really
//!   decode through the configured ECC and report
//!   [`soteria_ecc::CorrectionOutcome`]s,
//! * [`fault`] — the DRAM-study fault taxonomy (single-bit / word / column
//!   / row / bank, multi-bank, multi-rank) used by the FaultSim campaigns,
//! * [`wpq`] — the Write Pending Queue with ADR (asynchronous DRAM
//!   refresh) persistence semantics and atomic commit groups (§3.2.1),
//! * [`wear`] — start-gap wear leveling [Qureshi et al., MICRO 2009],
//! * [`timing`] — PCM latencies (150 ns read / 300 ns write) with a
//!   per-bank busy model for the performance simulator.
//!
//! # Example
//!
//! ```
//! use soteria_nvm::device::NvmDimm;
//! use soteria_nvm::geometry::DimmGeometry;
//! use soteria_nvm::LineAddr;
//!
//! let mut dimm = NvmDimm::chipkill(DimmGeometry::table4());
//! let addr = LineAddr::new(42);
//! dimm.write_line(addr, &[7u8; 64]);
//! let (line, outcome) = dimm.read_line(addr);
//! assert_eq!(line, [7u8; 64]);
//! assert!(outcome.is_usable());
//! ```

pub mod device;
pub mod fault;
pub mod geometry;
pub mod timing;
pub mod wear;
pub mod wpq;

/// The size of a memory line in bytes, fixed at 64 throughout the model.
pub const LINE_BYTES: u64 = 64;

/// The index of a 64-byte line within a memory.
///
/// A newtype rather than a bare `u64` so byte addresses and line indices
/// can never be confused (C-NEWTYPE).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Creates a line address from a line index.
    pub fn new(index: u64) -> Self {
        Self(index)
    }

    /// Creates a line address from a byte address.
    ///
    /// # Panics
    ///
    /// Panics if `byte_addr` is not 64-byte aligned.
    pub fn from_byte_addr(byte_addr: u64) -> Self {
        assert!(
            byte_addr.is_multiple_of(LINE_BYTES),
            "byte address {byte_addr:#x} is not line-aligned"
        );
        Self(byte_addr / LINE_BYTES)
    }

    /// Returns the line index.
    pub fn index(self) -> u64 {
        self.0
    }

    /// Returns the byte address of the start of this line.
    pub fn byte_addr(self) -> u64 {
        self.0 * LINE_BYTES
    }

    /// Returns the line `offset` lines after this one.
    pub fn offset(self, offset: u64) -> Self {
        Self(self.0 + offset)
    }
}

impl std::fmt::Display for LineAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_addr_roundtrip() {
        let a = LineAddr::from_byte_addr(0x1000);
        assert_eq!(a.index(), 0x40);
        assert_eq!(a.byte_addr(), 0x1000);
    }

    #[test]
    #[should_panic(expected = "not line-aligned")]
    fn unaligned_byte_addr_panics() {
        let _ = LineAddr::from_byte_addr(0x1001);
    }

    #[test]
    fn offset_advances() {
        assert_eq!(LineAddr::new(10).offset(5), LineAddr::new(15));
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!LineAddr::new(3).to_string().is_empty());
    }
}
