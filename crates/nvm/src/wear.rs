//! Write-endurance tracking and start-gap wear leveling.
//!
//! PCM cells endure ~10^8 writes (§1); controllers therefore both track
//! write counts and remap hot lines. [`StartGapLeveler`] implements the
//! start-gap scheme of Qureshi et al. (MICRO 2009): one spare line plus
//! two registers (`start`, `gap`); every `gap_write_interval` writes the
//! gap moves one slot, slowly rotating the logical-to-physical mapping so
//! no physical line stays under a hot logical address.

use crate::LineAddr;

/// Tracks per-line write counts.
///
/// Stored as a flat table indexed by line (zero = never written), grown
/// lazily toward the device size: the per-write increment on the
/// controller's hot path is one array bump instead of an ordered-map
/// entry operation. Report-time scans (`hottest`, `imbalance`) stay
/// deterministic by walking in index order.
#[derive(Clone, Debug, Default)]
pub struct WearTracker {
    writes: Vec<u64>,
    written_lines: u64,
    total: u64,
}

impl WearTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one write to `addr`.
    pub fn record_write(&mut self, addr: LineAddr) {
        let idx = addr.index() as usize;
        if idx >= self.writes.len() {
            self.writes.resize(idx + 1, 0);
        }
        self.writes[idx] += 1;
        if self.writes[idx] == 1 {
            self.written_lines += 1;
        }
        self.total += 1;
    }

    /// Write count of one line.
    pub fn writes_to(&self, addr: LineAddr) -> u64 {
        self.writes.get(addr.index() as usize).copied().unwrap_or(0)
    }

    /// Total writes across the device.
    pub fn total_writes(&self) -> u64 {
        self.total
    }

    /// The most-written line and its count, if any writes happened.
    pub fn hottest(&self) -> Option<(LineAddr, u64)> {
        // Index-order scan with strict `>`: among equally-hot lines the
        // lowest address wins, matching the ordered-map behavior.
        let mut best: Option<(u64, u64)> = None;
        for (addr, &count) in self.writes.iter().enumerate() {
            if count > 0 && best.is_none_or(|(_, c)| count > c) {
                best = Some((addr as u64, count));
            }
        }
        best.map(|(a, c)| (LineAddr::new(a), c))
    }

    /// Ratio of the hottest line's writes to the mean over written lines —
    /// 1.0 is perfectly level.
    pub fn imbalance(&self) -> f64 {
        if self.written_lines == 0 {
            return 1.0;
        }
        let max = self.writes.iter().copied().max().unwrap_or(0) as f64;
        let mean = self.total as f64 / self.written_lines as f64;
        max / mean
    }
}

/// Start-gap wear leveling over a region of `lines` logical lines
/// (physical region has one extra spare line).
#[derive(Clone, Debug)]
pub struct StartGapLeveler {
    lines: u64,
    start: u64,
    gap: u64,
    writes_since_move: u64,
    gap_write_interval: u64,
    total_moves: u64,
}

impl StartGapLeveler {
    /// Creates a leveler for `lines` logical lines, moving the gap every
    /// `gap_write_interval` writes (the paper's source suggests 100).
    ///
    /// # Panics
    ///
    /// Panics if `lines == 0` or `gap_write_interval == 0`.
    pub fn new(lines: u64, gap_write_interval: u64) -> Self {
        assert!(lines > 0, "region must have at least one line");
        assert!(gap_write_interval > 0, "gap interval must be positive");
        Self {
            lines,
            start: 0,
            gap: lines, // gap initially after the last line
            writes_since_move: 0,
            gap_write_interval,
            total_moves: 0,
        }
    }

    /// Number of logical lines managed.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// How many gap movements have occurred.
    pub fn total_moves(&self) -> u64 {
        self.total_moves
    }

    /// Translates a logical line index to its current physical index
    /// within the region (0..=lines, one extra for the gap).
    ///
    /// # Panics
    ///
    /// Panics if `logical >= self.lines()`.
    pub fn translate(&self, logical: u64) -> u64 {
        assert!(logical < self.lines, "logical line {logical} out of range");
        // Rotate within the N logical slots, then skip over the gap: the
        // result lives in the N+1 physical slots (0..=lines).
        let rotated = (logical + self.start) % self.lines;
        if rotated >= self.gap {
            rotated + 1
        } else {
            rotated
        }
    }

    /// Records a write; returns `Some((from, to))` when the gap moved,
    /// meaning the device must copy physical line `from` to `to`.
    pub fn record_write(&mut self) -> Option<(u64, u64)> {
        self.writes_since_move += 1;
        if self.writes_since_move < self.gap_write_interval {
            return None;
        }
        self.writes_since_move = 0;
        self.total_moves += 1;
        let (from, to);
        if self.gap == 0 {
            // Gap wraps to the top and the start register advances. The
            // line that lived in the top physical slot now maps to slot 0
            // (the old gap), so its data must move there.
            self.gap = self.lines;
            self.start = (self.start + 1) % self.lines;
            from = self.lines;
            to = 0;
        } else {
            from = self.gap - 1;
            to = self.gap;
            self.gap -= 1;
        }
        Some((from, to))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_counts() {
        let mut w = WearTracker::new();
        w.record_write(LineAddr::new(3));
        w.record_write(LineAddr::new(3));
        w.record_write(LineAddr::new(5));
        assert_eq!(w.writes_to(LineAddr::new(3)), 2);
        assert_eq!(w.writes_to(LineAddr::new(5)), 1);
        assert_eq!(w.writes_to(LineAddr::new(9)), 0);
        assert_eq!(w.total_writes(), 3);
        assert_eq!(w.hottest(), Some((LineAddr::new(3), 2)));
    }

    #[test]
    fn imbalance_of_even_writes_is_one() {
        let mut w = WearTracker::new();
        for i in 0..10 {
            w.record_write(LineAddr::new(i));
        }
        assert!((w.imbalance() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn translation_is_a_permutation() {
        let mut lv = StartGapLeveler::new(16, 1);
        for _ in 0..100 {
            let mut seen = std::collections::HashSet::new();
            for l in 0..16 {
                let p = lv.translate(l);
                assert!(p <= 16, "physical {p} beyond the spare slot");
                assert_ne!(p, lv.gap, "mapped a line onto the gap");
                assert!(seen.insert(p), "collision after moves");
            }
            lv.record_write();
        }
    }

    #[test]
    fn mapping_eventually_rotates() {
        // After enough gap movements every logical line must have visited
        // more than one physical slot.
        let mut lv = StartGapLeveler::new(8, 1);
        let initial: Vec<u64> = (0..8).map(|l| lv.translate(l)).collect();
        let mut moved = vec![false; 8];
        for _ in 0..200 {
            lv.record_write();
            for l in 0..8 {
                if lv.translate(l) != initial[l as usize] {
                    moved[l as usize] = true;
                }
            }
        }
        assert!(
            moved.iter().all(|&m| m),
            "all lines should migrate: {moved:?}"
        );
    }

    #[test]
    fn gap_move_reports_copy() {
        let mut lv = StartGapLeveler::new(4, 2);
        assert_eq!(lv.record_write(), None);
        // Second write triggers a move: gap was at 4, line 3 copies to 4.
        assert_eq!(lv.record_write(), Some((3, 4)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn translate_bounds_checked() {
        StartGapLeveler::new(4, 1).translate(4);
    }

    #[test]
    fn start_gap_remap_round_trip_preserves_data() {
        // Model the physical array (N logical lines + 1 spare). Every
        // write goes through `translate`, and every gap move applies the
        // reported (from, to) copy. Reading each logical line back through
        // the current mapping must always return the last value written to
        // it — across several full rotations of start and gap.
        use soteria_rt::rng::StdRng;
        let lines = 16u64;
        let mut lv = StartGapLeveler::new(lines, 1); // move on every write
        let mut physical = vec![u64::MAX; lines as usize + 1];
        let mut expected = vec![u64::MAX; lines as usize];
        let mut rng = StdRng::seed_from_u64(0x5047);
        for (l, slot) in expected.iter_mut().enumerate() {
            physical[lv.translate(l as u64) as usize] = 1000 + l as u64;
            *slot = 1000 + l as u64;
        }
        for value in 0..600u64 {
            let logical = rng.random_range(0..lines);
            physical[lv.translate(logical) as usize] = value;
            expected[logical as usize] = value;
            if let Some((from, to)) = lv.record_write() {
                physical[to as usize] = physical[from as usize];
            }
            for l in 0..lines {
                assert_eq!(
                    physical[lv.translate(l) as usize], expected[l as usize],
                    "logical line {l} lost data after {} gap moves",
                    lv.total_moves()
                );
            }
        }
        // 600 moves over 17 slots: the mapping rotated several times.
        assert!(lv.total_moves() >= 600);
    }
}
