//! The Write Pending Queue (WPQ) with ADR persistence semantics.
//!
//! On Intel platforms the WPQ is the last stop before the NVM media and
//! lies inside the ADR (Asynchronous DRAM Refresh) power-fail domain: once
//! a write is accepted into the WPQ it is guaranteed durable even across a
//! power loss (§3.2.1, [Edirisooriya et al.], [Wang et al., MICRO 2020]).
//!
//! Soteria's clone commits lean on this: all clones of an evicted node
//! must enter the WPQ **atomically** (all or none), which bounds the
//! maximum useful clone depth by the WPQ size — the reason Table 2 caps
//! SAC at depth 5 given a minimum 8-entry WPQ.

//!
//! For crash-consistency checking the queue carries three optional
//! instruments (all inert unless enabled, zero cost in the hot path):
//!
//! * an **event clock** counting every durability-relevant step — each
//!   group accept and each stall-forced drain (`push` is an accept of a
//!   group of one). ADR flush steps do **not** tick the clock: flushing
//!   is what makes accepts durable, not a new media state a crash could
//!   expose at;
//! * a **crash fuse** ([`WritePendingQueue::arm_crash_at_event`]): after
//!   the armed event completes the queue is *dead* — a dead queue
//!   silently drops every subsequent accept (writes the powered-off CPU
//!   never issued) while `flush` still drains everything accepted
//!   before death, exactly as ADR would;
//! * a **journal** of accepts and drains as
//!   [`soteria_rt::crashck::WpqEventRecord`]s, replayable against the
//!   pure queue model in `rt::crashck`.

use std::collections::VecDeque;

use soteria_rt::crashck::{fingerprint64, WpqEventRecord};

use crate::device::NvmDimm;
use crate::LineAddr;

/// One pending persistent write.
///
/// The payload is stored inline: queue slots live in the `VecDeque`'s own
/// allocation, so accepting a write is a 72-byte copy with no per-entry
/// heap traffic on the controller's hot path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PendingWrite {
    /// Destination line.
    pub addr: LineAddr,
    /// Payload.
    pub data: [u8; 64],
}

/// Error returned when an atomic group cannot fit even an empty WPQ.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GroupTooLarge {
    /// Size of the rejected group.
    pub group: usize,
    /// WPQ capacity.
    pub capacity: usize,
}

impl std::fmt::Display for GroupTooLarge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "atomic group of {} writes exceeds WPQ capacity {} and can never commit",
            self.group, self.capacity
        )
    }
}

impl std::error::Error for GroupTooLarge {}

/// What happened to an accept request: either the group entered the ADR
/// domain at a given event-clock value (it is now durable), or the crash
/// fuse had already fired and the write was never issued.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AcceptOutcome {
    /// The group was accepted whole; `event` is the clock value of the
    /// accept (crash point `event` is the first point that observes it).
    Accepted {
        /// Event-clock value of this accept.
        event: u64,
    },
    /// The queue is dead (crash fuse fired): nothing was accepted.
    Dead,
}

impl AcceptOutcome {
    /// `true` when the group entered the ADR domain.
    pub fn is_accepted(&self) -> bool {
        matches!(self, AcceptOutcome::Accepted { .. })
    }
}

/// A bounded write-pending queue inside the ADR domain.
#[derive(Clone, Debug)]
pub struct WritePendingQueue {
    entries: VecDeque<PendingWrite>,
    capacity: usize,
    drains: u64,
    accepted: u64,
    stalls: u64,
    events: u64,
    fuse: Option<u64>,
    dead: bool,
    journal: Option<Vec<WpqEventRecord>>,
}

impl WritePendingQueue {
    /// Creates a WPQ holding `capacity` entries (8–64 on real parts;
    /// §3.2.1 conservatively assumes 8).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "WPQ needs at least one entry");
        Self {
            entries: VecDeque::new(),
            capacity,
            drains: 0,
            accepted: 0,
            stalls: 0,
            events: 0,
            fuse: None,
            dead: false,
            journal: None,
        }
    }

    /// Queue capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries currently pending.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when no writes are pending.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total writes accepted over the WPQ's lifetime.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// How many times a full queue forced an early drain (a stall in
    /// hardware).
    pub fn stalls(&self) -> u64 {
        self.stalls
    }

    /// Total entries drained from the queue to the media over its
    /// lifetime (stall-forced drains plus `flush`). Monotone in the
    /// crash point: the further a run gets, the more has drained.
    pub fn drains(&self) -> u64 {
        self.drains
    }

    /// The event clock: one tick per group accept (`push` counts as a
    /// group of one) and per stall-forced drain. "Cut power the instant
    /// event k completes" for `k` in `0..=events()` is a complete
    /// enumeration of the durable states a crash can expose — ADR flush
    /// steps do not tick the clock because flushing only realises
    /// durability already promised at accept time.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Arms the crash fuse: the queue goes dead the instant event
    /// `event` completes (`0` = dead before anything happens). A dead
    /// queue drops all further accepts — writes a powered-off CPU never
    /// issued — while [`WritePendingQueue::flush`] still drains
    /// everything accepted before death, exactly as ADR would.
    pub fn arm_crash_at_event(&mut self, event: u64) {
        self.fuse = Some(event);
        if self.events >= event {
            self.dead = true;
        }
    }

    /// `true` once the armed crash fuse has fired.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Starts journaling accepts and drains as
    /// [`WpqEventRecord`]s (replayable via `rt::crashck`).
    pub fn enable_journal(&mut self) {
        self.journal = Some(Vec::new());
    }

    /// Takes the journal recorded so far (empty if journaling was never
    /// enabled); journaling continues afterwards.
    pub fn take_journal(&mut self) -> Vec<WpqEventRecord> {
        match &mut self.journal {
            Some(j) => std::mem::take(j),
            None => Vec::new(),
        }
    }

    /// Advances the event clock by one completed event and fires the
    /// fuse if this was the armed event.
    fn tick(&mut self) -> u64 {
        self.events += 1;
        if self.fuse.is_some_and(|f| self.events >= f) {
            self.dead = true;
        }
        self.events
    }

    /// Pushes one write, draining the oldest entry to `device` first if
    /// the queue is full. Returns where the accept landed on the event
    /// clock — or [`AcceptOutcome::Dead`] if the crash fuse has fired
    /// (the write is dropped: a dead machine issues nothing).
    pub fn push(&mut self, write: PendingWrite, device: &mut NvmDimm) -> AcceptOutcome {
        if self.dead {
            return AcceptOutcome::Dead;
        }
        if self.entries.len() == self.capacity {
            self.stalls += 1;
            self.drain_one(device);
            if self.dead {
                return AcceptOutcome::Dead;
            }
        }
        let event = self.tick();
        if let Some(j) = &mut self.journal {
            j.push(WpqEventRecord::Accept {
                event,
                writes: vec![(write.addr.index(), fingerprint64(&write.data[..]))],
            });
        }
        self.entries.push_back(write);
        self.accepted += 1;
        AcceptOutcome::Accepted { event }
    }

    /// Pushes a group of writes that must be accepted **atomically**: if
    /// the group does not fit, older entries are drained first ("as soon
    /// as few entries are flushed from WPQ to NVM" — §3.2.1). The group is
    /// never split across a crash boundary: acceptance is a single event
    /// on the crash clock, and if the fuse fires mid-stall the whole
    /// group is dropped (all or none even at the instant of death).
    ///
    /// # Errors
    ///
    /// Returns [`GroupTooLarge`] when the group exceeds the whole WPQ; the
    /// caller (the clone writer, the transaction committer) must cap its
    /// group size below this.
    ///
    /// The group vector is **drained** on acceptance (and on a dead
    /// queue), leaving its capacity behind so a hot caller can reuse one
    /// buffer across commits instead of allocating per group.
    pub fn push_atomic(
        &mut self,
        writes: &mut Vec<PendingWrite>,
        device: &mut NvmDimm,
    ) -> Result<AcceptOutcome, GroupTooLarge> {
        if writes.len() > self.capacity {
            return Err(GroupTooLarge {
                group: writes.len(),
                capacity: self.capacity,
            });
        }
        if self.dead {
            writes.clear();
            return Ok(AcceptOutcome::Dead);
        }
        while self.capacity - self.entries.len() < writes.len() {
            self.stalls += 1;
            self.drain_one(device);
            if self.dead {
                writes.clear();
                return Ok(AcceptOutcome::Dead);
            }
        }
        let event = self.tick();
        if let Some(j) = &mut self.journal {
            j.push(WpqEventRecord::Accept {
                event,
                writes: writes
                    .iter()
                    .map(|w| (w.addr.index(), fingerprint64(&w.data[..])))
                    .collect(),
            });
        }
        for w in writes.drain(..) {
            self.entries.push_back(w);
            self.accepted += 1;
        }
        Ok(AcceptOutcome::Accepted { event })
    }

    /// A stall-forced drain: one entry to media, one tick on the event
    /// clock (the media state changed — a crash can now observe it).
    fn drain_one(&mut self, device: &mut NvmDimm) {
        if let Some(w) = self.entries.pop_front() {
            device.write_line(w.addr, &w.data);
            self.drains += 1;
            let event = self.tick();
            if let Some(j) = &mut self.journal {
                j.push(WpqEventRecord::StallDrain {
                    event,
                    addr: w.addr.index(),
                    fp: fingerprint64(&w.data[..]),
                });
            }
        }
    }

    /// Drains every pending write to the device. This is what ADR does at
    /// power-fail time, and what makes a modeled crash lose nothing that
    /// reached the WPQ. Flush ignores the crash fuse (ADR works *because*
    /// the CPU is dead) and does not tick the event clock.
    pub fn flush(&mut self, device: &mut NvmDimm) {
        while let Some(w) = self.entries.pop_front() {
            device.write_line(w.addr, &w.data);
            self.drains += 1;
            if let Some(j) = &mut self.journal {
                j.push(WpqEventRecord::FlushDrain {
                    addr: w.addr.index(),
                    fp: fingerprint64(&w.data[..]),
                });
            }
        }
    }

    /// Iterates over pending writes (oldest first) without draining.
    pub fn iter(&self) -> impl DoubleEndedIterator<Item = &PendingWrite> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::DimmGeometry;

    fn device() -> NvmDimm {
        NvmDimm::chipkill(DimmGeometry::tiny())
    }

    fn write(addr: u64, fill: u8) -> PendingWrite {
        PendingWrite {
            addr: LineAddr::new(addr),
            data: [fill; 64],
        }
    }

    #[test]
    fn push_and_flush_persist() {
        let mut d = device();
        let mut q = WritePendingQueue::new(8);
        q.push(write(1, 0xaa), &mut d);
        q.push(write(2, 0xbb), &mut d);
        assert_eq!(d.stats().writes, 0, "still in ADR domain, not on media");
        q.flush(&mut d);
        assert_eq!(d.stats().writes, 2);
        assert_eq!(d.read_line(LineAddr::new(1)).0, [0xaa; 64]);
        assert_eq!(d.read_line(LineAddr::new(2)).0, [0xbb; 64]);
    }

    #[test]
    fn full_queue_drains_oldest() {
        let mut d = device();
        let mut q = WritePendingQueue::new(2);
        q.push(write(1, 1), &mut d);
        q.push(write(2, 2), &mut d);
        q.push(write(3, 3), &mut d); // evicts write(1)
        assert_eq!(q.len(), 2);
        assert_eq!(q.stalls(), 1);
        assert_eq!(d.read_line(LineAddr::new(1)).0, [1; 64]);
    }

    #[test]
    fn atomic_group_fits_after_draining() {
        let mut d = device();
        let mut q = WritePendingQueue::new(4);
        q.push(write(1, 1), &mut d);
        q.push(write(2, 2), &mut d);
        q.push(write(3, 3), &mut d);
        // Group of 3 into a queue with 1 free slot: drains 2 residues first.
        q.push_atomic(&mut vec![write(10, 10), write(11, 11), write(12, 12)], &mut d)
            .unwrap();
        assert_eq!(q.len(), 4);
        assert_eq!(d.stats().writes, 2);
    }

    #[test]
    fn oversized_group_rejected() {
        let mut d = device();
        let mut q = WritePendingQueue::new(4);
        let mut group: Vec<_> = (0..5).map(|i| write(i, i as u8)).collect();
        assert_eq!(
            q.push_atomic(&mut group, &mut d),
            Err(GroupTooLarge {
                group: 5,
                capacity: 4
            })
        );
        assert!(q.is_empty(), "rejected group must not partially enqueue");
    }

    #[test]
    fn accepted_counts() {
        let mut d = device();
        let mut q = WritePendingQueue::new(8);
        q.push(write(0, 0), &mut d);
        q.push_atomic(&mut vec![write(1, 1), write(2, 2)], &mut d)
            .unwrap();
        assert_eq!(q.accepted(), 3);
    }

    #[test]
    fn transaction_larger_than_capacity_never_commits() {
        // The commit primitive must reject — not truncate, not stall
        // forever — a transaction that cannot fit even an empty queue,
        // and the rejection must not consume stalls or events.
        let mut d = device();
        let mut q = WritePendingQueue::new(4);
        q.push(write(0, 0), &mut d);
        let mut group: Vec<_> = (1..=5).map(|i| write(i, i as u8)).collect();
        assert_eq!(
            q.push_atomic(&mut group, &mut d),
            Err(GroupTooLarge {
                group: 5,
                capacity: 4
            })
        );
        assert_eq!(q.len(), 1, "resident entries untouched by the rejection");
        assert_eq!(q.stalls(), 0, "no drains were forced for a doomed group");
        assert_eq!(q.events(), 1, "only the original push ticked the clock");
    }

    #[test]
    fn stall_accounting_at_exactly_full_queue() {
        let mut d = device();
        let mut q = WritePendingQueue::new(3);
        for i in 0..3 {
            q.push(write(i, i as u8), &mut d);
        }
        assert_eq!((q.len(), q.stalls()), (3, 0), "filling to the brim is free");
        // A single push at len == capacity forces exactly one stall drain.
        q.push(write(10, 10), &mut d);
        assert_eq!(q.stalls(), 1);
        assert_eq!(q.len(), 3);
        // An atomic group the size of the whole queue onto a full queue
        // forces exactly `capacity` stall drains — no more, no less.
        q.push_atomic(&mut vec![write(20, 20), write(21, 21), write(22, 22)], &mut d)
            .unwrap();
        assert_eq!(q.stalls(), 1 + 3);
        assert_eq!(q.len(), 3);
        // Events: 5 accepts (the group is one event) + 4 stall drains.
        assert_eq!(q.events(), 9);
        assert_eq!(q.drains(), 4);
    }

    #[test]
    fn flush_mid_transaction_drains_groups_contiguously() {
        // `flush` while an atomic group sits in the queue must drain the
        // group wholly and in FIFO order — the journal shows every
        // accepted write reaching media with nothing interleaved.
        let mut d = device();
        let mut q = WritePendingQueue::new(8);
        q.enable_journal();
        q.push(write(1, 1), &mut d);
        q.push_atomic(&mut vec![write(2, 2), write(3, 3), write(4, 4)], &mut d)
            .unwrap();
        q.flush(&mut d);
        assert!(q.is_empty());
        let journal = q.take_journal();
        let flushed: Vec<u64> = journal
            .iter()
            .filter_map(|r| match r {
                soteria_rt::crashck::WpqEventRecord::FlushDrain { addr, .. } => Some(*addr),
                _ => None,
            })
            .collect();
        assert_eq!(flushed, vec![1, 2, 3, 4], "FIFO, group contiguous");
        // The journal replays cleanly against the pure queue model.
        soteria_rt::crashck::replay_journal(&journal, q.capacity())
            .expect("journal honours the queue discipline");
    }

    #[test]
    fn crash_fuse_kills_later_accepts_but_not_earlier_durability() {
        let mut d = device();
        let mut q = WritePendingQueue::new(4);
        q.arm_crash_at_event(2);
        assert!(q.push(write(1, 1), &mut d).is_accepted());
        let at2 = q.push(write(2, 2), &mut d);
        assert_eq!(at2, AcceptOutcome::Accepted { event: 2 });
        assert!(q.is_dead(), "the armed event completes, then the fuse fires");
        assert_eq!(q.push(write(3, 3), &mut d), AcceptOutcome::Dead);
        assert_eq!(
            q.push_atomic(&mut vec![write(4, 4)], &mut d),
            Ok(AcceptOutcome::Dead)
        );
        assert_eq!(q.accepted(), 2, "dead accepts are dropped, not queued");
        // ADR still drains what was accepted before death.
        q.flush(&mut d);
        assert_eq!(d.read_line(LineAddr::new(1)).0, [1; 64]);
        assert_eq!(d.read_line(LineAddr::new(2)).0, [2; 64]);
        assert_eq!(d.read_line(LineAddr::new(3)).0, [0; 64], "never issued");
    }

    #[test]
    fn fuse_firing_on_a_stall_drain_drops_the_whole_group() {
        // All-or-none even at the instant of death: if the fuse fires on
        // a stall drain that was making room for a group, none of the
        // group is accepted.
        let mut d = device();
        let mut q = WritePendingQueue::new(2);
        q.push(write(1, 1), &mut d);
        q.push(write(2, 2), &mut d);
        q.arm_crash_at_event(3); // event 3 = the stall drain below
        let outcome = q
            .push_atomic(&mut vec![write(10, 10), write(11, 11)], &mut d)
            .unwrap();
        assert_eq!(outcome, AcceptOutcome::Dead);
        assert_eq!(q.accepted(), 2);
        q.flush(&mut d);
        assert_eq!(d.read_line(LineAddr::new(10)).0, [0; 64]);
        assert_eq!(d.read_line(LineAddr::new(2)).0, [2; 64]);
    }

    #[test]
    fn fuse_at_zero_is_dead_on_arrival() {
        let mut d = device();
        let mut q = WritePendingQueue::new(4);
        q.arm_crash_at_event(0);
        assert!(q.is_dead());
        assert_eq!(q.push(write(1, 1), &mut d), AcceptOutcome::Dead);
        q.flush(&mut d);
        assert_eq!(d.read_line(LineAddr::new(1)).0, [0; 64]);
    }

    #[test]
    fn adr_flush_preserves_every_accepted_write_on_power_loss() {
        // ADR contract: once `push`/`push_atomic` returns, the write is
        // durable. Drive a random mix of single writes and atomic groups
        // over a small address window (forcing mid-run stall drains and
        // many same-address overwrites), then cut power (`flush`). The
        // media must hold exactly the last accepted value of every line:
        // FIFO drain order means later writes win.
        use soteria_rt::rng::StdRng;
        let mut rng = StdRng::seed_from_u64(0xadf1);
        let mut d = device();
        let mut q = WritePendingQueue::new(8);
        let mut expected = std::collections::HashMap::new();
        let mut fill = 0u8;
        for _ in 0..200 {
            fill = fill.wrapping_add(1);
            if rng.random::<bool>() {
                let addr = rng.random_range(0..32u64);
                q.push(write(addr, fill), &mut d);
                expected.insert(addr, fill);
            } else {
                let group_len = rng.random_range(2..=5usize);
                let mut group: Vec<PendingWrite> = (0..group_len)
                    .map(|_| write(rng.random_range(0..32u64), fill))
                    .collect();
                for w in &group {
                    expected.insert(w.addr.index(), fill);
                }
                q.push_atomic(&mut group, &mut d).unwrap();
            }
        }
        // Power loss: ADR drains the whole queue to media.
        q.flush(&mut d);
        assert!(q.is_empty(), "flush must leave nothing pending");
        for (&addr, &fill) in &expected {
            assert_eq!(
                d.read_line(LineAddr::new(addr)).0,
                [fill; 64],
                "line {addr} lost its last accepted write across power loss"
            );
        }
    }
}
