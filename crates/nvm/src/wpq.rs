//! The Write Pending Queue (WPQ) with ADR persistence semantics.
//!
//! On Intel platforms the WPQ is the last stop before the NVM media and
//! lies inside the ADR (Asynchronous DRAM Refresh) power-fail domain: once
//! a write is accepted into the WPQ it is guaranteed durable even across a
//! power loss (§3.2.1, [Edirisooriya et al.], [Wang et al., MICRO 2020]).
//!
//! Soteria's clone commits lean on this: all clones of an evicted node
//! must enter the WPQ **atomically** (all or none), which bounds the
//! maximum useful clone depth by the WPQ size — the reason Table 2 caps
//! SAC at depth 5 given a minimum 8-entry WPQ.

use std::collections::VecDeque;

use crate::device::NvmDimm;
use crate::LineAddr;

/// One pending persistent write.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PendingWrite {
    /// Destination line.
    pub addr: LineAddr,
    /// Payload.
    pub data: Box<[u8; 64]>,
}

/// Error returned when an atomic group cannot fit even an empty WPQ.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GroupTooLarge {
    /// Size of the rejected group.
    pub group: usize,
    /// WPQ capacity.
    pub capacity: usize,
}

impl std::fmt::Display for GroupTooLarge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "atomic group of {} writes exceeds WPQ capacity {} and can never commit",
            self.group, self.capacity
        )
    }
}

impl std::error::Error for GroupTooLarge {}

/// A bounded write-pending queue inside the ADR domain.
#[derive(Clone, Debug)]
pub struct WritePendingQueue {
    entries: VecDeque<PendingWrite>,
    capacity: usize,
    drains: u64,
    accepted: u64,
    stalls: u64,
}

impl WritePendingQueue {
    /// Creates a WPQ holding `capacity` entries (8–64 on real parts;
    /// §3.2.1 conservatively assumes 8).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "WPQ needs at least one entry");
        Self {
            entries: VecDeque::new(),
            capacity,
            drains: 0,
            accepted: 0,
            stalls: 0,
        }
    }

    /// Queue capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries currently pending.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when no writes are pending.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total writes accepted over the WPQ's lifetime.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// How many times a full queue forced an early drain (a stall in
    /// hardware).
    pub fn stalls(&self) -> u64 {
        self.stalls
    }

    /// Total entries drained from the queue to the media over its
    /// lifetime (stall-forced drains plus `flush`). The drain counter is
    /// the crash-point clock: every drain moves exactly one write out of
    /// the ADR domain onto media, so "cut power after drain step k" is a
    /// complete enumeration of media states a crash can expose.
    pub fn drains(&self) -> u64 {
        self.drains
    }

    /// Pushes one write, draining the oldest entry to `device` first if
    /// the queue is full.
    pub fn push(&mut self, write: PendingWrite, device: &mut NvmDimm) {
        if self.entries.len() == self.capacity {
            self.stalls += 1;
            self.drain_one(device);
        }
        self.entries.push_back(write);
        self.accepted += 1;
    }

    /// Pushes a group of writes that must be accepted **atomically**: if
    /// the group does not fit, older entries are drained first ("as soon
    /// as few entries are flushed from WPQ to NVM" — §3.2.1). The group is
    /// never split across a crash boundary because all members are in the
    /// ADR domain once this returns.
    ///
    /// # Errors
    ///
    /// Returns [`GroupTooLarge`] when the group exceeds the whole WPQ; the
    /// caller (the clone writer) must cap its depth below this.
    pub fn push_atomic(
        &mut self,
        writes: Vec<PendingWrite>,
        device: &mut NvmDimm,
    ) -> Result<(), GroupTooLarge> {
        if writes.len() > self.capacity {
            return Err(GroupTooLarge {
                group: writes.len(),
                capacity: self.capacity,
            });
        }
        while self.capacity - self.entries.len() < writes.len() {
            self.stalls += 1;
            self.drain_one(device);
        }
        for w in writes {
            self.entries.push_back(w);
            self.accepted += 1;
        }
        Ok(())
    }

    fn drain_one(&mut self, device: &mut NvmDimm) {
        if let Some(w) = self.entries.pop_front() {
            device.write_line(w.addr, &w.data);
            self.drains += 1;
        }
    }

    /// Drains every pending write to the device. This is what ADR does at
    /// power-fail time, and what makes a modeled crash lose nothing that
    /// reached the WPQ.
    pub fn flush(&mut self, device: &mut NvmDimm) {
        while !self.entries.is_empty() {
            self.drain_one(device);
        }
    }

    /// Iterates over pending writes (oldest first) without draining.
    pub fn iter(&self) -> impl Iterator<Item = &PendingWrite> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::DimmGeometry;

    fn device() -> NvmDimm {
        NvmDimm::chipkill(DimmGeometry::tiny())
    }

    fn write(addr: u64, fill: u8) -> PendingWrite {
        PendingWrite {
            addr: LineAddr::new(addr),
            data: Box::new([fill; 64]),
        }
    }

    #[test]
    fn push_and_flush_persist() {
        let mut d = device();
        let mut q = WritePendingQueue::new(8);
        q.push(write(1, 0xaa), &mut d);
        q.push(write(2, 0xbb), &mut d);
        assert_eq!(d.stats().writes, 0, "still in ADR domain, not on media");
        q.flush(&mut d);
        assert_eq!(d.stats().writes, 2);
        assert_eq!(d.read_line(LineAddr::new(1)).0, [0xaa; 64]);
        assert_eq!(d.read_line(LineAddr::new(2)).0, [0xbb; 64]);
    }

    #[test]
    fn full_queue_drains_oldest() {
        let mut d = device();
        let mut q = WritePendingQueue::new(2);
        q.push(write(1, 1), &mut d);
        q.push(write(2, 2), &mut d);
        q.push(write(3, 3), &mut d); // evicts write(1)
        assert_eq!(q.len(), 2);
        assert_eq!(q.stalls(), 1);
        assert_eq!(d.read_line(LineAddr::new(1)).0, [1; 64]);
    }

    #[test]
    fn atomic_group_fits_after_draining() {
        let mut d = device();
        let mut q = WritePendingQueue::new(4);
        q.push(write(1, 1), &mut d);
        q.push(write(2, 2), &mut d);
        q.push(write(3, 3), &mut d);
        // Group of 3 into a queue with 1 free slot: drains 2 residues first.
        q.push_atomic(vec![write(10, 10), write(11, 11), write(12, 12)], &mut d)
            .unwrap();
        assert_eq!(q.len(), 4);
        assert_eq!(d.stats().writes, 2);
    }

    #[test]
    fn oversized_group_rejected() {
        let mut d = device();
        let mut q = WritePendingQueue::new(4);
        let group: Vec<_> = (0..5).map(|i| write(i, i as u8)).collect();
        assert_eq!(
            q.push_atomic(group, &mut d),
            Err(GroupTooLarge {
                group: 5,
                capacity: 4
            })
        );
        assert!(q.is_empty(), "rejected group must not partially enqueue");
    }

    #[test]
    fn accepted_counts() {
        let mut d = device();
        let mut q = WritePendingQueue::new(8);
        q.push(write(0, 0), &mut d);
        q.push_atomic(vec![write(1, 1), write(2, 2)], &mut d)
            .unwrap();
        assert_eq!(q.accepted(), 3);
    }

    #[test]
    fn adr_flush_preserves_every_accepted_write_on_power_loss() {
        // ADR contract: once `push`/`push_atomic` returns, the write is
        // durable. Drive a random mix of single writes and atomic groups
        // over a small address window (forcing mid-run stall drains and
        // many same-address overwrites), then cut power (`flush`). The
        // media must hold exactly the last accepted value of every line:
        // FIFO drain order means later writes win.
        use soteria_rt::rng::StdRng;
        let mut rng = StdRng::seed_from_u64(0xadf1);
        let mut d = device();
        let mut q = WritePendingQueue::new(8);
        let mut expected = std::collections::HashMap::new();
        let mut fill = 0u8;
        for _ in 0..200 {
            fill = fill.wrapping_add(1);
            if rng.random::<bool>() {
                let addr = rng.random_range(0..32u64);
                q.push(write(addr, fill), &mut d);
                expected.insert(addr, fill);
            } else {
                let group_len = rng.random_range(2..=5usize);
                let group: Vec<PendingWrite> = (0..group_len)
                    .map(|_| write(rng.random_range(0..32u64), fill))
                    .collect();
                for w in &group {
                    expected.insert(w.addr.index(), fill);
                }
                q.push_atomic(group, &mut d).unwrap();
            }
        }
        // Power loss: ADR drains the whole queue to media.
        q.flush(&mut d);
        assert!(q.is_empty(), "flush must leave nothing pending");
        for (&addr, &fill) in &expected {
            assert_eq!(
                d.read_line(LineAddr::new(addr)).0,
                [fill; 64],
                "line {addr} lost its last accepted write across power loss"
            );
        }
    }
}
