//! Chip-marking tests on the device: a marked-dead chip decodes as
//! erasures, and functional vs symbolic storage agree on the outcomes.

use soteria_ecc::CorrectionOutcome;
use soteria_nvm::device::NvmDimm;
use soteria_nvm::fault::{FaultFootprint, FaultKind, FaultRecord};
use soteria_nvm::geometry::DimmGeometry;
use soteria_nvm::LineAddr;

fn kill_chip(d: &mut NvmDimm, chip: u32) {
    let g = *d.geometry();
    d.inject_fault(FaultRecord::on_chip(
        &g,
        chip,
        FaultFootprint::WholeChip,
        FaultKind::Permanent,
    ));
}

#[test]
fn two_dead_chips_recovered_when_both_marked() {
    let g = DimmGeometry::tiny();
    let mut d = NvmDimm::chipkill(g);
    d.write_line(LineAddr::new(3), &[0x42; 64]);
    kill_chip(&mut d, 4);
    kill_chip(&mut d, 13);
    let (_, unmarked) = d.read_line(LineAddr::new(3));
    assert_eq!(unmarked, CorrectionOutcome::Uncorrectable);
    d.mark_chip(4);
    d.mark_chip(13);
    let (line, marked) = d.read_line(LineAddr::new(3));
    assert_eq!(line, [0x42; 64]);
    assert!(marked.is_usable(), "{marked:?}");
}

#[test]
fn symbolic_marking_matches_functional_with_both_marked() {
    let g = DimmGeometry::tiny();
    let scenario = |mut d: NvmDimm| {
        d.write_line(LineAddr::new(0), &[1u8; 64]);
        kill_chip(&mut d, 2);
        kill_chip(&mut d, 9);
        d.mark_chip(2);
        d.mark_chip(9);
        let (line, outcome) = d.read_line(LineAddr::new(0));
        (outcome.is_usable(), line)
    };
    let (f_ok, f_line) = scenario(NvmDimm::chipkill(g));
    let (s_ok, _) = scenario(NvmDimm::symbolic(g, 1));
    assert!(f_ok && s_ok);
    assert_eq!(f_line, [1u8; 64]);
}

#[test]
fn fully_marked_code_has_no_detection_margin() {
    // With e == 2t every parity symbol is consumed by the marked chips: a
    // THIRD dead chip is silently miscorrected by the real decoder (an
    // inherent MDS-code property), while the symbolic abstraction reports
    // it uncorrectable. Either way the data is not trustworthy — and in
    // the secure memory stack, the MAC layer is what catches the silent
    // case (§3.1's decoupling).
    let g = DimmGeometry::tiny();
    let mut functional = NvmDimm::chipkill(g);
    functional.write_line(LineAddr::new(0), &[1u8; 64]);
    for chip in [2, 9, 15] {
        kill_chip(&mut functional, chip);
    }
    functional.mark_chip(2);
    functional.mark_chip(9);
    let (line, outcome) = functional.read_line(LineAddr::new(0));
    let silently_wrong = outcome.is_usable() && line != [1u8; 64];
    let detected = !outcome.is_usable();
    assert!(
        silently_wrong || detected,
        "third dead chip must never decode correctly: {outcome:?}"
    );

    let mut symbolic = NvmDimm::symbolic(g, 1);
    symbolic.write_line(LineAddr::new(0), &[1u8; 64]);
    for chip in [2, 9, 15] {
        kill_chip(&mut symbolic, chip);
    }
    symbolic.mark_chip(2);
    symbolic.mark_chip(9);
    assert!(!symbolic.read_line(LineAddr::new(0)).1.is_usable());
}

#[test]
fn marking_a_healthy_chip_costs_budget() {
    // e + 2v <= 2t: with one healthy chip marked (e = 1) a fresh dead
    // chip (v = 1) exceeds the budget of RS(18,16).
    let g = DimmGeometry::tiny();
    let mut d = NvmDimm::symbolic(g, 1);
    d.write_line(LineAddr::new(0), &[0u8; 64]);
    d.mark_chip(7); // healthy but marked
    kill_chip(&mut d, 3);
    let (_, outcome) = d.read_line(LineAddr::new(0));
    assert_eq!(outcome, CorrectionOutcome::Uncorrectable);
}

#[test]
#[should_panic(expected = "out of range")]
fn mark_chip_bounds_checked() {
    NvmDimm::symbolic(DimmGeometry::tiny(), 1).mark_chip(18);
}
