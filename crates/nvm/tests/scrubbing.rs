//! Patrol-scrubbing tests: transient faults are cleansed by a scrub pass,
//! permanent ones survive it (and get reported).

use soteria_ecc::CorrectionOutcome;
use soteria_nvm::device::NvmDimm;
use soteria_nvm::fault::{FaultFootprint, FaultKind, FaultRecord};
use soteria_nvm::geometry::DimmGeometry;
use soteria_nvm::LineAddr;

#[test]
fn scrub_pass_cleanses_transients() {
    let g = DimmGeometry::tiny();
    let mut d = NvmDimm::chipkill(g);
    for i in 0..32 {
        d.write_line(LineAddr::new(i), &[i as u8; 64]);
    }
    d.inject_fault(FaultRecord::on_chip(
        &g,
        3,
        FaultFootprint::SingleBank { bank: 0 },
        FaultKind::Transient,
    ));
    let first = d.scrub_region(LineAddr::new(0), LineAddr::new(32));
    assert_eq!(first.scanned, 32);
    assert!(first.corrected > 0, "{first:?}");
    assert_eq!(first.uncorrectable, 0);
    // Second pass: everything clean (rewrites cleared the transient).
    let second = d.scrub_region(LineAddr::new(0), LineAddr::new(32));
    assert_eq!(second.corrected, 0, "{second:?}");
}

#[test]
fn scrub_reports_uncorrectable_without_touching() {
    let g = DimmGeometry::tiny();
    let mut d = NvmDimm::chipkill(g);
    d.write_line(LineAddr::new(0), &[7u8; 64]);
    for chip in [1u32, 12] {
        d.inject_fault(FaultRecord::on_chip(
            &g,
            chip,
            FaultFootprint::SingleBank { bank: 0 },
            FaultKind::Permanent,
        ));
    }
    let r = d.scrub_region(LineAddr::new(0), LineAddr::new(8));
    assert!(r.uncorrectable > 0, "{r:?}");
    // Permanent faults persist across scrubs.
    let (_, outcome) = d.read_line(LineAddr::new(0));
    assert_eq!(outcome, CorrectionOutcome::Uncorrectable);
}

#[test]
#[should_panic(expected = "beyond capacity")]
fn scrub_range_validated() {
    let g = DimmGeometry::tiny();
    let total = g.total_lines();
    NvmDimm::chipkill(g).scrub_region(LineAddr::new(0), LineAddr::new(total + 1));
}
