//! ECP-on-device tests: write-verify turns permanent single-bit faults
//! into repair pointers, freeing the ECC budget for fresh faults (§2.3's
//! "use ECP for hard failures" guidance).

use soteria_nvm::device::NvmDimm;
use soteria_nvm::fault::{FaultFootprint, FaultKind, FaultRecord};
use soteria_nvm::geometry::DimmGeometry;
use soteria_nvm::LineAddr;

fn stuck_bit_fault(g: &DimmGeometry, chip: u32, line: LineAddr, beat: u8, bit: u8) -> FaultRecord {
    let loc = g.locate(line);
    FaultRecord::on_chip(
        g,
        chip,
        FaultFootprint::SingleBit {
            bank: loc.bank,
            row: loc.row,
            col: loc.col,
            beat,
            bit,
        },
        FaultKind::Permanent,
    )
}

#[test]
fn ecp_neutralizes_stuck_bits_after_rewrite() {
    let g = DimmGeometry::tiny();
    let mut d = NvmDimm::chipkill(g);
    d.enable_ecp();
    let line = LineAddr::new(5);
    d.write_line(line, &[1u8; 64]);
    d.inject_fault(stuck_bit_fault(&g, 3, line, 0, 4));
    // Before any rewrite, the corruption is live but correctable by ECC.
    let (_, outcome) = d.read_line(line);
    assert!(matches!(
        outcome,
        soteria_ecc::CorrectionOutcome::Corrected { .. }
    ));
    // Rewrite: write-verify records the stuck cell; reads are now CLEAN
    // (the ECC never sees the bad bit).
    d.write_line(line, &[2u8; 64]);
    let (data, outcome) = d.read_line(line);
    assert_eq!(data, [2u8; 64]);
    assert_eq!(
        outcome,
        soteria_ecc::CorrectionOutcome::Clean,
        "ECP absorbs the stuck bit"
    );
    assert!(d.ecp_repaired_bits() > 0);
}

#[test]
fn ecp_restores_chipkill_headroom() {
    // Two stuck bits on DIFFERENT chips in the same beat defeat Chipkill
    // (two bad symbols) — unless ECP has already pinned them.
    let g = DimmGeometry::tiny();
    let line = LineAddr::new(9);
    let run = |ecp: bool| {
        let mut d = NvmDimm::chipkill(g);
        if ecp {
            d.enable_ecp();
        }
        d.write_line(line, &[7u8; 64]);
        d.inject_fault(stuck_bit_fault(&g, 2, line, 1, 0));
        d.inject_fault(stuck_bit_fault(&g, 10, line, 1, 7));
        d.write_line(line, &[7u8; 64]); // write-verify opportunity
        d.read_line(line).1
    };
    assert_eq!(run(false), soteria_ecc::CorrectionOutcome::Uncorrectable);
    assert_eq!(run(true), soteria_ecc::CorrectionOutcome::Clean);
}

#[test]
fn ecp_tracks_rewritten_values() {
    // The pointer stores the *correct* value, which changes per write.
    let g = DimmGeometry::tiny();
    let mut d = NvmDimm::chipkill(g);
    d.enable_ecp();
    let line = LineAddr::new(1);
    d.inject_fault(stuck_bit_fault(&g, 0, line, 0, 3));
    for fill in [0x00u8, 0xff, 0x5a, 0xa5] {
        d.write_line(line, &[fill; 64]);
        let (data, outcome) = d.read_line(line);
        assert_eq!(data, [fill; 64], "fill {fill:#x}");
        assert_eq!(outcome, soteria_ecc::CorrectionOutcome::Clean);
    }
}

#[test]
#[should_panic(expected = "functional storage")]
fn ecp_rejects_symbolic_devices() {
    NvmDimm::symbolic(DimmGeometry::tiny(), 1).enable_ecp();
}
