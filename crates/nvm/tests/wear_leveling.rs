//! Integration tests for start-gap wear leveling on the device: hot
//! logical lines must migrate across physical lines, data must survive
//! the migrations, and faults must keep applying to *physical* locations.

use soteria_nvm::device::NvmDimm;
use soteria_nvm::fault::{FaultFootprint, FaultKind, FaultRecord};
use soteria_nvm::geometry::DimmGeometry;
use soteria_nvm::LineAddr;

#[test]
fn data_survives_gap_rotation() {
    let mut d = NvmDimm::chipkill(DimmGeometry::tiny());
    d.enable_wear_leveling(4);
    // Populate every line, then hammer one of them to force many moves.
    let total = d.geometry().total_lines();
    for i in 0..total {
        d.write_line(LineAddr::new(i), &[i as u8; 64]);
    }
    for _ in 0..2000 {
        d.write_line(LineAddr::new(3), &[0x77; 64]);
    }
    assert!(d.leveler().unwrap().total_moves() > 100);
    // Every line still readable with correct content.
    let (hot, outcome) = d.read_line(LineAddr::new(3));
    assert_eq!(hot, [0x77; 64]);
    assert!(outcome.is_usable());
    for i in 0..total {
        if i == 3 {
            continue;
        }
        let (line, _) = d.read_line(LineAddr::new(i));
        assert_eq!(line, [i as u8; 64], "line {i} corrupted by gap moves");
    }
}

#[test]
fn leveling_spreads_physical_wear() {
    let run = |level: bool| {
        let mut d = NvmDimm::symbolic(DimmGeometry::tiny(), 1);
        if level {
            d.enable_wear_leveling(2);
        }
        for _ in 0..5000 {
            d.write_line(LineAddr::new(7), &[0u8; 64]);
        }
        d.wear().hottest().map(|(_, n)| n).unwrap_or(0)
    };
    let without = run(false);
    let with = run(true);
    assert_eq!(
        without, 5000,
        "unleveled: every write hits one physical line"
    );
    assert!(
        with < without / 5,
        "leveling must cap per-line wear: hottest {with} vs {without}"
    );
}

#[test]
fn faults_follow_physical_not_logical_lines() {
    // A permanent fault pinned to a physical location stops affecting a
    // logical line once the mapping rotates it away.
    let g = DimmGeometry::tiny();
    let mut d = NvmDimm::chipkill(g);
    d.enable_wear_leveling(8);
    d.write_line(LineAddr::new(0), &[1u8; 64]);
    // Fault on two chips at the *current* physical location of line 0.
    let loc = g.locate(LineAddr::new(0)); // identity at epoch 0 modulo start-gap initial state
    for chip in [0u32, 9] {
        d.inject_fault(FaultRecord::on_chip(
            &g,
            chip,
            FaultFootprint::SingleWord {
                bank: loc.bank,
                row: loc.row,
                col: loc.col,
                beat: 0,
            },
            FaultKind::Permanent,
        ));
    }
    let initially_ue = !d.read_line(LineAddr::new(0)).1.is_usable();
    // Rotate the mapping far enough that logical 0 sits elsewhere, and
    // refresh its content (the copy at the faulty location is abandoned).
    for _ in 0..(8 * (g.total_lines() + 2)) {
        d.write_line(LineAddr::new(1), &[2u8; 64]);
    }
    d.write_line(LineAddr::new(0), &[1u8; 64]);
    let (line, outcome) = d.read_line(LineAddr::new(0));
    assert!(
        outcome.is_usable(),
        "line 0 should have migrated off the faulty cells"
    );
    assert_eq!(line, [1u8; 64]);
    // Sanity: the fault really was biting at the start (start-gap begins
    // as the identity map, so the initial read must have been UE).
    assert!(initially_ue, "fault should cover line 0's initial location");
}

#[test]
#[should_panic(expected = "before first write")]
fn leveling_must_be_enabled_before_writes() {
    let mut d = NvmDimm::chipkill(DimmGeometry::tiny());
    d.write_line(LineAddr::new(0), &[0u8; 64]);
    d.enable_wear_leveling(4);
}
