//! `soteria` — the command-line face of the Soteria secure-NVM simulator.
//!
//! ```text
//! soteria info                          # configs (Tables 2/3/4), layout math
//! soteria perf --workload pmemkv --ops 200000 --scheme sac --cores 4
//! soteria campaign --fit 80 --iters 100000 [--ecc secded] [--tree bmt] [--scrub 24]
//! soteria compare --iters 512 --ops 2048 # every scheme: UDR + slowdown matrix
//! soteria rare --fit 80 --samples 3000  # importance-sampled clone UDR
//! soteria crash-demo --scheme src [--fault]
//! ```

mod args;

use std::process::ExitCode;

use args::Args;
use soteria::analysis::ExpectedLossModel;
use soteria::clone::CloningPolicy;
use soteria::recovery::recover;
use soteria::{DataAddr, SecureMemoryConfig, SecureMemoryController};
use soteria_faultsim::{
    cluster_mtbf_hours, estimate_clone_udr, report_json, run_campaign_traced, run_compare,
    run_crashck, CampaignConfig, CompareConfig, CrashckConfig, STANDARD_POLICIES,
};
use soteria_faultsim::job::{parse_ecc, parse_tree};
use soteria_rt::json::Json;
use soteria_svc::http::ReadLimits;
use soteria_svc::{
    client, fleet, submit_burst, Coordinator, FleetConfig, LoadReport, Server, ServerConfig,
};
use soteria_simcpu::{System, SystemConfig};
use soteria_workloads::{standard_suite, SuiteConfig, Workload};

/// Every subcommand with its one-line description — the single source
/// behind `help`, `--help`, and the unknown-command listing. The
/// dispatcher in [`run`] must have an arm per entry (a unit test cross
/// checks the usage text against this table).
const COMMANDS: &[(&str, &str)] = &[
    ("info", "print configurations and layout math"),
    ("perf", "run a workload through the simulated system"),
    ("campaign", "Monte Carlo fault campaign (FaultSim-style)"),
    ("compare", "sweep every protection scheme: UDR + slowdown matrix"),
    ("rare", "rare-event clone-UDR estimate"),
    ("record", "capture a workload's memory trace to a file"),
    ("crash-demo", "write, crash, optionally break metadata, recover"),
    ("crashck", "exhaustive crash-point consistency sweep (WPQ/ADR)"),
    ("trace-validate", "check an NDJSON trace for shape & ordering"),
    ("serve", "run the campaign service (HTTP API over a job queue)"),
    ("submit", "send a campaign to a server and fetch its artifacts"),
    ("http", "one-shot HTTP request against a running server"),
    ("loadgen", "concurrent submission burst to exercise backpressure"),
    ("coordinate", "shard a job across fleet workers, merge identical bytes"),
    ("worker", "serve jobs and register with a fleet coordinator"),
    ("help", "show this command listing"),
];

/// The `COMMANDS:` block shown by help and after an unknown command.
fn command_listing() -> String {
    let mut out = String::from("COMMANDS:\n");
    for (name, one_liner) in COMMANDS {
        out.push_str(&format!("  {name:<15}{one_liner}\n"));
    }
    out
}

const OPTION_DETAILS: &str = "\
OPTIONS (by command):
  perf
      --workload NAME          suite workload (default sps; try `soteria info`)
      --ops N                  memory operations per core (default 100000)
      --scheme S               baseline | src | sac (default src)
      --cores N                co-running copies (default 1)
      --trace PATH             replay a recorded trace instead of a workload
      --metrics                print a controller metrics snapshot
  campaign
      --fit F                  FIT per chip (default 80)
      --iters N                iterations (default 100000)
      --ecc E                  secded | chipkill | double (default chipkill)
      --tree T                 toc | bmt (default toc)
      --scrub HOURS            patrol-scrub interval (default: off)
      --seed S                 RNG seed, decimal or 0x-hex (default Table 4)
      --capacity BYTES         protected capacity (default 16 GiB)
      --threads N              worker threads (result & trace are identical
                               for any N; default: all cores)
      --trace PATH             write a deterministic NDJSON event trace
      --json PATH              write results + metrics snapshot as JSON
  compare
      --fit F                  FIT per chip (default 1500)
      --iters N                Monte Carlo iterations (default 512)
      --ops N                  slowdown-trace operations (default 2048)
      --seed S                 RNG seed, decimal or 0x-hex
      --capacity BYTES         protected capacity (default 64 MiB)
      --threads N              worker threads (artifacts are byte-identical
                               for any N; default 1)
      --json PATH              write the soteria-compare/v1 matrix
      --ndjson PATH            write per-iteration UDR + per-scheme records
  rare
      --fit F                  FIT per chip (default 80)
      --samples N              samples per conditioned k (default 3000)
  record
      --workload NAME          suite workload (default sps)
      --ops N                  operations to record (default 100000)
      --out PATH               output file (default workload.trace)
  crash-demo
      --scheme S               baseline | src | sac (default src)
      --fault                  inject a 2-chip fault into a counter block
      --trace PATH             write the controller/recovery event trace
  crashck
      --seed S                 script-stream seed, decimal or 0x-hex
      --scripts N              transaction scripts per matrix cell (default 2,
                               env SOTERIA_CRASHCK_SCRIPTS)
      --txns N                 max transactions per script (default 6,
                               env SOTERIA_CRASHCK_TXNS)
      --writes N               max writes per transaction (default 3,
                               env SOTERIA_CRASHCK_WRITES)
      --threads N              worker threads (report is byte-identical
                               for any N; default: all cores)
      --json PATH              write the soteria-crashck/v1 report
      --ndjson PATH            write one NDJSON record per sweep
  trace-validate
      --file PATH              trace file to validate
  serve
      --addr A                 listen address (default 127.0.0.1:7787; port 0
                               picks an ephemeral port)
      --workers N              campaign worker threads (default 2)
      --queue N                queued-job capacity before 429 (default 8)
      --max-body BYTES         request body limit (default 1048576)
      --read-timeout-ms N      per-connection read timeout (default 5000)
      --port-file PATH         write the bound address for scripts
  submit                       (campaign options: --fit --iters --ecc --tree
                                --scrub --seed --threads --capacity; the
                                server's defaults are Table 4 with 10000
                                iterations)
      --addr A                 server address (default 127.0.0.1:7787)
      --out PATH               write the result JSON (default: stdout)
      --trace-out PATH         also fetch and write the NDJSON trace
      --poll-ms N              status poll interval (default 50)
      --timeout-s N            give up after this long (default 600)
  http
      --addr A                 server address (default 127.0.0.1:7787)
      --method M               request method (default GET)
      --path P                 request path (default /healthz)
      --body JSON              request body (sent as application/json)
  loadgen                      (campaign options as for submit)
      --addr A                 server address (default 127.0.0.1:7787)
      --clients N              concurrent submitters (default 16)
      --targets LIST           comma-separated host:port list; clients are
                               fanned out round-robin across the targets
                               (overrides --addr)
  coordinate                   (job options per --kind: campaign flags as
                                for submit; compare: --fit --iters --ops
                                --seed --threads --capacity; crashck:
                                --seed --scripts --txns --writes --threads)
      --kind K                 campaign | compare | crashck (default campaign)
      --addr A                 control-plane listen address (default
                               127.0.0.1:7799; port 0 picks an ephemeral one)
      --min-workers N          registrations to wait for before sharding
                               (default 1)
      --chunk N                accumulation blocks per lease (default 4)
      --register-timeout-s N   how long to wait for the starting quorum
                               (default 30)
      --out PATH               write the merged result JSON (default: stdout)
      --ndjson PATH            write the merged NDJSON artifact
      --port-file PATH         write the bound control address for scripts
  worker                       (server options as for serve)
      --coordinator A          coordinator control-plane address (required)
      --advertise A            address the coordinator should dial back
                               (default: the bound listen address)
";

fn usage() -> String {
    format!(
        "soteria — resilient integrity-protected & encrypted NVM simulator (MICRO'21 reproduction)\n\
         \nUSAGE: soteria <command> [--option value ...]\n\n{}\n{}",
        command_listing(),
        OPTION_DETAILS
    )
}

fn scheme_of(name: &str) -> Result<CloningPolicy, String> {
    match name {
        "baseline" | "none" => Ok(CloningPolicy::None),
        "src" | "relaxed" => Ok(CloningPolicy::Relaxed),
        "sac" | "aggressive" => Ok(CloningPolicy::Aggressive),
        other => Err(format!("unknown scheme '{other}' (baseline|src|sac)")),
    }
}

fn cmd_info() {
    println!("== Table 2: cloning depths (9-level / 1 TB tree) ==");
    for policy in [CloningPolicy::Relaxed, CloningPolicy::Aggressive] {
        let depths: Vec<String> = (1..=9).map(|l| policy.depth(l, 9).to_string()).collect();
        println!("  {:>3}: L1..L9 = {}", policy.name(), depths.join(" "));
    }
    println!("\n== Table 3: simulated system ==");
    println!("  4-core x86 2.67 GHz | L1 32kB/2w | L2 512kB/8w | LLC 8MB/64w");
    println!("  PCM 150/300 ns | AES-CTR, 64-ary split counters | ToC arity 8");
    println!("  metadata cache 512 kB 8-way");
    println!("\n== Table 4: FaultSim DIMM ==");
    println!("  18 chips (9/rank x 2) | 16 banks | 16384 rows | 4096 cols | Chipkill");
    println!("\n== expected-loss amplification (Fig. 3 model) ==");
    for cap in [16u64 << 30, 1 << 40, 4 << 40] {
        let m = ExpectedLossModel::new(cap);
        println!(
            "  {:>5} GiB: {} levels, secure memory {:.1}x less resilient",
            cap >> 30,
            m.levels(),
            m.amplification()
        );
    }
    let suite = standard_suite(&SuiteConfig::default());
    let names: Vec<&str> = suite.iter().map(|w| w.name()).collect();
    println!("\n== workloads ==\n  {}", names.join(", "));
}

fn cmd_perf(args: &Args) -> Result<(), String> {
    let name = args.get_or("workload", "sps").to_string();
    let ops = args.get_num("ops", 100_000u64).map_err(|e| e.to_string())?;
    let cores = args.get_num("cores", 1usize).map_err(|e| e.to_string())?;
    let policy = scheme_of(args.get_or("scheme", "src"))?;
    let suite_config = SuiteConfig {
        footprint_bytes: 64 << 20,
        seed: 0xda7a,
    };
    let mut instances: Vec<Box<dyn Workload>> = if let Some(trace_path) = args.get("trace") {
        (0..cores)
            .map(|_| {
                soteria_workloads::trace::ReplayWorkload::open(trace_path)
                    .map(|w| Box::new(w) as Box<dyn Workload>)
                    .map_err(|e| format!("trace '{trace_path}': {e}"))
            })
            .collect::<Result<_, _>>()?
    } else {
        let available: Vec<String> = standard_suite(&suite_config)
            .iter()
            .map(|w| w.name().to_string())
            .collect();
        if !available.iter().any(|n| n == &name) {
            return Err(format!(
                "unknown workload '{name}'; available: {available:?}"
            ));
        }
        (0..cores)
            .map(|i| {
                let cfg = SuiteConfig {
                    footprint_bytes: 64 << 20,
                    seed: 0xda7a ^ i as u64,
                };
                standard_suite(&cfg)
                    .into_iter()
                    .find(|w| w.name() == name)
                    .expect("validated above")
            })
            .collect()
    };
    let mut system = System::with_cores(SystemConfig::table3(policy, 64 << 20), cores);
    if args.has_flag("metrics") {
        system.controller_mut().enable_obs();
    }
    let r = {
        let mut refs: Vec<&mut dyn Workload> = instances
            .iter_mut()
            .map(|w| &mut **w as &mut dyn Workload)
            .collect();
        system.run_multi(&mut refs, ops)
    };
    println!(
        "workload {} | scheme {} | {} cores | {} ops total",
        r.workload, r.scheme, cores, r.ops
    );
    println!("cycles        : {}", r.cycles);
    println!("NVM reads     : {}", r.nvm_reads);
    println!("NVM writes    : {}", r.nvm_writes);
    println!("evictions/op  : {:.3}%", r.evictions_per_op() * 100.0);
    println!("md-cache miss : {:.2}%", r.metadata_miss_ratio * 100.0);
    let stats = system.controller().stats();
    println!(
        "write breakdown: cipher {} | mac {} | shadow {} | evict {} | leaf-mac {} | clone {} | reenc {}",
        stats.writes.cipher,
        stats.writes.data_mac,
        stats.writes.shadow,
        stats.writes.eviction,
        stats.writes.leaf_mac,
        stats.writes.clone,
        stats.writes.reencrypt,
    );
    if args.has_flag("metrics") {
        println!(
            "metrics snapshot:\n{}",
            system.controller().metrics_snapshot().to_pretty_string()
        );
    }
    Ok(())
}

fn cmd_campaign(args: &Args) -> Result<(), String> {
    let fit = args.get_num("fit", 80.0f64).map_err(|e| e.to_string())?;
    let iters = args
        .get_num("iters", 100_000u64)
        .map_err(|e| e.to_string())?;
    let mut config = CampaignConfig::table4(fit);
    config.iterations = iters;
    config.correctable_chips = parse_ecc(args.get_or("ecc", "chipkill"))?;
    config.tree = parse_tree(args.get_or("tree", "toc"))?;
    if let Some(s) = args.get("scrub") {
        config.scrub_interval_hours =
            Some(s.parse().map_err(|_| format!("bad scrub interval '{s}'"))?);
    }
    if let Some(s) = args.get("seed") {
        config.seed = parse_seed(s)?;
    }
    config.capacity_bytes = args
        .get_num("capacity", config.capacity_bytes)
        .map_err(|e| e.to_string())?;
    if let Some(t) = args.get("threads") {
        config.threads = t
            .parse::<usize>()
            .ok()
            .filter(|&n| n > 0)
            .ok_or_else(|| format!("bad thread count '{t}'"))?;
    }
    let trace_path = args.get("trace").map(str::to_string);
    let json_path = args.get("json").map(str::to_string);
    config.trace = trace_path.is_some() || json_path.is_some();
    println!(
        "FIT {fit}/chip -> 20k-node cluster MTBF {:.1} h | {iters} iterations | 5 years",
        cluster_mtbf_hours(fit, 20_000, 4, 18)
    );
    let (results, trace) = run_campaign_traced(&config, &STANDARD_POLICIES);
    println!(
        "{:>9} | {:>12} | {:>12} | {:>14}",
        "scheme", "mean UDR", "L_error", "iters w/ UDR"
    );
    println!("{}", "-".repeat(58));
    for r in &results {
        println!(
            "{:>9} | {:>12.3e} | {:>12.3e} | {:>14}",
            r.policy.name(),
            r.mean_udr,
            r.mean_error_ratio,
            r.iterations_with_udr
        );
    }
    println!(
        "({} of {} iterations saw faults; {} defeated the ECC somewhere)",
        results[0].iterations_with_faults, results[0].iterations, results[0].iterations_with_ue
    );
    if let Some(path) = &trace_path {
        std::fs::write(path, trace.export_ndjson())
            .map_err(|e| format!("writing trace '{path}': {e}"))?;
        println!(
            "trace: {} events to {path}{}",
            trace.len(),
            if trace.dropped() > 0 {
                format!(" ({} dropped by the ring)", trace.dropped())
            } else {
                String::new()
            }
        );
    }
    if let Some(path) = &json_path {
        // `report_json` is shared with the service, so these bytes are
        // identical to `GET /v1/jobs/{id}/result` for the same config.
        let doc = report_json(&config, &results, &trace);
        std::fs::write(path, doc.to_pretty_string())
            .map_err(|e| format!("writing json '{path}': {e}"))?;
        println!("results + metrics snapshot to {path}");
    }
    Ok(())
}

fn cmd_compare(args: &Args) -> Result<(), String> {
    let defaults = CompareConfig::default();
    let mut config = CompareConfig {
        fit_per_chip: args
            .get_num("fit", defaults.fit_per_chip)
            .map_err(|e| e.to_string())?,
        iterations: args
            .get_num("iters", defaults.iterations)
            .map_err(|e| e.to_string())?,
        trace_ops: args
            .get_num("ops", defaults.trace_ops)
            .map_err(|e| e.to_string())?,
        capacity_bytes: args
            .get_num("capacity", defaults.capacity_bytes)
            .map_err(|e| e.to_string())?,
        ..defaults
    };
    if let Some(s) = args.get("seed") {
        config.seed = parse_seed(s)?;
    }
    if let Some(t) = args.get("threads") {
        config.threads = t
            .parse::<usize>()
            .ok()
            .filter(|&n| n > 0)
            .ok_or_else(|| format!("bad thread count '{t}'"))?;
    }
    println!(
        "comparing every registered scheme: FIT {}/chip, {} iterations, \
         {}-op trace, seed {:#x}",
        config.fit_per_chip, config.iterations, config.trace_ops, config.seed
    );
    let out = run_compare(&config);
    println!(
        "{:>10} | {:>8} | {:>9} | {:>7} | {:>12} | {:>9} | {:>8} | {:>12}",
        "scheme", "cloning", "tree", "recov", "mean UDR", "WA", "slowdown", "recovery ns"
    );
    println!("{}", "-".repeat(96));
    for r in &out.rows {
        println!(
            "{:>10} | {:>8} | {:>9} | {:>7} | {:>12.3e} | {:>9.3} | {:>8.3} | {:>12}",
            r.scheme,
            r.cloning,
            r.tree_update,
            r.recovery,
            r.mean_udr,
            r.write_amplification,
            r.slowdown,
            r.recovery_est_ns
        );
    }
    println!(
        "({} of {} iterations saw faults; {} defeated the ECC somewhere)",
        out.iterations_with_faults, config.iterations, out.iterations_with_ue
    );
    if let Some(path) = args.get("json") {
        std::fs::write(path, &out.result_json)
            .map_err(|e| format!("writing json '{path}': {e}"))?;
        println!("compare matrix to {path}");
    }
    if let Some(path) = args.get("ndjson") {
        std::fs::write(path, &out.ndjson)
            .map_err(|e| format!("writing ndjson '{path}': {e}"))?;
        println!("per-iteration records to {path}");
    }
    Ok(())
}

fn cmd_rare(args: &Args) -> Result<(), String> {
    let fit = args.get_num("fit", 80.0f64).map_err(|e| e.to_string())?;
    let samples = args
        .get_num("samples", 3000u64)
        .map_err(|e| e.to_string())?;
    let config = CampaignConfig::table4(fit);
    let results = estimate_clone_udr(
        &config,
        &[CloningPolicy::Relaxed, CloningPolicy::Aggressive],
        samples,
        5,
    );
    println!(
        "conditioned on k >= 2 bank-scale faults (lambda = {:.4}), {samples} samples/k",
        results[0].lambda_large
    );
    for r in &results {
        println!("  {:>3}: UDR = {:.3e}", r.policy.name(), r.mean_udr);
    }
    Ok(())
}

fn cmd_crash_demo(args: &Args) -> Result<(), String> {
    let policy = scheme_of(args.get_or("scheme", "src"))?;
    let inject = args.has_flag("fault");
    let config = SecureMemoryConfig::builder()
        .capacity_bytes(1 << 20)
        .metadata_cache(16 * 1024, 8)
        .cloning(policy.clone())
        .build()
        .map_err(|e| e.to_string())?;
    let mut memory = SecureMemoryController::new(config);
    let trace_path = args.get("trace").map(str::to_string);
    if trace_path.is_some() {
        memory.enable_obs();
    }
    println!("writing 128 lines under {} ...", policy.name());
    for i in 0..128u64 {
        memory
            .write(
                DataAddr::new(i * 64 % memory.layout().data_lines()),
                &[i as u8; 64],
            )
            .map_err(|e| e.to_string())?;
    }
    println!("power loss!");
    let mut image = memory.crash();
    if inject {
        println!("... and a two-chip uncorrectable error hits counter block L1[0] while down");
        let layout = image.config().build_layout();
        let target = layout.meta_addr(soteria::MetaId::new(1, 0));
        let loc = image.device_mut().geometry().locate(target);
        for chip in [1u32, 10] {
            let g = *image.device_mut().geometry();
            image
                .device_mut()
                .inject_fault(soteria_nvm::fault::FaultRecord::on_chip(
                    &g,
                    chip,
                    soteria_nvm::fault::FaultFootprint::SingleWord {
                        bank: loc.bank,
                        row: loc.row,
                        col: loc.col,
                        beat: 0,
                    },
                    soteria_nvm::fault::FaultKind::Permanent,
                ));
        }
    }
    let (mut memory, report) = recover(image);
    println!("recovery report:");
    println!("  shadow root intact : {}", report.shadow_root_intact);
    println!("  entries seen       : {}", report.entries_seen);
    println!("  blocks restored    : {}", report.blocks_restored);
    println!("  Osiris-recovered   : {}", report.counters_recovered);
    println!("  clone repairs      : {}", report.clone_repairs);
    println!("  stale entries      : {}", report.stale_entries);
    println!(
        "  unverifiable       : {} blocks / {} lines",
        report.unverifiable.len(),
        report.unverifiable_lines()
    );
    println!(
        "  est. duration      : {:.3} ms",
        report.estimated_duration_ns() as f64 / 1e6
    );
    let mut ok = 0;
    let mut lost = 0;
    for i in 0..128u64 {
        match memory.read(DataAddr::new(i * 64 % memory.layout().data_lines())) {
            Ok(line) if line == [i as u8; 64] => ok += 1,
            _ => lost += 1,
        }
    }
    println!("post-recovery readback: {ok} intact, {lost} lost");
    if inject && policy == CloningPolicy::None {
        println!("(the baseline loses the faulted block's coverage; rerun with --scheme src)");
    }
    if let Some(path) = &trace_path {
        // The trace survives the crash with the controller, so this one
        // file spans pre-crash writes, recovery, and readback.
        let ndjson = memory.export_trace_ndjson();
        let events = ndjson.lines().count();
        std::fs::write(path, ndjson).map_err(|e| format!("writing trace '{path}': {e}"))?;
        println!("trace: {events} events to {path}");
    }
    Ok(())
}

/// A bound for `crashck`, resolved flag > env knob > built-in default —
/// the env knobs let CI pick smoke vs nightly scale without editing the
/// workflow's command line.
fn crashck_bound(args: &Args, flag: &str, env_key: &str, default: usize) -> Result<usize, String> {
    if let Some(v) = args.get(flag) {
        return v
            .parse::<usize>()
            .ok()
            .filter(|&n| n > 0)
            .ok_or_else(|| format!("bad {flag} '{v}'"));
    }
    match std::env::var(env_key) {
        Ok(v) => v
            .parse::<usize>()
            .ok()
            .filter(|&n| n > 0)
            .ok_or_else(|| format!("bad {env_key} '{v}'")),
        Err(_) => Ok(default),
    }
}

fn cmd_crashck(args: &Args) -> Result<(), String> {
    let mut config = CrashckConfig::default();
    if let Some(s) = args.get("seed") {
        config.seed = parse_seed(s)?;
    }
    config.scripts_per_cell =
        crashck_bound(args, "scripts", "SOTERIA_CRASHCK_SCRIPTS", config.scripts_per_cell)?;
    config.max_txns = crashck_bound(args, "txns", "SOTERIA_CRASHCK_TXNS", config.max_txns)?;
    config.max_writes = crashck_bound(args, "writes", "SOTERIA_CRASHCK_WRITES", config.max_writes)?;
    config.threads = match args.get("threads") {
        Some(t) => t
            .parse::<usize>()
            .ok()
            .filter(|&n| n > 0)
            .ok_or_else(|| format!("bad thread count '{t}'"))?,
        None => std::thread::available_parallelism().map_or(1, |n| n.get()),
    };
    println!(
        "crashck: TreeUpdate x CloningPolicy x {{anubis,osiris}} matrix, \
         {} scripts/cell, <= {} txns x {} writes, seed {:#x}",
        config.scripts_per_cell, config.max_txns, config.max_writes, config.seed
    );
    let out = run_crashck(&config);
    println!(
        "swept {} crash points over {} scripts across {} cells",
        out.points, out.scripts, out.cells
    );
    if let Some(path) = args.get("json") {
        std::fs::write(path, &out.result_json)
            .map_err(|e| format!("writing json '{path}': {e}"))?;
        println!("report to {path}");
    }
    if let Some(path) = args.get("ndjson") {
        std::fs::write(path, &out.ndjson)
            .map_err(|e| format!("writing ndjson '{path}': {e}"))?;
        println!("sweep records to {path}");
    }
    if out.divergences.is_empty() {
        println!("every crash point observed a prefix of committed transactions: OK");
        return Ok(());
    }
    for d in &out.divergences {
        eprintln!(
            "DIVERGENCE cell {} seed {:#018x} point {}: {}\n  script: {}\n-- trace tail --\n{}",
            d.cell, d.seed, d.point, d.reason, d.script, d.trace_tail
        );
    }
    Err(format!(
        "{} crash point(s) violated the atomic-commit contract",
        out.divergences.len()
    ))
}

fn cmd_trace_validate(args: &Args) -> Result<(), String> {
    let path = args
        .get("file")
        .ok_or("trace-validate needs --file PATH")?;
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("reading '{path}': {e}"))?;
    let events = soteria_rt::obs::parse_ndjson(&text).map_err(|e| format!("{path}: {e}"))?;
    let mut domains: Vec<(&str, u64)> = Vec::new();
    for ev in &events {
        let d = ev.get("domain").and_then(Json::as_str).unwrap_or("?");
        match domains.iter_mut().find(|(n, _)| *n == d) {
            Some((_, c)) => *c += 1,
            None => domains.push((d, 1)),
        }
    }
    println!("{path}: {} events, valid NDJSON, per-domain seq monotonic", events.len());
    for (d, c) in domains {
        println!("  {d:>10}: {c} events");
    }
    Ok(())
}

/// Parses a seed given as decimal or `0x`-prefixed hex.
fn parse_seed(s: &str) -> Result<u64, String> {
    match s.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => s.parse(),
    }
    .map_err(|_| format!("bad seed '{s}' (decimal or 0x-hex)"))
}

/// Builds a `/v1/campaigns` request body from the campaign flags the
/// user actually passed — unset fields fall to the server's Table-4
/// defaults, mirroring `soteria campaign`.
fn campaign_body(args: &Args) -> Result<Json, String> {
    let mut fields: Vec<(String, Json)> = Vec::new();
    let push_num = |key: &str, field: &str, fields: &mut Vec<(String, Json)>| {
        if let Some(v) = args.get(key) {
            let n: f64 = v
                .parse()
                .map_err(|_| format!("option --{key}: '{v}' is not a valid number"))?;
            fields.push((field.into(), Json::Num(n)));
        }
        Ok::<(), String>(())
    };
    push_num("fit", "fit", &mut fields)?;
    push_num("iters", "iterations", &mut fields)?;
    push_num("scrub", "scrub_hours", &mut fields)?;
    push_num("threads", "threads", &mut fields)?;
    push_num("capacity", "capacity_bytes", &mut fields)?;
    if let Some(e) = args.get("ecc") {
        parse_ecc(e)?; // fail here, not server-side
        fields.push(("ecc".into(), Json::Str(e.into())));
    }
    if let Some(t) = args.get("tree") {
        parse_tree(t)?;
        fields.push(("tree".into(), Json::Str(t.into())));
    }
    if let Some(s) = args.get("seed") {
        fields.push(("seed".into(), Json::Num(parse_seed(s)? as f64)));
    }
    Ok(Json::Obj(fields))
}

/// Builds a `compare` config body from the flags the user passed, using
/// the service's field names (`soteria_faultsim::compare_config_from_json`).
fn compare_body(args: &Args) -> Result<Json, String> {
    let mut fields: Vec<(String, Json)> = Vec::new();
    let push_num = |key: &str, field: &str, fields: &mut Vec<(String, Json)>| {
        if let Some(v) = args.get(key) {
            let n: f64 = v
                .parse()
                .map_err(|_| format!("option --{key}: '{v}' is not a valid number"))?;
            fields.push((field.into(), Json::Num(n)));
        }
        Ok::<(), String>(())
    };
    push_num("fit", "fit", &mut fields)?;
    push_num("iters", "iterations", &mut fields)?;
    push_num("ops", "trace_ops", &mut fields)?;
    push_num("threads", "threads", &mut fields)?;
    push_num("capacity", "capacity_bytes", &mut fields)?;
    if let Some(s) = args.get("seed") {
        fields.push(("seed".into(), Json::Num(parse_seed(s)? as f64)));
    }
    Ok(Json::Obj(fields))
}

/// Builds a `crashck` config body from the flags the user passed, using
/// the service's field names (`soteria_faultsim::crashck_config_from_json`).
fn crashck_body(args: &Args) -> Result<Json, String> {
    let mut fields: Vec<(String, Json)> = Vec::new();
    let push_num = |key: &str, field: &str, fields: &mut Vec<(String, Json)>| {
        if let Some(v) = args.get(key) {
            let n: f64 = v
                .parse()
                .map_err(|_| format!("option --{key}: '{v}' is not a valid number"))?;
            fields.push((field.into(), Json::Num(n)));
        }
        Ok::<(), String>(())
    };
    push_num("scripts", "scripts_per_cell", &mut fields)?;
    push_num("txns", "max_txns", &mut fields)?;
    push_num("writes", "max_writes", &mut fields)?;
    push_num("threads", "threads", &mut fields)?;
    if let Some(s) = args.get("seed") {
        fields.push(("seed".into(), Json::Num(parse_seed(s)? as f64)));
    }
    Ok(Json::Obj(fields))
}

/// Renders a non-2xx response as the server's one-line error message.
fn http_failure(resp: &client::HttpResponse) -> String {
    let detail = resp
        .json()
        .ok()
        .and_then(|doc| doc.get("error").and_then(Json::as_str).map(str::to_string))
        .unwrap_or_else(|| resp.text().trim().to_string());
    format!("server said HTTP {}: {detail}", resp.status)
}

fn cmd_serve(args: &Args) -> Result<(), String> {
    let addr = args.get_or("addr", "127.0.0.1:7787").to_string();
    let workers = args.get_num("workers", 2usize).map_err(|e| e.to_string())?;
    let queue = args.get_num("queue", 8usize).map_err(|e| e.to_string())?;
    let max_body = args
        .get_num("max-body", 1024 * 1024usize)
        .map_err(|e| e.to_string())?;
    let read_timeout_ms = args
        .get_num("read-timeout-ms", 5000u64)
        .map_err(|e| e.to_string())?;
    let config = ServerConfig {
        workers,
        queue_capacity: queue,
        retry_after_secs: 1,
        read_timeout: std::time::Duration::from_millis(read_timeout_ms),
        limits: ReadLimits {
            max_head_bytes: 16 * 1024,
            max_body_bytes: max_body,
        },
    };
    let server = Server::bind(&*addr, config).map_err(|e| format!("binding '{addr}': {e}"))?;
    let local = server.local_addr();
    if let Some(path) = args.get("port-file") {
        std::fs::write(path, format!("{local}\n"))
            .map_err(|e| format!("writing port file '{path}': {e}"))?;
    }
    println!("soteria-svc listening on {local} ({workers} workers, queue capacity {queue})");
    println!("POST /v1/shutdown (or `soteria http --method POST --path /v1/shutdown`) drains and exits");
    let handle = server.handle();
    server.serve();
    println!("drained: {} job(s) accepted over this run", handle.job_count());
    Ok(())
}

fn cmd_submit(args: &Args) -> Result<(), String> {
    let addr = args.get_or("addr", "127.0.0.1:7787").to_string();
    let body = campaign_body(args)?;
    let resp = client::post_json(&*addr, "/v1/campaigns", &body)
        .map_err(|e| format!("connecting to {addr}: {e}"))?;
    if resp.status != 202 {
        return Err(http_failure(&resp));
    }
    let id = resp
        .json()?
        .get("job")
        .and_then(Json::as_f64)
        .ok_or("submit response missing 'job' id")? as u64;
    let poll = args.get_num("poll-ms", 50u64).map_err(|e| e.to_string())?;
    let timeout = args.get_num("timeout-s", 600u64).map_err(|e| e.to_string())?;
    eprintln!("job {id} accepted by {addr}; polling every {poll} ms");
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(timeout);
    loop {
        let status = client::get(&*addr, &format!("/v1/jobs/{id}"))
            .map_err(|e| format!("polling {addr}: {e}"))?;
        if status.status != 200 {
            return Err(http_failure(&status));
        }
        let doc = status.json()?;
        match doc.get("status").and_then(Json::as_str) {
            Some("done") => break,
            Some("failed") => {
                let why = doc
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("campaign panicked");
                return Err(format!("job {id} failed: {why}"));
            }
            _ => {
                if std::time::Instant::now() > deadline {
                    return Err(format!("job {id} still not done after {timeout}s"));
                }
                std::thread::sleep(std::time::Duration::from_millis(poll));
            }
        }
    }
    let result = client::get(&*addr, &format!("/v1/jobs/{id}/result"))
        .map_err(|e| format!("fetching result: {e}"))?;
    if result.status != 200 {
        return Err(http_failure(&result));
    }
    match args.get("out") {
        Some(path) => {
            std::fs::write(path, &result.body)
                .map_err(|e| format!("writing result '{path}': {e}"))?;
            eprintln!("result to {path}");
        }
        None => print!("{}", result.text()),
    }
    if let Some(path) = args.get("trace-out") {
        let trace = client::get(&*addr, &format!("/v1/jobs/{id}/trace"))
            .map_err(|e| format!("fetching trace: {e}"))?;
        if trace.status != 200 {
            return Err(http_failure(&trace));
        }
        std::fs::write(path, &trace.body)
            .map_err(|e| format!("writing trace '{path}': {e}"))?;
        eprintln!("trace to {path}");
    }
    Ok(())
}

fn cmd_http(args: &Args) -> Result<(), String> {
    let addr = args.get_or("addr", "127.0.0.1:7787");
    let method = args.get_or("method", "GET");
    let path = args.get_or("path", "/healthz");
    let body = args
        .get("body")
        .map(|b| ("application/json", b.as_bytes()));
    let resp = client::request(addr, method, path, body)
        .map_err(|e| format!("{method} {addr}{path}: {e}"))?;
    eprintln!("HTTP {} {}", resp.status, resp.reason);
    use std::io::Write as _;
    std::io::stdout()
        .write_all(&resp.body)
        .map_err(|e| e.to_string())?;
    if resp.status >= 400 {
        return Err(http_failure(&resp));
    }
    Ok(())
}

/// Resolves a `host:port` list (comma-separated) to socket addresses.
fn parse_targets(spec: &str) -> Result<Vec<std::net::SocketAddr>, String> {
    use std::net::ToSocketAddrs;
    let targets: Vec<std::net::SocketAddr> = spec
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.to_socket_addrs()
                .map_err(|e| format!("resolving '{s}': {e}"))?
                .next()
                .ok_or_else(|| format!("'{s}' resolves to no address"))
        })
        .collect::<Result<_, _>>()?;
    if targets.is_empty() {
        return Err("--targets needs at least one host:port".into());
    }
    Ok(targets)
}

/// Deals `clients` across `targets` round-robin: target `i` takes
/// client `i`, `i + targets`, `i + 2*targets`, … so the shares differ
/// by at most one.
fn split_round_robin(clients: usize, targets: usize) -> Vec<usize> {
    (0..targets)
        .map(|i| clients / targets + usize::from(i < clients % targets))
        .collect()
}

fn cmd_loadgen(args: &Args) -> Result<(), String> {
    use std::net::ToSocketAddrs;
    let clients = args.get_num("clients", 16usize).map_err(|e| e.to_string())?;
    let body = campaign_body(args)?;
    let targets = match args.get("targets") {
        Some(spec) => parse_targets(spec)?,
        None => {
            let addr = args.get_or("addr", "127.0.0.1:7787");
            vec![addr
                .to_socket_addrs()
                .map_err(|e| format!("resolving '{addr}': {e}"))?
                .next()
                .ok_or_else(|| format!("'{addr}' resolves to no address"))?]
        }
    };
    let shares = split_round_robin(clients, targets.len());
    let reports: Vec<LoadReport> = std::thread::scope(|s| {
        let handles: Vec<_> = targets
            .iter()
            .zip(&shares)
            .map(|(&target, &share)| {
                let body = &body;
                s.spawn(move || submit_burst(target, body, share))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("loadgen burst thread"))
            .collect()
    });
    if targets.len() > 1 {
        for (target, report) in targets.iter().zip(&reports) {
            println!("{target}: {}", report.summary());
        }
    }
    let total = LoadReport {
        outcomes: reports.into_iter().flat_map(|r| r.outcomes).collect(),
    };
    println!("{}", total.summary());
    let mut counts: Vec<(u16, usize)> = Vec::new();
    for outcome in &total.outcomes {
        match counts.iter_mut().find(|(s, _)| *s == outcome.status) {
            Some((_, n)) => *n += 1,
            None => counts.push((outcome.status, 1)),
        }
    }
    counts.sort_unstable();
    for (status, n) in counts {
        println!("  HTTP {status}: {n}");
    }
    Ok(())
}

fn cmd_coordinate(args: &Args) -> Result<(), String> {
    let kind = args.get_or("kind", "campaign").to_string();
    let body = match kind.as_str() {
        "campaign" => campaign_body(args)?,
        "compare" => compare_body(args)?,
        "crashck" => crashck_body(args)?,
        other => return Err(format!("unknown kind '{other}' (campaign|compare|crashck)")),
    };
    let addr = args.get_or("addr", "127.0.0.1:7799").to_string();
    let mut config = FleetConfig {
        min_workers: args
            .get_num("min-workers", 1usize)
            .map_err(|e| e.to_string())?,
        chunk_blocks: args.get_num("chunk", 4u64).map_err(|e| e.to_string())?,
        ..FleetConfig::default()
    };
    config.register_timeout = std::time::Duration::from_secs(
        args.get_num("register-timeout-s", 30u64)
            .map_err(|e| e.to_string())?,
    );
    let coordinator =
        Coordinator::bind(&*addr, config).map_err(|e| format!("binding '{addr}': {e}"))?;
    let local = coordinator.local_addr();
    if let Some(path) = args.get("port-file") {
        std::fs::write(path, format!("{local}\n"))
            .map_err(|e| format!("writing port file '{path}': {e}"))?;
    }
    eprintln!(
        "fleet coordinator on {local}: {kind} job, waiting for {} worker(s)",
        args.get_or("min-workers", "1")
    );
    eprintln!("register workers with `soteria worker --coordinator {local}`");
    let (result, ndjson) = coordinator.run(&kind, &body)?;
    match args.get("out") {
        Some(path) => {
            std::fs::write(path, &result)
                .map_err(|e| format!("writing result '{path}': {e}"))?;
            eprintln!("merged result to {path}");
        }
        None => print!("{result}"),
    }
    if let Some(path) = args.get("ndjson") {
        std::fs::write(path, &ndjson)
            .map_err(|e| format!("writing ndjson '{path}': {e}"))?;
        eprintln!("merged ndjson to {path}");
    }
    Ok(())
}

fn cmd_worker(args: &Args) -> Result<(), String> {
    let coordinator = args
        .get("coordinator")
        .ok_or("worker needs --coordinator ADDR")?
        .to_string();
    let addr = args.get_or("addr", "127.0.0.1:0").to_string();
    let workers = args.get_num("workers", 2usize).map_err(|e| e.to_string())?;
    let queue = args.get_num("queue", 8usize).map_err(|e| e.to_string())?;
    let config = ServerConfig {
        workers,
        queue_capacity: queue,
        ..ServerConfig::default()
    };
    let server = Server::bind(&*addr, config).map_err(|e| format!("binding '{addr}': {e}"))?;
    let local = server.local_addr();
    if let Some(path) = args.get("port-file") {
        std::fs::write(path, format!("{local}\n"))
            .map_err(|e| format!("writing port file '{path}': {e}"))?;
    }
    let advertise = args.get_or("advertise", &local.to_string()).to_string();
    println!("fleet worker on {local} ({workers} job threads), registering with {coordinator}");
    // Register from a side thread with patient retries: the worker may
    // boot before its coordinator, and serving must not wait on it.
    std::thread::spawn(move || {
        match fleet::register_worker(
            &coordinator,
            &advertise,
            40,
            std::time::Duration::from_millis(250),
            &Default::default(),
        ) {
            Ok(id) => eprintln!("registered with {coordinator} as worker {id}"),
            Err(e) => eprintln!("registration with {coordinator} failed: {e}"),
        }
    });
    let handle = server.handle();
    server.serve();
    println!("drained: {} job(s) accepted over this run", handle.job_count());
    Ok(())
}

fn run() -> Result<(), String> {
    let args = Args::parse(std::env::args().skip(1)).map_err(|e| e.to_string())?;
    if args.has_flag("help") {
        println!("{}", usage());
        return Ok(());
    }
    match args.command() {
        None | Some("help") => {
            println!("{}", usage());
            Ok(())
        }
        Some("info") => {
            cmd_info();
            Ok(())
        }
        Some("perf") => cmd_perf(&args),
        Some("record") => {
            let name = args.get_or("workload", "sps").to_string();
            let ops = args.get_num("ops", 100_000u64).map_err(|e| e.to_string())?;
            let default_out = format!("{name}.trace");
            let out = args.get_or("out", &default_out).to_string();
            let cfg = SuiteConfig {
                footprint_bytes: 64 << 20,
                seed: 0xda7a,
            };
            let mut w = standard_suite(&cfg)
                .into_iter()
                .find(|w| w.name() == name)
                .ok_or_else(|| format!("unknown workload '{name}'"))?;
            soteria_workloads::trace::record(w.as_mut(), ops, &out)
                .map_err(|e| e.to_string())?;
            println!("recorded {ops} ops of {name} to {out}");
            Ok(())
        }
        Some("campaign") => cmd_campaign(&args),
        Some("compare") => cmd_compare(&args),
        Some("rare") => cmd_rare(&args),
        Some("crash-demo") => cmd_crash_demo(&args),
        Some("crashck") => cmd_crashck(&args),
        Some("trace-validate") => cmd_trace_validate(&args),
        Some("serve") => cmd_serve(&args),
        Some("submit") => cmd_submit(&args),
        Some("http") => cmd_http(&args),
        Some("loadgen") => cmd_loadgen(&args),
        Some("coordinate") => cmd_coordinate(&args),
        Some("worker") => cmd_worker(&args),
        Some(other) => Err(format!("unknown command '{other}'\n\n{}", command_listing())),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_command_is_listed_once_with_a_description() {
        let listing = command_listing();
        let text = usage();
        for (name, one_liner) in COMMANDS {
            assert!(!one_liner.is_empty(), "{name} needs a description");
            assert_eq!(
                listing.matches(&format!("\n  {name} ")).count(),
                1,
                "{name} must appear exactly once in the listing"
            );
            assert!(text.contains(one_liner), "usage must carry {name}'s one-liner");
        }
        let names: Vec<&str> = COMMANDS.iter().map(|(n, _)| *n).collect();
        let mut unique = names.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), names.len(), "duplicate command names");
    }

    #[test]
    fn seed_parsing_accepts_both_radixes() {
        assert_eq!(parse_seed("42").unwrap(), 42);
        assert_eq!(parse_seed("0xdead").unwrap(), 0xdead);
        assert!(parse_seed("0xzz").unwrap_err().contains("0xzz"));
    }

    #[test]
    fn campaign_body_maps_flags_to_service_fields() {
        let args = Args::parse(
            "submit --fit 1500 --iters 200 --ecc double --tree bmt --seed 0x7 --capacity 67108864"
                .split_whitespace()
                .map(String::from),
        )
        .unwrap();
        let body = campaign_body(&args).unwrap();
        assert_eq!(body.get("fit").and_then(Json::as_f64), Some(1500.0));
        assert_eq!(body.get("iterations").and_then(Json::as_f64), Some(200.0));
        assert_eq!(body.get("ecc").and_then(Json::as_str), Some("double"));
        assert_eq!(body.get("tree").and_then(Json::as_str), Some("bmt"));
        assert_eq!(body.get("seed").and_then(Json::as_f64), Some(7.0));
        assert_eq!(
            body.get("capacity_bytes").and_then(Json::as_f64),
            Some(67108864.0)
        );
        // Unset flags stay unset so the server's defaults apply.
        assert!(body.get("threads").is_none());
        // And bad values fail locally with the option name.
        let bad = Args::parse(["submit".into(), "--ecc".into(), "raid".into()]).unwrap();
        assert!(campaign_body(&bad).unwrap_err().contains("unknown ecc 'raid'"));
    }

    #[test]
    fn fleet_bodies_map_flags_to_service_fields() {
        let args = Args::parse(
            "coordinate --kind compare --fit 1500 --iters 128 --ops 512 --seed 0x9"
                .split_whitespace()
                .map(String::from),
        )
        .unwrap();
        let body = compare_body(&args).unwrap();
        assert_eq!(body.get("fit").and_then(Json::as_f64), Some(1500.0));
        assert_eq!(body.get("iterations").and_then(Json::as_f64), Some(128.0));
        assert_eq!(body.get("trace_ops").and_then(Json::as_f64), Some(512.0));
        assert_eq!(body.get("seed").and_then(Json::as_f64), Some(9.0));

        let args = Args::parse(
            "coordinate --kind crashck --scripts 2 --txns 4 --writes 3 --threads 2"
                .split_whitespace()
                .map(String::from),
        )
        .unwrap();
        let body = crashck_body(&args).unwrap();
        assert_eq!(body.get("scripts_per_cell").and_then(Json::as_f64), Some(2.0));
        assert_eq!(body.get("max_txns").and_then(Json::as_f64), Some(4.0));
        assert_eq!(body.get("max_writes").and_then(Json::as_f64), Some(3.0));
        assert_eq!(body.get("threads").and_then(Json::as_f64), Some(2.0));
        assert!(body.get("seed").is_none(), "unset flags stay unset");
    }

    #[test]
    fn round_robin_split_covers_every_client() {
        assert_eq!(split_round_robin(16, 3), vec![6, 5, 5]);
        assert_eq!(split_round_robin(2, 4), vec![1, 1, 0, 0]);
        for (clients, targets) in [(0, 1), (1, 1), (7, 3), (16, 5), (100, 7)] {
            let shares = split_round_robin(clients, targets);
            assert_eq!(shares.len(), targets);
            assert_eq!(shares.iter().sum::<usize>(), clients);
            let (min, max) = (shares.iter().min().unwrap(), shares.iter().max().unwrap());
            assert!(max - min <= 1, "round-robin shares differ by at most one");
        }
    }

    #[test]
    fn target_lists_parse_and_reject_garbage() {
        let targets = parse_targets("127.0.0.1:9001, 127.0.0.1:9002").unwrap();
        assert_eq!(targets.len(), 2);
        assert!(parse_targets("").unwrap_err().contains("at least one"));
        assert!(parse_targets("nonsense").unwrap_err().contains("nonsense"));
    }
}
