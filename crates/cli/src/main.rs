//! `soteria` — the command-line face of the Soteria secure-NVM simulator.
//!
//! ```text
//! soteria info                          # configs (Tables 2/3/4), layout math
//! soteria perf --workload pmemkv --ops 200000 --scheme sac --cores 4
//! soteria campaign --fit 80 --iters 100000 [--ecc secded] [--tree bmt] [--scrub 24]
//! soteria rare --fit 80 --samples 3000  # importance-sampled clone UDR
//! soteria crash-demo --scheme src [--fault]
//! ```

mod args;

use std::process::ExitCode;

use args::Args;
use soteria::analysis::{ExpectedLossModel, TreeKind};
use soteria::clone::CloningPolicy;
use soteria::recovery::recover;
use soteria::{DataAddr, SecureMemoryConfig, SecureMemoryController};
use soteria_faultsim::{
    cluster_mtbf_hours, estimate_clone_udr, run_campaign_traced, CampaignConfig,
};
use soteria_rt::json::Json;
use soteria_simcpu::{System, SystemConfig};
use soteria_workloads::{standard_suite, SuiteConfig, Workload};

const USAGE: &str = "\
soteria — resilient integrity-protected & encrypted NVM simulator (MICRO'21 reproduction)

USAGE: soteria <command> [--option value ...]

COMMANDS:
  info                         print configurations and layout math
  perf                         run a workload through the simulated system
      --workload NAME          suite workload (default sps; try `soteria info`)
      --ops N                  memory operations per core (default 100000)
      --scheme S               baseline | src | sac (default src)
      --cores N                co-running copies (default 1)
  campaign                     Monte Carlo fault campaign (FaultSim-style)
      --fit F                  FIT per chip (default 80)
      --iters N                iterations (default 100000)
      --ecc E                  secded | chipkill | double (default chipkill)
      --tree T                 toc | bmt (default toc)
      --scrub HOURS            patrol-scrub interval (default: off)
      --threads N              worker threads (result & trace are identical
                               for any N; default: all cores)
      --trace PATH             write a deterministic NDJSON event trace
      --json PATH              write results + metrics snapshot as JSON
  rare                         rare-event clone-UDR estimate
      --fit F                  FIT per chip (default 80)
      --samples N              samples per conditioned k (default 3000)
  record                       capture a workload's memory trace to a file
      --workload NAME          suite workload (default sps)
      --ops N                  operations to record (default 100000)
      --out PATH               output file (default workload.trace)
  crash-demo                   write, crash, optionally break metadata, recover
      --scheme S               baseline | src | sac (default src)
      --fault                  inject a 2-chip fault into a counter block
      --trace PATH             write the controller/recovery event trace
  trace-validate               check an NDJSON trace for shape & ordering
      --file PATH              trace file to validate
  help                         this text

  perf also accepts --trace PATH to replay a recorded trace instead of a
  suite workload, and --metrics to print a controller metrics snapshot.
";

fn scheme_of(name: &str) -> Result<CloningPolicy, String> {
    match name {
        "baseline" | "none" => Ok(CloningPolicy::None),
        "src" | "relaxed" => Ok(CloningPolicy::Relaxed),
        "sac" | "aggressive" => Ok(CloningPolicy::Aggressive),
        other => Err(format!("unknown scheme '{other}' (baseline|src|sac)")),
    }
}

fn cmd_info() {
    println!("== Table 2: cloning depths (9-level / 1 TB tree) ==");
    for policy in [CloningPolicy::Relaxed, CloningPolicy::Aggressive] {
        let depths: Vec<String> = (1..=9).map(|l| policy.depth(l, 9).to_string()).collect();
        println!("  {:>3}: L1..L9 = {}", policy.name(), depths.join(" "));
    }
    println!("\n== Table 3: simulated system ==");
    println!("  4-core x86 2.67 GHz | L1 32kB/2w | L2 512kB/8w | LLC 8MB/64w");
    println!("  PCM 150/300 ns | AES-CTR, 64-ary split counters | ToC arity 8");
    println!("  metadata cache 512 kB 8-way");
    println!("\n== Table 4: FaultSim DIMM ==");
    println!("  18 chips (9/rank x 2) | 16 banks | 16384 rows | 4096 cols | Chipkill");
    println!("\n== expected-loss amplification (Fig. 3 model) ==");
    for cap in [16u64 << 30, 1 << 40, 4 << 40] {
        let m = ExpectedLossModel::new(cap);
        println!(
            "  {:>5} GiB: {} levels, secure memory {:.1}x less resilient",
            cap >> 30,
            m.levels(),
            m.amplification()
        );
    }
    let suite = standard_suite(&SuiteConfig::default());
    let names: Vec<&str> = suite.iter().map(|w| w.name()).collect();
    println!("\n== workloads ==\n  {}", names.join(", "));
}

fn cmd_perf(args: &Args) -> Result<(), String> {
    let name = args.get_or("workload", "sps").to_string();
    let ops = args.get_num("ops", 100_000u64).map_err(|e| e.to_string())?;
    let cores = args.get_num("cores", 1usize).map_err(|e| e.to_string())?;
    let policy = scheme_of(args.get_or("scheme", "src"))?;
    let suite_config = SuiteConfig {
        footprint_bytes: 64 << 20,
        seed: 0xda7a,
    };
    let mut instances: Vec<Box<dyn Workload>> = if let Some(trace_path) = args.get("trace") {
        (0..cores)
            .map(|_| {
                soteria_workloads::trace::ReplayWorkload::open(trace_path)
                    .map(|w| Box::new(w) as Box<dyn Workload>)
                    .map_err(|e| format!("trace '{trace_path}': {e}"))
            })
            .collect::<Result<_, _>>()?
    } else {
        let available: Vec<String> = standard_suite(&suite_config)
            .iter()
            .map(|w| w.name().to_string())
            .collect();
        if !available.iter().any(|n| n == &name) {
            return Err(format!(
                "unknown workload '{name}'; available: {available:?}"
            ));
        }
        (0..cores)
            .map(|i| {
                let cfg = SuiteConfig {
                    footprint_bytes: 64 << 20,
                    seed: 0xda7a ^ i as u64,
                };
                standard_suite(&cfg)
                    .into_iter()
                    .find(|w| w.name() == name)
                    .expect("validated above")
            })
            .collect()
    };
    let mut system = System::with_cores(SystemConfig::table3(policy, 64 << 20), cores);
    if args.has_flag("metrics") {
        system.controller_mut().enable_obs();
    }
    let r = {
        let mut refs: Vec<&mut dyn Workload> = instances
            .iter_mut()
            .map(|w| &mut **w as &mut dyn Workload)
            .collect();
        system.run_multi(&mut refs, ops)
    };
    println!(
        "workload {} | scheme {} | {} cores | {} ops total",
        r.workload, r.scheme, cores, r.ops
    );
    println!("cycles        : {}", r.cycles);
    println!("NVM reads     : {}", r.nvm_reads);
    println!("NVM writes    : {}", r.nvm_writes);
    println!("evictions/op  : {:.3}%", r.evictions_per_op() * 100.0);
    println!("md-cache miss : {:.2}%", r.metadata_miss_ratio * 100.0);
    let stats = system.controller().stats();
    println!(
        "write breakdown: cipher {} | mac {} | shadow {} | evict {} | leaf-mac {} | clone {} | reenc {}",
        stats.writes.cipher,
        stats.writes.data_mac,
        stats.writes.shadow,
        stats.writes.eviction,
        stats.writes.leaf_mac,
        stats.writes.clone,
        stats.writes.reencrypt,
    );
    if args.has_flag("metrics") {
        println!(
            "metrics snapshot:\n{}",
            system.controller().metrics_snapshot().to_pretty_string()
        );
    }
    Ok(())
}

fn cmd_campaign(args: &Args) -> Result<(), String> {
    let fit = args.get_num("fit", 80.0f64).map_err(|e| e.to_string())?;
    let iters = args
        .get_num("iters", 100_000u64)
        .map_err(|e| e.to_string())?;
    let mut config = CampaignConfig::table4(fit);
    config.iterations = iters;
    config.correctable_chips = match args.get_or("ecc", "chipkill") {
        "secded" => 0,
        "chipkill" => 1,
        "double" => 2,
        other => return Err(format!("unknown ecc '{other}' (secded|chipkill|double)")),
    };
    config.tree = match args.get_or("tree", "toc") {
        "toc" => TreeKind::Toc,
        "bmt" => TreeKind::Bmt,
        other => return Err(format!("unknown tree '{other}' (toc|bmt)")),
    };
    if let Some(s) = args.get("scrub") {
        config.scrub_interval_hours =
            Some(s.parse().map_err(|_| format!("bad scrub interval '{s}'"))?);
    }
    if let Some(t) = args.get("threads") {
        config.threads = t
            .parse::<usize>()
            .ok()
            .filter(|&n| n > 0)
            .ok_or_else(|| format!("bad thread count '{t}'"))?;
    }
    let trace_path = args.get("trace").map(str::to_string);
    let json_path = args.get("json").map(str::to_string);
    config.trace = trace_path.is_some() || json_path.is_some();
    println!(
        "FIT {fit}/chip -> 20k-node cluster MTBF {:.1} h | {iters} iterations | 5 years",
        cluster_mtbf_hours(fit, 20_000, 4, 18)
    );
    let (results, trace) = run_campaign_traced(
        &config,
        &[
            CloningPolicy::None,
            CloningPolicy::Relaxed,
            CloningPolicy::Aggressive,
        ],
    );
    println!(
        "{:>9} | {:>12} | {:>12} | {:>14}",
        "scheme", "mean UDR", "L_error", "iters w/ UDR"
    );
    println!("{}", "-".repeat(58));
    for r in &results {
        println!(
            "{:>9} | {:>12.3e} | {:>12.3e} | {:>14}",
            r.policy.name(),
            r.mean_udr,
            r.mean_error_ratio,
            r.iterations_with_udr
        );
    }
    println!(
        "({} of {} iterations saw faults; {} defeated the ECC somewhere)",
        results[0].iterations_with_faults, results[0].iterations, results[0].iterations_with_ue
    );
    if let Some(path) = &trace_path {
        std::fs::write(path, trace.export_ndjson())
            .map_err(|e| format!("writing trace '{path}': {e}"))?;
        println!(
            "trace: {} events to {path}{}",
            trace.len(),
            if trace.dropped() > 0 {
                format!(" ({} dropped by the ring)", trace.dropped())
            } else {
                String::new()
            }
        );
    }
    if let Some(path) = &json_path {
        let doc = campaign_json(&config, &results, &trace);
        std::fs::write(path, doc.to_pretty_string())
            .map_err(|e| format!("writing json '{path}': {e}"))?;
        println!("results + metrics snapshot to {path}");
    }
    Ok(())
}

/// The campaign's machine-readable artifact: config echo, per-policy
/// results, and a metrics snapshot derived from the event trace.
fn campaign_json(
    config: &CampaignConfig,
    results: &[soteria_faultsim::PolicyResult],
    trace: &soteria_rt::obs::TraceBuffer,
) -> Json {
    let mut event_counts: Vec<(String, u64)> = Vec::new();
    for ev in trace.events() {
        match event_counts.iter_mut().find(|(n, _)| n == ev.name) {
            Some((_, c)) => *c += 1,
            None => event_counts.push((ev.name.to_string(), 1)),
        }
    }
    Json::Obj(vec![
        (
            "config".into(),
            Json::Obj(vec![
                ("seed".into(), Json::Str(format!("{:#018x}", config.seed))),
                ("iterations".into(), Json::Num(config.iterations as f64)),
                ("fit_per_chip".into(), Json::Num(config.fit_per_chip)),
                (
                    "capacity_bytes".into(),
                    Json::Num(config.capacity_bytes as f64),
                ),
            ]),
        ),
        (
            "results".into(),
            Json::Arr(
                results
                    .iter()
                    .map(|r| {
                        Json::Obj(vec![
                            ("policy".into(), Json::Str(r.policy.name().into())),
                            (
                                "iterations_with_faults".into(),
                                Json::Num(r.iterations_with_faults as f64),
                            ),
                            (
                                "iterations_with_ue".into(),
                                Json::Num(r.iterations_with_ue as f64),
                            ),
                            (
                                "iterations_with_udr".into(),
                                Json::Num(r.iterations_with_udr as f64),
                            ),
                            ("mean_error_ratio".into(), Json::Num(r.mean_error_ratio)),
                            ("mean_udr".into(), Json::Num(r.mean_udr)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "metrics".into(),
            Json::Obj(vec![
                ("trace_events".into(), Json::Num(trace.len() as f64)),
                ("trace_dropped".into(), Json::Num(trace.dropped() as f64)),
                (
                    "events_by_name".into(),
                    Json::Obj(
                        event_counts
                            .into_iter()
                            .map(|(n, c)| (n, Json::Num(c as f64)))
                            .collect(),
                    ),
                ),
            ]),
        ),
    ])
}

fn cmd_rare(args: &Args) -> Result<(), String> {
    let fit = args.get_num("fit", 80.0f64).map_err(|e| e.to_string())?;
    let samples = args
        .get_num("samples", 3000u64)
        .map_err(|e| e.to_string())?;
    let config = CampaignConfig::table4(fit);
    let results = estimate_clone_udr(
        &config,
        &[CloningPolicy::Relaxed, CloningPolicy::Aggressive],
        samples,
        5,
    );
    println!(
        "conditioned on k >= 2 bank-scale faults (lambda = {:.4}), {samples} samples/k",
        results[0].lambda_large
    );
    for r in &results {
        println!("  {:>3}: UDR = {:.3e}", r.policy.name(), r.mean_udr);
    }
    Ok(())
}

fn cmd_crash_demo(args: &Args) -> Result<(), String> {
    let policy = scheme_of(args.get_or("scheme", "src"))?;
    let inject = args.has_flag("fault");
    let config = SecureMemoryConfig::builder()
        .capacity_bytes(1 << 20)
        .metadata_cache(16 * 1024, 8)
        .cloning(policy.clone())
        .build()
        .map_err(|e| e.to_string())?;
    let mut memory = SecureMemoryController::new(config);
    let trace_path = args.get("trace").map(str::to_string);
    if trace_path.is_some() {
        memory.enable_obs();
    }
    println!("writing 128 lines under {} ...", policy.name());
    for i in 0..128u64 {
        memory
            .write(
                DataAddr::new(i * 64 % memory.layout().data_lines()),
                &[i as u8; 64],
            )
            .map_err(|e| e.to_string())?;
    }
    println!("power loss!");
    let mut image = memory.crash();
    if inject {
        println!("... and a two-chip uncorrectable error hits counter block L1[0] while down");
        let layout = image.config().build_layout();
        let target = layout.meta_addr(soteria::MetaId::new(1, 0));
        let loc = image.device_mut().geometry().locate(target);
        for chip in [1u32, 10] {
            let g = *image.device_mut().geometry();
            image
                .device_mut()
                .inject_fault(soteria_nvm::fault::FaultRecord::on_chip(
                    &g,
                    chip,
                    soteria_nvm::fault::FaultFootprint::SingleWord {
                        bank: loc.bank,
                        row: loc.row,
                        col: loc.col,
                        beat: 0,
                    },
                    soteria_nvm::fault::FaultKind::Permanent,
                ));
        }
    }
    let (mut memory, report) = recover(image);
    println!("recovery report:");
    println!("  shadow root intact : {}", report.shadow_root_intact);
    println!("  entries seen       : {}", report.entries_seen);
    println!("  blocks restored    : {}", report.blocks_restored);
    println!("  Osiris-recovered   : {}", report.counters_recovered);
    println!("  clone repairs      : {}", report.clone_repairs);
    println!("  stale entries      : {}", report.stale_entries);
    println!(
        "  unverifiable       : {} blocks / {} lines",
        report.unverifiable.len(),
        report.unverifiable_lines()
    );
    println!(
        "  est. duration      : {:.3} ms",
        report.estimated_duration_ns() as f64 / 1e6
    );
    let mut ok = 0;
    let mut lost = 0;
    for i in 0..128u64 {
        match memory.read(DataAddr::new(i * 64 % memory.layout().data_lines())) {
            Ok(line) if line == [i as u8; 64] => ok += 1,
            _ => lost += 1,
        }
    }
    println!("post-recovery readback: {ok} intact, {lost} lost");
    if inject && policy == CloningPolicy::None {
        println!("(the baseline loses the faulted block's coverage; rerun with --scheme src)");
    }
    if let Some(path) = &trace_path {
        // The trace survives the crash with the controller, so this one
        // file spans pre-crash writes, recovery, and readback.
        let ndjson = memory.export_trace_ndjson();
        let events = ndjson.lines().count();
        std::fs::write(path, ndjson).map_err(|e| format!("writing trace '{path}': {e}"))?;
        println!("trace: {events} events to {path}");
    }
    Ok(())
}

fn cmd_trace_validate(args: &Args) -> Result<(), String> {
    let path = args
        .get("file")
        .ok_or("trace-validate needs --file PATH")?;
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("reading '{path}': {e}"))?;
    let events = soteria_rt::obs::parse_ndjson(&text).map_err(|e| format!("{path}: {e}"))?;
    let mut domains: Vec<(&str, u64)> = Vec::new();
    for ev in &events {
        let d = ev.get("domain").and_then(Json::as_str).unwrap_or("?");
        match domains.iter_mut().find(|(n, _)| *n == d) {
            Some((_, c)) => *c += 1,
            None => domains.push((d, 1)),
        }
    }
    println!("{path}: {} events, valid NDJSON, per-domain seq monotonic", events.len());
    for (d, c) in domains {
        println!("  {d:>10}: {c} events");
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let args = Args::parse(std::env::args().skip(1)).map_err(|e| e.to_string())?;
    match args.command() {
        None | Some("help") => {
            println!("{USAGE}");
            Ok(())
        }
        Some("info") => {
            cmd_info();
            Ok(())
        }
        Some("perf") => cmd_perf(&args),
        Some("record") => {
            let name = args.get_or("workload", "sps").to_string();
            let ops = args.get_num("ops", 100_000u64).map_err(|e| e.to_string())?;
            let default_out = format!("{name}.trace");
            let out = args.get_or("out", &default_out).to_string();
            let cfg = SuiteConfig {
                footprint_bytes: 64 << 20,
                seed: 0xda7a,
            };
            let mut w = standard_suite(&cfg)
                .into_iter()
                .find(|w| w.name() == name)
                .ok_or_else(|| format!("unknown workload '{name}'"))?;
            soteria_workloads::trace::record(w.as_mut(), ops, &out)
                .map_err(|e| e.to_string())?;
            println!("recorded {ops} ops of {name} to {out}");
            Ok(())
        }
        Some("campaign") => cmd_campaign(&args),
        Some("rare") => cmd_rare(&args),
        Some("crash-demo") => cmd_crash_demo(&args),
        Some("trace-validate") => cmd_trace_validate(&args),
        Some(other) => Err(format!("unknown command '{other}'; see `soteria help`")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
