//! A tiny `--key value` argument parser (no external dependencies — the
//! workspace's dependency policy allows only the offline simulation
//! crates).

use std::collections::HashMap;

/// Parsed command line: a subcommand plus `--key value` options.
#[derive(Clone, Debug, Default)]
pub struct Args {
    command: Option<String>,
    options: HashMap<String, String>,
    flags: Vec<String>,
}

/// Errors from argument parsing or lookup.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ArgsError {
    /// An option value failed to parse.
    BadValue {
        /// The option name.
        key: String,
        /// The raw value.
        value: String,
        /// What was expected.
        expected: &'static str,
    },
    /// An unexpected positional argument.
    UnexpectedPositional(String),
}

impl std::fmt::Display for ArgsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgsError::BadValue {
                key,
                value,
                expected,
            } => {
                write!(f, "option --{key}: '{value}' is not a valid {expected}")
            }
            ArgsError::UnexpectedPositional(p) => write!(
                f,
                "unexpected argument '{p}' (one command, then --key value options; see `soteria help`)"
            ),
        }
    }
}

impl std::error::Error for ArgsError {}

impl Args {
    /// Parses an iterator of arguments (without the program name).
    ///
    /// # Errors
    ///
    /// Returns [`ArgsError`] for malformed input.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, ArgsError> {
        let mut out = Args::default();
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(key) = arg.strip_prefix("--") {
                // A flag if the next token is another option or absent;
                // otherwise an option with a value.
                match iter.peek() {
                    Some(v) if !v.starts_with("--") => {
                        let value = iter.next().expect("peeked");
                        out.options.insert(key.to_string(), value);
                    }
                    _ => out.flags.push(key.to_string()),
                }
            } else if out.command.is_none() {
                out.command = Some(arg);
            } else {
                return Err(ArgsError::UnexpectedPositional(arg));
            }
        }
        Ok(out)
    }

    /// The subcommand, if any.
    pub fn command(&self) -> Option<&str> {
        self.command.as_deref()
    }

    /// A string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// A string option with a default.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.get(key).unwrap_or(default)
    }

    /// A parsed numeric option with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ArgsError::BadValue`] when present but unparsable.
    pub fn get_num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgsError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgsError::BadValue {
                key: key.to_string(),
                value: v.to_string(),
                expected: std::any::type_name::<T>(),
            }),
        }
    }

    /// Whether a bare `--flag` was given.
    pub fn has_flag(&self, flag: &str) -> bool {
        self.flags.iter().any(|f| f == flag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    #[test]
    fn command_and_options() {
        let a = parse("perf --workload pmemkv --ops 1000");
        assert_eq!(a.command(), Some("perf"));
        assert_eq!(a.get("workload"), Some("pmemkv"));
        assert_eq!(a.get_num("ops", 0u64).unwrap(), 1000);
    }

    #[test]
    fn defaults_apply() {
        let a = parse("perf");
        assert_eq!(a.get_or("workload", "sps"), "sps");
        assert_eq!(a.get_num("ops", 42u64).unwrap(), 42);
    }

    #[test]
    fn flags_without_values() {
        let a = parse("campaign --verbose --fit 80");
        assert!(a.has_flag("verbose"));
        assert_eq!(a.get("fit"), Some("80"));
    }

    #[test]
    fn trailing_flag() {
        let a = parse("campaign --fit 80 --verbose");
        assert!(a.has_flag("verbose"));
    }

    #[test]
    fn bad_number_reported() {
        let a = parse("perf --ops banana");
        assert!(matches!(
            a.get_num("ops", 0u64),
            Err(ArgsError::BadValue { .. })
        ));
    }

    #[test]
    fn unexpected_positional_rejected() {
        let e = Args::parse(["perf".into(), "extra".into()]).unwrap_err();
        assert!(matches!(e, ArgsError::UnexpectedPositional(_)));
    }

    /// Every parse failure prints an actionable one-liner; the exact
    /// strings are part of the CLI's contract.
    #[test]
    fn error_display_strings_are_pinned() {
        let bad = ArgsError::BadValue {
            key: "ops".into(),
            value: "banana".into(),
            expected: "u64",
        };
        assert_eq!(
            bad.to_string(),
            "option --ops: 'banana' is not a valid u64"
        );
        let positional = ArgsError::UnexpectedPositional("extra".into());
        assert_eq!(
            positional.to_string(),
            "unexpected argument 'extra' (one command, then --key value options; see `soteria help`)"
        );
    }
}
