//! End-to-end smoke tests of the `soteria` binary.

use std::process::Command;

fn soteria() -> Command {
    Command::new(env!("CARGO_BIN_EXE_soteria"))
}

#[test]
fn help_prints_usage() {
    let out = soteria().arg("help").output().expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("USAGE"));
    assert!(text.contains("crash-demo"));
}

#[test]
fn info_lists_workloads_and_tables() {
    let out = soteria().arg("info").output().expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Table 2"));
    assert!(text.contains("uBENCH16"));
    assert!(text.contains("ycsb"));
}

#[test]
fn unknown_command_fails_with_message() {
    let out = soteria().arg("frobnicate").output().expect("spawn");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown command"));
}

#[test]
fn perf_runs_a_small_workload() {
    let out = soteria()
        .args(["perf", "--workload", "queue", "--ops", "2000"])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("cycles"));
    assert!(text.contains("write breakdown"));
}

#[test]
fn perf_rejects_unknown_workload() {
    let out = soteria()
        .args(["perf", "--workload", "doom"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown workload"));
}

#[test]
fn crash_demo_with_fault_recovers_under_src() {
    let out = soteria()
        .args(["crash-demo", "--scheme", "src", "--fault"])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("clone repairs      : 1"), "{text}");
    assert!(text.contains("128 intact, 0 lost"), "{text}");
}

#[test]
fn campaign_small_run_prints_schemes() {
    let out = soteria()
        .args(["campaign", "--fit", "200", "--iters", "2000"])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Baseline"));
    assert!(text.contains("SAC"));
}

#[test]
fn record_then_replay_roundtrip() {
    let trace = std::env::temp_dir().join(format!("cli_smoke_{}.trace", std::process::id()));
    let out = soteria()
        .args(["record", "--workload", "sps", "--ops", "3000", "--out"])
        .arg(&trace)
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let out = soteria()
        .args(["perf", "--ops", "3000", "--trace"])
        .arg(&trace)
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("trace:"));
    std::fs::remove_file(&trace).ok();
}
