//! End-to-end smoke tests of the `soteria` binary.

use std::process::Command;

fn soteria() -> Command {
    Command::new(env!("CARGO_BIN_EXE_soteria"))
}

/// Every subcommand the binary dispatches, with a listing entry.
const ALL_COMMANDS: &[&str] = &[
    "info",
    "perf",
    "campaign",
    "compare",
    "rare",
    "record",
    "crash-demo",
    "crashck",
    "trace-validate",
    "serve",
    "submit",
    "http",
    "loadgen",
    "coordinate",
    "worker",
    "help",
];

#[test]
fn help_prints_usage_with_every_command() {
    let out = soteria().arg("help").output().expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("USAGE"));
    for name in ALL_COMMANDS {
        assert!(
            text.contains(&format!("\n  {name} ")),
            "help must list {name}"
        );
    }
}

/// The command listing pinned byte-for-byte: renaming, reordering, or
/// dropping a subcommand (or its one-liner) must fail loudly here, not
/// silently reshuffle the help text.
#[test]
fn command_listing_is_pinned_exactly() {
    let out = soteria().arg("help").output().expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    let expected = [
        "COMMANDS:",
        "  info           print configurations and layout math",
        "  perf           run a workload through the simulated system",
        "  campaign       Monte Carlo fault campaign (FaultSim-style)",
        "  compare        sweep every protection scheme: UDR + slowdown matrix",
        "  rare           rare-event clone-UDR estimate",
        "  record         capture a workload's memory trace to a file",
        "  crash-demo     write, crash, optionally break metadata, recover",
        "  crashck        exhaustive crash-point consistency sweep (WPQ/ADR)",
        "  trace-validate check an NDJSON trace for shape & ordering",
        "  serve          run the campaign service (HTTP API over a job queue)",
        "  submit         send a campaign to a server and fetch its artifacts",
        "  http           one-shot HTTP request against a running server",
        "  loadgen        concurrent submission burst to exercise backpressure",
        "  coordinate     shard a job across fleet workers, merge identical bytes",
        "  worker         serve jobs and register with a fleet coordinator",
        "  help           show this command listing",
        "",
    ]
    .join("\n");
    assert!(
        text.contains(&expected),
        "help listing drifted from the pinned block:\n{text}"
    );
}

#[test]
fn help_flag_matches_help_command() {
    let flag = soteria().arg("--help").output().expect("spawn");
    let command = soteria().arg("help").output().expect("spawn");
    assert!(flag.status.success());
    assert_eq!(flag.stdout, command.stdout);
    // And the flag wins even with a command present.
    let mixed = soteria()
        .args(["campaign", "--help"])
        .output()
        .expect("spawn");
    assert!(mixed.status.success());
    assert_eq!(mixed.stdout, command.stdout);
}

#[test]
fn info_lists_workloads_and_tables() {
    let out = soteria().arg("info").output().expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Table 2"));
    assert!(text.contains("uBENCH16"));
    assert!(text.contains("ycsb"));
}

#[test]
fn unknown_command_fails_with_the_listing() {
    let out = soteria().arg("frobnicate").output().expect("spawn");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown command 'frobnicate'"));
    assert!(err.contains("COMMANDS:"), "stderr must carry the listing");
    for name in ALL_COMMANDS {
        assert!(
            err.contains(&format!("\n  {name} ")),
            "listing after an unknown command must include {name}"
        );
    }
}

#[test]
fn perf_runs_a_small_workload() {
    let out = soteria()
        .args(["perf", "--workload", "queue", "--ops", "2000"])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("cycles"));
    assert!(text.contains("write breakdown"));
}

#[test]
fn perf_rejects_unknown_workload() {
    let out = soteria()
        .args(["perf", "--workload", "doom"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown workload"));
}

#[test]
fn crash_demo_with_fault_recovers_under_src() {
    let out = soteria()
        .args(["crash-demo", "--scheme", "src", "--fault"])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("clone repairs      : 1"), "{text}");
    assert!(text.contains("128 intact, 0 lost"), "{text}");
}

#[test]
fn campaign_small_run_prints_schemes() {
    let out = soteria()
        .args(["campaign", "--fit", "200", "--iters", "2000"])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Baseline"));
    assert!(text.contains("SAC"));
}

#[test]
fn compare_small_run_emits_matrix_artifacts() {
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let json = dir.join(format!("cli_compare_{pid}.json"));
    let ndjson = dir.join(format!("cli_compare_{pid}.ndjson"));
    let out = soteria()
        .args(["compare", "--iters", "64", "--ops", "256", "--threads", "2", "--json"])
        .arg(&json)
        .arg("--ndjson")
        .arg(&ndjson)
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    for scheme in ["baseline", "src", "sac", "osiris", "triad1", "phoenix", "coalesced"] {
        assert!(text.contains(scheme), "table must list {scheme}:\n{text}");
    }
    let report = std::fs::read_to_string(&json).expect("json artifact");
    assert!(report.contains("soteria-compare/v1"));
    let trace = std::fs::read_to_string(&ndjson).expect("ndjson artifact");
    assert!(trace.lines().count() >= 10, "config + 9 scheme_result lines");
    std::fs::remove_file(&json).ok();
    std::fs::remove_file(&ndjson).ok();
}

/// Kills the server child even when an assert unwinds mid-test.
struct KillOnDrop(std::process::Child);

impl Drop for KillOnDrop {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// The determinism contract end-to-end at the binary level: `soteria
/// serve` + `soteria submit` produce byte-identical result JSON and
/// NDJSON trace to `soteria campaign --json/--trace` at the same seed,
/// and a `POST /v1/shutdown` drains the server to a clean exit.
#[test]
fn serve_submit_matches_campaign_bytes() {
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let path = |name: &str| dir.join(format!("cli_svc_{pid}_{name}"));
    let port_file = path("addr");
    let serve = soteria()
        .args(["serve", "--addr", "127.0.0.1:0", "--workers", "1", "--queue", "4", "--port-file"])
        .arg(&port_file)
        .stdout(std::process::Stdio::null())
        .spawn()
        .expect("spawn serve");
    let mut serve = KillOnDrop(serve);
    let mut addr = String::new();
    for _ in 0..400 {
        if let Ok(text) = std::fs::read_to_string(&port_file) {
            if text.ends_with('\n') {
                addr = text.trim().to_string();
                break;
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
    assert!(!addr.is_empty(), "server never wrote its port file");

    let campaign_flags = [
        "--fit", "1500", "--iters", "300", "--capacity", "67108864", "--seed", "0xabc",
    ];
    let out = soteria()
        .args(["submit", "--addr", &addr])
        .args(campaign_flags)
        .args(["--out"])
        .arg(path("http.json"))
        .arg("--trace-out")
        .arg(path("http.ndjson"))
        .output()
        .expect("spawn submit");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let out = soteria()
        .arg("campaign")
        .args(campaign_flags)
        .args(["--threads", "2", "--json"])
        .arg(path("cli.json"))
        .arg("--trace")
        .arg(path("cli.ndjson"))
        .output()
        .expect("spawn campaign");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    for name in ["json", "ndjson"] {
        let http = std::fs::read(path(&format!("http.{name}"))).expect("http artifact");
        let cli = std::fs::read(path(&format!("cli.{name}"))).expect("cli artifact");
        assert!(!http.is_empty());
        assert_eq!(http, cli, "HTTP and CLI {name} artifacts must match byte-for-byte");
    }

    let out = soteria()
        .args(["http", "--addr", &addr, "--method", "POST", "--path", "/v1/shutdown"])
        .output()
        .expect("spawn http");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let status = serve.0.wait().expect("serve exits after drain");
    assert!(status.success(), "serve must exit cleanly after the drain");

    for name in ["addr", "http.json", "http.ndjson", "cli.json", "cli.ndjson"] {
        std::fs::remove_file(path(name)).ok();
    }
}

/// The fleet contract at the binary level: `soteria coordinate` with
/// two `soteria worker` processes merges a campaign to bytes identical
/// to `soteria campaign --json/--trace` at the same seed.
#[test]
fn coordinate_with_workers_matches_campaign_bytes() {
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let path = |name: &str| dir.join(format!("cli_fleet_{pid}_{name}"));
    let read_addr = |file: &std::path::Path| -> String {
        for _ in 0..400 {
            if let Ok(text) = std::fs::read_to_string(file) {
                if text.ends_with('\n') {
                    return text.trim().to_string();
                }
            }
            std::thread::sleep(std::time::Duration::from_millis(25));
        }
        panic!("no address appeared in {}", file.display());
    };

    let campaign_flags = [
        "--fit", "1500", "--iters", "192", "--capacity", "67108864", "--seed", "0xabc",
    ];
    let coordinate = soteria()
        .args(["coordinate", "--kind", "campaign", "--addr", "127.0.0.1:0"])
        .args(campaign_flags)
        .args(["--min-workers", "2", "--chunk", "1", "--port-file"])
        .arg(path("control"))
        .args(["--out"])
        .arg(path("fleet.json"))
        .arg("--ndjson")
        .arg(path("fleet.ndjson"))
        .spawn()
        .expect("spawn coordinate");
    let mut coordinate = KillOnDrop(coordinate);
    let control = read_addr(&path("control"));

    let workers: Vec<KillOnDrop> = (0..2)
        .map(|i| {
            let worker = soteria()
                .args(["worker", "--addr", "127.0.0.1:0", "--coordinator", &control])
                .args(["--workers", "1", "--port-file"])
                .arg(path(&format!("worker{i}")))
                .stdout(std::process::Stdio::null())
                .spawn()
                .expect("spawn worker");
            KillOnDrop(worker)
        })
        .collect();

    let status = coordinate.0.wait().expect("coordinate exits");
    assert!(status.success(), "coordinate must merge and exit cleanly");
    drop(workers);

    let out = soteria()
        .arg("campaign")
        .args(campaign_flags)
        .args(["--threads", "2", "--json"])
        .arg(path("cli.json"))
        .arg("--trace")
        .arg(path("cli.ndjson"))
        .output()
        .expect("spawn campaign");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    for name in ["json", "ndjson"] {
        let fleet = std::fs::read(path(&format!("fleet.{name}"))).expect("fleet artifact");
        let cli = std::fs::read(path(&format!("cli.{name}"))).expect("cli artifact");
        assert!(!fleet.is_empty());
        assert_eq!(fleet, cli, "fleet and CLI {name} artifacts must match byte-for-byte");
    }

    for name in ["control", "worker0", "worker1", "fleet.json", "fleet.ndjson", "cli.json", "cli.ndjson"] {
        std::fs::remove_file(path(name)).ok();
    }
}

#[test]
fn record_then_replay_roundtrip() {
    let trace = std::env::temp_dir().join(format!("cli_smoke_{}.trace", std::process::id()));
    let out = soteria()
        .args(["record", "--workload", "sps", "--ops", "3000", "--out"])
        .arg(&trace)
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let out = soteria()
        .args(["perf", "--ops", "3000", "--trace"])
        .arg(&trace)
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("trace:"));
    std::fs::remove_file(&trace).ok();
}
