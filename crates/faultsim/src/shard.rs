//! Block-sharded job execution for the campaign fleet.
//!
//! Every campaign-shaped job in this crate already folds fixed
//! accumulation blocks in block order, so its artifacts are
//! byte-identical at any thread count. This module extends that
//! contract across *machines*: a coordinator splits a job's block range
//! over workers, each worker computes its blocks' partial sums with
//! [`run_block_range`], and [`merge_partials`] folds the partials back
//! through the **same** reduction the single-node runner uses — so the
//! merged artifact is byte-identical to `soteria campaign --json` (or
//! `compare`, or `crashck`) at the same seed, regardless of shard count
//! or worker failures.
//!
//! Two wire rules keep the contract exact:
//!
//! * **`f64` travels as bits.** Partial sums are serialized as the hex
//!   of [`f64::to_bits`], never as decimal text, so no parse/print
//!   round-trip can perturb the non-associative block fold.
//! * **Trace vocabulary is interned.** [`soteria_rt::obs::TraceEvent`]
//!   holds `&'static str` names; events parsed off the wire re-intern
//!   every string against the fixed campaign vocabulary, rejecting
//!   anything a current worker could not have emitted.

use soteria_rt::json::Json;
use soteria_rt::obs::{Field, TraceEvent};

use crate::campaign::{
    merge_campaign_blocks, run_campaign_blocks, Accumulator, CampaignBlock, ITERATION_BLOCK,
};
use crate::compare::{merge_compare_blocks, run_compare_blocks, BlockAcc, CompareBlock};
use crate::crashck::{
    intern_unit_names, merge_crashck_units, run_crashck_units, total_units, UnitResult,
};
use crate::job::{report_json, JobSpec, STANDARD_POLICIES};

/// The partial-artifact schema version.
pub const BLOCKS_SCHEMA: &str = "soteria-blocks/v1";

/// How many distribution blocks `spec` comprises (the coordinator
/// shards the range `0..total_blocks` over its workers).
///
/// Campaign and compare jobs shard on [`ITERATION_BLOCK`]-sized
/// accumulation blocks; crashck jobs shard on matrix units. A `Blocks`
/// spec delegates to its inner job.
pub fn total_blocks(spec: &JobSpec) -> u64 {
    match spec {
        JobSpec::Campaign(c) => c.iterations.div_ceil(ITERATION_BLOCK),
        JobSpec::Compare(c) => c.iterations.div_ceil(ITERATION_BLOCK),
        JobSpec::Crashck(c) => total_units(c),
        JobSpec::Blocks { spec, .. } => total_blocks(spec),
    }
}

/// Computes the partial sums of blocks `lo..hi` of `spec` and
/// serializes them as a `soteria-blocks/v1` document. The partial bytes
/// depend only on `(spec, lo, hi)` — never on which worker ran them.
///
/// An out-of-range or empty range yields a document with an empty
/// `blocks` array (the merge will then report the missing coverage).
pub fn run_block_range(spec: &JobSpec, lo: u64, hi: u64) -> Json {
    let hi = hi.min(total_blocks(spec));
    let ids: Vec<u64> = (lo..hi).collect();
    let (kind, blocks) = match spec {
        JobSpec::Campaign(config) => (
            "campaign",
            run_campaign_blocks(config, &STANDARD_POLICIES, &ids)
                .into_iter()
                .map(|b| campaign_block_wire(&b))
                .collect(),
        ),
        JobSpec::Compare(config) => (
            "compare",
            run_compare_blocks(config, &ids)
                .into_iter()
                .map(|b| compare_block_wire(&b))
                .collect(),
        ),
        JobSpec::Crashck(config) => (
            "crashck",
            run_crashck_units(config, &ids)
                .into_iter()
                .map(|(i, r)| crashck_unit_wire(i, &r))
                .collect(),
        ),
        JobSpec::Blocks { spec, .. } => return run_block_range(spec, lo, hi),
    };
    Json::Obj(vec![
        ("schema".into(), Json::Str(BLOCKS_SCHEMA.into())),
        ("kind".into(), Json::Str(kind.into())),
        ("lo".into(), u64_wire(lo)),
        ("hi".into(), u64_wire(hi)),
        ("blocks".into(), Json::Arr(blocks)),
    ])
}

/// Folds partial documents back into the final `(result_json, ndjson)`
/// artifact pair — byte-identical to [`crate::job::run_spec`] on the
/// same spec.
///
/// Blocks may arrive in any order and may be duplicated (a reassigned
/// block computed by two workers): duplicates are interchangeable by
/// construction, so the first copy wins. The range `0..total_blocks`
/// must be fully covered.
///
/// # Errors
///
/// Returns a one-line message on a malformed partial, a kind mismatch,
/// or incomplete block coverage.
pub fn merge_partials(spec: &JobSpec, partials: &[Json]) -> Result<(String, String), String> {
    let kind = match spec {
        JobSpec::Campaign(_) => "campaign",
        JobSpec::Compare(_) => "compare",
        JobSpec::Crashck(_) => "crashck",
        JobSpec::Blocks { spec, .. } => return merge_partials(spec, partials),
    };
    let mut raw: Vec<&Json> = Vec::new();
    for doc in partials {
        let schema = doc.get("schema").and_then(Json::as_str).unwrap_or("");
        if schema != BLOCKS_SCHEMA {
            return Err(format!("partial has schema '{schema}', expected '{BLOCKS_SCHEMA}'"));
        }
        let got = doc.get("kind").and_then(Json::as_str).unwrap_or("");
        if got != kind {
            return Err(format!("partial has kind '{got}', expected '{kind}'"));
        }
        let blocks = doc
            .get("blocks")
            .and_then(Json::as_array)
            .ok_or("partial is missing its 'blocks' array")?;
        raw.extend(blocks.iter());
    }

    let total = total_blocks(spec);
    match spec {
        JobSpec::Campaign(config) => {
            let mut blocks = Vec::with_capacity(raw.len());
            for obj in raw {
                blocks.push(campaign_block_unwire(obj)?);
            }
            let blocks = dedup_covered(blocks, |b: &CampaignBlock| b.block, total)?;
            let (results, trace) = merge_campaign_blocks(config, &STANDARD_POLICIES, blocks);
            Ok((
                report_json(config, &results, &trace).to_pretty_string(),
                trace.export_ndjson(),
            ))
        }
        JobSpec::Compare(config) => {
            let mut blocks = Vec::with_capacity(raw.len());
            for obj in raw {
                blocks.push(compare_block_unwire(obj)?);
            }
            let blocks = dedup_covered(blocks, |b: &CompareBlock| b.block, total)?;
            let output = merge_compare_blocks(config, blocks);
            Ok((output.result_json, output.ndjson))
        }
        JobSpec::Crashck(config) => {
            let mut units = Vec::with_capacity(raw.len());
            for obj in raw {
                units.push(crashck_unit_unwire(obj)?);
            }
            let units = dedup_covered(units, |u: &(u64, UnitResult)| u.0, total)?;
            let output = merge_crashck_units(config, units);
            Ok((output.result_json, output.ndjson))
        }
        JobSpec::Blocks { .. } => unreachable!("delegated above"),
    }
}

/// Sorts tagged blocks, drops duplicate indices (first copy wins —
/// duplicates are bit-identical by the partial contract), and verifies
/// the surviving indices are exactly `0..total`.
fn dedup_covered<T>(
    mut blocks: Vec<T>,
    index: impl Fn(&T) -> u64,
    total: u64,
) -> Result<Vec<T>, String> {
    blocks.sort_by_key(&index);
    blocks.dedup_by_key(|b| index(b));
    for expect in 0..total {
        match blocks.get(expect as usize) {
            Some(b) if index(b) == expect => {}
            _ => return Err(format!("merge is missing block {expect} of {total}")),
        }
    }
    if blocks.len() as u64 > total {
        return Err(format!(
            "merge holds a block past the job's {total} blocks"
        ));
    }
    Ok(blocks)
}

// ---------------------------------------------------------------------
// Scalar wire forms: u64 as hex text, f64 as the hex of its bits.
// ---------------------------------------------------------------------

fn u64_wire(v: u64) -> Json {
    Json::Str(format!("{v:#x}"))
}

fn u64_unwire(v: Option<&Json>, what: &str) -> Result<u64, String> {
    let s = v
        .and_then(Json::as_str)
        .ok_or_else(|| format!("partial field '{what}' must be a hex string"))?;
    let hex = s.strip_prefix("0x").unwrap_or(s);
    u64::from_str_radix(hex, 16).map_err(|_| format!("partial field '{what}' has bad hex '{s}'"))
}

/// `f64` partial sums cross the wire as the hex of their bit pattern:
/// the block fold is a fixed-order sum of exactly these values, so a
/// decimal round-trip (even a "shortest round-trip" printer) must never
/// sit between a worker and the merge.
fn f64_wire(v: f64) -> Json {
    Json::Str(format!("{:016x}", v.to_bits()))
}

fn f64_unwire(v: Option<&Json>, what: &str) -> Result<f64, String> {
    Ok(f64::from_bits(u64_unwire(v, what)?))
}

fn usize_unwire(v: Option<&Json>, what: &str) -> Result<usize, String> {
    Ok(u64_unwire(v, what)? as usize)
}

fn str_unwire<'a>(v: Option<&'a Json>, what: &str) -> Result<&'a str, String> {
    v.and_then(Json::as_str)
        .ok_or_else(|| format!("partial field '{what}' must be a string"))
}

fn f64_vec_wire(vs: &[f64]) -> Json {
    Json::Arr(vs.iter().map(|&v| f64_wire(v)).collect())
}

fn u64_vec_wire(vs: &[u64]) -> Json {
    Json::Arr(vs.iter().map(|&v| u64_wire(v)).collect())
}

fn arr_unwire<'a>(v: Option<&'a Json>, what: &str) -> Result<&'a [Json], String> {
    v.and_then(Json::as_array)
        .ok_or_else(|| format!("partial field '{what}' must be an array"))
}

// ---------------------------------------------------------------------
// Trace-event wire form and the fixed campaign vocabulary.
// ---------------------------------------------------------------------

/// Every `&'static str` a campaign block's trace events may carry:
/// domains, event names, field keys, and policy labels. Parsing
/// re-interns wire strings against this table — an unknown word is a
/// protocol error, not a leaked allocation.
const VOCABULARY: [&str; 13] = [
    "campaign",
    "iteration",
    "policy_udr",
    "iter",
    "seed",
    "faults",
    "ue",
    "policy",
    "udr",
    "baseline",
    "src",
    "sac",
    "custom",
];

fn intern(s: &str) -> Result<&'static str, String> {
    VOCABULARY
        .iter()
        .find(|v| **v == s)
        .copied()
        .ok_or_else(|| format!("unknown trace vocabulary word '{s}'"))
}

/// One typed field value as a single-entry object, tagged by type:
/// `{"u": "0x…"}`, `{"i": "-3"}`, `{"f": "<bits>"}`, `{"h": "0x…"}`,
/// `{"s": "baseline"}`, `{"b": true}`.
fn field_wire(field: &Field) -> Json {
    let (tag, value) = match field {
        Field::U64(v) => ("u", u64_wire(*v)),
        Field::I64(v) => ("i", Json::Str(v.to_string())),
        Field::F64(v) => ("f", f64_wire(*v)),
        Field::Hex(v) => ("h", u64_wire(*v)),
        Field::Str(v) => ("s", Json::Str((*v).to_string())),
        Field::Bool(v) => ("b", Json::Bool(*v)),
    };
    Json::Obj(vec![(tag.to_string(), value)])
}

fn field_unwire(obj: &Json) -> Result<Field, String> {
    let entries = obj
        .entries()
        .ok_or("trace field value must be a tagged object")?;
    let [(tag, value)] = entries else {
        return Err("trace field value must hold exactly one tag".into());
    };
    match tag.as_str() {
        "u" => Ok(Field::U64(u64_unwire(Some(value), "u")?)),
        "i" => {
            let s = str_unwire(Some(value), "i")?;
            s.parse::<i64>()
                .map(Field::I64)
                .map_err(|_| format!("trace field 'i' has bad integer '{s}'"))
        }
        "f" => Ok(Field::F64(f64_unwire(Some(value), "f")?)),
        "h" => Ok(Field::Hex(u64_unwire(Some(value), "h")?)),
        "s" => Ok(Field::Str(intern(str_unwire(Some(value), "s")?)?)),
        "b" => match value {
            Json::Bool(b) => Ok(Field::Bool(*b)),
            _ => Err("trace field 'b' must be a boolean".into()),
        },
        other => Err(format!("unknown trace field tag '{other}'")),
    }
}

fn event_wire(event: &TraceEvent) -> Json {
    Json::Obj(vec![
        ("d".into(), Json::Str(event.domain.into())),
        ("n".into(), Json::Str(event.name.into())),
        (
            "f".into(),
            Json::Arr(
                event
                    .fields
                    .iter()
                    .map(|(k, v)| {
                        Json::Arr(vec![Json::Str((*k).to_string()), field_wire(v)])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn event_unwire(obj: &Json) -> Result<TraceEvent, String> {
    let domain = intern(str_unwire(obj.get("d"), "d")?)?;
    let name = intern(str_unwire(obj.get("n"), "n")?)?;
    let mut fields = Vec::new();
    for pair in arr_unwire(obj.get("f"), "f")? {
        let items = pair
            .as_array()
            .filter(|a| a.len() == 2)
            .ok_or("trace field must be a [key, value] pair")?;
        let key = intern(
            items[0]
                .as_str()
                .ok_or("trace field key must be a string")?,
        )?;
        fields.push((key, field_unwire(&items[1])?));
    }
    Ok(TraceEvent::new(domain, name, fields))
}

// ---------------------------------------------------------------------
// Per-kind block wire forms.
// ---------------------------------------------------------------------

fn campaign_block_wire(b: &CampaignBlock) -> Json {
    Json::Obj(vec![
        ("block".into(), u64_wire(b.block)),
        ("faults".into(), u64_wire(b.acc.iterations_with_faults)),
        ("ue".into(), u64_wire(b.acc.iterations_with_ue)),
        ("err".into(), f64_wire(b.acc.error_ratio_sum)),
        ("udr_sum".into(), f64_vec_wire(&b.acc.per_policy_udr_sum)),
        ("udr_hits".into(), u64_vec_wire(&b.acc.per_policy_udr_hits)),
        (
            "events".into(),
            Json::Arr(b.events.iter().map(event_wire).collect()),
        ),
    ])
}

fn campaign_block_unwire(obj: &Json) -> Result<CampaignBlock, String> {
    let mut acc = Accumulator::new(STANDARD_POLICIES.len());
    acc.iterations_with_faults = u64_unwire(obj.get("faults"), "faults")?;
    acc.iterations_with_ue = u64_unwire(obj.get("ue"), "ue")?;
    acc.error_ratio_sum = f64_unwire(obj.get("err"), "err")?;
    let sums = arr_unwire(obj.get("udr_sum"), "udr_sum")?;
    let hits = arr_unwire(obj.get("udr_hits"), "udr_hits")?;
    if sums.len() != STANDARD_POLICIES.len() || hits.len() != STANDARD_POLICIES.len() {
        return Err(format!(
            "campaign block must carry {} per-policy sums",
            STANDARD_POLICIES.len()
        ));
    }
    for (i, v) in sums.iter().enumerate() {
        acc.per_policy_udr_sum[i] = f64_unwire(Some(v), "udr_sum")?;
    }
    for (i, v) in hits.iter().enumerate() {
        acc.per_policy_udr_hits[i] = u64_unwire(Some(v), "udr_hits")?;
    }
    let mut events = Vec::new();
    for e in arr_unwire(obj.get("events"), "events")? {
        events.push(event_unwire(e)?);
    }
    Ok(CampaignBlock {
        block: u64_unwire(obj.get("block"), "block")?,
        acc,
        events,
    })
}

fn compare_block_wire(b: &CompareBlock) -> Json {
    Json::Obj(vec![
        ("block".into(), u64_wire(b.block)),
        ("faults".into(), u64_wire(b.acc.iterations_with_faults)),
        ("ue".into(), u64_wire(b.acc.iterations_with_ue)),
        ("err".into(), f64_wire(b.acc.error_ratio_sum)),
        ("udr_sum".into(), f64_vec_wire(&b.acc.udr_sum)),
        ("udr_hits".into(), u64_vec_wire(&b.acc.udr_hits)),
        (
            "events".into(),
            // Compare events are fully-rendered NDJSON lines already;
            // they pass through as opaque strings.
            Json::Arr(b.acc.events.iter().map(|e| Json::Str(e.clone())).collect()),
        ),
    ])
}

fn compare_block_unwire(obj: &Json) -> Result<CompareBlock, String> {
    let sums = arr_unwire(obj.get("udr_sum"), "udr_sum")?;
    let hits = arr_unwire(obj.get("udr_hits"), "udr_hits")?;
    if sums.len() != hits.len() {
        return Err("compare block's udr_sum and udr_hits lengths differ".into());
    }
    let mut acc = BlockAcc::new(sums.len());
    acc.iterations_with_faults = u64_unwire(obj.get("faults"), "faults")?;
    acc.iterations_with_ue = u64_unwire(obj.get("ue"), "ue")?;
    acc.error_ratio_sum = f64_unwire(obj.get("err"), "err")?;
    for (i, v) in sums.iter().enumerate() {
        acc.udr_sum[i] = f64_unwire(Some(v), "udr_sum")?;
    }
    for (i, v) in hits.iter().enumerate() {
        acc.udr_hits[i] = u64_unwire(Some(v), "udr_hits")?;
    }
    for e in arr_unwire(obj.get("events"), "events")? {
        acc.events
            .push(e.as_str().ok_or("compare event must be a string")?.to_string());
    }
    Ok(CompareBlock {
        block: u64_unwire(obj.get("block"), "block")?,
        acc,
    })
}

fn crashck_unit_wire(index: u64, r: &UnitResult) -> Json {
    let mut obj = vec![
        ("block".into(), u64_wire(index)),
        ("cell".into(), Json::Str(r.cell.clone())),
        ("tree".into(), Json::Str(r.tree.into())),
        ("policy".into(), Json::Str(r.policy.into())),
        ("recovery".into(), Json::Str(r.recovery.into())),
        ("seed".into(), u64_wire(r.seed)),
        ("script".into(), Json::Str(r.script.clone())),
        ("txns".into(), u64_wire(r.txns as u64)),
        ("points".into(), u64_wire(r.points)),
        ("committed".into(), u64_wire(r.committed_total as u64)),
    ];
    if let Some(d) = &r.divergence {
        obj.push((
            "divergence".into(),
            Json::Obj(vec![
                ("point".into(), u64_wire(d.point)),
                ("reason".into(), Json::Str(d.reason.clone())),
                ("trace_tail".into(), Json::Str(d.trace_tail.clone())),
            ]),
        ));
    }
    Json::Obj(obj)
}

fn crashck_unit_unwire(obj: &Json) -> Result<(u64, UnitResult), String> {
    let (tree, policy, recovery, mode) = intern_unit_names(
        str_unwire(obj.get("tree"), "tree")?,
        str_unwire(obj.get("policy"), "policy")?,
        str_unwire(obj.get("recovery"), "recovery")?,
    )?;
    let divergence = match obj.get("divergence") {
        None => None,
        Some(d) => Some(soteria_rt::crashck::Divergence {
            point: u64_unwire(d.get("point"), "divergence.point")?,
            reason: str_unwire(d.get("reason"), "divergence.reason")?.to_string(),
            trace_tail: str_unwire(d.get("trace_tail"), "divergence.trace_tail")?.to_string(),
        }),
    };
    Ok((
        u64_unwire(obj.get("block"), "block")?,
        UnitResult {
            cell: str_unwire(obj.get("cell"), "cell")?.to_string(),
            tree,
            policy,
            recovery,
            mode,
            seed: u64_unwire(obj.get("seed"), "seed")?,
            script: str_unwire(obj.get("script"), "script")?.to_string(),
            txns: usize_unwire(obj.get("txns"), "txns")?,
            points: u64_unwire(obj.get("points"), "points")?,
            committed_total: usize_unwire(obj.get("committed"), "committed")?,
            divergence,
        },
    ))
}

/// Parses a `POST /v1/blocks` request body into a [`JobSpec::Blocks`]:
/// `{"kind": "campaign"|"compare"|"crashck", "lo": N, "hi": M,
/// "config": {…}}`, where `config` takes the same fields as the kind's
/// own submission endpoint. A nested `"blocks"` kind is rejected.
///
/// # Errors
///
/// Returns a one-line, field-naming message on any invalid input.
pub fn blocks_spec_from_json(body: &Json) -> Result<JobSpec, String> {
    let kind = body
        .get("kind")
        .and_then(Json::as_str)
        .ok_or("field 'kind' must be one of campaign, compare, crashck")?;
    let range_int = |field: &str| -> Result<u64, String> {
        let v = body
            .get(field)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("field '{field}' must be a number"))?;
        if v < 0.0 || v.fract() != 0.0 {
            return Err(format!("field '{field}' must be a non-negative integer"));
        }
        Ok(v as u64)
    };
    let lo = range_int("lo")?;
    let hi = range_int("hi")?;
    if lo >= hi {
        return Err("field 'hi' must be greater than 'lo'".into());
    }
    let default = Json::Obj(Vec::new());
    let config = body.get("config").unwrap_or(&default);
    let inner = match kind {
        "campaign" => JobSpec::Campaign(crate::job::config_from_json(config)?),
        "compare" => JobSpec::Compare(crate::compare::compare_config_from_json(config)?),
        "crashck" => JobSpec::Crashck(crate::crashck::crashck_config_from_json(config)?),
        other => {
            return Err(format!(
                "unknown kind '{other}' (campaign, compare, crashck)"
            ))
        }
    };
    if hi > total_blocks(&inner) {
        return Err(format!(
            "field 'hi' exceeds the job's {} blocks",
            total_blocks(&inner)
        ));
    }
    Ok(JobSpec::Blocks {
        spec: Box::new(inner),
        lo,
        hi,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::CampaignConfig;
    use crate::compare::CompareConfig;
    use crate::crashck::CrashckConfig;
    use crate::job::run_spec;

    fn campaign_spec() -> JobSpec {
        let mut config = CampaignConfig::table4(1500.0);
        config.capacity_bytes = 1 << 26;
        config.iterations = 192;
        config.trace = true;
        JobSpec::Campaign(config)
    }

    fn compare_spec() -> JobSpec {
        JobSpec::Compare(CompareConfig {
            iterations: 192,
            trace_ops: 256,
            ..CompareConfig::default()
        })
    }

    fn crashck_spec() -> JobSpec {
        JobSpec::Crashck(CrashckConfig {
            seed: 0x50f3,
            scripts_per_cell: 1,
            max_txns: 2,
            max_writes: 2,
            threads: 1,
        })
    }

    /// Round-trips partials through their serialized wire bytes — the
    /// exact path fleet partials take between worker and coordinator.
    fn through_wire(spec: &JobSpec, ranges: &[(u64, u64)]) -> (String, String) {
        let partials: Vec<Json> = ranges
            .iter()
            .map(|&(lo, hi)| {
                let doc = run_block_range(spec, lo, hi).to_pretty_string();
                Json::parse(&doc).expect("partial must serialize to valid JSON")
            })
            .collect();
        merge_partials(spec, &partials).expect("merge must succeed")
    }

    #[test]
    fn campaign_merge_is_byte_identical_across_splits() {
        let spec = campaign_spec();
        let single = run_spec(&spec);
        let total = total_blocks(&spec);
        assert_eq!(total, 3);
        // Uneven split, reversed order, and an overlapping (reassigned)
        // block must all merge to the single-node bytes.
        for ranges in [
            vec![(0, total)],
            vec![(0, 1), (1, total)],
            vec![(2, 3), (0, 2)],
            vec![(0, 2), (1, total), (2, 3)],
        ] {
            assert_eq!(through_wire(&spec, &ranges), single, "{ranges:?}");
        }
    }

    #[test]
    fn compare_merge_is_byte_identical_across_splits() {
        let spec = compare_spec();
        let single = run_spec(&spec);
        let total = total_blocks(&spec);
        assert_eq!(total, 3);
        for ranges in [vec![(0, total)], vec![(1, total), (0, 1), (1, 2)]] {
            assert_eq!(through_wire(&spec, &ranges), single, "{ranges:?}");
        }
    }

    #[test]
    fn crashck_merge_is_byte_identical_across_splits() {
        let spec = crashck_spec();
        let single = run_spec(&spec);
        let total = total_blocks(&spec);
        assert_eq!(total, 18);
        let halves = vec![(9, total), (0, 9)];
        assert_eq!(through_wire(&spec, &halves), single);
    }

    #[test]
    fn merge_rejects_missing_blocks_and_bad_vocabulary() {
        let spec = campaign_spec();
        let partial = Json::parse(&run_block_range(&spec, 0, 2).to_pretty_string()).unwrap();
        let err = merge_partials(&spec, &[partial]).unwrap_err();
        assert!(err.contains("missing block 2"), "{err}");

        assert!(intern("campaign").is_ok());
        let err = intern("stdout").unwrap_err();
        assert!(err.contains("stdout"), "{err}");
    }

    #[test]
    fn blocks_spec_parser_validates() {
        let parse = |s: &str| blocks_spec_from_json(&Json::parse(s).unwrap());
        let spec = parse(r#"{"kind": "campaign", "lo": 0, "hi": 2, "config": {"iterations": 192}}"#)
            .unwrap();
        let JobSpec::Blocks { spec, lo, hi } = spec else {
            panic!("expected a Blocks spec");
        };
        assert!(matches!(*spec, JobSpec::Campaign(_)));
        assert_eq!((lo, hi), (0, 2));
        for (body, needle) in [
            (r#"{"lo": 0, "hi": 1}"#, "'kind'"),
            (r#"{"kind": "blocks", "lo": 0, "hi": 1}"#, "unknown kind"),
            (r#"{"kind": "campaign", "lo": 3, "hi": 3}"#, "'hi'"),
            (
                r#"{"kind": "campaign", "lo": 0, "hi": 99, "config": {"iterations": 64}}"#,
                "exceeds",
            ),
            (
                r#"{"kind": "campaign", "lo": 0, "hi": 1, "config": {"bogus": 1}}"#,
                "unknown field",
            ),
        ] {
            let err = parse(body).unwrap_err();
            assert!(err.contains(needle), "{body} -> {err}");
        }
    }

    #[test]
    fn f64_wire_is_bit_exact() {
        for v in [0.0, -0.0, 1.0 / 3.0, f64::MIN_POSITIVE, 1e300, -7.25] {
            let wire = f64_wire(v);
            let back = f64_unwire(Some(&wire), "t").unwrap();
            assert_eq!(back.to_bits(), v.to_bits());
        }
    }
}
