//! Cross-scheme shootout campaign (`soteria compare`).
//!
//! Every scheme registered in [`soteria::policy::standard_schemes`] is
//! swept over **identical** workloads, in two halves:
//!
//! * **Resilience** — the Monte Carlo fault campaign, re-using the exact
//!   per-iteration seed streams of the main campaign
//!   (`stream_seed(seed, i)`) and the fixed [`ITERATION_BLOCK`]
//!   accumulation blocks, but assessing every scheme's
//!   [`soteria::LossProfile`] through
//!   [`ResilienceModel::assess_schemes`]. Paired comparison: one fault
//!   history per iteration, all schemes judged against it.
//! * **Slowdown** — one deterministic write/read trace per scheme (the
//!   same seeded operation stream for all of them) through a real
//!   controller built from the scheme's trait config, costed with the
//!   recovery cost model (reads × 150 ns + writes × 300 ns) and
//!   normalized to the first (baseline) scheme; plus a crash at the end
//!   of the trace, recovered through the scheme's own recovery hook to
//!   estimate recovery time.
//!
//! Both halves fold results in fixed order (blocks, then roster order),
//! so the `soteria-compare/v1` JSON and NDJSON artifacts are
//! **byte-identical for any `threads` value** — the same contract the
//! campaign and crashck artifacts carry, and what the CI compare-smoke
//! job checks with `cmp`.

use soteria::analysis::{ResilienceModel, SchemeLoss};
use soteria::clone::CloningPolicy;
use soteria::config::TreeUpdate;
use soteria::policy::{standard_schemes, ProtectionPolicy, RecoveryStrategy};
use soteria::DataAddr;
use soteria_rt::json::Json;
use soteria_rt::rng::{stream_seed, StdRng};
use soteria_rt::thread::{fan_out, parallel_map};

use crate::campaign::{sample_fault_history_into, CampaignConfig, ITERATION_BLOCK};
use crate::FIVE_YEARS_HOURS;

/// The seed stream index the slowdown trace draws from — far outside the
/// `0..iterations` range the resilience half uses, so the two halves
/// never share an RNG stream.
const TRACE_STREAM: u64 = 0x7472_6163_6500;

/// Configuration of one compare campaign. Defaults are sized for a
/// CI-smoke run (64 MiB device, a few hundred iterations) — the compare
/// matrix is about *ordering* schemes, not about absolute 16 GiB rates.
#[derive(Clone, Debug)]
pub struct CompareConfig {
    /// Protected data capacity for the resilience half.
    pub capacity_bytes: u64,
    /// Total FIT per chip.
    pub fit_per_chip: f64,
    /// Simulated service time in hours.
    pub hours: f64,
    /// Monte Carlo iterations.
    pub iterations: u64,
    /// RNG seed (iteration `i` draws from `stream_seed(seed, i)`).
    pub seed: u64,
    /// Worker threads (artifacts are identical for any value).
    pub threads: usize,
    /// Operations in the deterministic slowdown trace.
    pub trace_ops: u64,
}

impl Default for CompareConfig {
    fn default() -> Self {
        Self {
            capacity_bytes: 1 << 26, // 64 MiB
            fit_per_chip: 1500.0,
            hours: FIVE_YEARS_HOURS,
            iterations: 512,
            seed: 0xc0a4_7a5e,
            threads: 1,
            trace_ops: 2048,
        }
    }
}

impl CompareConfig {
    /// The campaign config the resilience half borrows its geometry and
    /// layout helpers from (same DIMM shape, same fault mix).
    fn campaign(&self) -> CampaignConfig {
        let mut c = CampaignConfig::table4(self.fit_per_chip);
        c.capacity_bytes = self.capacity_bytes;
        c.hours = self.hours;
        c.iterations = self.iterations;
        c.seed = self.seed;
        c.threads = self.threads;
        c
    }
}

/// One row of the compare matrix.
#[derive(Clone, Debug)]
pub struct SchemeRow {
    /// Stable scheme name (`baseline`, `src`, `triad1`, …).
    pub scheme: &'static str,
    /// Cloning policy display name.
    pub cloning: String,
    /// Tree-update strategy label.
    pub tree_update: String,
    /// Recovery hook label (`anubis` / `osiris`).
    pub recovery: &'static str,
    /// Iterations with non-zero unverifiable data.
    pub iterations_with_udr: u64,
    /// Mean Unverifiable Data Ratio.
    pub mean_udr: f64,
    /// Mean direct-error ratio (scheme-independent; echoed per row).
    pub mean_error_ratio: f64,
    /// NVM line reads issued by the slowdown trace.
    pub nvm_reads: u64,
    /// NVM line writes issued by the slowdown trace.
    pub nvm_writes: u64,
    /// NVM line writes per data write.
    pub write_amplification: f64,
    /// Modeled trace cost (reads × 150 ns + writes × 300 ns).
    pub cost_ns: u64,
    /// Trace cost normalized to the first (baseline) scheme.
    pub slowdown: f64,
    /// Estimated crash-recovery duration under the scheme's hook.
    pub recovery_est_ns: u64,
    /// Whether that recovery reported zero unverifiable lines.
    pub recovery_complete: bool,
}

/// Everything a compare campaign produced.
#[derive(Clone, Debug)]
pub struct CompareOutput {
    /// One row per registered scheme, in roster order.
    pub rows: Vec<SchemeRow>,
    /// The aggregate report (`soteria-compare/v1`), pretty-printed.
    pub result_json: String,
    /// NDJSON: config, per-iteration UDR events, per-scheme results.
    pub ndjson: String,
    /// Iterations in which at least one fault arrived.
    pub iterations_with_faults: u64,
    /// Iterations in which the ECC was defeated somewhere.
    pub iterations_with_ue: u64,
}

/// Artifact label for a tree-update strategy.
fn tree_label(update: TreeUpdate) -> String {
    match update {
        TreeUpdate::Lazy => "lazy".into(),
        TreeUpdate::Eager => "eager".into(),
        TreeUpdate::Triad { persist_levels } => format!("triad{persist_levels}"),
        TreeUpdate::Phoenix => "phoenix".into(),
        TreeUpdate::Coalesced { period } => format!("coalesced{period}"),
    }
}

/// Artifact label for a recovery hook.
fn recovery_label(strategy: RecoveryStrategy) -> &'static str {
    match strategy {
        RecoveryStrategy::AnubisShadow => "anubis",
        RecoveryStrategy::OsirisScan => "osiris",
    }
}

/// Per-block accumulator of the resilience half (the compare analogue of
/// the campaign's fixed-block f64 accumulation).
pub(crate) struct BlockAcc {
    pub(crate) iterations_with_faults: u64,
    pub(crate) iterations_with_ue: u64,
    pub(crate) error_ratio_sum: f64,
    pub(crate) udr_sum: Vec<f64>,
    pub(crate) udr_hits: Vec<u64>,
    /// NDJSON event lines drawn inside this block, in iteration order.
    pub(crate) events: Vec<String>,
}

impl BlockAcc {
    pub(crate) fn new(schemes: usize) -> Self {
        Self {
            iterations_with_faults: 0,
            iterations_with_ue: 0,
            error_ratio_sum: 0.0,
            udr_sum: vec![0.0; schemes],
            udr_hits: vec![0u64; schemes],
            events: Vec::new(),
        }
    }
}

/// What the slowdown trace measured for one scheme.
struct TraceCost {
    nvm_reads: u64,
    nvm_writes: u64,
    write_amplification: f64,
    cost_ns: u64,
    recovery_est_ns: u64,
    recovery_complete: bool,
}

/// Drives the shared deterministic operation trace through one scheme's
/// controller and costs it. Every scheme replays the *same* seeded
/// stream (same addresses, same fills, same read points).
fn run_trace(scheme: &dyn ProtectionPolicy, config: &CompareConfig) -> TraceCost {
    // 1 MiB / 16 KiB 8-way cache / 16-entry WPQ: big enough for a
    // 3-level ToC, small enough that the trace forces evictions (where
    // the schemes' write amplification actually differs).
    let mem_config = scheme
        .build_config(1 << 20, 16 * 1024, 8, 16)
        // lint:allow(P1, registry schemes are validated buildable by unit test)
        .expect("registered scheme must build");
    let data_lines = mem_config.data_lines();
    let mut memory = soteria::SecureMemoryController::new(mem_config);
    let mut rng = StdRng::seed_from_u64(stream_seed(config.seed, TRACE_STREAM));
    // Concentrate on a quarter of the device so hot counter blocks see
    // repeated bumps (Osiris budget pressure) while still spanning many
    // cache sets.
    let span = (data_lines / 4).max(1);
    for op in 0..config.trace_ops {
        let line = rng.bounded_u64(span);
        if op % 4 == 3 {
            // Reads of never-written lines are defined to read zeroes.
            let _ = memory.read(DataAddr::new(line));
        } else {
            let fill = (rng.next_u64() & 0xff) as u8;
            memory
                .write(DataAddr::new(line), &[fill; 64])
                // lint:allow(P1, fault-free harness device cannot fail a write)
                .expect("fault-free trace write");
        }
    }
    let stats = memory.stats();
    let (nvm_reads, nvm_writes) = (stats.nvm_reads, stats.nvm_writes);
    let data_writes = stats.data_writes.max(1);
    let (_, report) = scheme.recover(memory.crash());
    TraceCost {
        nvm_reads,
        nvm_writes,
        write_amplification: nvm_writes as f64 / data_writes as f64,
        cost_ns: nvm_reads * 150 + nvm_writes * 300,
        recovery_est_ns: report.estimated_duration_ns(),
        recovery_complete: report.is_complete(),
    }
}

/// Runs the full compare campaign over the registered scheme roster.
///
/// For a fixed `config.seed` the artifacts are byte-identical at any
/// `config.threads` value.
pub fn run_compare(config: &CompareConfig) -> CompareOutput {
    let blocks = config.iterations.div_ceil(ITERATION_BLOCK);
    let all: Vec<u64> = (0..blocks).collect();
    let tagged = run_compare_blocks(config, &all);
    merge_compare_blocks(config, tagged)
}

/// One block's partial sums of the resilience half — the unit of work
/// distribution, both across local threads and across fleet workers.
pub(crate) struct CompareBlock {
    /// Block index (`block * ITERATION_BLOCK` is its first iteration).
    pub(crate) block: u64,
    pub(crate) acc: BlockAcc,
}

/// Computes the resilience-half partials of the given accumulation
/// blocks. A block's partials depend only on `(config, block)`, so any
/// partition over threads or fleet workers yields bit-identical
/// partials. Returned sorted by block index.
pub(crate) fn run_compare_blocks(config: &CompareConfig, block_ids: &[u64]) -> Vec<CompareBlock> {
    let schemes = standard_schemes();
    let campaign = config.campaign();
    let layout = campaign.build_layout();
    let geometry = campaign.build_geometry(&layout);
    let rates = campaign.rates.scaled_to(campaign.fit_per_chip);
    let correctable_chips = campaign.correctable_chips;
    let clonings: Vec<CloningPolicy> = schemes.iter().map(|s| s.cloning()).collect();
    let profiles: Vec<SchemeLoss<'_>> = clonings
        .iter()
        .zip(schemes.iter())
        .map(|(cloning, scheme)| SchemeLoss {
            cloning,
            profile: scheme.loss_profile(),
        })
        .collect();

    let workers = config.threads.max(1).min(block_ids.len().max(1));
    let data_lines = layout.data_lines();
    let per_worker: Vec<Vec<CompareBlock>> = fan_out(workers, |t| {
        let model = ResilienceModel::new(&layout, &geometry);
        let mut history = Vec::new();
        let mut live = Vec::new();
        let mut chips: Vec<u32> = Vec::new();
        let mut out = Vec::new();
        let mut i = t;
        while i < block_ids.len() {
            let block = block_ids[i];
            let lo = block * ITERATION_BLOCK;
            let hi = (lo + ITERATION_BLOCK).min(config.iterations);
            let mut acc = BlockAcc::new(schemes.len());
            for iter in lo..hi {
                let mut rng = StdRng::seed_from_u64(stream_seed(config.seed, iter));
                sample_fault_history_into(&mut rng, &geometry, &rates, config.hours, &mut history);
                if history.is_empty() {
                    continue;
                }
                acc.iterations_with_faults += 1;
                live.clear();
                live.extend(history.iter().map(|t| t.record.clone()));
                chips.clear();
                for f in &live {
                    for &c in &f.chips {
                        if !chips.contains(&c) {
                            chips.push(c);
                        }
                    }
                }
                if chips.len() <= correctable_chips {
                    continue; // Chipkill corrects any single chip.
                }
                let assessments = model.assess_schemes(&live, &profiles);
                let mut any_ue = false;
                for (i, a) in assessments.iter().enumerate() {
                    if a.error_data_lines > 0 || a.unverifiable_data_lines > 0 {
                        any_ue = true;
                    }
                    if i == 0 {
                        acc.error_ratio_sum += a.error_ratio(data_lines);
                    }
                    let udr = a.udr(data_lines);
                    if udr > 0.0 {
                        acc.udr_sum[i] += udr;
                        acc.udr_hits[i] += 1;
                        acc.events.push(
                            Json::Obj(vec![
                                ("event".into(), Json::Str("scheme_udr".into())),
                                ("iter".into(), Json::Num(iter as f64)),
                                (
                                    "seed".into(),
                                    Json::Str(format!(
                                        "{:#018x}",
                                        stream_seed(config.seed, iter)
                                    )),
                                ),
                                ("scheme".into(), Json::Str(schemes[i].name().into())),
                                ("udr".into(), Json::Num(udr)),
                            ])
                            .to_string(),
                        );
                    }
                }
                if any_ue {
                    acc.iterations_with_ue += 1;
                }
            }
            out.push(CompareBlock { block, acc });
            i += workers;
        }
        out
    });

    let mut tagged: Vec<CompareBlock> = per_worker.into_iter().flatten().collect();
    tagged.sort_by_key(|b| b.block);
    tagged
}

/// Folds block partials (in block order) into the full compare output:
/// the deterministic slowdown half runs here, then both halves are
/// serialized. The single reduction behind both the local runner and the
/// fleet coordinator's merge, so their bytes cannot diverge.
pub(crate) fn merge_compare_blocks(
    config: &CompareConfig,
    mut tagged: Vec<CompareBlock>,
) -> CompareOutput {
    let schemes = standard_schemes();
    tagged.sort_by_key(|b| b.block);
    let mut iterations_with_faults = 0u64;
    let mut iterations_with_ue = 0u64;
    let mut error_ratio_sum = 0.0f64;
    let mut udr_sum = vec![0.0f64; schemes.len()];
    let mut udr_hits = vec![0u64; schemes.len()];
    let mut udr_events: Vec<String> = Vec::new();
    for CompareBlock { acc, .. } in tagged {
        iterations_with_faults += acc.iterations_with_faults;
        iterations_with_ue += acc.iterations_with_ue;
        error_ratio_sum += acc.error_ratio_sum;
        for i in 0..schemes.len() {
            udr_sum[i] += acc.udr_sum[i];
            udr_hits[i] += acc.udr_hits[i];
        }
        udr_events.extend(acc.events);
    }
    let mean_error_ratio = error_ratio_sum / config.iterations as f64;

    // Slowdown half: one deterministic trace per scheme, in parallel,
    // collected in roster order.
    let costs: Vec<TraceCost> = parallel_map(
        schemes.to_vec(),
        config.threads.max(1),
        |scheme| run_trace(scheme, config),
    );
    let baseline_cost = costs.first().map_or(1, |c| c.cost_ns).max(1);

    let rows: Vec<SchemeRow> = schemes
        .iter()
        .zip(costs)
        .enumerate()
        .map(|(i, (scheme, cost))| SchemeRow {
            scheme: scheme.name(),
            cloning: scheme.cloning().to_string(),
            tree_update: tree_label(scheme.tree_update()),
            recovery: recovery_label(scheme.recovery()),
            iterations_with_udr: udr_hits[i],
            mean_udr: udr_sum[i] / config.iterations as f64,
            mean_error_ratio,
            nvm_reads: cost.nvm_reads,
            nvm_writes: cost.nvm_writes,
            write_amplification: cost.write_amplification,
            cost_ns: cost.cost_ns,
            slowdown: cost.cost_ns as f64 / baseline_cost as f64,
            recovery_est_ns: cost.recovery_est_ns,
            recovery_complete: cost.recovery_complete,
        })
        .collect();

    let config_obj = Json::Obj(vec![
        ("seed".into(), Json::Str(format!("{:#018x}", config.seed))),
        ("iterations".into(), Json::Num(config.iterations as f64)),
        ("fit_per_chip".into(), Json::Num(config.fit_per_chip)),
        (
            "capacity_bytes".into(),
            Json::Num(config.capacity_bytes as f64),
        ),
        ("trace_ops".into(), Json::Num(config.trace_ops as f64)),
    ]);
    let scheme_objs: Vec<Json> = rows
        .iter()
        .map(|r| {
            Json::Obj(vec![
                ("scheme".into(), Json::Str(r.scheme.into())),
                ("cloning".into(), Json::Str(r.cloning.clone())),
                ("tree_update".into(), Json::Str(r.tree_update.clone())),
                ("recovery".into(), Json::Str(r.recovery.into())),
                (
                    "iterations_with_udr".into(),
                    Json::Num(r.iterations_with_udr as f64),
                ),
                ("mean_udr".into(), Json::Num(r.mean_udr)),
                ("mean_error_ratio".into(), Json::Num(r.mean_error_ratio)),
                ("nvm_reads".into(), Json::Num(r.nvm_reads as f64)),
                ("nvm_writes".into(), Json::Num(r.nvm_writes as f64)),
                (
                    "write_amplification".into(),
                    Json::Num(r.write_amplification),
                ),
                ("cost_ns".into(), Json::Num(r.cost_ns as f64)),
                ("slowdown".into(), Json::Num(r.slowdown)),
                ("recovery_est_ns".into(), Json::Num(r.recovery_est_ns as f64)),
                ("recovery_complete".into(), Json::Bool(r.recovery_complete)),
            ])
        })
        .collect();
    let result = Json::Obj(vec![
        ("schema".into(), Json::Str("soteria-compare/v1".into())),
        ("config".into(), config_obj.clone()),
        ("schemes".into(), Json::Arr(scheme_objs.clone())),
        (
            "summary".into(),
            Json::Obj(vec![
                ("schemes".into(), Json::Num(schemes.len() as f64)),
                (
                    "iterations_with_faults".into(),
                    Json::Num(iterations_with_faults as f64),
                ),
                (
                    "iterations_with_ue".into(),
                    Json::Num(iterations_with_ue as f64),
                ),
                (
                    "baseline_cost_ns".into(),
                    Json::Num(baseline_cost as f64),
                ),
            ]),
        ),
    ]);

    let mut ndjson = String::new();
    let mut header = vec![
        ("event".into(), Json::Str("config".into())),
        ("schema".into(), Json::Str("soteria-compare/v1".into())),
    ];
    if let Json::Obj(entries) = config_obj {
        header.extend(entries);
    }
    header.push(("schemes".into(), Json::Num(schemes.len() as f64)));
    ndjson.push_str(&Json::Obj(header).to_string());
    ndjson.push('\n');
    for line in &udr_events {
        ndjson.push_str(line);
        ndjson.push('\n');
    }
    for (row, obj) in rows.iter().zip(scheme_objs) {
        let _ = row;
        let mut entries = vec![("event".into(), Json::Str("scheme_result".into()))];
        if let Json::Obj(fields) = obj {
            entries.extend(fields);
        }
        ndjson.push_str(&Json::Obj(entries).to_string());
        ndjson.push('\n');
    }

    CompareOutput {
        rows,
        result_json: result.to_pretty_string(),
        ndjson,
        iterations_with_faults,
        iterations_with_ue,
    }
}

/// Builds a [`CompareConfig`] from a JSON request body — the single
/// parser behind `soteria compare` submissions over HTTP.
///
/// Recognized fields (all optional; anything else is rejected):
/// `fit`, `iterations` (≤ 10^6), `seed` (number or `"0x…"` string),
/// `threads`, `capacity_bytes` (1 MiB–1 GiB), `trace_ops` (≤ 10^6).
///
/// # Errors
///
/// Returns a one-line, field-naming message on any invalid input.
pub fn compare_config_from_json(body: &Json) -> Result<CompareConfig, String> {
    let entries = body
        .entries()
        .ok_or("compare config must be a JSON object")?;
    let num = |v: &Json, field: &str| {
        v.as_f64()
            .ok_or_else(|| format!("field '{field}' must be a number"))
    };
    let positive_int = |v: &Json, field: &str| -> Result<u64, String> {
        let n = num(v, field)?;
        if n < 1.0 || n.fract() != 0.0 {
            return Err(format!("field '{field}' must be a positive integer"));
        }
        Ok(n as u64)
    };
    let mut config = CompareConfig::default();
    for (key, value) in entries {
        match key.as_str() {
            "fit" => {
                let fit = num(value, "fit")?;
                if !(fit > 0.0 && fit.is_finite()) {
                    return Err("field 'fit' must be a positive number".into());
                }
                config.fit_per_chip = fit;
            }
            "iterations" => {
                let iters = positive_int(value, "iterations")?;
                if iters > 1_000_000 {
                    return Err("field 'iterations' must be at most 1000000".into());
                }
                config.iterations = iters;
            }
            "seed" => {
                config.seed = match value {
                    Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 => *n as u64,
                    Json::Str(s) => {
                        let hex = s.strip_prefix("0x").unwrap_or(s);
                        u64::from_str_radix(hex, 16)
                            .map_err(|_| format!("field 'seed' has invalid hex value '{s}'"))?
                    }
                    _ => return Err("field 'seed' must be an integer or hex string".into()),
                };
            }
            "threads" => {
                config.threads = positive_int(value, "threads")? as usize;
            }
            "capacity_bytes" => {
                let bytes = positive_int(value, "capacity_bytes")?;
                if !(1 << 20..=1u64 << 30).contains(&bytes) {
                    return Err("field 'capacity_bytes' must be between 1 MiB and 1 GiB".into());
                }
                config.capacity_bytes = bytes;
            }
            "trace_ops" => {
                let ops = positive_int(value, "trace_ops")?;
                if ops > 1_000_000 {
                    return Err("field 'trace_ops' must be at most 1000000".into());
                }
                config.trace_ops = ops;
            }
            other => {
                return Err(format!(
                    "unknown field '{other}' (fit, iterations, seed, threads, capacity_bytes, \
                     trace_ops)"
                ))
            }
        }
    }
    Ok(config)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> CompareConfig {
        CompareConfig {
            iterations: 192,
            trace_ops: 512,
            threads: 1,
            ..CompareConfig::default()
        }
    }

    #[test]
    fn smoke_matrix_is_thread_invariant_and_ordered() {
        let one = run_compare(&small_config());
        assert!(one.rows.len() >= 6, "compare must cover six+ schemes");
        let four = run_compare(&CompareConfig {
            threads: 4,
            ..small_config()
        });
        assert_eq!(one.result_json, four.result_json);
        assert_eq!(one.ndjson, four.ndjson);

        let udr = |name: &str| {
            one.rows
                .iter()
                .find(|r| r.scheme == name)
                .map(|r| r.mean_udr)
                // lint:allow(P1, roster names are pinned by the registry test)
                .expect("registered scheme")
        };
        // The Fig. 11 cloning ordering and the Triad tier ordering both
        // hold on the paired fault streams.
        assert!(udr("baseline") >= udr("src"));
        assert!(udr("src") >= udr("sac"));
        assert!(udr("triad0") >= udr("triad1"));
        assert!(udr("triad1") >= udr("triad2"));
        assert!(udr("baseline") >= udr("osiris"));
    }

    #[test]
    fn slowdown_is_normalized_to_baseline_and_positive() {
        let out = run_compare(&CompareConfig {
            iterations: 64,
            trace_ops: 256,
            ..CompareConfig::default()
        });
        assert_eq!(out.rows[0].scheme, "baseline");
        assert!((out.rows[0].slowdown - 1.0).abs() < 1e-12);
        for r in &out.rows {
            assert!(r.cost_ns > 0, "{} must pay NVM traffic", r.scheme);
            assert!(r.slowdown > 0.0);
            assert!(r.write_amplification >= 1.0, "{}", r.scheme);
        }
        // Eager-style write-through (triad1+, phoenix) must cost more
        // NVM writes than the lazy baseline on the identical trace.
        let writes = |name: &str| {
            out.rows
                .iter()
                .find(|r| r.scheme == name)
                .map(|r| r.nvm_writes)
                // lint:allow(P1, roster names are pinned by the registry test)
                .expect("registered scheme")
        };
        assert!(writes("triad1") > writes("baseline"));
        assert!(writes("phoenix") > writes("baseline"));
    }

    #[test]
    fn config_parser_applies_and_rejects() {
        let parse = |s: &str| {
            compare_config_from_json(&Json::parse(s).expect("valid test JSON"))
        };
        let c = parse(
            r#"{"fit": 900, "iterations": 100, "seed": "0xbeef", "threads": 2,
                "capacity_bytes": 67108864, "trace_ops": 400}"#,
        )
        .unwrap();
        assert_eq!(c.fit_per_chip, 900.0);
        assert_eq!(c.iterations, 100);
        assert_eq!(c.seed, 0xbeef);
        assert_eq!(c.threads, 2);
        assert_eq!(c.capacity_bytes, 64 << 20);
        assert_eq!(c.trace_ops, 400);
        for (body, needle) in [
            (r#"[]"#, "JSON object"),
            (r#"{"fit": 0}"#, "'fit'"),
            (r#"{"iterations": 2000000}"#, "'iterations'"),
            (r#"{"seed": "0xzz"}"#, "'seed'"),
            (r#"{"capacity_bytes": 64}"#, "'capacity_bytes'"),
            (r#"{"trace_ops": 0}"#, "'trace_ops'"),
            (r#"{"ops": 5}"#, "unknown field 'ops'"),
        ] {
            let err = parse(body).unwrap_err();
            assert!(err.contains(needle), "{body} -> {err}");
        }
    }
}
