//! Fault-mode rates from the Hopper field study.
//!
//! Sridharan et al. ("Memory Errors in Modern Systems: The Good, The Bad,
//! and The Ugly", ASPLOS 2015 — reference 39 of the paper) report
//! per-device failure rates for the Hopper supercomputer's DDR3 DRAM,
//! broken down by fault mode and permanence. The absolute values below
//! follow that study's published magnitudes; the paper sweeps the *total*
//! FIT anyway ("varied to get sensitivity analysis"), preserving this
//! relative mix via [`FitRates::scaled_to`].

/// The fault modes of the DRAM field-study taxonomy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultMode {
    /// One cell.
    SingleBit,
    /// One word (one beat of one line).
    SingleWord,
    /// One column of a bank.
    SingleColumn,
    /// One row of a bank.
    SingleRow,
    /// One whole bank.
    SingleBank,
    /// Several banks of a chip.
    MultiBank,
    /// Rank-level circuitry: every chip of the rank.
    MultiRank,
}

/// All modes, in a stable order.
pub const ALL_MODES: [FaultMode; 7] = [
    FaultMode::SingleBit,
    FaultMode::SingleWord,
    FaultMode::SingleColumn,
    FaultMode::SingleRow,
    FaultMode::SingleBank,
    FaultMode::MultiBank,
    FaultMode::MultiRank,
];

/// FIT (failures per 10^9 device-hours) per fault mode, split by
/// permanence.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FitRates {
    /// Permanent (hard) FIT per mode, indexed like [`ALL_MODES`].
    pub permanent: [f64; 7],
    /// Transient (soft) FIT per mode.
    pub transient: [f64; 7],
}

impl FitRates {
    /// The Hopper DDR3 distribution (per-device FIT, ASPLOS 2015).
    pub fn hopper() -> Self {
        Self {
            //           bit   word   col   row   bank  mbank mrank
            permanent: [18.6, 0.3, 5.6, 8.2, 10.0, 1.4, 2.8],
            transient: [30.7, 1.0, 1.4, 0.9, 2.8, 0.2, 0.8],
        }
    }

    /// Total FIT per device.
    pub fn total(&self) -> f64 {
        self.permanent.iter().sum::<f64>() + self.transient.iter().sum::<f64>()
    }

    /// Returns the same mode mix rescaled so that [`Self::total`] equals
    /// `total_fit` — the paper's FIT sweep knob.
    ///
    /// # Panics
    ///
    /// Panics if `total_fit` is not positive.
    pub fn scaled_to(&self, total_fit: f64) -> Self {
        assert!(total_fit > 0.0, "total FIT must be positive");
        let k = total_fit / self.total();
        let mut out = *self;
        for v in out.permanent.iter_mut().chain(out.transient.iter_mut()) {
            *v *= k;
        }
        out
    }

    /// FIT of one (mode, permanence) bucket.
    pub fn rate(&self, mode: FaultMode, permanent: bool) -> f64 {
        let idx = ALL_MODES
            .iter()
            .position(|&m| m == mode)
            .expect("mode listed");
        if permanent {
            self.permanent[idx]
        } else {
            self.transient[idx]
        }
    }

    /// Enumerates (mode, permanent, fit) buckets with nonzero rates.
    pub fn buckets(&self) -> Vec<(FaultMode, bool, f64)> {
        let mut out = Vec::with_capacity(14);
        for (i, &mode) in ALL_MODES.iter().enumerate() {
            if self.permanent[i] > 0.0 {
                out.push((mode, true, self.permanent[i]));
            }
            if self.transient[i] > 0.0 {
                out.push((mode, false, self.transient[i]));
            }
        }
        out
    }
}

impl Default for FitRates {
    fn default() -> Self {
        Self::hopper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hopper_total_is_plausible() {
        // Published DDR3 totals are a few tens of FIT per device.
        let t = FitRates::hopper().total();
        assert!((50.0..120.0).contains(&t), "total {t}");
    }

    #[test]
    fn scaling_preserves_mix() {
        let h = FitRates::hopper();
        let s = h.scaled_to(80.0);
        assert!((s.total() - 80.0).abs() < 1e-9);
        let ratio = s.permanent[0] / h.permanent[0];
        for i in 0..7 {
            assert!((s.permanent[i] / h.permanent[i] - ratio).abs() < 1e-12);
            assert!((s.transient[i] / h.transient[i] - ratio).abs() < 1e-12);
        }
    }

    #[test]
    fn buckets_cover_all_nonzero() {
        let b = FitRates::hopper().buckets();
        assert_eq!(b.len(), 14);
        let sum: f64 = b.iter().map(|&(_, _, f)| f).sum();
        assert!((sum - FitRates::hopper().total()).abs() < 1e-9);
    }

    #[test]
    fn rate_lookup() {
        let h = FitRates::hopper();
        assert_eq!(h.rate(FaultMode::SingleBit, true), 18.6);
        assert_eq!(h.rate(FaultMode::MultiRank, false), 0.8);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn scaled_to_validates() {
        let _ = FitRates::hopper().scaled_to(0.0);
    }
}
