#![warn(missing_docs)]

//! A FaultSim-style Monte Carlo memory-resilience simulator.
//!
//! Reproduces the evaluation flow of §4/Table 4: per-chip fault arrivals
//! drawn from a Poisson process at a configurable FIT rate, fault modes
//! split per the Hopper field study [Sridharan et al., ASPLOS 2015],
//! Chipkill-Correct as the repair mechanism, five simulated years, and up
//! to a million iterations. Each iteration's fault set is handed to
//! [`soteria::analysis::ResilienceModel`], which determines where
//! Chipkill is defeated and how much data becomes lost (`L_error`) or
//! unverifiable (`L_unverifiable`) under each cloning policy — the inputs
//! to Figs. 11 and 12.
//!
//! # Example
//!
//! ```
//! use soteria_faultsim::{CampaignConfig, run_campaign};
//! use soteria::CloningPolicy;
//!
//! let mut config = CampaignConfig::table4(20.0); // 20 FIT per chip
//! config.iterations = 200;
//! config.capacity_bytes = 1 << 26; // small memory for the doctest
//! let results = run_campaign(&config, &[CloningPolicy::None, CloningPolicy::Relaxed]);
//! assert_eq!(results.len(), 2);
//! assert!(results[0].mean_udr >= results[1].mean_udr);
//! ```

pub mod campaign;
pub mod compare;
pub mod crashck;
pub mod job;
pub mod rare;
pub mod rates;
pub mod shard;

pub use campaign::{
    run_campaign, run_campaign_traced, sample_fault_history, sample_fault_set, CampaignConfig,
    PolicyResult, TimedFault,
};
pub use compare::{compare_config_from_json, run_compare, CompareConfig, CompareOutput, SchemeRow};
pub use crashck::{
    crashck_config_from_json, run_crashck, sweep_cell, CellDivergence, CrashckConfig,
    CrashckOutput,
};
pub use job::{
    config_from_json, report_json, run_job, run_spec, JobOutput, JobSpec, STANDARD_POLICIES,
};
pub use rare::{estimate_clone_udr, RareEventResult};
pub use shard::{blocks_spec_from_json, merge_partials, run_block_range, total_blocks};
pub use rates::{FaultMode, FitRates};

/// Hours in the five-year simulated service life used by the paper.
pub const FIVE_YEARS_HOURS: f64 = 5.0 * 365.25 * 24.0;

/// Mean time between failures for a cluster, in hours — the §4 sanity
/// check against large-scale field studies (7–23 h for ~20k nodes).
///
/// `fit_per_chip` is the total FIT per DRAM device; the fleet is
/// `nodes × dimms_per_node × chips_per_dimm` devices.
pub fn cluster_mtbf_hours(
    fit_per_chip: f64,
    nodes: u64,
    dimms_per_node: u64,
    chips_per_dimm: u64,
) -> f64 {
    let devices = (nodes * dimms_per_node * chips_per_dimm) as f64;
    1e9 / (fit_per_chip * devices)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mtbf_matches_paper_range() {
        // §4: 1 FIT -> 694 h, 80 FIT -> 8.6 h for 20k nodes x 4 DIMMs x 18
        // chips.
        let low = cluster_mtbf_hours(1.0, 20_000, 4, 18);
        let high = cluster_mtbf_hours(80.0, 20_000, 4, 18);
        assert!((low - 694.4).abs() < 1.0, "1 FIT -> {low} h");
        assert!((high - 8.68).abs() < 0.1, "80 FIT -> {high} h");
    }

    #[test]
    fn mtbf_scales_inversely_with_fit() {
        let a = cluster_mtbf_hours(10.0, 1000, 4, 18);
        let b = cluster_mtbf_hours(20.0, 1000, 4, 18);
        assert!((a / b - 2.0).abs() < 1e-9);
    }
}
