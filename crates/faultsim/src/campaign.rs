//! Monte Carlo fault-injection campaigns over a Chipkill DIMM.
//!
//! Each iteration draws a five-year fault history for one DIMM (Poisson
//! arrivals per chip per fault-mode bucket), then asks the layout-aware
//! [`ResilienceModel`] how much data each cloning policy loses. All
//! policies are evaluated on the **same** fault sets (paired comparison,
//! as FaultSim does), which slashes the variance of the UDR ratios the
//! paper reports.
//!
//! Iterations run in parallel on scoped threads, and campaigns are
//! **thread-count invariant**: iteration `i` always draws from the RNG
//! stream `stream_seed(config.seed, i)`, and partial results are merged
//! in fixed blocks of [`ITERATION_BLOCK`] iterations regardless of which
//! worker produced them — so the same seed yields bit-identical
//! [`PolicyResult`]s whether the campaign ran on one thread or sixteen.

use soteria_rt::obs::{Field, TraceBuffer, TraceEvent};
use soteria_rt::obs_fields;
use soteria_rt::rng::{stream_seed, StdRng};
use soteria_rt::thread::fan_out;

use soteria::analysis::{ResilienceModel, TreeKind};
use soteria::clone::CloningPolicy;
use soteria::layout::MemoryLayout;
use soteria_nvm::fault::{FaultFootprint, FaultKind, FaultRecord};
use soteria_nvm::geometry::DimmGeometry;

use crate::rates::{FaultMode, FitRates};
use crate::FIVE_YEARS_HOURS;

/// Configuration of one campaign (Table 4 defaults).
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Protected data capacity (16 GiB matches the Table 4 DIMM).
    pub capacity_bytes: u64,
    /// Total FIT per chip (the Fig. 11 sweep variable, 1–80).
    pub fit_per_chip: f64,
    /// Fault-mode mix.
    pub rates: FitRates,
    /// Simulated service time in hours.
    pub hours: f64,
    /// Monte Carlo iterations (the paper uses 10^6).
    pub iterations: u64,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
    /// Chips the underlying ECC corrects per codeword (0 = SEC-DED-class,
    /// 1 = Chipkill, 2 = double-Chipkill) — the ECC-strength ablation.
    pub correctable_chips: usize,
    /// Integrity-tree structure (ToC vs BMT ablation).
    pub tree: TreeKind,
    /// Patrol-scrub interval in hours. With scrubbing, a *transient*
    /// fault is repaired within one interval, so it only contributes to an
    /// uncorrectable error if a second fault arrives while it is still
    /// live. `None` disables scrubbing (faults accumulate for the whole
    /// campaign — the conservative default).
    pub scrub_interval_hours: Option<f64>,
    /// Record per-iteration trace events (`"campaign"` domain). Events
    /// are merged in block order, so the trace is byte-identical for a
    /// seed at any thread count — exactly like the numeric results.
    pub trace: bool,
}

impl CampaignConfig {
    /// The Table 4 configuration at a given total FIT per chip: 16 GiB
    /// DIMM, 18 chips (9/rank × 2), 16 banks, Chipkill, 5 years, Hopper
    /// mode mix.
    pub fn table4(fit_per_chip: f64) -> Self {
        Self {
            capacity_bytes: 16u64 << 30,
            fit_per_chip,
            rates: FitRates::hopper(),
            hours: FIVE_YEARS_HOURS,
            iterations: 10_000,
            seed: 0x5072_1a5e,
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            correctable_chips: 1,
            tree: TreeKind::Toc,
            scrub_interval_hours: None,
            trace: false,
        }
    }

    /// The DIMM geometry sized for this capacity's layout.
    pub fn build_geometry(&self, layout: &MemoryLayout) -> DimmGeometry {
        let banks = 16u32;
        let cols = 1024u32;
        let rows = layout
            .total_lines()
            .div_ceil(banks as u64 * cols as u64)
            .max(1) as u32;
        DimmGeometry::new(18, 9, 2, banks, rows, cols)
    }

    /// The layout shared by every policy (sized for the deepest one, so
    /// clone addresses are identical across policies).
    pub fn build_layout(&self) -> MemoryLayout {
        MemoryLayout::new(self.capacity_bytes / 64, 8192, 4)
    }
}

/// Aggregate outcome for one cloning policy.
#[derive(Clone, Debug, PartialEq)]
pub struct PolicyResult {
    /// The policy evaluated.
    pub policy: CloningPolicy,
    /// Iterations simulated.
    pub iterations: u64,
    /// Iterations in which at least one fault arrived.
    pub iterations_with_faults: u64,
    /// Iterations in which Chipkill was defeated somewhere.
    pub iterations_with_ue: u64,
    /// Iterations with non-zero unverifiable data (metadata loss).
    pub iterations_with_udr: u64,
    /// Mean fraction of data directly lost to errors (`L_error`).
    pub mean_error_ratio: f64,
    /// Mean Unverifiable Data Ratio (`L_unverifiable / capacity`).
    pub mean_udr: f64,
}

impl PolicyResult {
    /// Mean total loss ratio (`L_total / capacity`, Fig. 12).
    pub fn mean_total_ratio(&self) -> f64 {
        self.mean_error_ratio + self.mean_udr
    }
}

fn poisson(rng: &mut StdRng, lambda: f64) -> u64 {
    rng.poisson(lambda)
}

fn sample_fault(
    rng: &mut StdRng,
    geometry: &DimmGeometry,
    chip: u32,
    mode: FaultMode,
    permanent: bool,
) -> FaultRecord {
    let kind = if permanent {
        FaultKind::Permanent
    } else {
        FaultKind::Transient
    };
    let bank = rng.random_range(0..geometry.banks());
    let row = rng.random_range(0..geometry.rows());
    let col = rng.random_range(0..geometry.cols_per_row());
    let beat = rng.random_range(0..4u8);
    let footprint = match mode {
        FaultMode::SingleBit => FaultFootprint::SingleBit {
            bank,
            row,
            col,
            beat,
            bit: rng.random_range(0..8u8),
        },
        FaultMode::SingleWord => FaultFootprint::SingleWord {
            bank,
            row,
            col,
            beat,
        },
        FaultMode::SingleColumn => FaultFootprint::SingleColumn { bank, col },
        FaultMode::SingleRow => FaultFootprint::SingleRow { bank, row },
        FaultMode::SingleBank => FaultFootprint::SingleBank { bank },
        FaultMode::MultiBank => {
            // 2-4 distinct banks.
            let mut mask = 1u32 << bank;
            let extra = rng.random_range(1..4u32);
            for _ in 0..extra {
                mask |= 1 << rng.random_range(0..geometry.banks());
            }
            FaultFootprint::MultiBank { bank_mask: mask }
        }
        FaultMode::MultiRank => FaultFootprint::SingleBank { bank },
    };
    let mut record = if mode == FaultMode::MultiRank {
        // A rank-level fault strikes shared circuitry: the same bank goes
        // bad in the affected chip position of *both* ranks (two symbols
        // of every codeword in that bank — beyond Chipkill, like real
        // lockstep x8 Chipkill under rank faults). It is not whole-DIMM
        // annihilation: other banks stay healthy.
        let position = chip % geometry.chips_per_rank();
        let chips: Vec<u32> = (0..geometry.ranks())
            .map(|r| r * geometry.chips_per_rank() + position)
            .collect();
        FaultRecord {
            chips,
            footprint,
            kind,
            onset_epoch: 0,
            seed: 0,
        }
    } else {
        FaultRecord::on_chip(geometry, chip, footprint, kind)
    };
    record.seed = rng.random();
    record
}

/// A fault plus its arrival time within the campaign horizon.
#[derive(Clone, Debug)]
pub struct TimedFault {
    /// The fault.
    pub record: FaultRecord,
    /// Arrival time in hours since the campaign start.
    pub start_hours: f64,
}

impl TimedFault {
    /// Is this fault still uncorrected at `t` (hours), given a scrub
    /// interval? Permanent faults persist; transient faults are cleansed
    /// one scrub interval after arrival.
    pub fn live_at(&self, t: f64, scrub_interval_hours: Option<f64>) -> bool {
        if t < self.start_hours {
            return false;
        }
        match (self.record.kind, scrub_interval_hours) {
            (FaultKind::Permanent, _) | (_, None) => true,
            (FaultKind::Transient, Some(s)) => t < self.start_hours + s,
        }
    }
}

/// Draws one DIMM's fault history with arrival times.
pub fn sample_fault_history(
    rng: &mut StdRng,
    geometry: &DimmGeometry,
    rates: &FitRates,
    hours: f64,
) -> Vec<TimedFault> {
    let mut out = Vec::new();
    sample_fault_history_into(rng, geometry, rates, hours, &mut out);
    out
}

/// Draws one DIMM's fault history into a reused buffer (cleared first).
/// The Monte Carlo loop calls this once per iteration, so reusing the
/// vector's capacity removes the dominant per-iteration allocation.
pub fn sample_fault_history_into(
    rng: &mut StdRng,
    geometry: &DimmGeometry,
    rates: &FitRates,
    hours: f64,
    out: &mut Vec<TimedFault>,
) {
    out.clear();
    let mut push = |rng: &mut StdRng, record: FaultRecord| {
        let start_hours = rng.random::<f64>() * hours;
        out.push(TimedFault {
            record,
            start_hours,
        });
    };
    for (mode, permanent, fit) in rates.buckets() {
        let lambda = fit * hours / 1e9;
        if mode == FaultMode::MultiRank {
            for position in 0..geometry.chips_per_rank() {
                for _ in 0..poisson(rng, lambda) {
                    let f = sample_fault(rng, geometry, position, mode, permanent);
                    push(rng, f);
                }
            }
        } else {
            for chip in 0..geometry.chips() {
                for _ in 0..poisson(rng, lambda) {
                    let f = sample_fault(rng, geometry, chip, mode, permanent);
                    push(rng, f);
                }
            }
        }
    }
    out.sort_by(|a, b| a.start_hours.total_cmp(&b.start_hours));
}

/// Draws a fault set with **exactly** `large_count` bank-scale-or-larger
/// faults (each bucket weighted by its rate) plus the usual Poisson
/// background of smaller faults — the conditioned draw behind
/// [`crate::rare::estimate_clone_udr`].
pub fn sample_fault_set_filtered(
    rng: &mut StdRng,
    geometry: &DimmGeometry,
    rates: &FitRates,
    hours: f64,
    large_count: u64,
) -> Vec<FaultRecord> {
    let mut faults = Vec::new();
    // Background of small faults.
    for (mode, permanent, fit) in rates.buckets() {
        if crate::rare::is_large_mode(mode) {
            continue;
        }
        let lambda = fit * hours / 1e9;
        for chip in 0..geometry.chips() {
            for _ in 0..poisson(rng, lambda) {
                faults.push(sample_fault(rng, geometry, chip, mode, permanent));
            }
        }
    }
    // Exactly `large_count` large faults, bucket drawn by rate weight.
    let large: Vec<(FaultMode, bool, f64)> = rates
        .buckets()
        .into_iter()
        .filter(|&(mode, _, _)| crate::rare::is_large_mode(mode))
        .collect();
    let total_weight: f64 = large
        .iter()
        .map(|&(mode, _, fit)| {
            let population = if mode == FaultMode::MultiRank {
                geometry.chips_per_rank() as f64
            } else {
                geometry.chips() as f64
            };
            fit * population
        })
        .sum();
    for _ in 0..large_count {
        let mut pick = rng.random::<f64>() * total_weight;
        let mut chosen = large[0];
        for &(mode, permanent, fit) in &large {
            let population = if mode == FaultMode::MultiRank {
                geometry.chips_per_rank() as f64
            } else {
                geometry.chips() as f64
            };
            pick -= fit * population;
            chosen = (mode, permanent, fit);
            if pick <= 0.0 {
                break;
            }
        }
        let (mode, permanent, _) = chosen;
        let chip = if mode == FaultMode::MultiRank {
            rng.random_range(0..geometry.chips_per_rank())
        } else {
            rng.random_range(0..geometry.chips())
        };
        faults.push(sample_fault(rng, geometry, chip, mode, permanent));
    }
    faults
}

/// Draws one DIMM's fault history.
pub fn sample_fault_set(
    rng: &mut StdRng,
    geometry: &DimmGeometry,
    rates: &FitRates,
    hours: f64,
) -> Vec<FaultRecord> {
    let mut faults = Vec::new();
    for (mode, permanent, fit) in rates.buckets() {
        let lambda = fit * hours / 1e9;
        if mode == FaultMode::MultiRank {
            // Rank-level events are per shared component (one per chip
            // position pair), not per chip.
            for position in 0..geometry.chips_per_rank() {
                for _ in 0..poisson(rng, lambda) {
                    faults.push(sample_fault(rng, geometry, position, mode, permanent));
                }
            }
        } else {
            for chip in 0..geometry.chips() {
                for _ in 0..poisson(rng, lambda) {
                    faults.push(sample_fault(rng, geometry, chip, mode, permanent));
                }
            }
        }
    }
    faults
}

pub(crate) struct Accumulator {
    pub(crate) iterations_with_faults: u64,
    pub(crate) iterations_with_ue: u64,
    pub(crate) per_policy_udr_sum: Vec<f64>,
    pub(crate) per_policy_udr_hits: Vec<u64>,
    pub(crate) error_ratio_sum: f64,
}

impl Accumulator {
    pub(crate) fn new(policies: usize) -> Self {
        Self {
            iterations_with_faults: 0,
            iterations_with_ue: 0,
            per_policy_udr_sum: vec![0.0; policies],
            per_policy_udr_hits: vec![0; policies],
            error_ratio_sum: 0.0,
        }
    }
}

/// Iterations per scheduling block. Blocks — not threads — are the unit
/// of work distribution **and** floating-point accumulation: a block's
/// partial sums are computed in iteration order by whichever worker picks
/// it up, and blocks are reduced in block order afterwards. Since f64
/// addition is not associative, this fixed grouping is what makes
/// same-seed campaigns bit-identical across thread counts.
pub const ITERATION_BLOCK: u64 = 64;

/// Simulates one Monte Carlo iteration into `acc`.
#[allow(clippy::too_many_arguments)]
/// Per-worker scratch buffers reused across Monte Carlo iterations.
///
/// The campaign hot loop used to allocate a fresh fault history, a
/// `Vec<Vec<FaultRecord>>` of co-active sets, a chip-dedup vector, and a
/// per-policy worst-UDR vector on every iteration. Keeping those buffers
/// alive per worker removes the steady-state allocation churn without
/// changing the order of any floating-point accumulation.
struct IterScratch {
    history: Vec<TimedFault>,
    live: Vec<FaultRecord>,
    chips: Vec<u32>,
    worst_udr: Vec<f64>,
}

impl IterScratch {
    fn new(policies: usize) -> Self {
        Self {
            history: Vec::new(),
            live: Vec::new(),
            chips: Vec::new(),
            worst_udr: vec![0.0; policies],
        }
    }
}

/// Everything an iteration reads but never writes — shared by all of a
/// worker's iterations.
struct WorkerCtx<'a> {
    config: &'a CampaignConfig,
    layout: &'a MemoryLayout,
    geometry: &'a DimmGeometry,
    rates: &'a FitRates,
    model: &'a ResilienceModel<'a>,
    policy_refs: &'a [&'a CloningPolicy],
}

/// Short label for a cloning policy in trace events.
fn policy_label(policy: &CloningPolicy) -> &'static str {
    match policy {
        CloningPolicy::None => "baseline",
        CloningPolicy::Relaxed => "src",
        CloningPolicy::Aggressive => "sac",
        CloningPolicy::Custom(_) => "custom",
    }
}

fn simulate_iteration(
    rng: &mut StdRng,
    ctx: &WorkerCtx<'_>,
    scratch: &mut IterScratch,
    acc: &mut Accumulator,
    iter: u64,
    events: Option<&mut Vec<TraceEvent>>,
) {
    let WorkerCtx {
        config,
        layout,
        geometry,
        rates,
        model,
        policy_refs,
    } = *ctx;
    sample_fault_history_into(rng, geometry, rates, config.hours, &mut scratch.history);
    if scratch.history.is_empty() {
        return;
    }
    acc.iterations_with_faults += 1;
    let mut worst_error = 0.0f64;
    scratch.worst_udr.fill(0.0);
    let mut any_ue = false;
    // Without scrubbing every fault stays live to the end; with
    // scrubbing, evaluate the co-active set at each arrival instant and
    // keep the worst outcome (UE corruption is latched into the cells
    // until repaired, so the worst co-active set bounds the loss). Each
    // co-active set streams through the reused `live` buffer in the same
    // order the old materialized Vec<Vec<_>> produced, so every max/sum
    // below sees identical operands in identical order and results stay
    // bit-identical across thread counts.
    let set_count = match config.scrub_interval_hours {
        None => 1,
        Some(_) => scratch.history.len(),
    };
    for set_idx in 0..set_count {
        scratch.live.clear();
        match config.scrub_interval_hours {
            None => scratch
                .live
                .extend(scratch.history.iter().map(|t| t.record.clone())),
            Some(_) => {
                let event_time = scratch.history[set_idx].start_hours;
                scratch.live.extend(
                    scratch
                        .history
                        .iter()
                        .filter(|t| t.live_at(event_time, config.scrub_interval_hours))
                        .map(|t| t.record.clone()),
                );
            }
        }
        // Cheap pre-check: defeating an ECC that corrects k chips needs
        // more than k distinct faulty chips.
        scratch.chips.clear();
        for f in &scratch.live {
            for &c in &f.chips {
                if !scratch.chips.contains(&c) {
                    scratch.chips.push(c);
                }
            }
        }
        if scratch.chips.len() <= config.correctable_chips {
            continue;
        }
        let assessments = model.assess_many(&scratch.live, policy_refs);
        for (i, a) in assessments.iter().enumerate() {
            if a.error_data_lines > 0 || a.unverifiable_data_lines > 0 {
                any_ue = true;
            }
            if i == 0 {
                worst_error = worst_error.max(a.error_ratio(layout.data_lines()));
            }
            scratch.worst_udr[i] = scratch.worst_udr[i].max(a.udr(layout.data_lines()));
        }
    }
    acc.error_ratio_sum += worst_error;
    for (i, &udr) in scratch.worst_udr.iter().enumerate() {
        if udr > 0.0 {
            acc.per_policy_udr_sum[i] += udr;
            acc.per_policy_udr_hits[i] += 1;
        }
    }
    if any_ue {
        acc.iterations_with_ue += 1;
    }
    if let Some(events) = events {
        // Seed provenance: the exact RNG stream this iteration drew from,
        // so any single iteration can be replayed in isolation.
        events.push(TraceEvent::new(
            "campaign",
            "iteration",
            obs_fields![
                ("iter", iter),
                ("seed", Field::Hex(stream_seed(config.seed, iter))),
                ("faults", scratch.history.len()),
                ("ue", any_ue),
            ],
        ));
        for (i, &udr) in scratch.worst_udr.iter().enumerate() {
            if udr > 0.0 {
                events.push(TraceEvent::new(
                    "campaign",
                    "policy_udr",
                    obs_fields![
                        ("iter", iter),
                        ("policy", policy_label(policy_refs[i])),
                        ("udr", udr),
                    ],
                ));
            }
        }
    }
}

/// Runs a campaign, evaluating every policy against identical fault sets.
///
/// Returns one [`PolicyResult`] per input policy, in order. For a fixed
/// `config.seed` the results are bit-identical for **any**
/// `config.threads` value.
pub fn run_campaign(config: &CampaignConfig, policies: &[CloningPolicy]) -> Vec<PolicyResult> {
    run_campaign_traced(config, policies).0
}

/// Runs a campaign like [`run_campaign`], additionally returning the
/// trace stream when `config.trace` is set (a disabled, empty buffer
/// otherwise).
///
/// Workers collect their blocks' events locally; after the fan-in the
/// per-block event lists are concatenated **in block order** and only
/// then sequenced — the trace analogue of the fixed-block floating-point
/// merge. Same seed ⇒ byte-identical NDJSON at any `config.threads`.
pub fn run_campaign_traced(
    config: &CampaignConfig,
    policies: &[CloningPolicy],
) -> (Vec<PolicyResult>, TraceBuffer) {
    let blocks = config.iterations.div_ceil(ITERATION_BLOCK);
    let all: Vec<u64> = (0..blocks).collect();
    let tagged = run_campaign_blocks(config, policies, &all);
    merge_campaign_blocks(config, policies, tagged)
}

/// One block's partial sums and trace events — the unit of work
/// distribution, both across local threads and across fleet workers.
pub(crate) struct CampaignBlock {
    /// Block index (`block * ITERATION_BLOCK` is its first iteration).
    pub(crate) block: u64,
    pub(crate) acc: Accumulator,
    /// Trace events emitted by this block's iterations, in iteration
    /// order (empty when `config.trace` is off).
    pub(crate) events: Vec<TraceEvent>,
}

/// Computes the partial sums of the given accumulation blocks.
///
/// A block's partials depend only on `(config, policies, block)` — never
/// on which worker or node computed it — so any partition of the block
/// list over threads (here) or fleet workers (`svc::fleet`) yields
/// bit-identical partials. Returned sorted by block index.
pub(crate) fn run_campaign_blocks(
    config: &CampaignConfig,
    policies: &[CloningPolicy],
    block_ids: &[u64],
) -> Vec<CampaignBlock> {
    let layout = config.build_layout();
    let geometry = config.build_geometry(&layout);
    let rates = config.rates.scaled_to(config.fit_per_chip);
    let workers = config.threads.max(1).min(block_ids.len().max(1));

    // Each worker claims blocks workers-strided (worker t gets list
    // entries t, t+workers, …) and tags every accumulator with its
    // block index; the merge folds them back in block order.
    let per_worker: Vec<Vec<CampaignBlock>> = fan_out(workers, |t| {
        let model = ResilienceModel::new(&layout, &geometry)
            .with_correctable_chips(config.correctable_chips)
            .with_tree(config.tree);
        let policy_refs: Vec<&CloningPolicy> = policies.iter().collect();
        let ctx = WorkerCtx {
            config,
            layout: &layout,
            geometry: &geometry,
            rates: &rates,
            model: &model,
            policy_refs: &policy_refs,
        };
        let mut scratch = IterScratch::new(policies.len());
        let mut out = Vec::new();
        let mut i = t;
        while i < block_ids.len() {
            let block = block_ids[i];
            let lo = block * ITERATION_BLOCK;
            let hi = (lo + ITERATION_BLOCK).min(config.iterations);
            let mut acc = Accumulator::new(policies.len());
            let mut events = Vec::new();
            for iter in lo..hi {
                let mut rng = StdRng::seed_from_u64(stream_seed(config.seed, iter));
                simulate_iteration(
                    &mut rng,
                    &ctx,
                    &mut scratch,
                    &mut acc,
                    iter,
                    config.trace.then_some(&mut events),
                );
            }
            out.push(CampaignBlock { block, acc, events });
            i += workers;
        }
        out
    });

    let mut tagged: Vec<CampaignBlock> = per_worker.into_iter().flatten().collect();
    tagged.sort_by_key(|b| b.block);
    tagged
}

/// Folds block partials (in block order) into the final results and
/// trace — the single reduction behind both the local runner and the
/// fleet coordinator's merge, so their bytes cannot diverge.
pub(crate) fn merge_campaign_blocks(
    config: &CampaignConfig,
    policies: &[CloningPolicy],
    mut tagged: Vec<CampaignBlock>,
) -> (Vec<PolicyResult>, TraceBuffer) {
    tagged.sort_by_key(|b| b.block);

    let mut trace = if config.trace {
        TraceBuffer::with_capacity(CAMPAIGN_TRACE_CAPACITY)
    } else {
        TraceBuffer::disabled()
    };
    trace.emit_with("campaign", "config", || {
        obs_fields![
            ("seed", Field::Hex(config.seed)),
            ("iterations", config.iterations),
            ("fit_per_chip", config.fit_per_chip),
            ("capacity_bytes", config.capacity_bytes),
            ("policies", policies.len()),
        ]
    });

    let mut iterations_with_faults = 0;
    let mut iterations_with_ue = 0;
    let mut error_ratio_sum = 0.0;
    let mut udr_sum = vec![0.0; policies.len()];
    let mut udr_hits = vec![0u64; policies.len()];
    for CampaignBlock { acc, events, .. } in tagged {
        iterations_with_faults += acc.iterations_with_faults;
        iterations_with_ue += acc.iterations_with_ue;
        error_ratio_sum += acc.error_ratio_sum;
        for i in 0..policies.len() {
            udr_sum[i] += acc.per_policy_udr_sum[i];
            udr_hits[i] += acc.per_policy_udr_hits[i];
        }
        trace.absorb(events);
    }
    let results: Vec<PolicyResult> = policies
        .iter()
        .enumerate()
        .map(|(i, policy)| PolicyResult {
            policy: policy.clone(),
            iterations: config.iterations,
            iterations_with_faults,
            iterations_with_ue,
            iterations_with_udr: udr_hits[i],
            mean_error_ratio: error_ratio_sum / config.iterations as f64,
            mean_udr: udr_sum[i] / config.iterations as f64,
        })
        .collect();
    for r in &results {
        let label = policy_label(&r.policy);
        trace.emit_with("campaign", "result", || {
            obs_fields![
                ("policy", label),
                ("iterations_with_faults", r.iterations_with_faults),
                ("iterations_with_ue", r.iterations_with_ue),
                ("iterations_with_udr", r.iterations_with_udr),
                ("mean_error_ratio", r.mean_error_ratio),
                ("mean_udr", r.mean_udr),
            ]
        });
    }
    (results, trace)
}

/// Ring capacity for campaign traces: a 10^6-iteration Table 4 campaign
/// at FIT 80 sees far fewer fault iterations than this, so no real run
/// drops events; pathological configs degrade to keeping the newest.
const CAMPAIGN_TRACE_CAPACITY: usize = 1 << 20;

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config(fit: f64) -> CampaignConfig {
        let mut c = CampaignConfig::table4(fit);
        c.capacity_bytes = 1 << 26; // 64 MiB keeps per-iteration work small
        c.iterations = 500;
        c.threads = 2;
        c
    }

    /// Pinned outcome of one fixed campaign (seed, geometry, FIT all
    /// frozen). Guards the whole sampling + assessment + merge pipeline
    /// against silent behavioural drift: any change to the RNG stream,
    /// fault sampling order, or accumulation order shows up here as a
    /// hard failure. Integer fields are exact; f64 means allow a tiny
    /// relative tolerance so a platform libm difference in the Poisson
    /// sampler does not trip the pin.
    #[test]
    fn golden_seed_campaign_result_is_pinned() {
        fn close(actual: f64, expected: f64) -> bool {
            if expected == 0.0 {
                return actual == 0.0;
            }
            ((actual - expected) / expected).abs() <= 1e-12
        }
        let mut c = small_config(1500.0);
        c.iterations = 256;
        c.threads = 3;
        let r = run_campaign(&c, &[CloningPolicy::None, CloningPolicy::Aggressive]);
        assert_eq!(r.len(), 2);

        assert_eq!(r[0].policy, CloningPolicy::None);
        assert_eq!(r[0].iterations, 256);
        assert_eq!(r[0].iterations_with_faults, 157);
        assert_eq!(r[0].iterations_with_ue, 4);
        assert_eq!(r[0].iterations_with_udr, 4);
        assert!(close(r[0].mean_error_ratio, 0.000_976_562_5), "{}", r[0].mean_error_ratio);
        assert!(close(r[0].mean_udr, 0.000_976_562_5), "{}", r[0].mean_udr);

        assert_eq!(r[1].policy, CloningPolicy::Aggressive);
        assert_eq!(r[1].iterations, 256);
        assert_eq!(r[1].iterations_with_faults, 157);
        assert_eq!(r[1].iterations_with_ue, 4);
        assert_eq!(r[1].iterations_with_udr, 0);
        assert!(close(r[1].mean_error_ratio, 0.000_976_562_5), "{}", r[1].mean_error_ratio);
        assert_eq!(r[1].mean_udr, 0.0);
    }

    #[test]
    fn zero_like_fit_produces_no_loss() {
        let c = small_config(0.001);
        let r = run_campaign(&c, &[CloningPolicy::None]);
        assert_eq!(r[0].mean_udr, 0.0);
        assert_eq!(r[0].iterations_with_ue, 0);
    }

    #[test]
    fn fault_count_scales_with_fit() {
        let lo = run_campaign(&small_config(5.0), &[CloningPolicy::None]);
        let hi = run_campaign(&small_config(200.0), &[CloningPolicy::None]);
        assert!(hi[0].iterations_with_faults > lo[0].iterations_with_faults);
    }

    #[test]
    fn cloning_monotonically_reduces_udr() {
        // Very high FIT so UE events are common in 500 iterations.
        let c = small_config(3000.0);
        let r = run_campaign(
            &c,
            &[
                CloningPolicy::None,
                CloningPolicy::Relaxed,
                CloningPolicy::Aggressive,
            ],
        );
        assert!(r[0].mean_udr > 0.0, "baseline must see UDR at extreme FIT");
        assert!(r[0].mean_udr >= r[1].mean_udr, "SRC <= baseline");
        assert!(r[1].mean_udr >= r[2].mean_udr, "SAC <= SRC");
        assert!(
            r[2].mean_udr < r[0].mean_udr,
            "SAC strictly better than baseline"
        );
    }

    #[test]
    fn error_ratio_independent_of_policy() {
        let c = small_config(3000.0);
        let r = run_campaign(&c, &[CloningPolicy::None, CloningPolicy::Aggressive]);
        assert!((r[0].mean_error_ratio - r[1].mean_error_ratio).abs() < 1e-15);
        assert!(r[0].mean_error_ratio > 0.0);
    }

    #[test]
    fn campaign_is_deterministic_for_a_seed() {
        let c = small_config(1000.0);
        let a = run_campaign(&c, &[CloningPolicy::None]);
        let b = run_campaign(&c, &[CloningPolicy::None]);
        assert_eq!(a, b);
    }

    #[test]
    fn campaign_is_bit_identical_across_thread_counts() {
        // The determinism contract: same seed ⇒ identical PolicyResults
        // (f64 fields included, via PartialEq) for any worker count —
        // including thread counts that do not divide the block count.
        let mut base = small_config(2000.0);
        base.iterations = 300; // not a multiple of ITERATION_BLOCK
        let policies = [
            CloningPolicy::None,
            CloningPolicy::Relaxed,
            CloningPolicy::Aggressive,
        ];
        base.threads = 1;
        let single = run_campaign(&base, &policies);
        for threads in [2, 3, 5, 8] {
            let mut c = base.clone();
            c.threads = threads;
            assert_eq!(
                run_campaign(&c, &policies),
                single,
                "thread count {threads} diverged from single-threaded run"
            );
        }
    }

    #[test]
    fn campaign_trace_is_byte_identical_across_thread_counts() {
        // The tentpole determinism contract extended to observability:
        // same seed ⇒ byte-identical NDJSON for any worker count.
        let mut base = small_config(2000.0);
        base.iterations = 300; // not a multiple of ITERATION_BLOCK
        base.trace = true;
        let policies = [CloningPolicy::None, CloningPolicy::Aggressive];
        base.threads = 1;
        let (_, trace1) = run_campaign_traced(&base, &policies);
        let ndjson1 = trace1.export_ndjson();
        assert!(
            trace1.len() > 10,
            "high-FIT campaign must record events, got {}",
            trace1.len()
        );
        soteria_rt::obs::parse_ndjson(&ndjson1).expect("trace must validate");
        for threads in [2, 4, 7] {
            let mut c = base.clone();
            c.threads = threads;
            let (_, trace_n) = run_campaign_traced(&c, &policies);
            assert_eq!(
                trace_n.export_ndjson(),
                ndjson1,
                "thread count {threads} changed the trace bytes"
            );
        }
    }

    #[test]
    fn untraced_campaign_returns_empty_disabled_buffer() {
        let c = small_config(2000.0);
        let (results, trace) = run_campaign_traced(&c, &[CloningPolicy::None]);
        assert!(trace.is_empty() && !trace.enabled());
        assert_eq!(results, run_campaign(&c, &[CloningPolicy::None]));
    }

    #[test]
    fn campaign_results_change_with_the_seed() {
        let a = small_config(2000.0);
        let mut b = a.clone();
        b.seed ^= 1;
        assert_ne!(
            run_campaign(&a, &[CloningPolicy::None]),
            run_campaign(&b, &[CloningPolicy::None]),
            "different seeds must explore different fault histories"
        );
    }

    #[test]
    fn poisson_mean_is_lambda() {
        let mut rng = StdRng::seed_from_u64(7);
        let lambda = 2.5;
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| poisson(&mut rng, lambda)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - lambda).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn scrubbing_reduces_udr() {
        let mut base = small_config(3000.0);
        base.iterations = 800;
        let mut scrubbed = base.clone();
        scrubbed.scrub_interval_hours = Some(24.0);
        let r_none = run_campaign(&base, &[CloningPolicy::None]);
        let r_scrub = run_campaign(&scrubbed, &[CloningPolicy::None]);
        assert!(
            r_scrub[0].mean_udr <= r_none[0].mean_udr,
            "scrubbing cannot hurt: {} vs {}",
            r_scrub[0].mean_udr,
            r_none[0].mean_udr
        );
        assert!(
            r_scrub[0].mean_error_ratio < r_none[0].mean_error_ratio,
            "frequent scrubbing must cut transient-fault coincidences: {} vs {}",
            r_scrub[0].mean_error_ratio,
            r_none[0].mean_error_ratio
        );
    }

    #[test]
    fn timed_fault_liveness() {
        let g = DimmGeometry::table4();
        let mk = |kind| TimedFault {
            record: FaultRecord::on_chip(&g, 0, FaultFootprint::SingleBank { bank: 0 }, kind),
            start_hours: 100.0,
        };
        let t = mk(FaultKind::Transient);
        assert!(!t.live_at(50.0, Some(24.0)));
        assert!(t.live_at(110.0, Some(24.0)));
        assert!(!t.live_at(125.0, Some(24.0)));
        assert!(t.live_at(125.0, None), "no scrubbing: transient persists");
        let p = mk(FaultKind::Permanent);
        assert!(p.live_at(10_000.0, Some(24.0)));
    }

    #[test]
    fn history_is_sorted_by_arrival() {
        let layout = MemoryLayout::new((1u64 << 26) / 64, 128, 4);
        let c = small_config(100.0);
        let geometry = c.build_geometry(&layout);
        let mut rng = StdRng::seed_from_u64(5);
        let rates = FitRates::hopper().scaled_to(100_000.0);
        let h = sample_fault_history(&mut rng, &geometry, &rates, c.hours);
        assert!(h.len() > 2);
        for pair in h.windows(2) {
            assert!(pair[0].start_hours <= pair[1].start_hours);
        }
        for t in &h {
            assert!((0.0..=c.hours).contains(&t.start_hours));
        }
    }

    #[test]
    fn sampled_faults_are_in_bounds() {
        let layout = MemoryLayout::new((1u64 << 26) / 64, 128, 4);
        let c = small_config(100.0);
        let geometry = c.build_geometry(&layout);
        let mut rng = StdRng::seed_from_u64(3);
        let rates = FitRates::hopper().scaled_to(50_000.0);
        let faults = sample_fault_set(&mut rng, &geometry, &rates, c.hours);
        assert!(!faults.is_empty());
        for f in &faults {
            for &chip in &f.chips {
                assert!(chip < geometry.chips());
            }
        }
    }
}
