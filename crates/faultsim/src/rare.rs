//! Rare-event estimation of clone-scheme UDR by conditioning on large
//! faults (importance sampling with exact Poisson reweighting).
//!
//! With Soteria's bank/column-disjoint clone placement, a metadata block
//! and its clones can only fall together inside uncorrectable regions
//! when **at least two bank-scale-or-larger faults** are simultaneously
//! live: rank-level events, single-bank faults pairing up across chips,
//! or multi-bank faults intersecting another large fault. (A single UE
//! region never spans a block and its bank-disjoint clone; sub-bank fault
//! pairs yield single-row/column regions that cannot either.) Naive
//! Monte Carlo at the paper's 10^6 iterations barely samples this —
//! which is why Fig. 11's SRC/SAC points sit at 1e-8/1e-9 with visible
//! noise. This module instead:
//!
//! 1. computes `λ_large`, the Poisson rate of bank-scale-or-larger
//!    faults per DIMM lifetime, analytically;
//! 2. for each `k ≥ 2`, samples fault sets **conditioned on exactly `k`
//!    large faults** (plus an unconditioned background of small faults)
//!    and measures the conditional mean UDR;
//! 3. returns `Σ_k P(N = k) · E[UDR | N = k]` — an unbiased estimate of
//!    the clone scheme's true UDR, resolvable with ~10^4 samples instead
//!    of ~10^9.

use soteria_rt::rng::StdRng;

use soteria::analysis::ResilienceModel;
use soteria::clone::CloningPolicy;

use crate::campaign::{sample_fault_set_filtered, CampaignConfig};
use crate::rates::FaultMode;

/// Which fault modes count as "large" (bank-scale or larger).
pub fn is_large_mode(mode: FaultMode) -> bool {
    matches!(
        mode,
        FaultMode::SingleBank | FaultMode::MultiBank | FaultMode::MultiRank
    )
}

/// Poisson probability mass function.
fn poisson_pmf(lambda: f64, k: u64) -> f64 {
    let mut log_p = -lambda + k as f64 * lambda.ln();
    for i in 1..=k {
        log_p -= (i as f64).ln();
    }
    log_p.exp()
}

/// Result of the rare-event estimation for one policy.
#[derive(Clone, Debug, PartialEq)]
pub struct RareEventResult {
    /// The policy evaluated.
    pub policy: CloningPolicy,
    /// Estimated mean UDR (`Σ_k P(N=k) · E[UDR|N=k]`).
    pub mean_udr: f64,
    /// Rate of large faults per DIMM lifetime used for the weighting.
    pub lambda_large: f64,
    /// Conditional mean UDR per conditioned `k` (index 0 ↔ k = 2).
    pub conditional_udr: Vec<f64>,
}

/// Runs the rare-event estimator for clone policies.
///
/// `samples_per_k` fault sets are drawn for each `k` in `2..=k_max`.
/// Baseline (no-clone) UDR should come from the ordinary campaign — its
/// loss is dominated by *single* UE regions that this estimator
/// deliberately conditions away.
pub fn estimate_clone_udr(
    config: &CampaignConfig,
    policies: &[CloningPolicy],
    samples_per_k: u64,
    k_max: u64,
) -> Vec<RareEventResult> {
    let layout = config.build_layout();
    let geometry = config.build_geometry(&layout);
    let rates = config.rates.scaled_to(config.fit_per_chip);

    // λ_large: sum over large buckets of (rate × population).
    let mut lambda_large = 0.0;
    for (mode, _permanent, fit) in rates.buckets() {
        if !is_large_mode(mode) {
            continue;
        }
        let population = if mode == FaultMode::MultiRank {
            geometry.chips_per_rank() as f64
        } else {
            geometry.chips() as f64
        };
        lambda_large += fit * config.hours / 1e9 * population;
    }

    let model = ResilienceModel::new(&layout, &geometry)
        .with_correctable_chips(config.correctable_chips)
        .with_tree(config.tree);
    let policy_refs: Vec<&CloningPolicy> = policies.iter().collect();
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x4a5e_e4a5);

    let mut conditional: Vec<Vec<f64>> = vec![Vec::new(); policies.len()];
    for k in 2..=k_max {
        let mut sums = vec![0.0f64; policies.len()];
        for _ in 0..samples_per_k {
            let faults = sample_fault_set_filtered(&mut rng, &geometry, &rates, config.hours, k);
            let assessments = model.assess_many(&faults, &policy_refs);
            for (i, a) in assessments.iter().enumerate() {
                sums[i] += a.udr(layout.data_lines());
            }
        }
        for (i, s) in sums.iter().enumerate() {
            conditional[i].push(s / samples_per_k as f64);
        }
    }

    policies
        .iter()
        .enumerate()
        .map(|(i, policy)| {
            let mean_udr: f64 = (2..=k_max)
                .zip(conditional[i].iter())
                .map(|(k, &e)| poisson_pmf(lambda_large, k) * e)
                .sum();
            RareEventResult {
                policy: policy.clone(),
                mean_udr,
                lambda_large,
                conditional_udr: conditional[i].clone(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_pmf_sums_to_one() {
        let lambda = 0.7;
        let total: f64 = (0..40).map(|k| poisson_pmf(lambda, k)).sum();
        assert!((total - 1.0).abs() < 1e-9, "total {total}");
    }

    #[test]
    fn poisson_pmf_known_values() {
        assert!((poisson_pmf(1.0, 0) - (-1.0f64).exp()).abs() < 1e-12);
        assert!((poisson_pmf(2.0, 2) - 2.0 * (-2.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn large_mode_classification() {
        assert!(is_large_mode(FaultMode::SingleBank));
        assert!(is_large_mode(FaultMode::MultiBank));
        assert!(is_large_mode(FaultMode::MultiRank));
        assert!(!is_large_mode(FaultMode::SingleBit));
        assert!(!is_large_mode(FaultMode::SingleRow));
        assert!(!is_large_mode(FaultMode::SingleColumn));
    }

    #[test]
    fn estimator_orders_policies_and_is_tiny() {
        let mut config = CampaignConfig::table4(80.0);
        config.capacity_bytes = 1 << 28; // 256 MiB keeps assessments quick
        let results = estimate_clone_udr(
            &config,
            &[CloningPolicy::Relaxed, CloningPolicy::Aggressive],
            400,
            4,
        );
        let (src, sac) = (&results[0], &results[1]);
        assert!(src.lambda_large > 0.0);
        assert!(
            src.mean_udr >= sac.mean_udr,
            "SAC must not lose more than SRC"
        );
        // Conditioned means are well above the weighted estimate: the
        // Poisson weight is what makes the final UDR tiny.
        assert!(
            src.mean_udr < 1e-4,
            "weighted estimate must be small: {}",
            src.mean_udr
        );
    }

    #[test]
    fn conditional_udr_grows_with_k() {
        // More co-active large faults can only increase expected loss.
        let mut config = CampaignConfig::table4(80.0);
        config.capacity_bytes = 1 << 28;
        let r = &estimate_clone_udr(&config, &[CloningPolicy::Relaxed], 400, 5)[0];
        let first = r.conditional_udr.first().copied().unwrap_or(0.0);
        let last = r.conditional_udr.last().copied().unwrap_or(0.0);
        assert!(last >= first, "k=5 {last} vs k=2 {first}");
    }
}
