//! Crash-consistency campaign: drives the `soteria_rt::crashck` oracle
//! across the full `TreeUpdate × CloningPolicy` matrix, under both
//! recovery paths (Anubis shadow recovery and the Osiris exhaustive
//! scan).
//!
//! For every cell of the matrix and every seeded transaction script, the
//! campaign runs in two phases:
//!
//! 1. **Census** — one instrumented dry run with the WPQ journal on. It
//!    yields the event-clock total, the accept event of each committed
//!    transaction, and a journal that must replay cleanly against the
//!    pure queue model ([`soteria_rt::crashck::replay_journal`]).
//! 2. **Sweep** — [`soteria_rt::crashck::check_script`] enumerates every
//!    crash point `0..=total_events`, arming the WPQ crash fuse at each,
//!    recovering the image, reading back every script line, and judging
//!    the observed state against the committed-prefix reference model.
//!
//! Scripts are seeded via [`soteria_rt::rng::stream_seed`] so cells are
//! independent; units fan out over worker threads with deterministic
//! chunking, and each unit's sweep runs single-threaded inside, so the
//! JSON/NDJSON report is **byte-identical for any `--threads` value**.

use soteria::clone::CloningPolicy;
use soteria::config::TreeUpdate;
use soteria::recovery::{recover, recover_exhaustive};
use soteria::{CrashImage, DataAddr, SecureMemoryConfig, SecureMemoryController};
use soteria_rt::crashck::{
    check_script, gen_script, replay_journal, script_lines, Census, CrashRun, Divergence,
    OracleMode, Tx,
};
use soteria_rt::json::Json;
use soteria_rt::rng::stream_seed;
use soteria_rt::thread::parallel_map;

/// Tree-update modes of the matrix, in report order.
const TREE_UPDATES: [(TreeUpdate, &str); 3] = [
    (TreeUpdate::Lazy, "lazy"),
    (TreeUpdate::Eager, "eager"),
    (TreeUpdate::Triad { persist_levels: 1 }, "triad1"),
];

/// Cloning policies of the matrix, in report order.
const POLICIES: [CloningPolicy; 3] = [
    CloningPolicy::None,
    CloningPolicy::Relaxed,
    CloningPolicy::Aggressive,
];

/// Recovery paths of the matrix: Anubis shadow recovery is judged
/// strictly; the Osiris exhaustive scan cannot rebuild unshadowed tree
/// nodes and is judged in weak mode (no silent corruption, ever).
const RECOVERIES: [(&str, OracleMode); 2] = [
    ("anubis", OracleMode::Strict),
    ("osiris", OracleMode::Weak),
];

/// Campaign bounds. The defaults are the PR-smoke scale; the nightly
/// exhaustive job raises them via the `SOTERIA_CRASHCK_*` env knobs
/// (read by the CLI, not here — the library stays hermetic).
#[derive(Clone, Debug)]
pub struct CrashckConfig {
    /// Base seed; scripts draw from per-unit `stream_seed` streams.
    pub seed: u64,
    /// Transaction scripts per matrix cell.
    pub scripts_per_cell: usize,
    /// Maximum transactions per script.
    pub max_txns: usize,
    /// Maximum writes per transaction.
    pub max_writes: usize,
    /// Worker threads (the artifacts are identical for any value).
    pub threads: usize,
}

impl Default for CrashckConfig {
    fn default() -> Self {
        Self {
            seed: 0xc7a5_4c1c,
            scripts_per_cell: 2,
            max_txns: 6,
            max_writes: 3,
            threads: 1,
        }
    }
}

/// One divergence, with enough context to replay and localise it.
#[derive(Clone, Debug)]
pub struct CellDivergence {
    /// Matrix cell, as `tree/policy/recovery`.
    pub cell: String,
    /// The script's seed.
    pub seed: u64,
    /// The script, one `line:fill,…` group per transaction.
    pub script: String,
    /// The divergent crash point (WPQ event).
    pub point: u64,
    /// What contradicted the committed-prefix model.
    pub reason: String,
    /// The last trace events before that crash (NDJSON lines).
    pub trace_tail: String,
}

/// Everything a crashck campaign produced.
#[derive(Clone, Debug)]
pub struct CrashckOutput {
    /// The aggregate report (`soteria-crashck/v1`), pretty-printed.
    pub result_json: String,
    /// One NDJSON record per (cell, script) sweep.
    pub ndjson: String,
    /// Every divergence found, in deterministic cell/script order.
    pub divergences: Vec<CellDivergence>,
    /// Matrix cells swept.
    pub cells: usize,
    /// Scripts swept (cells × scripts-per-cell).
    pub scripts: usize,
    /// Total crash points enumerated.
    pub points: u64,
}

fn build_controller(update: TreeUpdate, policy: &CloningPolicy) -> SecureMemoryController {
    // 256 KiB → a 3-level ToC over 4096 data lines; a 4-way cache small
    // enough that set-conflict evictions (and thus clone-group rewrites)
    // occur inside short scripts; a 16-entry WPQ so multi-write commit
    // groups and clone groups both fit with room to stall.
    let config = SecureMemoryConfig::builder()
        .capacity_bytes(1 << 18)
        .metadata_cache(8 * 1024, 4)
        .wpq_entries(16)
        .cloning(policy.clone())
        .tree_update(update)
        .build()
        // lint:allow(P1, fixed harness configuration is valid by construction)
        .expect("valid crashck harness config");
    SecureMemoryController::new(config)
}

/// Lines addressable by generated scripts (kept below the harness's
/// 4096-line capacity; the generator's hot-set bias does the rest).
const SCRIPT_LINES: u64 = 4096;

/// Runs `script` against a fresh controller, stopping once the crash
/// fuse fires. Returns the per-transaction accept events and an error
/// seen while still alive (if any).
fn run_script(
    memory: &mut SecureMemoryController,
    script: &[Tx],
) -> (Vec<u64>, Option<String>) {
    let mut accepts = Vec::new();
    for tx in script {
        let mut staged = memory.transaction();
        for &(line, fill) in &tx.writes {
            staged.write(DataAddr::new(line), &[fill; 64]);
        }
        match staged.commit() {
            Ok(receipt) => {
                if receipt.accepted {
                    accepts.push(receipt.accept_event);
                }
            }
            Err(e) => {
                if !memory.wpq_is_dead() {
                    return (accepts, Some(e.to_string()));
                }
            }
        }
        if memory.wpq_is_dead() {
            break;
        }
    }
    (accepts, None)
}

/// The `drains_at_crash` clock parsed from the trace's `crash` event.
fn crash_drain_clock(memory: &SecureMemoryController) -> u64 {
    memory
        .obs()
        .trace
        .events()
        .filter(|e| e.name == "crash")
        .last()
        .and_then(|e| e.to_json().get("drains_at_crash").and_then(Json::as_f64))
        .map_or(0, |f| f as u64)
}

/// The last `n` trace events, one NDJSON line each.
fn trace_tail(memory: &SecureMemoryController, n: usize) -> String {
    let events: Vec<_> = memory.obs().trace.events().collect();
    let start = events.len().saturating_sub(n);
    events[start..]
        .iter()
        .map(|e| e.ndjson_line())
        .collect::<Vec<_>>()
        .join("")
}

fn recover_image(image: CrashImage, recovery: &str) -> (SecureMemoryController, bool) {
    if recovery == "anubis" {
        let (memory, report) = recover(image);
        (memory, report.is_complete())
    } else {
        let (memory, report) = recover_exhaustive(image);
        (memory, report.is_complete())
    }
}

/// One armed execution: run-to-crash-point, recover, read back.
fn crash_run(
    update: TreeUpdate,
    policy: &CloningPolicy,
    recovery: &str,
    script: &[Tx],
    point: u64,
) -> CrashRun {
    let mut memory = build_controller(update, policy);
    memory.enable_obs();
    memory.arm_crash_at_event(point);
    let (_, exec_error) = run_script(&mut memory, script);
    let image = memory.crash();
    let (mut memory, recovery_complete) = recover_image(image, recovery);
    let drain_clock = crash_drain_clock(&memory);
    let tail = trace_tail(&memory, 12);
    let reads = script_lines(script)
        .into_iter()
        .map(|line| {
            (line, memory.read(DataAddr::new(line)).ok())
        })
        .collect();
    CrashRun {
        reads,
        recovery_complete,
        drain_clock,
        trace_tail: tail,
        exec_error,
    }
}

/// The verdict of one (cell, script) sweep.
pub(crate) struct UnitResult {
    pub(crate) cell: String,
    pub(crate) tree: &'static str,
    pub(crate) policy: &'static str,
    pub(crate) recovery: &'static str,
    pub(crate) mode: OracleMode,
    pub(crate) seed: u64,
    pub(crate) script: String,
    pub(crate) txns: usize,
    pub(crate) points: u64,
    pub(crate) committed_total: usize,
    pub(crate) divergence: Option<Divergence>,
}

fn run_unit(
    update: TreeUpdate,
    tree_name: &'static str,
    policy: &CloningPolicy,
    recovery: &'static str,
    mode: OracleMode,
    seed: u64,
    config: &CrashckConfig,
) -> UnitResult {
    let script = gen_script(seed, config.max_txns, config.max_writes, SCRIPT_LINES);
    let cell = format!("{tree_name}/{}/{recovery}", policy.name());

    // Phase 1: census. Journal on, no fuse — the full script commits.
    let mut memory = build_controller(update, policy);
    memory.enable_wpq_journal();
    let (commit_events, exec_error) = run_script(&mut memory, &script);
    let total_events = memory.wpq_events();
    let census = Census {
        total_events,
        commit_events,
    };
    let mut census_fault = exec_error;
    if census_fault.is_none() {
        if let Err(e) = census.validate() {
            census_fault = Some(format!("census inconsistent: {e}"));
        }
    }
    if census_fault.is_none() && census.commit_events.len() != script.len() {
        census_fault = Some(format!(
            "only {} of {} transactions committed in the dry run",
            census.commit_events.len(),
            script.len()
        ));
    }
    if census_fault.is_none() {
        let image = memory.crash();
        if let Err(e) = replay_journal(image.wpq_journal(), 16) {
            census_fault = Some(format!("WPQ journal violates the queue discipline: {e}"));
        }
    }
    if let Some(reason) = census_fault {
        return UnitResult {
            cell,
            tree: tree_name,
            policy: policy.name(),
            recovery,
            mode,
            seed,
            script: describe_script(&script),
            txns: script.len(),
            points: 0,
            committed_total: census.commit_events.len(),
            divergence: Some(Divergence {
                point: 0,
                reason,
                trace_tail: String::new(),
            }),
        };
    }

    // Phase 2: exhaustive crash-point sweep (single-threaded inside the
    // unit; units themselves are the parallel grain).
    let verdict = check_script(&script, &census, mode, 1, |point| {
        crash_run(update, policy, recovery, &script, point)
    });
    UnitResult {
        cell,
        tree: tree_name,
        policy: policy.name(),
        recovery,
        mode,
        seed,
        script: describe_script(&script),
        txns: script.len(),
        points: verdict.points_checked,
        committed_total: census.commit_events.len(),
        divergence: verdict.divergence,
    }
}

fn describe_script(script: &[Tx]) -> String {
    let groups: Vec<String> = script.iter().map(Tx::describe).collect();
    groups.join(";")
}

/// Re-interns unit names parsed off the fleet wire back into the fixed
/// matrix vocabulary (`&'static str` labels plus the oracle mode implied
/// by the recovery path).
pub(crate) fn intern_unit_names(
    tree: &str,
    policy: &str,
    recovery: &str,
) -> Result<(&'static str, &'static str, &'static str, OracleMode), String> {
    let tree = TREE_UPDATES
        .iter()
        .find(|(_, n)| *n == tree)
        .map(|&(_, n)| n)
        .ok_or_else(|| format!("unknown tree name '{tree}'"))?;
    let policy = POLICIES
        .iter()
        .map(CloningPolicy::name)
        .find(|n| *n == policy)
        .ok_or_else(|| format!("unknown policy name '{policy}'"))?;
    let (recovery, mode) = RECOVERIES
        .iter()
        .find(|(n, _)| *n == recovery)
        .copied()
        .ok_or_else(|| format!("unknown recovery name '{recovery}'"))?;
    Ok((tree, policy, recovery, mode))
}

/// One matrix unit's inputs: `(update, tree name, policy, recovery,
/// mode, script seed)` — the element type of [`unit_list`].
type UnitSpec = (
    TreeUpdate,
    &'static str,
    CloningPolicy,
    &'static str,
    OracleMode,
    u64,
);

/// The flat unit list: cells × scripts, in deterministic order. Unit
/// `i` always denotes the same `(cell, script seed)` pair for a given
/// config, which is what makes units distributable across fleet
/// workers.
fn unit_list(config: &CrashckConfig) -> Vec<UnitSpec> {
    let mut units = Vec::new();
    let mut unit_no = 0u64;
    for (update, tree_name) in TREE_UPDATES {
        for policy in &POLICIES {
            for (recovery, mode) in RECOVERIES {
                for _ in 0..config.scripts_per_cell.max(1) {
                    units.push((
                        update,
                        tree_name,
                        policy.clone(),
                        recovery,
                        mode,
                        stream_seed(config.seed, unit_no),
                    ));
                    unit_no += 1;
                }
            }
        }
    }
    units
}

/// How many units (distribution blocks) the campaign comprises.
pub(crate) fn total_units(config: &CrashckConfig) -> u64 {
    (TREE_UPDATES.len() * POLICIES.len() * RECOVERIES.len() * config.scripts_per_cell.max(1)) as u64
}

/// Sweeps the units whose indices appear in `unit_ids`, returning each
/// verdict tagged with its unit index (sorted by index). A unit's
/// verdict depends only on `(config, unit index)`, so any partition over
/// threads or fleet workers yields identical verdicts.
pub(crate) fn run_crashck_units(
    config: &CrashckConfig,
    unit_ids: &[u64],
) -> Vec<(u64, UnitResult)> {
    let all = unit_list(config);
    let picked: Vec<(u64, UnitSpec)> = unit_ids
        .iter()
        .filter_map(|&i| all.get(i as usize).map(|u| (i, u.clone())))
        .collect();
    let mut results = parallel_map(picked, config.threads.max(1), |(i, unit)| {
        let (update, tree_name, policy, recovery, mode, seed) = unit;
        (
            i,
            run_unit(update, tree_name, &policy, recovery, mode, seed, config),
        )
    });
    results.sort_by_key(|&(i, _)| i);
    results
}

/// Folds unit verdicts (in unit order) into the final artifacts — the
/// single reduction behind both the local runner and the fleet
/// coordinator's merge, so their bytes cannot diverge.
pub(crate) fn merge_crashck_units(
    config: &CrashckConfig,
    mut tagged: Vec<(u64, UnitResult)>,
) -> CrashckOutput {
    tagged.sort_by_key(|&(i, _)| i);
    let results: Vec<UnitResult> = tagged.into_iter().map(|(_, r)| r).collect();
    let cells = TREE_UPDATES.len() * POLICIES.len() * RECOVERIES.len();

    // Artifacts, folded in unit order (deterministic at any -j).
    let mut ndjson = String::new();
    let mut divergences = Vec::new();
    let mut points = 0u64;
    let mut cell_rows: Vec<(String, Json)> = Vec::new();
    for r in &results {
        points += r.points;
        let diverged = r.divergence.is_some();
        let mut line = vec![
            ("cell".to_string(), Json::Str(r.cell.clone())),
            ("seed".to_string(), Json::Str(format!("{:#018x}", r.seed))),
            ("mode".to_string(), Json::Str(r.mode.name().to_string())),
            ("txns".to_string(), Json::Num(r.txns as f64)),
            (
                "committed".to_string(),
                Json::Num(r.committed_total as f64),
            ),
            ("points".to_string(), Json::Num(r.points as f64)),
            ("divergent".to_string(), Json::Bool(diverged)),
        ];
        if let Some(d) = &r.divergence {
            line.push(("point".to_string(), Json::Num(d.point as f64)));
            line.push(("reason".to_string(), Json::Str(d.reason.clone())));
            divergences.push(CellDivergence {
                cell: r.cell.clone(),
                seed: r.seed,
                script: r.script.clone(),
                point: d.point,
                reason: d.reason.clone(),
                trace_tail: d.trace_tail.clone(),
            });
        }
        ndjson.push_str(&Json::Obj(line).to_string());
        ndjson.push('\n');
        let mut row = vec![
            ("tree_update".to_string(), Json::Str(r.tree.to_string())),
            ("cloning".to_string(), Json::Str(r.policy.to_string())),
            ("recovery".to_string(), Json::Str(r.recovery.to_string())),
            ("seed".to_string(), Json::Str(format!("{:#018x}", r.seed))),
            ("script".to_string(), Json::Str(r.script.clone())),
            ("points".to_string(), Json::Num(r.points as f64)),
            ("divergent".to_string(), Json::Bool(diverged)),
        ];
        if let Some(d) = &r.divergence {
            row.push(("divergence_point".to_string(), Json::Num(d.point as f64)));
            row.push(("divergence_reason".to_string(), Json::Str(d.reason.clone())));
        }
        cell_rows.push((String::new(), Json::Obj(row)));
    }
    let result = Json::Obj(vec![
        (
            "schema".to_string(),
            Json::Str("soteria-crashck/v1".to_string()),
        ),
        (
            "config".to_string(),
            Json::Obj(vec![
                ("seed".to_string(), Json::Str(format!("{:#018x}", config.seed))),
                (
                    "scripts_per_cell".to_string(),
                    Json::Num(config.scripts_per_cell.max(1) as f64),
                ),
                ("max_txns".to_string(), Json::Num(config.max_txns as f64)),
                (
                    "max_writes".to_string(),
                    Json::Num(config.max_writes as f64),
                ),
            ]),
        ),
        (
            "sweeps".to_string(),
            Json::Arr(cell_rows.into_iter().map(|(_, v)| v).collect()),
        ),
        (
            "summary".to_string(),
            Json::Obj(vec![
                ("cells".to_string(), Json::Num(cells as f64)),
                ("scripts".to_string(), Json::Num(results.len() as f64)),
                ("points".to_string(), Json::Num(points as f64)),
                (
                    "divergences".to_string(),
                    Json::Num(divergences.len() as f64),
                ),
            ]),
        ),
    ]);
    CrashckOutput {
        result_json: result.to_pretty_string(),
        ndjson,
        divergences,
        cells,
        scripts: results.len(),
        points,
    }
}

/// Runs the full crash-consistency campaign described by `config`.
pub fn run_crashck(config: &CrashckConfig) -> CrashckOutput {
    let all: Vec<u64> = (0..total_units(config)).collect();
    let tagged = run_crashck_units(config, &all);
    merge_crashck_units(config, tagged)
}

/// Builds a [`CrashckConfig`] from a JSON request body — the single
/// parser behind `soteria crashck` submissions over HTTP.
///
/// Recognized fields (all optional; anything else is rejected):
/// `seed` (number or `"0x…"` string), `scripts_per_cell` (≤ 64),
/// `max_txns` (≤ 16), `max_writes` (≤ 8), `threads`.
///
/// # Errors
///
/// Returns a one-line, field-naming message on any invalid input.
pub fn crashck_config_from_json(body: &Json) -> Result<CrashckConfig, String> {
    let entries = body
        .entries()
        .ok_or("crashck config must be a JSON object")?;
    let positive_int = |v: &Json, field: &str| -> Result<u64, String> {
        let n = v
            .as_f64()
            .ok_or_else(|| format!("field '{field}' must be a number"))?;
        if n < 1.0 || n.fract() != 0.0 {
            return Err(format!("field '{field}' must be a positive integer"));
        }
        Ok(n as u64)
    };
    let mut config = CrashckConfig::default();
    for (key, value) in entries {
        match key.as_str() {
            "seed" => {
                config.seed = match value {
                    Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 => *n as u64,
                    Json::Str(s) => {
                        let hex = s.strip_prefix("0x").unwrap_or(s);
                        u64::from_str_radix(hex, 16)
                            .map_err(|_| format!("field 'seed' has invalid hex value '{s}'"))?
                    }
                    _ => return Err("field 'seed' must be an integer or hex string".into()),
                };
            }
            "scripts_per_cell" => {
                let n = positive_int(value, "scripts_per_cell")?;
                if n > 64 {
                    return Err("field 'scripts_per_cell' must be at most 64".into());
                }
                config.scripts_per_cell = n as usize;
            }
            "max_txns" => {
                let n = positive_int(value, "max_txns")?;
                if n > 16 {
                    return Err("field 'max_txns' must be at most 16".into());
                }
                config.max_txns = n as usize;
            }
            "max_writes" => {
                let n = positive_int(value, "max_writes")?;
                if n > 8 {
                    return Err("field 'max_writes' must be at most 8".into());
                }
                config.max_writes = n as usize;
            }
            "threads" => {
                config.threads = positive_int(value, "threads")? as usize;
            }
            other => {
                return Err(format!(
                    "unknown field '{other}' (seed, scripts_per_cell, max_txns, max_writes, \
                     threads)"
                ))
            }
        }
    }
    Ok(config)
}

/// Sweeps one named cell with one script — the building block the test
/// suite uses to cover the matrix cell-by-cell (each test stays small).
///
/// `tree` is `lazy`/`eager`/`triad1`; `recovery` is `anubis`/`osiris`.
/// Returns the points checked and the first divergence, if any.
///
/// # Panics
///
/// Panics on an unknown `tree` or `recovery` name (the matrix is fixed).
pub fn sweep_cell(
    tree: &str,
    policy: &CloningPolicy,
    recovery: &str,
    seed: u64,
    max_txns: usize,
    max_writes: usize,
) -> (u64, Option<CellDivergence>) {
    let (update, tree_name) = TREE_UPDATES
        .iter()
        .find(|(_, name)| *name == tree)
        .copied()
        // lint:allow(P1, test harness entry point with a fixed name set)
        .expect("known tree-update name");
    let (recovery, mode) = RECOVERIES
        .iter()
        .find(|(name, _)| *name == recovery)
        .copied()
        // lint:allow(P1, test harness entry point with a fixed name set)
        .expect("known recovery name");
    let config = CrashckConfig {
        seed,
        scripts_per_cell: 1,
        max_txns,
        max_writes,
        threads: 1,
    };
    let unit = run_unit(update, tree_name, policy, recovery, mode, seed, &config);
    let divergence = unit.divergence.map(|d| CellDivergence {
        cell: unit.cell,
        seed,
        script: unit.script,
        point: d.point,
        reason: d.reason,
        trace_tail: d.trace_tail,
    });
    (unit.points, divergence)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_campaign_is_clean_and_thread_invariant() {
        let config = CrashckConfig {
            seed: 0x50f3,
            scripts_per_cell: 1,
            max_txns: 2,
            max_writes: 2,
            threads: 1,
        };
        let one = run_crashck(&config);
        assert_eq!(one.cells, 18);
        assert_eq!(one.scripts, 18);
        assert!(
            one.divergences.is_empty(),
            "committed-prefix divergence: {:?}",
            one.divergences.first().map(|d| (&d.cell, d.point, &d.reason))
        );
        let four = run_crashck(&CrashckConfig {
            threads: 4,
            ..config
        });
        assert_eq!(one.result_json, four.result_json);
        assert_eq!(one.ndjson, four.ndjson);
    }
}
