//! Job-sized campaign entry point shared by the CLI and the campaign
//! service (`soteria-svc`).
//!
//! Both front-ends must produce **byte-identical artifacts** for the same
//! seed — `soteria campaign --json/--trace` writes the same bytes that
//! `POST /v1/campaigns` + `GET /v1/jobs/{id}/result` / `…/trace` return.
//! That contract holds because every path funnels through this module:
//! one config parser ([`config_from_json`]), one policy roster
//! ([`STANDARD_POLICIES`]), one report serializer ([`report_json`]), and
//! one runner ([`run_job`]).

use soteria::analysis::TreeKind;
use soteria::clone::CloningPolicy;
use soteria_rt::json::Json;
use soteria_rt::obs::TraceBuffer;

use crate::campaign::{run_campaign_traced, CampaignConfig, PolicyResult};

/// The three schemes every campaign artifact reports, in table order.
pub const STANDARD_POLICIES: [CloningPolicy; 3] = [
    CloningPolicy::None,
    CloningPolicy::Relaxed,
    CloningPolicy::Aggressive,
];

/// Maps an ECC name to the number of correctable chips per codeword.
///
/// # Errors
///
/// Returns a one-line message naming the accepted values.
pub fn parse_ecc(name: &str) -> Result<usize, String> {
    match name {
        "secded" => Ok(0),
        "chipkill" => Ok(1),
        "double" => Ok(2),
        other => Err(format!("unknown ecc '{other}' (secded|chipkill|double)")),
    }
}

/// Maps an integrity-tree name to its [`TreeKind`].
///
/// # Errors
///
/// Returns a one-line message naming the accepted values.
pub fn parse_tree(name: &str) -> Result<TreeKind, String> {
    match name {
        "toc" => Ok(TreeKind::Toc),
        "bmt" => Ok(TreeKind::Bmt),
        other => Err(format!("unknown tree '{other}' (toc|bmt)")),
    }
}

/// Builds a traced [`CampaignConfig`] from a JSON request body.
///
/// Recognized fields (all optional; anything else is rejected so typos
/// fail loudly):
///
/// * `fit` — FIT per chip (default 80)
/// * `iterations` — Monte Carlo iterations (default 10000, capped at 10^7)
/// * `ecc` — `secded` | `chipkill` | `double`
/// * `tree` — `toc` | `bmt`
/// * `scrub_hours` — patrol-scrub interval (off when absent)
/// * `seed` — RNG seed, as a number or a `"0x…"` hex string
/// * `threads` — worker threads (results are identical for any value)
/// * `capacity_bytes` — protected capacity (default 16 GiB)
///
/// The returned config always has `trace = true`: service jobs keep
/// their NDJSON trace alongside the result.
///
/// # Errors
///
/// Returns a one-line, field-naming message on any invalid input.
pub fn config_from_json(body: &Json) -> Result<CampaignConfig, String> {
    let entries = body
        .entries()
        .ok_or("campaign config must be a JSON object")?;
    let num = |v: &Json, field: &str| {
        v.as_f64()
            .ok_or_else(|| format!("field '{field}' must be a number"))
    };
    let positive_int = |v: &Json, field: &str| -> Result<u64, String> {
        let n = num(v, field)?;
        if n < 1.0 || n.fract() != 0.0 {
            return Err(format!("field '{field}' must be a positive integer"));
        }
        Ok(n as u64)
    };
    let mut config = CampaignConfig::table4(80.0);
    for (key, value) in entries {
        match key.as_str() {
            "fit" => {
                let fit = num(value, "fit")?;
                if !(fit > 0.0 && fit.is_finite()) {
                    return Err("field 'fit' must be a positive number".into());
                }
                // Only the target changes here; the campaign scales its
                // mode mix to `fit_per_chip` at run time, exactly like
                // the CLI path (identical config ⇒ identical bytes).
                config.fit_per_chip = fit;
            }
            "iterations" => {
                let iters = positive_int(value, "iterations")?;
                if iters > 10_000_000 {
                    return Err("field 'iterations' must be at most 10000000".into());
                }
                config.iterations = iters;
            }
            "ecc" => {
                let name = value.as_str().ok_or("field 'ecc' must be a string")?;
                config.correctable_chips = parse_ecc(name)?;
            }
            "tree" => {
                let name = value.as_str().ok_or("field 'tree' must be a string")?;
                config.tree = parse_tree(name)?;
            }
            "scrub_hours" => {
                let hours = num(value, "scrub_hours")?;
                if !(hours > 0.0 && hours.is_finite()) {
                    return Err("field 'scrub_hours' must be a positive number".into());
                }
                config.scrub_interval_hours = Some(hours);
            }
            "seed" => {
                config.seed = match value {
                    Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 => *n as u64,
                    Json::Str(s) => {
                        let hex = s.strip_prefix("0x").unwrap_or(s);
                        u64::from_str_radix(hex, 16).map_err(|_| {
                            format!("field 'seed' has invalid hex value '{s}'")
                        })?
                    }
                    _ => return Err("field 'seed' must be an integer or hex string".into()),
                };
            }
            "threads" => {
                config.threads = positive_int(value, "threads")? as usize;
            }
            "capacity_bytes" => {
                let bytes = positive_int(value, "capacity_bytes")?;
                if !(1 << 20..=1u64 << 44).contains(&bytes) {
                    return Err("field 'capacity_bytes' must be between 1 MiB and 16 TiB".into());
                }
                config.capacity_bytes = bytes;
            }
            other => {
                return Err(format!(
                    "unknown field '{other}' (fit, iterations, ecc, tree, scrub_hours, seed, \
                     threads, capacity_bytes)"
                ))
            }
        }
    }
    config.trace = true;
    Ok(config)
}

/// The campaign's machine-readable artifact: config echo, per-policy
/// results, and a metrics snapshot derived from the event trace. This is
/// the single serializer behind `soteria campaign --json` and the
/// service's result endpoint.
pub fn report_json(
    config: &CampaignConfig,
    results: &[PolicyResult],
    trace: &TraceBuffer,
) -> Json {
    let mut event_counts: Vec<(String, u64)> = Vec::new();
    for ev in trace.events() {
        match event_counts.iter_mut().find(|(n, _)| n == ev.name) {
            Some((_, c)) => *c += 1,
            None => event_counts.push((ev.name.to_string(), 1)),
        }
    }
    Json::Obj(vec![
        (
            "config".into(),
            Json::Obj(vec![
                ("seed".into(), Json::Str(format!("{:#018x}", config.seed))),
                ("iterations".into(), Json::Num(config.iterations as f64)),
                ("fit_per_chip".into(), Json::Num(config.fit_per_chip)),
                (
                    "capacity_bytes".into(),
                    Json::Num(config.capacity_bytes as f64),
                ),
            ]),
        ),
        (
            "results".into(),
            Json::Arr(
                results
                    .iter()
                    .map(|r| {
                        Json::Obj(vec![
                            ("policy".into(), Json::Str(r.policy.name().into())),
                            (
                                "iterations_with_faults".into(),
                                Json::Num(r.iterations_with_faults as f64),
                            ),
                            (
                                "iterations_with_ue".into(),
                                Json::Num(r.iterations_with_ue as f64),
                            ),
                            (
                                "iterations_with_udr".into(),
                                Json::Num(r.iterations_with_udr as f64),
                            ),
                            ("mean_error_ratio".into(), Json::Num(r.mean_error_ratio)),
                            ("mean_udr".into(), Json::Num(r.mean_udr)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "metrics".into(),
            Json::Obj(vec![
                ("trace_events".into(), Json::Num(trace.len() as f64)),
                ("trace_dropped".into(), Json::Num(trace.dropped() as f64)),
                (
                    "events_by_name".into(),
                    Json::Obj(
                        event_counts
                            .into_iter()
                            .map(|(n, c)| (n, Json::Num(c as f64)))
                            .collect(),
                    ),
                ),
            ]),
        ),
    ])
}

/// A finished campaign job: the exact artifact bytes a front-end serves
/// or writes to disk, plus the numeric results for tabular display.
#[derive(Clone, Debug)]
pub struct JobOutput {
    /// Per-policy results for [`STANDARD_POLICIES`], in order.
    pub results: Vec<PolicyResult>,
    /// The pretty-printed result JSON (trailing newline included).
    pub result_json: String,
    /// The NDJSON event trace.
    pub trace_ndjson: String,
}

/// Runs one campaign over [`STANDARD_POLICIES`] and serializes its
/// artifacts. For a fixed `config.seed` the output bytes are identical
/// at any `config.threads` value.
pub fn run_job(config: &CampaignConfig) -> JobOutput {
    let (results, trace) = run_campaign_traced(config, &STANDARD_POLICIES);
    let result_json = report_json(config, &results, &trace).to_pretty_string();
    JobOutput {
        results,
        result_json,
        trace_ndjson: trace.export_ndjson(),
    }
}

/// A validated job request: the classic cloning-policy campaign
/// (`POST /v1/campaigns`), the cross-scheme compare matrix
/// (`POST /v1/compare`), the crash-consistency sweep
/// (`POST /v1/crashck`), or a block-range shard of any of them
/// (`POST /v1/blocks`, submitted by a fleet coordinator). One enum so
/// the service worker and the CLI share a single runner.
#[derive(Clone, Debug)]
pub enum JobSpec {
    /// A [`STANDARD_POLICIES`] campaign (`soteria-campaign/v1`).
    Campaign(CampaignConfig),
    /// A full-roster scheme shootout (`soteria-compare/v1`).
    Compare(crate::compare::CompareConfig),
    /// A crash-consistency matrix sweep (`soteria-crashck/v1`).
    Crashck(crate::crashck::CrashckConfig),
    /// Blocks `lo..hi` of an inner job, producing a partial-sums
    /// document (`soteria-blocks/v1`) instead of final artifacts.
    Blocks {
        /// The job being sharded (never itself `Blocks`).
        spec: Box<JobSpec>,
        /// First block index (inclusive).
        lo: u64,
        /// Last block index (exclusive).
        hi: u64,
    },
}

impl JobSpec {
    /// Worker threads the job will use.
    pub fn threads(&self) -> usize {
        match self {
            JobSpec::Campaign(c) => c.threads,
            JobSpec::Compare(c) => c.threads,
            JobSpec::Crashck(c) => c.threads,
            JobSpec::Blocks { spec, .. } => spec.threads(),
        }
    }

    /// The artifact schema this job emits.
    pub fn schema(&self) -> &'static str {
        match self {
            JobSpec::Campaign(_) => "soteria-campaign/v1",
            JobSpec::Compare(_) => "soteria-compare/v1",
            JobSpec::Crashck(_) => "soteria-crashck/v1",
            JobSpec::Blocks { .. } => "soteria-blocks/v1",
        }
    }
}

/// Runs any [`JobSpec`] and returns `(result_json, ndjson)` — the two
/// artifact byte-streams every job kind produces. Thread-invariant for
/// all kinds. A `Blocks` job returns its partial-sums document as the
/// result and an empty trace (partials carry their events inline).
pub fn run_spec(spec: &JobSpec) -> (String, String) {
    match spec {
        JobSpec::Campaign(config) => {
            let output = run_job(config);
            (output.result_json, output.trace_ndjson)
        }
        JobSpec::Compare(config) => {
            let output = crate::compare::run_compare(config);
            (output.result_json, output.ndjson)
        }
        JobSpec::Crashck(config) => {
            let output = crate::crashck::run_crashck(config);
            (output.result_json, output.ndjson)
        }
        JobSpec::Blocks { spec, lo, hi } => (
            crate::shard::run_block_range(spec, *lo, *hi).to_pretty_string(),
            String::new(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<CampaignConfig, String> {
        config_from_json(&Json::parse(s).expect("test body must be valid JSON"))
    }

    #[test]
    fn defaults_match_table4_with_trace_on() {
        let c = parse("{}").unwrap();
        let t4 = CampaignConfig::table4(80.0);
        assert_eq!(c.fit_per_chip, t4.fit_per_chip);
        assert_eq!(c.iterations, t4.iterations);
        assert_eq!(c.seed, t4.seed);
        assert_eq!(c.capacity_bytes, t4.capacity_bytes);
        assert!(c.trace, "service jobs always keep their trace");
    }

    #[test]
    fn fields_apply() {
        let c = parse(
            r#"{"fit": 1500, "iterations": 250, "ecc": "double", "tree": "bmt",
                "scrub_hours": 24, "seed": "0xdead", "threads": 3,
                "capacity_bytes": 67108864}"#,
        )
        .unwrap();
        assert_eq!(c.fit_per_chip, 1500.0);
        assert_eq!(c.iterations, 250);
        assert_eq!(c.correctable_chips, 2);
        assert_eq!(c.tree, TreeKind::Bmt);
        assert_eq!(c.scrub_interval_hours, Some(24.0));
        assert_eq!(c.seed, 0xdead);
        assert_eq!(c.threads, 3);
        assert_eq!(c.capacity_bytes, 64 << 20);
    }

    #[test]
    fn numeric_seed_accepted() {
        assert_eq!(parse(r#"{"seed": 42}"#).unwrap().seed, 42);
    }

    #[test]
    fn bad_fields_name_the_field() {
        for (body, needle) in [
            (r#"[1]"#, "must be a JSON object"),
            (r#"{"fit": -1}"#, "'fit'"),
            (r#"{"fit": "hot"}"#, "'fit'"),
            (r#"{"iterations": 0}"#, "'iterations'"),
            (r#"{"iterations": 2.5}"#, "'iterations'"),
            (r#"{"iterations": 99000000}"#, "'iterations'"),
            (r#"{"ecc": "raid"}"#, "unknown ecc 'raid'"),
            (r#"{"tree": "oak"}"#, "unknown tree 'oak'"),
            (r#"{"scrub_hours": 0}"#, "'scrub_hours'"),
            (r#"{"seed": "0xzz"}"#, "'seed'"),
            (r#"{"capacity_bytes": 64}"#, "'capacity_bytes'"),
            (r#"{"iters": 5}"#, "unknown field 'iters'"),
        ] {
            let err = parse(body).unwrap_err();
            assert!(err.contains(needle), "{body} -> {err}");
        }
    }

    #[test]
    fn job_output_is_deterministic_and_reports_all_policies() {
        let mut config = CampaignConfig::table4(1500.0);
        config.capacity_bytes = 1 << 26;
        config.iterations = 128;
        config.trace = true;
        config.threads = 2;
        let a = run_job(&config);
        let mut config_b = config.clone();
        config_b.threads = 5;
        let b = run_job(&config_b);
        assert_eq!(a.result_json, b.result_json, "result bytes thread-invariant");
        assert_eq!(a.trace_ndjson, b.trace_ndjson, "trace bytes thread-invariant");
        assert_eq!(a.results.len(), STANDARD_POLICIES.len());
        let doc = Json::parse(&a.result_json).unwrap();
        let policies: Vec<&str> = doc
            .get("results")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|r| r.get("policy").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(policies, vec!["Baseline", "SRC", "SAC"]);
        soteria_rt::obs::parse_ndjson(&a.trace_ndjson).expect("trace must validate");
    }
}
