//! The simulated system: core → L1/L2/LLC → secure memory controller →
//! NVM banks (Table 3).
//!
//! A trace-driven timing model in the spirit of the paper's gem5 setup:
//! the workload generator supplies memory operations with think time;
//! caches filter them; LLC misses go through the
//! [`SecureMemoryController`] in **Timing fidelity**, which produces the
//! exact NVM access trace (data, MACs, metadata fetches, shadow writes,
//! evictions, clones); a per-bank NVM timing model turns that trace into
//! latency. Reads stall the core; writes are posted and show up as bank
//! contention — which is precisely how Soteria's extra clone writes cost
//! performance.

use soteria::clone::CloningPolicy;
use soteria::{DataAddr, Fidelity, SecureMemoryConfig, SecureMemoryController};
use soteria_nvm::timing::{AccessKind, BankTimingModel, NvmTiming};
use soteria_workloads::{OpKind, Workload};

use crate::cache::{Cache, CacheConfig, LevelStats};

/// Full system configuration.
#[derive(Clone, Debug)]
pub struct SystemConfig {
    /// CPU frequency in GHz (Table 3: 2.67).
    pub cpu_ghz: f64,
    /// L1 data cache.
    pub l1: CacheConfig,
    /// L2 cache.
    pub l2: CacheConfig,
    /// Shared LLC.
    pub llc: CacheConfig,
    /// Secure-memory configuration (fidelity is forced to Timing).
    pub memory: SecureMemoryConfig,
    /// NVM array latencies.
    pub nvm: NvmTiming,
    /// Cycles a persist (clwb + fence reaching the ADR domain) stalls the
    /// core beyond cache access.
    pub persist_cost_cycles: u64,
    /// Fixed pipeline cost of decryption/verification appended to a
    /// memory read (MAC compare; OTP generation overlaps the data fetch).
    pub crypto_pipe_cycles: u64,
    /// Memory-level parallelism of the core: an out-of-order window
    /// overlaps independent misses, so a miss issued in the shadow of a
    /// previous one only pays the *additional* latency. 1.0 models a
    /// blocking in-order core; Table 3's OoO cores sit around 4.
    pub mlp: f64,
}

impl SystemConfig {
    /// The Table 3 system with a given cloning policy and protected
    /// capacity.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is invalid for [`SecureMemoryConfig`].
    pub fn table3(cloning: CloningPolicy, capacity_bytes: u64) -> Self {
        let memory = SecureMemoryConfig::builder()
            .capacity_bytes(capacity_bytes)
            .metadata_cache(512 * 1024, 8)
            .cloning(cloning)
            .fidelity(Fidelity::Timing)
            .build()
            .expect("table 3 configuration is valid");
        Self {
            cpu_ghz: 2.67,
            l1: CacheConfig::table3_l1(),
            l2: CacheConfig::table3_l2(),
            llc: CacheConfig::table3_llc(),
            memory,
            nvm: NvmTiming::table3_pcm(),
            persist_cost_cycles: 30,
            crypto_pipe_cycles: 40,
            mlp: 4.0,
        }
    }

    fn ns_to_cycles(&self, ns: u64) -> u64 {
        (ns as f64 * self.cpu_ghz).ceil() as u64
    }
}

/// Outcome of one simulation run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Workload name.
    pub workload: String,
    /// Cloning scheme name (Baseline / SRC / SAC).
    pub scheme: String,
    /// Memory operations executed.
    pub ops: u64,
    /// Total execution time in CPU cycles.
    pub cycles: u64,
    /// NVM writes issued by the controller.
    pub nvm_writes: u64,
    /// NVM reads issued by the controller.
    pub nvm_reads: u64,
    /// Dirty metadata evictions per tree level (index 0 = L1 leaves).
    pub evictions_by_level: Vec<u64>,
    /// Metadata-cache miss ratio.
    pub metadata_miss_ratio: f64,
    /// LLC statistics.
    pub llc: LevelStats,
}

impl RunResult {
    /// Total dirty metadata evictions.
    pub fn total_evictions(&self) -> u64 {
        self.evictions_by_level.iter().sum()
    }

    /// Evictions per memory operation (Fig. 10c).
    pub fn evictions_per_op(&self) -> f64 {
        self.total_evictions() as f64 / self.ops as f64
    }

    /// Per-level eviction fractions (Fig. 4).
    pub fn eviction_fractions(&self) -> Vec<f64> {
        let total = self.total_evictions().max(1) as f64;
        self.evictions_by_level
            .iter()
            .map(|&e| e as f64 / total)
            .collect()
    }
}

struct Core {
    l1: Cache,
    l2: Cache,
    now_cycles: u64,
    // Program time: think + cache-hit cycles only (memory stalls
    // excluded). Misses whose *program* distance is shorter than one
    // memory latency would coexist in the OoO window and overlap (MLP);
    // using program time keeps the classification independent of how
    // stalls were charged (no bistability).
    program_cycles: u64,
    last_miss_program: u64,
}

/// The simulated machine (one or more cores sharing the LLC, the secure
/// memory controller and the NVM banks — Table 3 uses four).
pub struct System {
    config: SystemConfig,
    cores: Vec<Core>,
    llc: Cache,
    controller: SecureMemoryController,
    banks: BankTimingModel,
    data_lines: u64,
    /// When false, memory accesses bypass the security machinery
    /// entirely (plain NVM): the "non-secure" reference point.
    secure: bool,
}

impl std::fmt::Debug for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("System")
            .field("now_cycles", &self.now_cycles())
            .finish_non_exhaustive()
    }
}

impl System {
    /// Builds a single-core system.
    pub fn new(config: SystemConfig) -> Self {
        Self::with_cores(config, 1)
    }

    /// Builds a system with `cores` cores, each with private L1/L2,
    /// sharing the LLC, controller and banks.
    ///
    /// # Panics
    ///
    /// Panics if `cores == 0`.
    pub fn with_cores(config: SystemConfig, cores: usize) -> Self {
        assert!(cores > 0, "need at least one core");
        let controller = SecureMemoryController::new(config.memory.clone());
        let geometry = *controller.device().geometry();
        let banks = BankTimingModel::new(&geometry, config.nvm);
        let data_lines = controller.layout().data_lines();
        Self {
            cores: (0..cores)
                .map(|_| Core {
                    l1: Cache::new(config.l1),
                    l2: Cache::new(config.l2),
                    now_cycles: 0,
                    program_cycles: 0,
                    last_miss_program: u64::MAX,
                })
                .collect(),
            llc: Cache::new(config.llc),
            controller,
            banks,
            config,
            data_lines,
            secure: true,
        }
    }

    /// Builds a system whose memory is *not* security-protected: no
    /// encryption, no integrity tree, no metadata traffic — one NVM
    /// access per LLC miss/writeback. This is the "Non-Secure Memory"
    /// reference of Fig. 12 and the classical secure-memory-overhead
    /// baseline.
    pub fn insecure(config: SystemConfig) -> Self {
        let mut s = Self::with_cores(config, 1);
        s.secure = false;
        s
    }

    /// Builds an insecure system with `cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `cores == 0`.
    pub fn insecure_with_cores(config: SystemConfig, cores: usize) -> Self {
        let mut s = Self::with_cores(config, cores);
        s.secure = false;
        s
    }

    /// The secure memory controller (for stats inspection).
    pub fn controller(&self) -> &SecureMemoryController {
        &self.controller
    }

    /// Mutable access to the controller (e.g. to enable observability
    /// before a run).
    pub fn controller_mut(&mut self) -> &mut SecureMemoryController {
        &mut self.controller
    }

    /// Current simulated time in cycles (max over cores).
    pub fn now_cycles(&self) -> u64 {
        self.cores.iter().map(|c| c.now_cycles).max().unwrap_or(0)
    }

    fn ns_of(&self, cycles: u64) -> u64 {
        (cycles as f64 / self.config.cpu_ghz) as u64
    }

    /// Schedules the controller's last access trace on the NVM banks.
    /// Returns the cycle at which the final *read* completes (writes are
    /// posted). Reads before the first write model the fetch path.
    fn schedule_trace(&mut self, now_cycles: u64) -> u64 {
        let now_ns = self.ns_of(now_cycles);
        let mut read_done_ns = now_ns;
        let geometry = *self.controller.device().geometry();
        for (addr, kind) in self.controller.last_trace().to_vec() {
            let done = self.banks.schedule(&geometry, addr, kind, now_ns);
            if kind == AccessKind::Read {
                read_done_ns = read_done_ns.max(done);
            }
        }
        self.config.ns_to_cycles(read_done_ns - now_ns)
    }

    /// Issues one memory read (LLC-miss path); returns its latency in
    /// cycles. Secure systems run the full controller datapath; insecure
    /// ones pay a single array read.
    fn memory_read(&mut self, line: u64, now_cycles: u64) -> u64 {
        if !self.secure {
            let geometry = *self.controller.device().geometry();
            let now_ns = self.ns_of(now_cycles);
            let done = self.banks.schedule(
                &geometry,
                soteria_nvm::LineAddr::new(line),
                AccessKind::Read,
                now_ns,
            );
            return self.config.ns_to_cycles(done - now_ns);
        }
        self.controller
            .read(DataAddr::new(line))
            .expect("timing-fidelity reads cannot fail");
        self.schedule_trace(now_cycles) + self.config.crypto_pipe_cycles
    }

    /// Issues one posted memory write (LLC writeback or persist).
    fn memory_write(&mut self, line: u64, now_cycles: u64) {
        if !self.secure {
            let geometry = *self.controller.device().geometry();
            let now_ns = self.ns_of(now_cycles);
            let _ = self.banks.schedule(
                &geometry,
                soteria_nvm::LineAddr::new(line),
                AccessKind::Write,
                now_ns,
            );
            return;
        }
        self.controller
            .write(DataAddr::new(line), &[0u8; 64])
            .expect("timing-fidelity writes cannot fail");
        let _ = self.schedule_trace(now_cycles);
    }

    /// Executes one operation on core `core_idx`.
    fn step(&mut self, core_idx: usize, op: soteria_workloads::MemOp) {
        let mut now = self.cores[core_idx].now_cycles + op.think as u64;
        let mut program = self.cores[core_idx].program_cycles + op.think as u64;
        let line = (op.addr / 64) % self.data_lines;
        let is_write = op.kind == OpKind::Write;

        if is_write && op.persistent {
            // clwb + fence: update the hierarchy, then push the line
            // through the controller into the ADR domain.
            let r1 = self.cores[core_idx].l1.access(line, true);
            now += self.config.l1.latency_cycles;
            program += self.config.l1.latency_cycles;
            if let Some(wb) = r1.writeback {
                self.victim_to_l2(core_idx, wb, now);
            }
            self.memory_write(line, now);
            now += self.config.persist_cost_cycles;
            self.cores[core_idx].now_cycles = now;
            self.cores[core_idx].program_cycles = program;
            return;
        }

        // Normal cached access.
        let r1 = self.cores[core_idx].l1.access(line, is_write);
        now += self.config.l1.latency_cycles;
        program += self.config.l1.latency_cycles;
        if let Some(wb) = r1.writeback {
            self.victim_to_l2(core_idx, wb, now);
        }
        if !r1.hit {
            let r2 = self.cores[core_idx].l2.access(line, false);
            now += self.config.l2.latency_cycles;
            program += self.config.l2.latency_cycles;
            if let Some(wb) = r2.writeback {
                self.victim_to_llc(wb, now);
            }
            if !r2.hit {
                let r3 = self.llc.access(line, false);
                now += self.config.llc.latency_cycles;
                program += self.config.llc.latency_cycles;
                if let Some(wb) = r3.writeback {
                    self.memory_write(wb, now);
                }
                if !r3.hit {
                    // LLC miss: fetch (and decrypt + verify) from NVM.
                    // Misses whose PROGRAM distance is below one memory
                    // latency would coexist in the OoO window: they
                    // overlap (MLP) and pay 1/mlp of the latency as
                    // visible stall; isolated misses stall fully.
                    let latency = self.memory_read(line, now);
                    let gap = program
                        .saturating_sub(self.cores[core_idx].last_miss_program);
                    let dense = self.cores[core_idx].last_miss_program != u64::MAX
                        && gap < latency;
                    let charged = if dense {
                        (latency as f64 / self.config.mlp).ceil() as u64
                    } else {
                        latency
                    };
                    self.cores[core_idx].last_miss_program = program;
                    now += charged;
                }
            }
        }
        self.cores[core_idx].now_cycles = now;
        self.cores[core_idx].program_cycles = program;
    }

    /// Runs `ops` operations of `workload` on core 0; returns timing +
    /// controller statistics.
    pub fn run(&mut self, workload: &mut dyn Workload, ops: u64) -> RunResult {
        let mut workloads = vec![workload];
        self.run_multi(&mut workloads, ops)
    }

    /// Runs `ops_per_core` operations of each workload, one per core, the
    /// cores interleaved in simulated-time order (the multiprogrammed
    /// Table 3 setup). The number of workloads must not exceed the number
    /// of cores.
    ///
    /// # Panics
    ///
    /// Panics when more workloads than cores are supplied.
    pub fn run_multi(
        &mut self,
        workloads: &mut [&mut dyn Workload],
        ops_per_core: u64,
    ) -> RunResult {
        assert!(
            workloads.len() <= self.cores.len(),
            "{} workloads but only {} cores",
            workloads.len(),
            self.cores.len()
        );
        let n = workloads.len();
        let mut remaining: Vec<u64> = vec![ops_per_core; n];
        // Advance the core with the smallest local clock (event order).
        while let Some(core_idx) = (0..n)
            .filter(|&i| remaining[i] > 0)
            .min_by_key(|&i| self.cores[i].now_cycles)
        {
            let op = workloads[core_idx].next_op();
            self.step(core_idx, op);
            remaining[core_idx] -= 1;
        }
        let stats = self.controller.stats();
        let name = workloads
            .iter()
            .map(|w| w.name())
            .collect::<Vec<_>>()
            .join("+");
        RunResult {
            workload: name,
            scheme: self.config.memory.cloning().name().to_string(),
            ops: ops_per_core * n as u64,
            cycles: self.now_cycles(),
            nvm_writes: stats.nvm_writes,
            nvm_reads: stats.nvm_reads,
            evictions_by_level: stats.evictions_by_level.clone(),
            metadata_miss_ratio: self.controller.cache_stats().miss_ratio(),
            llc: self.llc.stats(),
        }
    }

    fn victim_to_l2(&mut self, core_idx: usize, line: u64, now: u64) {
        if let Some(wb) = self.cores[core_idx].l2.insert_dirty(line) {
            self.victim_to_llc(wb, now);
        }
    }

    fn victim_to_llc(&mut self, line: u64, now: u64) {
        if let Some(wb) = self.llc.insert_dirty(line) {
            self.memory_write(wb, now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soteria_workloads::UBench;

    fn small_system(policy: CloningPolicy) -> System {
        let mut config = SystemConfig::table3(policy, 1 << 24); // 16 MiB
                                                                // Shrink caches so short runs produce memory traffic.
        config.l1 = CacheConfig {
            bytes: 4 * 1024,
            ways: 2,
            latency_cycles: 2,
        };
        config.l2 = CacheConfig {
            bytes: 16 * 1024,
            ways: 4,
            latency_cycles: 20,
        };
        config.llc = CacheConfig {
            bytes: 64 * 1024,
            ways: 8,
            latency_cycles: 32,
        };
        config.memory = SecureMemoryConfig::builder()
            .capacity_bytes(1 << 24)
            .metadata_cache(16 * 1024, 8)
            .cloning(config.memory.cloning().clone())
            .fidelity(Fidelity::Timing)
            .build()
            .unwrap();
        System::new(config)
    }

    #[test]
    fn time_advances_and_traffic_flows() {
        let mut sys = small_system(CloningPolicy::None);
        let mut w = UBench::new(256, 1 << 22);
        let r = sys.run(&mut w, 20_000);
        assert!(r.cycles > 0);
        assert!(r.nvm_reads > 0, "strided sweep must miss the LLC");
        assert!(r.nvm_writes > 0);
        assert!(r.total_evictions() > 0, "metadata cache must churn");
    }

    #[test]
    fn src_writes_more_than_baseline_small_slowdown() {
        let ops = 30_000;
        let mut base = small_system(CloningPolicy::None);
        let mut src = small_system(CloningPolicy::Relaxed);
        let rb = base.run(&mut UBench::new(256, 1 << 22), ops);
        let rs = src.run(&mut UBench::new(256, 1 << 22), ops);
        assert!(rs.nvm_writes > rb.nvm_writes, "SRC adds clone writes");
        let slowdown = rs.cycles as f64 / rb.cycles as f64;
        assert!(
            slowdown >= 1.0,
            "cloning cannot speed things up: {slowdown}"
        );
        assert!(slowdown < 1.2, "clone overhead must stay small: {slowdown}");
    }

    #[test]
    fn cache_friendly_workload_produces_little_traffic() {
        let mut sys = small_system(CloningPolicy::None);
        // Non-persistent workload whose footprint fits in the (shrunken)
        // LLC: the hierarchy absorbs almost everything. (Persistent
        // workloads bypass the caches by design — clwb + fence.)
        let mut w = soteria_workloads::Libquantum::new(16 * 1024, 0);
        let r = sys.run(&mut w, 20_000);
        assert!(
            (r.nvm_reads as f64) < 0.05 * r.ops as f64,
            "reads {} for {} ops",
            r.nvm_reads,
            r.ops
        );
    }

    #[test]
    fn eviction_fractions_are_bottom_heavy() {
        let mut sys = small_system(CloningPolicy::None);
        let mut w = UBench::new(256, 1 << 22);
        let r = sys.run(&mut w, 50_000);
        let f = r.eviction_fractions();
        assert!(!f.is_empty());
        assert!(f[0] > 0.5, "leaf level dominates evictions (Fig. 4): {f:?}");
    }

    #[test]
    fn mlp_speeds_up_miss_trains_without_reordering_schemes() {
        // A pointer-chasing read stream: higher MLP must reduce cycles,
        // and the SRC-vs-baseline ordering must be insensitive to it.
        let run = |mlp: f64, policy: CloningPolicy| {
            let mut config = SystemConfig::table3(policy, 1 << 24);
            config.l1 = CacheConfig {
                bytes: 4 * 1024,
                ways: 2,
                latency_cycles: 2,
            };
            config.l2 = CacheConfig {
                bytes: 16 * 1024,
                ways: 4,
                latency_cycles: 20,
            };
            config.llc = CacheConfig {
                bytes: 64 * 1024,
                ways: 8,
                latency_cycles: 32,
            };
            config.memory = SecureMemoryConfig::builder()
                .capacity_bytes(1 << 24)
                .metadata_cache(16 * 1024, 8)
                .cloning(config.memory.cloning().clone())
                .fidelity(Fidelity::Timing)
                .build()
                .unwrap();
            config.mlp = mlp;
            let mut sys = System::new(config);
            let mut w = soteria_workloads::Mcf::new(1 << 22, 3);
            sys.run(&mut w, 30_000).cycles
        };
        let in_order = run(1.0, CloningPolicy::None);
        let ooo = run(4.0, CloningPolicy::None);
        assert!(ooo < in_order, "MLP must help: {ooo} vs {in_order}");
        let ooo_src = run(4.0, CloningPolicy::Relaxed);
        assert!(ooo_src >= ooo, "cloning cannot speed things up");
    }

    #[test]
    fn insecure_memory_is_faster_than_secure() {
        let build = |secure: bool| {
            let mut config = SystemConfig::table3(CloningPolicy::None, 1 << 24);
            config.l1 = CacheConfig {
                bytes: 4 * 1024,
                ways: 2,
                latency_cycles: 2,
            };
            config.l2 = CacheConfig {
                bytes: 16 * 1024,
                ways: 4,
                latency_cycles: 20,
            };
            config.llc = CacheConfig {
                bytes: 64 * 1024,
                ways: 8,
                latency_cycles: 32,
            };
            // Table-3-sized metadata cache (fair comparison).
            config.memory = SecureMemoryConfig::builder()
                .capacity_bytes(1 << 24)
                .fidelity(Fidelity::Timing)
                .build()
                .unwrap();
            if secure {
                System::new(config)
            } else {
                System::insecure(config)
            }
        };
        let run = |mut sys: System, persistent: bool| {
            if persistent {
                let mut w = soteria_workloads::Sps::new(1 << 22, 11);
                sys.run(&mut w, 30_000).cycles
            } else {
                let mut w = soteria_workloads::Mcf::new(1 << 22, 11);
                sys.run(&mut w, 30_000).cycles
            }
        };
        // Flush-heavy persistent traffic: every store pays the secure
        // write path (cipher + MAC + shadow, persist fence) vs one posted
        // write — the expensive end of the spectrum.
        let secure_p = run(build(true), true);
        let insecure_p = run(build(false), true);
        assert!(insecure_p < secure_p, "{insecure_p} vs {secure_p}");
        // Read-dominated volatile traffic: caches filter, metadata is
        // cached — the cheap end.
        let secure_r = run(build(true), false);
        let insecure_r = run(build(false), false);
        assert!(insecure_r < secure_r, "{insecure_r} vs {secure_r}");
        let ratio_r = secure_r as f64 / insecure_r as f64;
        assert!(
            ratio_r < 3.0,
            "read-side security overhead must stay moderate: {ratio_r:.2}x"
        );
    }

    #[test]
    fn run_result_metrics() {
        let mut sys = small_system(CloningPolicy::None);
        let mut w = UBench::new(128, 1 << 20);
        let r = sys.run(&mut w, 10_000);
        assert_eq!(r.ops, 10_000);
        assert!((r.evictions_per_op() - r.total_evictions() as f64 / 10_000.0).abs() < 1e-12);
        let s: f64 = r.eviction_fractions().iter().sum();
        assert!(s == 0.0 || (s - 1.0).abs() < 1e-9);
    }
}
