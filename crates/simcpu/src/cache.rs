//! Set-associative write-back caches for the Table 3 hierarchy.

/// Configuration of one cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Capacity in bytes.
    pub bytes: u64,
    /// Associativity.
    pub ways: usize,
    /// Hit latency in CPU cycles.
    pub latency_cycles: u64,
}

impl CacheConfig {
    /// Table 3 L1: 32 kB, 2-way, 2 cycles.
    pub fn table3_l1() -> Self {
        Self {
            bytes: 32 * 1024,
            ways: 2,
            latency_cycles: 2,
        }
    }

    /// Table 3 L2: 512 kB, 8-way, 20 cycles.
    pub fn table3_l2() -> Self {
        Self {
            bytes: 512 * 1024,
            ways: 8,
            latency_cycles: 20,
        }
    }

    /// Table 3 LLC: 8 MB, 64-way, 32 cycles.
    pub fn table3_llc() -> Self {
        Self {
            bytes: 8 * 1024 * 1024,
            ways: 64,
            latency_cycles: 32,
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Line {
    tag: u64,
    dirty: bool,
    last_use: u64,
    valid: bool,
}

/// What a cache access did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AccessResult {
    /// The line was present.
    pub hit: bool,
    /// A dirty victim (line index) was evicted to make room.
    pub writeback: Option<u64>,
}

/// Per-level statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LevelStats {
    /// Hits at this level.
    pub hits: u64,
    /// Misses at this level.
    pub misses: u64,
}

/// One cache level, indexed by 64-byte line address.
#[derive(Clone, Debug)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Vec<Line>>,
    tick: u64,
    stats: LevelStats,
}

impl Cache {
    /// Builds the level.
    ///
    /// # Panics
    ///
    /// Panics unless the configuration forms at least one power-of-two
    /// set.
    pub fn new(config: CacheConfig) -> Self {
        let lines = (config.bytes / 64) as usize;
        assert!(config.ways > 0 && lines >= config.ways, "cache too small");
        let sets = lines / config.ways;
        assert!(sets.is_power_of_two(), "{sets} sets not a power of two");
        Self {
            sets: vec![
                vec![
                    Line {
                        tag: 0,
                        dirty: false,
                        last_use: 0,
                        valid: false
                    };
                    config.ways
                ];
                sets
            ],
            config,
            tick: 0,
            stats: LevelStats::default(),
        }
    }

    /// Hit latency.
    pub fn latency(&self) -> u64 {
        self.config.latency_cycles
    }

    /// Statistics so far.
    pub fn stats(&self) -> LevelStats {
        self.stats
    }

    /// Accesses `line`; on a miss the line is allocated (write-allocate)
    /// and the dirty victim, if any, is reported for writeback.
    pub fn access(&mut self, line: u64, is_write: bool) -> AccessResult {
        self.tick += 1;
        let set_idx = (line % self.sets.len() as u64) as usize;
        let set = &mut self.sets[set_idx];
        if let Some(l) = set.iter_mut().find(|l| l.valid && l.tag == line) {
            l.last_use = self.tick;
            l.dirty |= is_write;
            self.stats.hits += 1;
            return AccessResult {
                hit: true,
                writeback: None,
            };
        }
        self.stats.misses += 1;
        // Choose an invalid way or the LRU victim.
        let victim = match set.iter().position(|l| !l.valid) {
            Some(w) => w,
            None => set
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.last_use)
                .map(|(w, _)| w)
                .expect("nonempty set"),
        };
        let old = set[victim];
        set[victim] = Line {
            tag: line,
            dirty: is_write,
            last_use: self.tick,
            valid: true,
        };
        let writeback = (old.valid && old.dirty).then_some(old.tag);
        AccessResult {
            hit: false,
            writeback,
        }
    }

    /// Inserts a dirty line without a demand access (victim insertion from
    /// an upper level); reports a displaced dirty victim.
    pub fn insert_dirty(&mut self, line: u64) -> Option<u64> {
        let r = self.access(line, true);
        // `access` counted this as a miss/hit; victim insertions should not
        // pollute demand statistics.
        if r.hit {
            self.stats.hits -= 1;
        } else {
            self.stats.misses -= 1;
        }
        r.writeback
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 lines, 2-way => 2 sets.
        Cache::new(CacheConfig {
            bytes: 256,
            ways: 2,
            latency_cycles: 1,
        })
    }

    #[test]
    fn hit_after_fill() {
        let mut c = tiny();
        assert!(!c.access(0, false).hit);
        assert!(c.access(0, false).hit);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_eviction_and_writeback() {
        let mut c = tiny();
        c.access(0, true); // set 0, dirty
        c.access(2, false); // set 0
        c.access(0, false); // refresh 0
        let r = c.access(4, false); // set 0: evicts 2 (clean)
        assert_eq!(r.writeback, None);
        let r = c.access(6, false); // set 0: evicts 0 (dirty)
        assert_eq!(r.writeback, Some(0));
    }

    #[test]
    fn writes_dirty_lines() {
        let mut c = tiny();
        c.access(1, false);
        c.access(1, true); // now dirty
        c.access(3, false);
        let r = c.access(5, false); // evicts LRU=1 dirty
        assert_eq!(r.writeback, Some(1));
    }

    #[test]
    fn victim_insertion_does_not_count_in_stats() {
        let mut c = tiny();
        c.insert_dirty(8);
        assert_eq!(c.stats(), LevelStats::default());
        assert!(c.access(8, false).hit);
    }

    #[test]
    fn table3_shapes_build() {
        let _ = Cache::new(CacheConfig::table3_l1());
        let _ = Cache::new(CacheConfig::table3_l2());
        let _ = Cache::new(CacheConfig::table3_llc());
    }
}
