#![warn(missing_docs)]

//! A trace-driven CPU/cache/memory timing simulator (gem5-lite) for the
//! Soteria performance evaluation.
//!
//! The paper models its system in gem5 (Table 3: 4-core OoO x86 at
//! 2.67 GHz, 32 kB L1 / 512 kB L2 / 8 MB LLC, DDR-attached PCM at
//! 150/300 ns). This crate substitutes a trace-driven model: workload
//! generators ([`soteria_workloads`]) feed a three-level cache hierarchy;
//! LLC misses run through the real [`soteria::SecureMemoryController`]
//! (in content-free Timing fidelity) whose per-operation NVM access
//! traces are scheduled on a per-bank PCM timing model. Execution-time
//! *ratios* between Baseline, SRC and SAC — the quantities Fig. 10
//! reports — are driven by exactly the effects this model captures:
//! metadata-cache behaviour, eviction rates, and extra write bandwidth.
//!
//! # Example
//!
//! ```
//! use soteria::CloningPolicy;
//! use soteria_simcpu::{System, SystemConfig};
//! use soteria_workloads::UBench;
//!
//! let mut system = System::new(SystemConfig::table3(CloningPolicy::Relaxed, 1 << 24));
//! let result = system.run(&mut UBench::new(128, 1 << 22), 10_000);
//! assert!(result.cycles > 0);
//! ```

pub mod cache;
pub mod system;

pub use cache::{Cache, CacheConfig, LevelStats};
pub use system::{RunResult, System, SystemConfig};
