//! Multi-core system tests: Table 3's four cores sharing the LLC, the
//! secure memory controller and the PCM banks.

use soteria::clone::CloningPolicy;
use soteria::{Fidelity, SecureMemoryConfig};
use soteria_simcpu::{CacheConfig, System, SystemConfig};
use soteria_workloads::{Sps, UBench, Workload};

fn config(policy: CloningPolicy) -> SystemConfig {
    let mut c = SystemConfig::table3(policy, 1 << 24);
    c.l1 = CacheConfig {
        bytes: 4 * 1024,
        ways: 2,
        latency_cycles: 2,
    };
    c.l2 = CacheConfig {
        bytes: 16 * 1024,
        ways: 4,
        latency_cycles: 20,
    };
    c.llc = CacheConfig {
        bytes: 64 * 1024,
        ways: 8,
        latency_cycles: 32,
    };
    c.memory = SecureMemoryConfig::builder()
        .capacity_bytes(1 << 24)
        .metadata_cache(16 * 1024, 8)
        .cloning(c.memory.cloning().clone())
        .fidelity(Fidelity::Timing)
        .build()
        .unwrap();
    c
}

#[test]
fn four_cores_run_four_workloads() {
    let mut system = System::with_cores(config(CloningPolicy::Relaxed), 4);
    let mut w1 = UBench::new(256, 1 << 22);
    let mut w2 = UBench::new(64, 1 << 20);
    let mut w3 = Sps::new(1 << 22, 5);
    let mut w4 = Sps::new(1 << 22, 9);
    let mut workloads: Vec<&mut dyn Workload> = vec![&mut w1, &mut w2, &mut w3, &mut w4];
    let r = system.run_multi(&mut workloads, 10_000);
    assert_eq!(r.ops, 40_000);
    assert!(
        r.workload.contains('+'),
        "name lists all co-runners: {}",
        r.workload
    );
    assert!(r.nvm_reads > 0 && r.nvm_writes > 0);
}

#[test]
fn co_running_contends_for_memory() {
    // Four copies of a memory-intensive workload must take longer per op
    // than one copy alone (shared banks + shared metadata cache).
    let run = |cores: usize| {
        let mut system = System::with_cores(config(CloningPolicy::None), cores);
        let mut workloads: Vec<Sps> = (0..cores)
            .map(|i| Sps::new(1 << 22, 100 + i as u64))
            .collect();
        let mut refs: Vec<&mut dyn Workload> = workloads
            .iter_mut()
            .map(|w| w as &mut dyn Workload)
            .collect();
        let r = system.run_multi(&mut refs, 15_000);
        r.cycles as f64 / 15_000.0 // cycles per op per core (wall time)
    };
    let solo = run(1);
    let quad = run(4);
    assert!(
        quad > solo,
        "4 co-runners must be slower per op than 1: {quad:.1} vs {solo:.1}"
    );
}

#[test]
fn single_core_wrapper_matches_run_multi() {
    let mut a = System::new(config(CloningPolicy::None));
    let ra = a.run(&mut UBench::new(128, 1 << 20), 5_000);
    let mut b = System::with_cores(config(CloningPolicy::None), 1);
    let mut w = UBench::new(128, 1 << 20);
    let mut refs: Vec<&mut dyn Workload> = vec![&mut w];
    let rb = b.run_multi(&mut refs, 5_000);
    assert_eq!(ra.cycles, rb.cycles);
    assert_eq!(ra.nvm_writes, rb.nvm_writes);
}

#[test]
#[should_panic(expected = "cores")]
fn too_many_workloads_rejected() {
    let mut system = System::with_cores(config(CloningPolicy::None), 1);
    let mut w1 = UBench::new(64, 1 << 16);
    let mut w2 = UBench::new(64, 1 << 16);
    let mut refs: Vec<&mut dyn Workload> = vec![&mut w1, &mut w2];
    let _ = system.run_multi(&mut refs, 10);
}
