#![warn(missing_docs)]

//! Cryptographic primitives for the Soteria secure-NVM reproduction.
//!
//! Secure memory controllers (Intel SGX MEE [Gueron 2016], AMD SME) embed a
//! hardware encryption/authentication engine. This crate is the software
//! stand-in: a from-scratch, dependency-free implementation of
//!
//! * [`aes`] — the AES-128 block cipher (FIPS-197),
//! * [`sha256`] — SHA-256 (FIPS 180-4),
//! * [`hmac`] — HMAC-SHA-256 (RFC 2104),
//! * [`ctr`] — counter-mode one-time-pad generation for 64-byte memory
//!   lines, seeded from a per-line encryption counter and the line address,
//! * [`gcm`] — AES-GCM authenticated encryption (the engine the paper's
//!   footnote 1 names), validated against the SP 800-38D vectors,
//! * [`mac`] — the truncated 64-bit authentication tags that secure-memory
//!   designs attach to data lines and integrity-tree nodes.
//!
//! The paper uses AES-GCM-style authenticated encryption; we substitute a
//! truncated HMAC-SHA-256 tag with the same interface contract (64-bit tag
//! bound to address + payload + freshness counter). See `DESIGN.md` for the
//! substitution rationale.
//!
//! # Example
//!
//! ```
//! use soteria_crypto::{ctr::CounterModeCipher, EncryptionKey};
//!
//! let cipher = CounterModeCipher::new(EncryptionKey::from_bytes([7u8; 16]));
//! let line = [0x5au8; 64];
//! let encrypted = cipher.encrypt_line(&line, 0x1000, 42);
//! let decrypted = cipher.decrypt_line(&encrypted, 0x1000, 42);
//! assert_eq!(line, decrypted);
//! assert_ne!(line, encrypted);
//! ```

pub mod aes;
pub mod ctr;
pub mod gcm;
pub mod hmac;
pub mod mac;
pub mod sha256;

/// A 128-bit key used by the memory encryption engine.
///
/// Separate newtypes for encryption and MAC keys ensure the two roles are
/// never accidentally swapped (C-NEWTYPE).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct EncryptionKey([u8; 16]);

impl EncryptionKey {
    /// Creates a key from raw bytes.
    pub fn from_bytes(bytes: [u8; 16]) -> Self {
        Self(bytes)
    }

    /// Returns the raw key bytes.
    pub fn as_bytes(&self) -> &[u8; 16] {
        &self.0
    }
}

impl std::fmt::Debug for EncryptionKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        f.write_str("EncryptionKey(..)")
    }
}

/// A 256-bit key for MAC computation.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct MacKey([u8; 32]);

impl MacKey {
    /// Creates a key from raw bytes.
    pub fn from_bytes(bytes: [u8; 32]) -> Self {
        Self(bytes)
    }

    /// Returns the raw key bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }
}

impl std::fmt::Debug for MacKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("MacKey(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_do_not_leak_in_debug() {
        let k = EncryptionKey::from_bytes([0xab; 16]);
        assert!(!format!("{k:?}").contains("ab"));
        let m = MacKey::from_bytes([0xcd; 32]);
        assert!(!format!("{m:?}").contains("cd"));
    }

    #[test]
    fn key_roundtrip() {
        let bytes = [3u8; 16];
        assert_eq!(EncryptionKey::from_bytes(bytes).as_bytes(), &bytes);
        let bytes = [9u8; 32];
        assert_eq!(MacKey::from_bytes(bytes).as_bytes(), &bytes);
    }

    #[test]
    fn keys_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EncryptionKey>();
        assert_send_sync::<MacKey>();
    }
}
