//! AES-128 block cipher (FIPS-197), implemented from scratch.
//!
//! This is a straightforward table-free byte-oriented implementation: S-box
//! lookups plus explicit `xtime` multiplication in GF(2^8). It is not meant
//! to be side-channel hardened (it models a hardware engine inside a
//! simulator), but it is bit-exact against the FIPS-197 vectors.
//!
//! # Example
//!
//! ```
//! use soteria_crypto::aes::Aes128;
//!
//! let cipher = Aes128::new([0u8; 16]);
//! let block = [0x42u8; 16];
//! let ct = cipher.encrypt_block(&block);
//! assert_eq!(cipher.decrypt_block(&ct), block);
//! ```

const NB: usize = 4; // columns in the state
const NR: usize = 10; // rounds for AES-128

/// The AES S-box.
static SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// The inverse AES S-box.
static INV_SBOX: [u8; 256] = {
    let mut inv = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        inv[SBOX[i] as usize] = i as u8;
        i += 1;
    }
    inv
};

/// Round constants for key expansion.
static RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

#[inline]
fn xtime(x: u8) -> u8 {
    (x << 1) ^ (((x >> 7) & 1).wrapping_mul(0x1b))
}

/// Multiply two bytes in GF(2^8) with the AES polynomial.
#[inline]
fn gmul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        a = xtime(a);
        b >>= 1;
    }
    p
}

/// An AES-128 cipher with a pre-expanded key schedule.
#[derive(Clone)]
pub struct Aes128 {
    round_keys: [[u8; 16]; NR + 1],
}

impl std::fmt::Debug for Aes128 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Aes128(..)")
    }
}

impl Aes128 {
    /// Expands `key` into the full round-key schedule.
    pub fn new(key: [u8; 16]) -> Self {
        let mut w = [[0u8; 4]; NB * (NR + 1)];
        for (i, word) in w.iter_mut().take(NB).enumerate() {
            word.copy_from_slice(&key[4 * i..4 * i + 4]);
        }
        for i in NB..NB * (NR + 1) {
            let mut temp = w[i - 1];
            if i % NB == 0 {
                temp.rotate_left(1);
                for byte in &mut temp {
                    *byte = SBOX[*byte as usize];
                }
                temp[0] ^= RCON[i / NB - 1];
            }
            for j in 0..4 {
                w[i][j] = w[i - NB][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; 16]; NR + 1];
        for (r, rk) in round_keys.iter_mut().enumerate() {
            for c in 0..NB {
                rk[4 * c..4 * c + 4].copy_from_slice(&w[r * NB + c]);
            }
        }
        Self { round_keys }
    }

    /// Encrypts one 16-byte block.
    pub fn encrypt_block(&self, block: &[u8; 16]) -> [u8; 16] {
        let mut state = *block;
        add_round_key(&mut state, &self.round_keys[0]);
        for round in 1..NR {
            sub_bytes(&mut state);
            shift_rows(&mut state);
            mix_columns(&mut state);
            add_round_key(&mut state, &self.round_keys[round]);
        }
        sub_bytes(&mut state);
        shift_rows(&mut state);
        add_round_key(&mut state, &self.round_keys[NR]);
        state
    }

    /// Decrypts one 16-byte block.
    pub fn decrypt_block(&self, block: &[u8; 16]) -> [u8; 16] {
        let mut state = *block;
        add_round_key(&mut state, &self.round_keys[NR]);
        for round in (1..NR).rev() {
            inv_shift_rows(&mut state);
            inv_sub_bytes(&mut state);
            add_round_key(&mut state, &self.round_keys[round]);
            inv_mix_columns(&mut state);
        }
        inv_shift_rows(&mut state);
        inv_sub_bytes(&mut state);
        add_round_key(&mut state, &self.round_keys[0]);
        state
    }
}

// State layout: state[4*c + r] = byte at row r, column c (column-major as in
// FIPS-197's linear input ordering).

fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
    for (s, k) in state.iter_mut().zip(rk.iter()) {
        *s ^= k;
    }
}

fn sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

fn inv_sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = INV_SBOX[*b as usize];
    }
}

fn shift_rows(state: &mut [u8; 16]) {
    let s = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[4 * c + r] = s[4 * ((c + r) % 4) + r];
        }
    }
}

fn inv_shift_rows(state: &mut [u8; 16]) {
    let s = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[4 * ((c + r) % 4) + r] = s[4 * c + r];
        }
    }
}

fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [
            state[4 * c],
            state[4 * c + 1],
            state[4 * c + 2],
            state[4 * c + 3],
        ];
        state[4 * c] = xtime(col[0]) ^ (xtime(col[1]) ^ col[1]) ^ col[2] ^ col[3];
        state[4 * c + 1] = col[0] ^ xtime(col[1]) ^ (xtime(col[2]) ^ col[2]) ^ col[3];
        state[4 * c + 2] = col[0] ^ col[1] ^ xtime(col[2]) ^ (xtime(col[3]) ^ col[3]);
        state[4 * c + 3] = (xtime(col[0]) ^ col[0]) ^ col[1] ^ col[2] ^ xtime(col[3]);
    }
}

fn inv_mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [
            state[4 * c],
            state[4 * c + 1],
            state[4 * c + 2],
            state[4 * c + 3],
        ];
        state[4 * c] =
            gmul(col[0], 0x0e) ^ gmul(col[1], 0x0b) ^ gmul(col[2], 0x0d) ^ gmul(col[3], 0x09);
        state[4 * c + 1] =
            gmul(col[0], 0x09) ^ gmul(col[1], 0x0e) ^ gmul(col[2], 0x0b) ^ gmul(col[3], 0x0d);
        state[4 * c + 2] =
            gmul(col[0], 0x0d) ^ gmul(col[1], 0x09) ^ gmul(col[2], 0x0e) ^ gmul(col[3], 0x0b);
        state[4 * c + 3] =
            gmul(col[0], 0x0b) ^ gmul(col[1], 0x0d) ^ gmul(col[2], 0x09) ^ gmul(col[3], 0x0e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex16(s: &str) -> [u8; 16] {
        let mut out = [0u8; 16];
        for i in 0..16 {
            out[i] = u8::from_str_radix(&s[2 * i..2 * i + 2], 16).unwrap();
        }
        out
    }

    #[test]
    fn fips197_appendix_b() {
        // FIPS-197 Appendix B worked example.
        let cipher = Aes128::new(hex16("2b7e151628aed2a6abf7158809cf4f3c"));
        let pt = hex16("3243f6a8885a308d313198a2e0370734");
        let ct = cipher.encrypt_block(&pt);
        assert_eq!(ct, hex16("3925841d02dc09fbdc118597196a0b32"));
        assert_eq!(cipher.decrypt_block(&ct), pt);
    }

    #[test]
    fn fips197_appendix_c1() {
        // FIPS-197 Appendix C.1 AES-128 example vector.
        let cipher = Aes128::new(hex16("000102030405060708090a0b0c0d0e0f"));
        let pt = hex16("00112233445566778899aabbccddeeff");
        let ct = cipher.encrypt_block(&pt);
        assert_eq!(ct, hex16("69c4e0d86a7b0430d8cdb78070b4c55a"));
        assert_eq!(cipher.decrypt_block(&ct), pt);
    }

    #[test]
    fn nist_sp800_38a_ecb_vectors() {
        // SP 800-38A F.1.1 ECB-AES128.Encrypt, all four blocks.
        let cipher = Aes128::new(hex16("2b7e151628aed2a6abf7158809cf4f3c"));
        let cases = [
            (
                "6bc1bee22e409f96e93d7e117393172a",
                "3ad77bb40d7a3660a89ecaf32466ef97",
            ),
            (
                "ae2d8a571e03ac9c9eb76fac45af8e51",
                "f5d3d58503b9699de785895a96fdbaaf",
            ),
            (
                "30c81c46a35ce411e5fbc1191a0a52ef",
                "43b1cd7f598ece23881b00e3ed030688",
            ),
            (
                "f69f2445df4f9b17ad2b417be66c3710",
                "7b0c785e27e8ad3f8223207104725dd4",
            ),
        ];
        for (pt, ct) in cases {
            assert_eq!(cipher.encrypt_block(&hex16(pt)), hex16(ct));
        }
    }

    #[test]
    fn decrypt_inverts_encrypt_many() {
        let cipher = Aes128::new([0x37; 16]);
        let mut block = [0u8; 16];
        for i in 0..200u32 {
            block[0..4].copy_from_slice(&i.to_le_bytes());
            let ct = cipher.encrypt_block(&block);
            assert_eq!(cipher.decrypt_block(&ct), block);
            block = ct;
        }
    }

    #[test]
    fn distinct_keys_distinct_ciphertexts() {
        let a = Aes128::new([1; 16]);
        let b = Aes128::new([2; 16]);
        let pt = [0u8; 16];
        assert_ne!(a.encrypt_block(&pt), b.encrypt_block(&pt));
    }

    #[test]
    fn gmul_matches_known_values() {
        assert_eq!(gmul(0x57, 0x83), 0xc1); // FIPS-197 §4.2 example
        assert_eq!(gmul(0x57, 0x13), 0xfe);
        assert_eq!(gmul(1, 0xab), 0xab);
        assert_eq!(gmul(0, 0xff), 0);
    }

    #[test]
    fn inv_sbox_is_inverse() {
        for i in 0..=255u8 {
            assert_eq!(INV_SBOX[SBOX[i as usize] as usize], i);
        }
    }

    #[test]
    fn shift_rows_round_trip() {
        let mut s: [u8; 16] = core::array::from_fn(|i| i as u8);
        let orig = s;
        shift_rows(&mut s);
        assert_ne!(s, orig);
        inv_shift_rows(&mut s);
        assert_eq!(s, orig);
    }

    #[test]
    fn mix_columns_round_trip() {
        let mut s: [u8; 16] = core::array::from_fn(|i| (i * 17) as u8);
        let orig = s;
        mix_columns(&mut s);
        inv_mix_columns(&mut s);
        assert_eq!(s, orig);
    }
}
